#ifndef ACCLTL_LOGIC_EVAL_H_
#define ACCLTL_LOGIC_EVAL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/logic/formula.h"
#include "src/logic/structure.h"

namespace accltl {
namespace logic {

/// A partial assignment of values to variables.
using Env = std::map<std::string, Value>;

/// Evaluates a sentence (closed formula) of FO∃+(≠) against a structure.
///
/// Evaluation is a backtracking join: atoms bind variables by iterating
/// the view's tuples; equalities propagate or test bindings;
/// inequalities test. Conjunctions are dynamically reordered so that a
/// conjunct runs only once it is "ready" (an atom is always ready; an
/// (in)equality once enough of its sides are bound). Formulas whose
/// every variable is guarded by an atom — all formulas in this library —
/// never get stuck.
bool EvalSentence(const PosFormulaPtr& f, const StructureView& view);

/// Evaluates a formula with free variables pre-bound by `env`.
bool EvalWithEnv(const PosFormulaPtr& f, const StructureView& view,
                 const Env& env);

/// Enumerates the answers of an open formula: all assignments of
/// `head` (the answer variables, each free in `f`) that satisfy `f`.
std::set<Tuple> EnumerateAnswers(const PosFormulaPtr& f,
                                 const std::vector<std::string>& head,
                                 const StructureView& view);

/// Convenience: evaluates a boolean query over the kPlain vocabulary on
/// an instance.
bool EvalOnInstance(const PosFormulaPtr& f, const schema::Instance& instance);

/// Convenience: evaluates a SchAcc sentence on a transition (M(t), §2).
bool EvalOnTransition(const PosFormulaPtr& f, const schema::Transition& t);

}  // namespace logic
}  // namespace accltl

#endif  // ACCLTL_LOGIC_EVAL_H_
