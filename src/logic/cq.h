#ifndef ACCLTL_LOGIC_CQ_H_
#define ACCLTL_LOGIC_CQ_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/logic/eval.h"
#include "src/logic/formula.h"
#include "src/logic/structure.h"

namespace accltl {
namespace logic {

/// One relational atom of a conjunctive query.
struct CqAtom {
  PredicateRef pred;
  std::vector<Term> terms;

  friend bool operator==(const CqAtom& a, const CqAtom& b) {
    return a.pred == b.pred && a.terms == b.terms;
  }
  friend bool operator<(const CqAtom& a, const CqAtom& b) {
    if (!(a.pred == b.pred)) return a.pred < b.pred;
    return a.terms < b.terms;
  }
};

/// A conjunctive query with optional inequalities:
///   head(x̄) :- atoms, neqs      (all non-head variables existential)
/// A boolean query has an empty head.
struct Cq {
  std::vector<std::string> head;
  std::vector<CqAtom> atoms;
  /// Inequality side conditions t1 != t2.
  std::vector<std::pair<Term, Term>> neqs;
  /// Head variables identified with each other during normalization
  /// (kept separate so the head keeps its arity).
  std::vector<std::pair<std::string, std::string>> head_eqs;
  /// Head variables forced to a constant during normalization.
  std::vector<std::pair<std::string, Value>> head_consts;

  /// All variables occurring anywhere.
  std::set<std::string> Vars() const;

  /// All constants occurring anywhere.
  std::set<Value> Constants() const;

  bool UsesInequality() const { return !neqs.empty(); }

  /// Rebuilds the equivalent FO∃+(≠) formula (existentially closing all
  /// non-head variables).
  PosFormulaPtr ToFormula() const;

  std::string ToString(const schema::Schema& schema) const;
};

/// A union of conjunctive queries with a shared head.
struct Ucq {
  std::vector<std::string> head;
  std::vector<Cq> disjuncts;

  PosFormulaPtr ToFormula() const;
  bool UsesInequality() const;
  std::string ToString(const schema::Schema& schema) const;
};

/// Converts a positive-existential formula into UCQ normal form, with
/// `head` as the answer variables (must be exactly the free variables).
/// Fails with kResourceExhausted when distributing ∧ over ∨ exceeds
/// `max_disjuncts`.
Result<Ucq> NormalizeToUcq(const PosFormulaPtr& f,
                           const std::vector<std::string>& head,
                           const schema::Schema& schema,
                           size_t max_disjuncts = 100000);

/// Infers the declared type of each variable of the CQ from atom
/// positions. Variables only occurring in (in)equalities against typed
/// terms inherit that type; a variable with conflicting types yields
/// kInvalidArgument.
Result<std::map<std::string, ValueType>> InferVarTypes(
    const Cq& q, const schema::Schema& schema);

/// Produces fresh "labelled-null" values for freezing canonical
/// databases. Fresh values are drawn from a reserved namespace
/// (negative ints below kFreshIntBase; strings prefixed "~") that
/// workloads must not use for real constants.
class FreshValueFactory {
 public:
  static constexpr int64_t kFreshIntBase = -1000000;

  /// Returns a fresh value of the given type, distinct from all values
  /// previously returned by this factory. Booleans cannot be fresh
  /// (two-element domain); they alternate and a warning flag is set.
  Value Fresh(ValueType type);

  /// True iff a boolean fresh value was ever requested (the analyses'
  /// unbounded-domain assumption was violated).
  bool bool_domain_touched() const { return bool_domain_touched_; }

  /// Number of fresh values handed out so far.
  int64_t counter() const { return counter_; }

  /// A factory whose next fresh value has index `counter`. The witness
  /// search derives each node's factory from its *configuration* (the
  /// maximum fresh index occurring in it, via FreshValueIndex), so
  /// equal configurations expand to content-identical subtrees
  /// whatever path produced them.
  static FreshValueFactory StartingAt(int64_t counter) {
    FreshValueFactory f;
    f.counter_ = counter;
    return f;
  }

 private:
  int64_t counter_ = 0;
  bool bool_domain_touched_ = false;
};

/// The index k when `v` has the canonical fresh-value shape this
/// factory emits (Int(kFreshIntBase - k) or Str("~nk")); -1 for every
/// other value. Inverse of Fresh() for bookkeeping: lets a search
/// recover "how many fresh values does this configuration embed".
int64_t FreshValueIndex(const Value& v);

/// A frozen (canonical) database of a CQ: each variable mapped to a
/// fresh value, constants kept.
struct FrozenCq {
  Database db;
  /// Where each variable went.
  std::map<std::string, Value> var_values;
};

/// Freezes `q` into its canonical database (§4.1 uses these throughout).
/// `factory` supplies fresh values so multiple freezes can coexist in
/// one instance without value collisions.
Result<FrozenCq> FreezeCq(const Cq& q, const schema::Schema& schema,
                          FreshValueFactory* factory);

}  // namespace logic
}  // namespace accltl

#endif  // ACCLTL_LOGIC_CQ_H_
