#include "src/logic/cq.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <vector>

#include "src/common/strings.h"

namespace accltl {
namespace logic {

std::set<std::string> Cq::Vars() const {
  std::set<std::string> vars(head.begin(), head.end());
  for (const CqAtom& a : atoms) {
    for (const Term& t : a.terms) {
      if (t.is_var()) vars.insert(t.var_name());
    }
  }
  for (const auto& [l, r] : neqs) {
    if (l.is_var()) vars.insert(l.var_name());
    if (r.is_var()) vars.insert(r.var_name());
  }
  for (const auto& [l, r] : head_eqs) {
    vars.insert(l);
    vars.insert(r);
  }
  for (const auto& [v, c] : head_consts) {
    vars.insert(v);
    (void)c;
  }
  return vars;
}

std::set<Value> Cq::Constants() const {
  std::set<Value> out;
  for (const CqAtom& a : atoms) {
    for (const Term& t : a.terms) {
      if (t.is_const()) out.insert(t.value());
    }
  }
  for (const auto& [l, r] : neqs) {
    if (l.is_const()) out.insert(l.value());
    if (r.is_const()) out.insert(r.value());
  }
  return out;
}

PosFormulaPtr Cq::ToFormula() const {
  std::vector<PosFormulaPtr> conjuncts;
  for (const CqAtom& a : atoms) {
    conjuncts.push_back(PosFormula::MakeAtom(a.pred, a.terms));
  }
  for (const auto& [l, r] : neqs) {
    conjuncts.push_back(PosFormula::Neq(l, r));
  }
  for (const auto& [l, r] : head_eqs) {
    conjuncts.push_back(PosFormula::Eq(Term::Var(l), Term::Var(r)));
  }
  for (const auto& [v, c] : head_consts) {
    conjuncts.push_back(PosFormula::Eq(Term::Var(v), Term::Const(c)));
  }
  PosFormulaPtr body = PosFormula::And(std::move(conjuncts));
  std::set<std::string> head_set(head.begin(), head.end());
  std::vector<std::string> exist;
  for (const std::string& v : Vars()) {
    if (head_set.count(v) == 0) exist.push_back(v);
  }
  return PosFormula::Exists(std::move(exist), std::move(body));
}

std::string Cq::ToString(const schema::Schema& schema) const {
  std::vector<std::string> parts;
  for (const CqAtom& a : atoms) {
    std::vector<std::string> ts;
    ts.reserve(a.terms.size());
    for (const Term& t : a.terms) ts.push_back(t.ToString());
    parts.push_back(PredicateName(a.pred, schema) + "(" + Join(ts, ",") +
                    ")");
  }
  for (const auto& [l, r] : neqs) {
    parts.push_back(l.ToString() + "!=" + r.ToString());
  }
  for (const auto& [l, r] : head_eqs) {
    parts.push_back(l + "=" + r);
  }
  return "(" + Join(head, ",") + ") :- " + Join(parts, ", ");
}

PosFormulaPtr Ucq::ToFormula() const {
  std::vector<PosFormulaPtr> parts;
  parts.reserve(disjuncts.size());
  for (const Cq& q : disjuncts) parts.push_back(q.ToFormula());
  return PosFormula::Or(std::move(parts));
}

bool Ucq::UsesInequality() const {
  return std::any_of(disjuncts.begin(), disjuncts.end(),
                     [](const Cq& q) { return q.UsesInequality(); });
}

std::string Ucq::ToString(const schema::Schema& schema) const {
  std::vector<std::string> parts;
  parts.reserve(disjuncts.size());
  for (const Cq& q : disjuncts) parts.push_back(q.ToString(schema));
  return Join(parts, "\n  UNION ");
}

namespace {

/// A disjunct under construction: atoms plus raw (un-resolved)
/// equalities and inequalities.
struct PartialCq {
  std::vector<CqAtom> atoms;
  std::vector<std::pair<Term, Term>> eqs;
  std::vector<std::pair<Term, Term>> neqs;
};

Term ApplySubst(const std::map<std::string, Term>& subst, const Term& t) {
  if (!t.is_var()) return t;
  auto it = subst.find(t.var_name());
  return it == subst.end() ? t : it->second;
}

/// Recursively flattens into disjuncts; Exists introduces fresh names.
Status Flatten(const PosFormulaPtr& f, std::map<std::string, Term> subst,
               int* counter, size_t max_disjuncts,
               std::vector<PartialCq>* out) {
  switch (f->kind()) {
    case NodeKind::kTrue:
      out->push_back(PartialCq{});
      return Status::OK();
    case NodeKind::kFalse:
      return Status::OK();
    case NodeKind::kAtom: {
      PartialCq p;
      CqAtom a;
      a.pred = f->pred();
      a.terms.reserve(f->terms().size());
      for (const Term& t : f->terms()) a.terms.push_back(ApplySubst(subst, t));
      p.atoms.push_back(std::move(a));
      out->push_back(std::move(p));
      return Status::OK();
    }
    case NodeKind::kEq: {
      PartialCq p;
      p.eqs.emplace_back(ApplySubst(subst, f->lhs()),
                         ApplySubst(subst, f->rhs()));
      out->push_back(std::move(p));
      return Status::OK();
    }
    case NodeKind::kNeq: {
      PartialCq p;
      p.neqs.emplace_back(ApplySubst(subst, f->lhs()),
                          ApplySubst(subst, f->rhs()));
      out->push_back(std::move(p));
      return Status::OK();
    }
    case NodeKind::kAnd: {
      std::vector<PartialCq> acc = {PartialCq{}};
      for (const PosFormulaPtr& c : f->children()) {
        std::vector<PartialCq> child;
        ACCLTL_RETURN_IF_ERROR(
            Flatten(c, subst, counter, max_disjuncts, &child));
        std::vector<PartialCq> next;
        if (acc.size() * child.size() > max_disjuncts) {
          return Status::ResourceExhausted(
              "UCQ normalization exceeded max_disjuncts");
        }
        for (const PartialCq& a : acc) {
          for (const PartialCq& b : child) {
            PartialCq merged = a;
            merged.atoms.insert(merged.atoms.end(), b.atoms.begin(),
                                b.atoms.end());
            merged.eqs.insert(merged.eqs.end(), b.eqs.begin(), b.eqs.end());
            merged.neqs.insert(merged.neqs.end(), b.neqs.begin(),
                               b.neqs.end());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      out->insert(out->end(), acc.begin(), acc.end());
      return Status::OK();
    }
    case NodeKind::kOr: {
      for (const PosFormulaPtr& c : f->children()) {
        ACCLTL_RETURN_IF_ERROR(Flatten(c, subst, counter, max_disjuncts, out));
        if (out->size() > max_disjuncts) {
          return Status::ResourceExhausted(
              "UCQ normalization exceeded max_disjuncts");
        }
      }
      return Status::OK();
    }
    case NodeKind::kExists: {
      for (const std::string& v : f->bound_vars()) {
        subst[v] = Term::Var("v$" + std::to_string((*counter)++));
      }
      return Flatten(f->body(), std::move(subst), counter, max_disjuncts,
                     out);
    }
  }
  return Status::Internal("unknown node kind");
}

/// Union-find over variable names, with an optional constant per class.
class Unifier {
 public:
  std::string Find(const std::string& v) {
    auto it = parent_.find(v);
    if (it == parent_.end()) {
      parent_[v] = v;
      return v;
    }
    if (it->second == v) return v;
    std::string root = Find(it->second);
    parent_[v] = root;
    return root;
  }

  /// Returns false on constant conflict.
  bool UnionVars(const std::string& a, const std::string& b) {
    std::string ra = Find(a), rb = Find(b);
    if (ra == rb) return true;
    parent_[ra] = rb;
    auto ia = const_.find(ra);
    if (ia != const_.end()) {
      Value va = ia->second;
      const_.erase(ia);
      return AssignConst(rb, va);
    }
    return true;
  }

  bool AssignConst(const std::string& v, const Value& value) {
    std::string r = Find(v);
    auto it = const_.find(r);
    if (it != const_.end()) return it->second == value;
    const_[r] = value;
    return true;
  }

  /// Resolved term for a variable: its class constant or class rep var.
  Term Resolve(const std::string& v) {
    std::string r = Find(v);
    auto it = const_.find(r);
    if (it != const_.end()) return Term::Const(it->second);
    return Term::Var(r);
  }

  Term ResolveTerm(const Term& t) {
    return t.is_var() ? Resolve(t.var_name()) : t;
  }

 private:
  std::map<std::string, std::string> parent_;
  std::map<std::string, Value> const_;
};

/// Resolves equalities; returns nullopt when the disjunct is
/// unsatisfiable (constant clash or x != x).
std::optional<Cq> ResolvePartial(const PartialCq& p,
                                 const std::vector<std::string>& head) {
  Unifier u;
  for (const auto& [l, r] : p.eqs) {
    if (l.is_var() && r.is_var()) {
      if (!u.UnionVars(l.var_name(), r.var_name())) return std::nullopt;
    } else if (l.is_var()) {
      if (!u.AssignConst(l.var_name(), r.value())) return std::nullopt;
    } else if (r.is_var()) {
      if (!u.AssignConst(r.var_name(), l.value())) return std::nullopt;
    } else if (l.value() != r.value()) {
      return std::nullopt;
    }
  }
  Cq q;
  q.head = head;
  for (const CqAtom& a : p.atoms) {
    CqAtom resolved;
    resolved.pred = a.pred;
    resolved.terms.reserve(a.terms.size());
    for (const Term& t : a.terms) resolved.terms.push_back(u.ResolveTerm(t));
    q.atoms.push_back(std::move(resolved));
  }
  for (const auto& [l, r] : p.neqs) {
    Term rl = u.ResolveTerm(l), rr = u.ResolveTerm(r);
    if (rl == rr) return std::nullopt;  // x != x is unsatisfiable
    if (rl.is_const() && rr.is_const()) continue;  // distinct consts: true
    q.neqs.emplace_back(std::move(rl), std::move(rr));
  }
  // Head variables must survive as themselves; if a head variable was
  // merged away or set to a constant, record the equation explicitly.
  for (const std::string& h : head) {
    Term r = u.Resolve(h);
    if (r.is_var() && r.var_name() == h) continue;
    if (r.is_var()) {
      q.head_eqs.emplace_back(h, r.var_name());
    } else {
      q.head_consts.emplace_back(h, r.value());
    }
  }
  return q;
}

}  // namespace

Result<Ucq> NormalizeToUcq(const PosFormulaPtr& f,
                           const std::vector<std::string>& head,
                           const schema::Schema& schema,
                           size_t max_disjuncts) {
  (void)schema;
  std::vector<PartialCq> partials;
  int counter = 0;
  std::map<std::string, Term> subst;
  Status s = Flatten(f, subst, &counter, max_disjuncts, &partials);
  if (!s.ok()) return s;
  Ucq ucq;
  ucq.head = head;
  for (const PartialCq& p : partials) {
    std::optional<Cq> q = ResolvePartial(p, head);
    if (q.has_value()) ucq.disjuncts.push_back(std::move(*q));
  }
  return ucq;
}

Result<std::map<std::string, ValueType>> InferVarTypes(
    const Cq& q, const schema::Schema& schema) {
  std::map<std::string, ValueType> types;
  for (const CqAtom& a : q.atoms) {
    for (size_t i = 0; i < a.terms.size(); ++i) {
      if (!a.terms[i].is_var()) continue;
      ValueType t =
          PredicatePositionType(a.pred, static_cast<int>(i), schema);
      auto [it, inserted] = types.emplace(a.terms[i].var_name(), t);
      if (!inserted && it->second != t) {
        return Status::InvalidArgument("variable " + a.terms[i].var_name() +
                                       " used at differently-typed "
                                       "positions");
      }
    }
  }
  // Variables appearing only in (in)equalities inherit the other side's
  // type when available; remaining untyped variables default to kInt.
  for (const auto& [l, r] : q.neqs) {
    if (l.is_var() && types.find(l.var_name()) == types.end()) {
      if (r.is_const()) {
        types[l.var_name()] = r.value().type();
      } else if (r.is_var()) {
        auto it = types.find(r.var_name());
        if (it != types.end()) types[l.var_name()] = it->second;
      }
    }
    if (r.is_var() && types.find(r.var_name()) == types.end()) {
      if (l.is_const()) {
        types[r.var_name()] = l.value().type();
      } else if (l.is_var()) {
        auto it = types.find(l.var_name());
        if (it != types.end()) types[r.var_name()] = it->second;
      }
    }
  }
  for (const std::string& v : q.Vars()) {
    types.emplace(v, ValueType::kInt);
  }
  return types;
}

Value FreshValueFactory::Fresh(ValueType type) {
  int64_t n = counter_++;
  switch (type) {
    case ValueType::kInt:
      return Value::Int(kFreshIntBase - n);
    case ValueType::kString: {
      // The sequence is deterministic in n, and search loops re-request
      // the same prefix over and over — memoize to skip the string
      // build (and keep the interner from re-hashing fresh payloads).
      // The memo's fast path is a lock-free slot array: parallel
      // search workers hammer the low indexes from every thread, and a
      // shared mutex here was a measurable serialization point.
      constexpr size_t kSlots = 4096;
      static std::array<std::atomic<const Value*>, kSlots>* slots = [] {
        auto* a = new std::array<std::atomic<const Value*>, kSlots>();
        for (auto& s : *a) s.store(nullptr, std::memory_order_relaxed);
        return a;
      }();
      if (static_cast<size_t>(n) < kSlots) {
        std::atomic<const Value*>& slot = (*slots)[static_cast<size_t>(n)];
        const Value* v = slot.load(std::memory_order_acquire);
        if (v == nullptr) {
          const Value* fresh =
              new Value(Value::Str("~n" + std::to_string(n)));
          if (slot.compare_exchange_strong(v, fresh,
                                           std::memory_order_acq_rel)) {
            v = fresh;
          } else {
            delete fresh;  // another thread published the same value
          }
        }
        return *v;
      }
      return Value::Str("~n" + std::to_string(n));
    }
    case ValueType::kBool:
      bool_domain_touched_ = true;
      return Value::Bool(n % 2 == 0);
  }
  return Value::Int(kFreshIntBase - n);
}

int64_t FreshValueIndex(const Value& v) {
  if (v.is_int()) {
    int64_t raw = v.AsInt();
    if (raw <= FreshValueFactory::kFreshIntBase) {
      return FreshValueFactory::kFreshIntBase - raw;
    }
    return -1;
  }
  if (v.is_string()) {
    const std::string& s = v.AsString();
    if (s.size() < 3 || s[0] != '~' || s[1] != 'n') return -1;
    int64_t index = 0;
    for (size_t i = 2; i < s.size(); ++i) {
      if (s[i] < '0' || s[i] > '9') return -1;
      index = index * 10 + (s[i] - '0');
    }
    return index;
  }
  return -1;
}

Result<FrozenCq> FreezeCq(const Cq& q, const schema::Schema& schema,
                          FreshValueFactory* factory) {
  Result<std::map<std::string, ValueType>> types = InferVarTypes(q, schema);
  if (!types.ok()) return types.status();
  FrozenCq out;
  for (const auto& [var, type] : types.value()) {
    out.var_values[var] = factory->Fresh(type);
  }
  for (const CqAtom& a : q.atoms) {
    Tuple t;
    t.reserve(a.terms.size());
    for (const Term& term : a.terms) {
      t.push_back(term.is_const() ? term.value()
                                  : out.var_values[term.var_name()]);
    }
    out.db.AddFact(a.pred, std::move(t));
  }
  return out;
}

}  // namespace logic
}  // namespace accltl
