#include "src/logic/formula.h"

#include <algorithm>

#include "src/common/strings.h"

namespace accltl {
namespace logic {

std::shared_ptr<PosFormula> PosFormula::NewNode() {
  // std::make_shared cannot reach the private constructor; plain new
  // inside this private static member can.
  return std::shared_ptr<PosFormula>(new PosFormula());
}

PosFormulaPtr PosFormula::True() {
  static const PosFormulaPtr kTrueNode = [] {
    auto n = NewNode();
    n->kind_ = NodeKind::kTrue;
    return n;
  }();
  return kTrueNode;
}

PosFormulaPtr PosFormula::False() {
  static const PosFormulaPtr kFalseNode = [] {
    auto n = NewNode();
    n->kind_ = NodeKind::kFalse;
    return n;
  }();
  return kFalseNode;
}

PosFormulaPtr PosFormula::MakeAtom(PredicateRef pred,
                                   std::vector<Term> terms) {
  auto n = NewNode();
  n->kind_ = NodeKind::kAtom;
  n->pred_ = pred;
  n->terms_ = std::move(terms);
  return n;
}

PosFormulaPtr PosFormula::Eq(Term lhs, Term rhs) {
  auto n = NewNode();
  n->kind_ = NodeKind::kEq;
  n->lhs_ = std::move(lhs);
  n->rhs_ = std::move(rhs);
  return n;
}

PosFormulaPtr PosFormula::Neq(Term lhs, Term rhs) {
  auto n = NewNode();
  n->kind_ = NodeKind::kNeq;
  n->lhs_ = std::move(lhs);
  n->rhs_ = std::move(rhs);
  return n;
}

PosFormulaPtr PosFormula::And(std::vector<PosFormulaPtr> children) {
  std::vector<PosFormulaPtr> flat;
  for (PosFormulaPtr& c : children) {
    if (c->kind() == NodeKind::kFalse) return False();
    if (c->kind() == NodeKind::kTrue) continue;
    if (c->kind() == NodeKind::kAnd) {
      flat.insert(flat.end(), c->children_.begin(), c->children_.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  auto n = NewNode();
  n->kind_ = NodeKind::kAnd;
  n->children_ = std::move(flat);
  return n;
}

PosFormulaPtr PosFormula::Or(std::vector<PosFormulaPtr> children) {
  std::vector<PosFormulaPtr> flat;
  for (PosFormulaPtr& c : children) {
    if (c->kind() == NodeKind::kTrue) return True();
    if (c->kind() == NodeKind::kFalse) continue;
    if (c->kind() == NodeKind::kOr) {
      flat.insert(flat.end(), c->children_.begin(), c->children_.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return False();
  if (flat.size() == 1) return flat[0];
  auto n = NewNode();
  n->kind_ = NodeKind::kOr;
  n->children_ = std::move(flat);
  return n;
}

PosFormulaPtr PosFormula::Exists(std::vector<std::string> vars,
                                 PosFormulaPtr body) {
  if (vars.empty()) return body;
  if (body->kind() == NodeKind::kExists) {
    vars.insert(vars.end(), body->vars_.begin(), body->vars_.end());
    body = body->body_;
  }
  auto n = NewNode();
  n->kind_ = NodeKind::kExists;
  n->vars_ = std::move(vars);
  n->body_ = std::move(body);
  return n;
}

void PosFormula::CollectFreeVars(std::set<std::string>* bound,
                                 std::set<std::string>* free) const {
  switch (kind_) {
    case NodeKind::kTrue:
    case NodeKind::kFalse:
      return;
    case NodeKind::kAtom:
      for (const Term& t : terms_) {
        if (t.is_var() && bound->count(t.var_name()) == 0) {
          free->insert(t.var_name());
        }
      }
      return;
    case NodeKind::kEq:
    case NodeKind::kNeq:
      for (const Term* t : {&lhs_, &rhs_}) {
        if (t->is_var() && bound->count(t->var_name()) == 0) {
          free->insert(t->var_name());
        }
      }
      return;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      for (const PosFormulaPtr& c : children_) {
        c->CollectFreeVars(bound, free);
      }
      return;
    case NodeKind::kExists: {
      std::vector<std::string> newly;
      for (const std::string& v : vars_) {
        if (bound->insert(v).second) newly.push_back(v);
      }
      body_->CollectFreeVars(bound, free);
      for (const std::string& v : newly) bound->erase(v);
      return;
    }
  }
}

std::set<std::string> PosFormula::FreeVars() const {
  std::set<std::string> bound, free;
  CollectFreeVars(&bound, &free);
  return free;
}

bool PosFormula::UsesInequality() const {
  switch (kind_) {
    case NodeKind::kNeq:
      return true;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      return std::any_of(children_.begin(), children_.end(),
                         [](const PosFormulaPtr& c) {
                           return c->UsesInequality();
                         });
    case NodeKind::kExists:
      return body_->UsesInequality();
    default:
      return false;
  }
}

bool PosFormula::UsesNAryBind() const {
  switch (kind_) {
    case NodeKind::kAtom:
      return pred_.space == PredSpace::kBind && !terms_.empty();
    case NodeKind::kAnd:
    case NodeKind::kOr:
      return std::any_of(children_.begin(), children_.end(),
                         [](const PosFormulaPtr& c) {
                           return c->UsesNAryBind();
                         });
    case NodeKind::kExists:
      return body_->UsesNAryBind();
    default:
      return false;
  }
}

bool PosFormula::UsesBind() const {
  switch (kind_) {
    case NodeKind::kAtom:
      return pred_.space == PredSpace::kBind;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      return std::any_of(
          children_.begin(), children_.end(),
          [](const PosFormulaPtr& c) { return c->UsesBind(); });
    case NodeKind::kExists:
      return body_->UsesBind();
    default:
      return false;
  }
}

bool PosFormula::UsesPlainSpace() const {
  switch (kind_) {
    case NodeKind::kAtom:
      return pred_.space == PredSpace::kPlain;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      return std::any_of(
          children_.begin(), children_.end(),
          [](const PosFormulaPtr& c) { return c->UsesPlainSpace(); });
    case NodeKind::kExists:
      return body_->UsesPlainSpace();
    default:
      return false;
  }
}

std::set<PredicateRef> PosFormula::Predicates() const {
  std::set<PredicateRef> out;
  switch (kind_) {
    case NodeKind::kAtom:
      out.insert(pred_);
      break;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      for (const PosFormulaPtr& c : children_) {
        auto sub = c->Predicates();
        out.insert(sub.begin(), sub.end());
      }
      break;
    case NodeKind::kExists: {
      auto sub = body_->Predicates();
      out.insert(sub.begin(), sub.end());
      break;
    }
    default:
      break;
  }
  return out;
}

std::set<Value> PosFormula::Constants() const {
  std::set<Value> out;
  switch (kind_) {
    case NodeKind::kAtom:
      for (const Term& t : terms_) {
        if (t.is_const()) out.insert(t.value());
      }
      break;
    case NodeKind::kEq:
    case NodeKind::kNeq:
      if (lhs_.is_const()) out.insert(lhs_.value());
      if (rhs_.is_const()) out.insert(rhs_.value());
      break;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      for (const PosFormulaPtr& c : children_) {
        auto sub = c->Constants();
        out.insert(sub.begin(), sub.end());
      }
      break;
    case NodeKind::kExists: {
      auto sub = body_->Constants();
      out.insert(sub.begin(), sub.end());
      break;
    }
    default:
      break;
  }
  return out;
}

bool PosFormula::Equal(const PosFormulaPtr& a, const PosFormulaPtr& b) {
  if (a.get() == b.get()) return true;
  if (a->kind_ != b->kind_) return false;
  switch (a->kind_) {
    case NodeKind::kTrue:
    case NodeKind::kFalse:
      return true;
    case NodeKind::kAtom:
      return a->pred_ == b->pred_ && a->terms_ == b->terms_;
    case NodeKind::kEq:
    case NodeKind::kNeq:
      return a->lhs_ == b->lhs_ && a->rhs_ == b->rhs_;
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      if (a->children_.size() != b->children_.size()) return false;
      for (size_t i = 0; i < a->children_.size(); ++i) {
        if (!Equal(a->children_[i], b->children_[i])) return false;
      }
      return true;
    }
    case NodeKind::kExists:
      return a->vars_ == b->vars_ && Equal(a->body_, b->body_);
  }
  return false;
}

std::string PosFormula::ToString(const schema::Schema& schema) const {
  switch (kind_) {
    case NodeKind::kTrue:
      return "TRUE";
    case NodeKind::kFalse:
      return "FALSE";
    case NodeKind::kAtom: {
      std::vector<std::string> parts;
      parts.reserve(terms_.size());
      for (const Term& t : terms_) parts.push_back(t.ToString());
      return PredicateName(pred_, schema) + "(" + Join(parts, ", ") + ")";
    }
    case NodeKind::kEq:
      return lhs_.ToString() + " = " + rhs_.ToString();
    case NodeKind::kNeq:
      return lhs_.ToString() + " != " + rhs_.ToString();
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const PosFormulaPtr& c : children_) {
        parts.push_back("(" + c->ToString(schema) + ")");
      }
      return Join(parts, kind_ == NodeKind::kAnd ? " AND " : " OR ");
    }
    case NodeKind::kExists:
      return "EXISTS " + Join(vars_, ", ") + " . (" +
             body_->ToString(schema) + ")";
  }
  return "?";
}

Status PosFormula::Validate(const schema::Schema& schema) const {
  switch (kind_) {
    case NodeKind::kAtom: {
      if (pred_.space == PredSpace::kBind) {
        if (pred_.id < 0 || pred_.id >= schema.num_access_methods()) {
          return Status::InvalidArgument("bind predicate: bad method id");
        }
        // 0 terms = the 0-ary vocabulary Sch0−Acc; otherwise full arity.
        int want = schema.method(pred_.id).num_inputs();
        if (!terms_.empty() && static_cast<int>(terms_.size()) != want) {
          return Status::InvalidArgument(
              "IsBind arity mismatch for method " +
              schema.method(pred_.id).name);
        }
      } else {
        if (pred_.id < 0 || pred_.id >= schema.num_relations()) {
          return Status::InvalidArgument("relation predicate: bad id");
        }
        if (static_cast<int>(terms_.size()) !=
            schema.relation(pred_.id).arity()) {
          return Status::InvalidArgument(
              "atom arity mismatch for " + schema.relation(pred_.id).name);
        }
      }
      for (size_t i = 0; i < terms_.size(); ++i) {
        if (terms_[i].is_const()) {
          ValueType want =
              PredicatePositionType(pred_, static_cast<int>(i), schema);
          if (terms_[i].value().type() != want) {
            return Status::InvalidArgument(
                "constant type mismatch in atom " +
                PredicateName(pred_, schema));
          }
        }
      }
      return Status::OK();
    }
    case NodeKind::kAnd:
    case NodeKind::kOr:
      for (const PosFormulaPtr& c : children_) {
        ACCLTL_RETURN_IF_ERROR(c->Validate(schema));
      }
      return Status::OK();
    case NodeKind::kExists:
      return body_->Validate(schema);
    default:
      return Status::OK();
  }
}

PosFormulaPtr ShiftPlainSpace(const PosFormulaPtr& f, PredSpace target) {
  switch (f->kind()) {
    case NodeKind::kAtom: {
      if (f->pred().space == PredSpace::kPlain) {
        return PosFormula::MakeAtom(PredicateRef{target, f->pred().id},
                                    f->terms());
      }
      return f;
    }
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::vector<PosFormulaPtr> kids;
      kids.reserve(f->children().size());
      for (const PosFormulaPtr& c : f->children()) {
        kids.push_back(ShiftPlainSpace(c, target));
      }
      return f->kind() == NodeKind::kAnd ? PosFormula::And(std::move(kids))
                                         : PosFormula::Or(std::move(kids));
    }
    case NodeKind::kExists:
      return PosFormula::Exists(f->bound_vars(),
                                ShiftPlainSpace(f->body(), target));
    default:
      return f;
  }
}

namespace {

Term RenameTerm(const Term& t, const std::string& prefix) {
  return t.is_var() ? Term::Var(prefix + t.var_name()) : t;
}

}  // namespace

PosFormulaPtr RenameVars(const PosFormulaPtr& f, const std::string& prefix) {
  switch (f->kind()) {
    case NodeKind::kAtom: {
      std::vector<Term> terms;
      terms.reserve(f->terms().size());
      for (const Term& t : f->terms()) terms.push_back(RenameTerm(t, prefix));
      return PosFormula::MakeAtom(f->pred(), std::move(terms));
    }
    case NodeKind::kEq:
      return PosFormula::Eq(RenameTerm(f->lhs(), prefix),
                            RenameTerm(f->rhs(), prefix));
    case NodeKind::kNeq:
      return PosFormula::Neq(RenameTerm(f->lhs(), prefix),
                             RenameTerm(f->rhs(), prefix));
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::vector<PosFormulaPtr> kids;
      kids.reserve(f->children().size());
      for (const PosFormulaPtr& c : f->children()) {
        kids.push_back(RenameVars(c, prefix));
      }
      return f->kind() == NodeKind::kAnd ? PosFormula::And(std::move(kids))
                                         : PosFormula::Or(std::move(kids));
    }
    case NodeKind::kExists: {
      std::vector<std::string> vars;
      vars.reserve(f->bound_vars().size());
      for (const std::string& v : f->bound_vars()) vars.push_back(prefix + v);
      return PosFormula::Exists(std::move(vars),
                                RenameVars(f->body(), prefix));
    }
    default:
      return f;
  }
}

}  // namespace logic
}  // namespace accltl
