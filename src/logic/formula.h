#ifndef ACCLTL_LOGIC_FORMULA_H_
#define ACCLTL_LOGIC_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/logic/predicate.h"
#include "src/logic/term.h"

namespace accltl {
namespace logic {

/// Node kinds of the positive-existential tier FO∃+ (optionally with
/// inequalities, §5.1). There is deliberately no negation node: the
/// paper's lower-tier languages are positive; negation lives in the
/// temporal tier (AccLTL) or in automaton guards (ψ− parts).
enum class NodeKind {
  kTrue,
  kFalse,
  kAtom,    // R_pre(x, "a", y) / IsBind_AcM(x) / IsBind_AcM() [0-ary]
  kEq,      // t1 = t2
  kNeq,     // t1 != t2   (only in the ≠ extensions)
  kAnd,
  kOr,
  kExists,  // EXISTS x, y . body
};

class PosFormula;
/// Formulas are immutable and shared; copying a pointer is O(1).
using PosFormulaPtr = std::shared_ptr<const PosFormula>;

/// An FO∃+(≠) formula over SchAcc or the plain schema vocabulary.
///
/// Build with the static factories:
///   auto f = PosFormula::Exists({"n"},
///       PosFormula::MakeAtom(Bind(acm1), {Term::Var("n")}));
class PosFormula {
 public:
  static PosFormulaPtr True();
  static PosFormulaPtr False();
  static PosFormulaPtr MakeAtom(PredicateRef pred, std::vector<Term> terms);
  static PosFormulaPtr Eq(Term lhs, Term rhs);
  static PosFormulaPtr Neq(Term lhs, Term rhs);
  /// Conjunction; flattens nested Ands and absorbs True/False.
  static PosFormulaPtr And(std::vector<PosFormulaPtr> children);
  /// Disjunction; flattens nested Ors and absorbs True/False.
  static PosFormulaPtr Or(std::vector<PosFormulaPtr> children);
  /// Existential quantification; merges directly nested Exists.
  static PosFormulaPtr Exists(std::vector<std::string> vars,
                              PosFormulaPtr body);

  NodeKind kind() const { return kind_; }

  // kAtom accessors.
  const PredicateRef& pred() const { return pred_; }
  const std::vector<Term>& terms() const { return terms_; }

  // kEq / kNeq accessors.
  const Term& lhs() const { return lhs_; }
  const Term& rhs() const { return rhs_; }

  // kAnd / kOr accessors.
  const std::vector<PosFormulaPtr>& children() const { return children_; }

  // kExists accessors.
  const std::vector<std::string>& bound_vars() const { return vars_; }
  const PosFormulaPtr& body() const { return body_; }

  /// Free variables of the formula.
  std::set<std::string> FreeVars() const;

  /// True iff the formula has no free variables (is a sentence).
  bool IsSentence() const { return FreeVars().empty(); }

  /// True iff some kNeq node occurs (the ≠ extensions of §5.1).
  bool UsesInequality() const;

  /// True iff some IsBind atom occurs with a non-empty term list, i.e.
  /// the formula needs the full SchAcc vocabulary rather than Sch0−Acc
  /// (§4.2).
  bool UsesNAryBind() const;

  /// True iff some IsBind atom occurs at all (any arity).
  bool UsesBind() const;

  /// True iff some atom lies in the kPlain space (ordinary query) —
  /// such formulas are queries over instances, not transitions.
  bool UsesPlainSpace() const;

  /// All predicates occurring in the formula.
  std::set<PredicateRef> Predicates() const;

  /// All constants occurring in the formula.
  std::set<Value> Constants() const;

  /// Structural equality.
  static bool Equal(const PosFormulaPtr& a, const PosFormulaPtr& b);

  /// Renders using predicate names from `schema`.
  std::string ToString(const schema::Schema& schema) const;

  /// Validates arities and position types of all atoms against `schema`,
  /// assuming atoms are in the spaces allowed by `allow_plain` /
  /// `allow_transition` (pre/post/bind).
  Status Validate(const schema::Schema& schema) const;

 private:
  PosFormula() = default;

  static std::shared_ptr<PosFormula> NewNode();

  void CollectFreeVars(std::set<std::string>* bound,
                       std::set<std::string>* free) const;

  NodeKind kind_ = NodeKind::kTrue;
  PredicateRef pred_;
  std::vector<Term> terms_;
  Term lhs_, rhs_;
  std::vector<PosFormulaPtr> children_;
  std::vector<std::string> vars_;
  PosFormulaPtr body_;
};

/// Rewrites every kPlain atom into `target` space (kPre or kPost):
/// the Qpre / Qpost operation of Example 2.2.
PosFormulaPtr ShiftPlainSpace(const PosFormulaPtr& f, PredSpace target);

/// Renames every variable v occurring (bound or free) to prefix+v.
/// Used to rename formulas apart before combining them.
PosFormulaPtr RenameVars(const PosFormulaPtr& f, const std::string& prefix);

}  // namespace logic
}  // namespace accltl

#endif  // ACCLTL_LOGIC_FORMULA_H_
