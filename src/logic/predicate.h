#ifndef ACCLTL_LOGIC_PREDICATE_H_
#define ACCLTL_LOGIC_PREDICATE_H_

#include <string>

#include "src/schema/schema.h"

namespace accltl {
namespace logic {

/// The vocabulary spaces of SchAcc (§2). `kPlain` is the base schema
/// vocabulary used by ordinary queries Q; `kPre`/`kPost` are the
/// before/after copies Rpre/Rpost of each schema relation; `kBind` is
/// the per-access-method binding predicate IsBind_AcM.
enum class PredSpace {
  kPlain = 0,
  kPre = 1,
  kPost = 2,
  kBind = 3,
};

/// A reference into the vocabulary: a space plus the relation id
/// (kPlain/kPre/kPost) or access-method id (kBind).
struct PredicateRef {
  PredSpace space = PredSpace::kPlain;
  int id = 0;

  friend bool operator==(const PredicateRef& a, const PredicateRef& b) {
    return a.space == b.space && a.id == b.id;
  }
  friend bool operator!=(const PredicateRef& a, const PredicateRef& b) {
    return !(a == b);
  }
  friend bool operator<(const PredicateRef& a, const PredicateRef& b) {
    if (a.space != b.space) return a.space < b.space;
    return a.id < b.id;
  }
};

inline PredicateRef Plain(schema::RelationId r) {
  return PredicateRef{PredSpace::kPlain, r};
}
inline PredicateRef Pre(schema::RelationId r) {
  return PredicateRef{PredSpace::kPre, r};
}
inline PredicateRef Post(schema::RelationId r) {
  return PredicateRef{PredSpace::kPost, r};
}
inline PredicateRef Bind(schema::AccessMethodId m) {
  return PredicateRef{PredSpace::kBind, m};
}

/// Arity of the predicate under `schema`. Bind predicates have the
/// method's number of input positions; note the 0-ary *vocabulary*
/// Sch0−Acc (§4.2) is expressed by writing a bind atom with an empty
/// term list, not by a different PredicateRef.
int PredicateArity(const PredicateRef& pred, const schema::Schema& schema);

/// Declared type of position `i` (for bind predicates: the type of the
/// i-th input position of the method's relation).
ValueType PredicatePositionType(const PredicateRef& pred, int i,
                                const schema::Schema& schema);

/// Human-readable name, e.g. "Mobile_pre", "IsBind_AcM1".
std::string PredicateName(const PredicateRef& pred,
                          const schema::Schema& schema);

}  // namespace logic
}  // namespace accltl

#endif  // ACCLTL_LOGIC_PREDICATE_H_
