#ifndef ACCLTL_LOGIC_PARSER_H_
#define ACCLTL_LOGIC_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/logic/formula.h"

namespace accltl {
namespace logic {

/// Parses a textual FO∃+(≠) formula against a schema's vocabulary.
///
/// Grammar (whitespace-insensitive, keywords uppercase):
///   formula  := 'EXISTS' var (',' var)* '.' formula | disjunct
///   disjunct := conjunct ('OR' conjunct)*
///   conjunct := unit ('AND' unit)*
///   unit     := '(' formula ')' | 'TRUE' | 'FALSE'
///             | pred '(' [term (',' term)*] ')'
///             | term ('=' | '!=') term
///   pred     := Name            (plain schema relation)
///             | Name '_pre' | Name '_post'
///             | 'IsBind_' MethodName
///   term     := identifier starting lowercase        (variable)
///             | '"' chars '"'                        (string constant)
///             | ['-'] digits                         (int constant)
///             | 'true' | 'false'                     (bool constant)
///
/// Examples:
///   EXISTS n, p . Mobile_pre(n, p, s, ph) AND IsBind_AcM1(n)
///   EXISTS x . R(x, "Jones") AND x != 3
Result<PosFormulaPtr> ParseFormula(const std::string& text,
                                   const schema::Schema& schema);

}  // namespace logic
}  // namespace accltl

#endif  // ACCLTL_LOGIC_PARSER_H_
