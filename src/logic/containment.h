#ifndef ACCLTL_LOGIC_CONTAINMENT_H_
#define ACCLTL_LOGIC_CONTAINMENT_H_

#include <map>
#include <string>

#include "src/common/status.h"
#include "src/logic/cq.h"

namespace accltl {
namespace logic {

/// Classical query containment over all databases (no access patterns —
/// that variant lives in analysis/containment_ap.h).
///
/// For ≠-free queries this is the Chandra–Merlin homomorphism test
/// (freeze the left query, evaluate the right one). With inequalities we
/// use Klug's method: enumerate all identifications of the left
/// disjunct's variables (merging variables with each other and with the
/// constants occurring in either query) consistent with its ≠ atoms, and
/// require the right query to hold on every collapsed canonical
/// database. Exponential in the number of left-hand variables; exact.

/// Is q1 ⊆ q2? Heads must have equal arity.
Result<bool> CqContained(const Cq& q1, const Cq& q2,
                         const schema::Schema& schema);

/// Is q1 ⊆ Q2 (a union)?
Result<bool> CqContainedInUcq(const Cq& q1, const Ucq& q2,
                              const schema::Schema& schema);

/// Is Q1 ⊆ Q2? (disjunct-wise: every disjunct of Q1 contained in Q2).
Result<bool> UcqContained(const Ucq& q1, const Ucq& q2,
                          const schema::Schema& schema);

/// Is the sentence `f1` contained in sentence `f2` (i.e. every structure
/// satisfying f1 satisfies f2)? Both are normalized to UCQs first.
Result<bool> SentenceContained(const PosFormulaPtr& f1,
                               const PosFormulaPtr& f2,
                               const schema::Schema& schema);

/// Does a homomorphism from `q` into `db` exist that extends `seed`
/// (mapping of q's variables to values) and satisfies q's ≠ atoms?
bool HomomorphismExists(const Cq& q, const Database& db, const Env& seed);

}  // namespace logic
}  // namespace accltl

#endif  // ACCLTL_LOGIC_CONTAINMENT_H_
