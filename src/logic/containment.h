#ifndef ACCLTL_LOGIC_CONTAINMENT_H_
#define ACCLTL_LOGIC_CONTAINMENT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/logic/cq.h"

namespace accltl {
namespace logic {

/// Classical query containment over all databases (no access patterns —
/// that variant lives in analysis/containment_ap.h).
///
/// For ≠-free queries this is the Chandra–Merlin homomorphism test
/// (freeze the left query, evaluate the right one). With inequalities we
/// use Klug's method: enumerate all identifications of the left
/// disjunct's variables (merging variables with each other and with the
/// constants occurring in either query) consistent with its ≠ atoms, and
/// require the right query to hold on every collapsed canonical
/// database. Exponential in the number of left-hand variables; exact.

/// Is q1 ⊆ q2? Heads must have equal arity.
Result<bool> CqContained(const Cq& q1, const Cq& q2,
                         const schema::Schema& schema);

/// Is q1 ⊆ Q2 (a union)?
Result<bool> CqContainedInUcq(const Cq& q1, const Ucq& q2,
                              const schema::Schema& schema);

/// Is Q1 ⊆ Q2? (disjunct-wise: every disjunct of Q1 contained in Q2).
Result<bool> UcqContained(const Ucq& q1, const Ucq& q2,
                          const schema::Schema& schema);

/// Is the sentence `f1` contained in sentence `f2` (i.e. every structure
/// satisfying f1 satisfies f2)? Both are normalized to UCQs first
/// (kResourceExhausted past `max_disjuncts`).
Result<bool> SentenceContained(const PosFormulaPtr& f1,
                               const PosFormulaPtr& f2,
                               const schema::Schema& schema,
                               size_t max_disjuncts = 100000);

/// A bijective variable renaming r (q1 variable -> q2 variable)
/// witnessing syntactic identity up to renaming.
using VarRenaming = std::map<std::string, std::string>;

/// Is q2 exactly q1 with variables renamed bijectively? Atoms are
/// matched as multisets (conjunct order is immaterial), ≠ side
/// conditions as unordered-pair multisets, heads positionally.
/// Returns the witness renaming when one exists, nullopt otherwise.
/// Exact for the "is a renaming" question; strictly finer than
/// semantic equivalence (renaming-equivalent ⇒ equivalent, never the
/// converse), which is what makes it a sound, cheap fast path for
/// verdict transfer. Queries beyond `max_atoms` atoms answer nullopt
/// (don't know) instead of risking factorial backtracking.
std::optional<VarRenaming> CqEquivalentUpToRenaming(const Cq& q1,
                                                    const Cq& q2,
                                                    size_t max_atoms = 16);

/// Renaming-witness equivalence of sentences: both sides are
/// normalized to UCQ and the disjunct sets matched one-to-one, each
/// pair related by a (per-disjunct) bijective variable renaming.
/// `witness`, when non-null, receives one renaming per f1 disjunct in
/// f1's disjunct order. Returns ok(false) when no such matching is
/// found — a "don't know", not a refutation: the sentences may still
/// be semantically equivalent via SentenceContained both ways.
/// Normalization past `max_disjuncts` is kResourceExhausted.
Result<bool> SentenceEquivalentUpToRenaming(
    const PosFormulaPtr& f1, const PosFormulaPtr& f2,
    const schema::Schema& schema,
    std::vector<VarRenaming>* witness = nullptr,
    size_t max_disjuncts = 256);

/// Does a homomorphism from `q` into `db` exist that extends `seed`
/// (mapping of q's variables to values) and satisfies q's ≠ atoms?
bool HomomorphismExists(const Cq& q, const Database& db, const Env& seed);

}  // namespace logic
}  // namespace accltl

#endif  // ACCLTL_LOGIC_CONTAINMENT_H_
