#include "src/logic/structure.h"

namespace accltl {
namespace logic {

std::string Database::ToString(const schema::Schema& schema) const {
  std::string out;
  for (const auto& [pred, tuples] : rels_) {
    for (const Tuple& t : tuples) {
      out += PredicateName(pred, schema) + TupleToString(t) + "\n";
    }
  }
  return out;
}

}  // namespace logic
}  // namespace accltl
