#include "src/logic/eval.h"

#include <cassert>
#include <functional>

#include "src/store/fact_store.h"

namespace accltl {
namespace logic {

namespace {

/// Continuation: invoked when the current subgoal is satisfied; returns
/// true to stop the search (overall success), false to keep enumerating.
using Cont = std::function<bool()>;

class Evaluator {
 public:
  explicit Evaluator(const StructureView& view) : view_(view) {}

  bool Eval(const PosFormula* f, Env* env, const Cont& k) {
    switch (f->kind()) {
      case NodeKind::kTrue:
        return k();
      case NodeKind::kFalse:
        return false;
      case NodeKind::kAtom:
        return EvalAtom(f, env, k);
      case NodeKind::kEq:
        return EvalEq(f, env, k);
      case NodeKind::kNeq:
        return EvalNeq(f, env, k);
      case NodeKind::kAnd:
        return EvalAnd(f->children(), env, k);
      case NodeKind::kOr: {
        for (const PosFormulaPtr& c : f->children()) {
          if (Eval(c.get(), env, k)) return true;
        }
        return false;
      }
      case NodeKind::kExists: {
        // Shadow the quantified variables, evaluate, then restore.
        std::vector<std::pair<std::string, std::optional<Value>>> saved;
        for (const std::string& v : f->bound_vars()) {
          auto it = env->find(v);
          if (it != env->end()) {
            saved.emplace_back(v, it->second);
            env->erase(it);
          } else {
            saved.emplace_back(v, std::nullopt);
          }
        }
        bool res = Eval(f->body().get(), env, [&] {
          // Inner bindings of the quantified variables must not leak
          // into the continuation's view of the outer scope; but since
          // the continuation runs *inside* the quantifier semantics
          // (ψ holds for these witnesses), we keep them while k runs.
          return k();
        });
        for (auto& [v, old] : saved) {
          env->erase(v);
          if (old.has_value()) (*env)[v] = *old;
        }
        return res;
      }
    }
    return false;
  }

 private:
  bool TermValue(const Term& t, const Env& env, Value* out) const {
    if (t.is_const()) {
      *out = t.value();
      return true;
    }
    auto it = env.find(t.var_name());
    if (it == env.end()) return false;
    *out = it->second;
    return true;
  }

  bool EvalAtom(const PosFormula* f, Env* env, const Cont& k) {
    const PredicateRef& pred = f->pred();
    // 0-ary IsBind proposition (Sch0−Acc, §4.2): an IsBind atom written
    // with no terms for a method that has input positions.
    if (pred.space == PredSpace::kBind && f->terms().empty()) {
      bool holds = view_.MethodUsed(pred.id) ||
                   view_.GetTuples(pred).Contains(Tuple{});
      return holds ? k() : false;
    }
    auto try_tuple = [&](const Tuple& tuple) -> bool {
      if (tuple.size() != f->terms().size()) return false;
      std::vector<std::string> newly_bound;
      bool match = true;
      for (size_t i = 0; i < tuple.size(); ++i) {
        const Term& t = f->terms()[i];
        Value bound;
        if (TermValue(t, *env, &bound)) {
          if (bound != tuple[i]) {
            match = false;
            break;
          }
        } else {
          (*env)[t.var_name()] = tuple[i];
          newly_bound.push_back(t.var_name());
        }
      }
      if (match && k()) return true;
      for (const std::string& v : newly_bound) env->erase(v);
      return false;
    };
    // Indexed path: when some term is already fixed (a constant or an
    // env-bound variable) and the view serves a match index for this
    // predicate, enumerate only the tuples agreeing at that position.
    // Index order is fact-id (= GetTuples) order, and mismatching
    // tuples in the scan have no side effects, so both paths enumerate
    // identical matches in identical order.
    for (size_t i = 0; i < f->terms().size(); ++i) {
      Value bound;
      if (!TermValue(f->terms()[i], *env, &bound)) continue;
      const std::vector<store::FactId>* ids = view_.FactIdIndex(
          pred, static_cast<int>(i), store::Store::Get().TryFindValue(bound));
      if (ids == nullptr) break;  // no index for this predicate: scan
      const store::Store& store = store::Store::Get();
      for (store::FactId id : *ids) {
        if (try_tuple(store.tuple(id))) return true;
      }
      return false;
    }
    store::TupleRange tuples = view_.GetTuples(pred);
    for (const Tuple& tuple : tuples) {
      if (try_tuple(tuple)) return true;
    }
    return false;
  }

  bool EvalEq(const PosFormula* f, Env* env, const Cont& k) {
    Value l, r;
    bool lb = TermValue(f->lhs(), *env, &l);
    bool rb = TermValue(f->rhs(), *env, &r);
    if (lb && rb) return l == r ? k() : false;
    if (lb && !rb) {
      (*env)[f->rhs().var_name()] = l;
      bool res = k();
      env->erase(f->rhs().var_name());
      return res;
    }
    if (!lb && rb) {
      (*env)[f->lhs().var_name()] = r;
      bool res = k();
      env->erase(f->lhs().var_name());
      return res;
    }
    // Both sides unbound: an unguarded equality. Formulas built by this
    // library are range-restricted, so this indicates misuse.
    assert(false && "equality over two unbound variables");
    return false;
  }

  bool EvalNeq(const PosFormula* f, Env* env, const Cont& k) {
    Value l, r;
    bool lb = TermValue(f->lhs(), *env, &l);
    bool rb = TermValue(f->rhs(), *env, &r);
    assert(lb && rb && "inequality over unbound variables");
    if (!lb || !rb) return false;
    return l != r ? k() : false;
  }

  /// Readiness-ordered conjunction: runs atoms and nested formulas
  /// first, (in)equalities as soon as their variables are bound.
  bool EvalAnd(const std::vector<PosFormulaPtr>& children, Env* env,
               const Cont& k) {
    std::vector<const PosFormula*> ordered;
    std::vector<const PosFormula*> eqs, neqs;
    for (const PosFormulaPtr& c : children) {
      switch (c->kind()) {
        case NodeKind::kEq:
          eqs.push_back(c.get());
          break;
        case NodeKind::kNeq:
          neqs.push_back(c.get());
          break;
        default:
          ordered.push_back(c.get());
          break;
      }
    }
    ordered.insert(ordered.end(), eqs.begin(), eqs.end());
    ordered.insert(ordered.end(), neqs.begin(), neqs.end());
    std::function<bool(size_t)> chain = [&](size_t i) -> bool {
      if (i == ordered.size()) return k();
      return Eval(ordered[i], env, [&, i] { return chain(i + 1); });
    };
    return chain(0);
  }

  const StructureView& view_;
};

}  // namespace

bool EvalSentence(const PosFormulaPtr& f, const StructureView& view) {
  assert(f->IsSentence() && "EvalSentence requires a closed formula");
  Env env;
  Evaluator ev(view);
  return ev.Eval(f.get(), &env, [] { return true; });
}

bool EvalWithEnv(const PosFormulaPtr& f, const StructureView& view,
                 const Env& env) {
  Env working = env;
  Evaluator ev(view);
  return ev.Eval(f.get(), &working, [] { return true; });
}

std::set<Tuple> EnumerateAnswers(const PosFormulaPtr& f,
                                 const std::vector<std::string>& head,
                                 const StructureView& view) {
  std::set<Tuple> answers;
  Env env;
  Evaluator ev(view);
  ev.Eval(f.get(), &env, [&]() -> bool {
    Tuple row;
    row.reserve(head.size());
    for (const std::string& v : head) {
      auto it = env.find(v);
      if (it == env.end()) return false;  // head var unbound: skip
      row.push_back(it->second);
    }
    answers.insert(std::move(row));
    return false;  // keep enumerating
  });
  return answers;
}

bool EvalOnInstance(const PosFormulaPtr& f,
                    const schema::Instance& instance) {
  InstanceView view(instance);
  return EvalSentence(f, view);
}

bool EvalOnTransition(const PosFormulaPtr& f, const schema::Transition& t) {
  TransitionView view(t);
  return EvalSentence(f, view);
}

}  // namespace logic
}  // namespace accltl
