#include "src/logic/containment.h"

#include <functional>

#include <algorithm>
#include <cassert>
#include <optional>
#include <vector>

namespace accltl {
namespace logic {

bool HomomorphismExists(const Cq& q, const Database& db, const Env& seed) {
  DatabaseView view(db);
  return EvalWithEnv(q.ToFormula(), view, seed);
}

namespace {

/// One identification of the left query's variables: a partition of the
/// variables where each block is either "generic" (a fresh value) or
/// pinned to one constant.
struct Identification {
  /// Variable -> value under this identification.
  std::map<std::string, Value> assignment;
};

/// Enumerates identifications of `vars` (restricted-growth partitions),
/// each block optionally pinned to a type-compatible constant from
/// `const_pool`, and calls `fn` for each. `fn` returning true stops the
/// enumeration (a counterexample was found).
class IdentificationEnumerator {
 public:
  IdentificationEnumerator(std::vector<std::string> vars,
                           std::map<std::string, ValueType> types,
                           std::vector<Value> const_pool)
      : vars_(std::move(vars)),
        types_(std::move(types)),
        const_pool_(std::move(const_pool)) {}

  /// Returns true iff `fn` returned true for some identification.
  bool ForEach(const std::function<bool(const Identification&)>& fn) {
    block_of_.assign(vars_.size(), 0);
    return Rec(0, 0, fn);
  }

 private:
  bool Rec(size_t i, int num_blocks,
           const std::function<bool(const Identification&)>& fn) {
    if (i == vars_.size()) return EmitBlocks(num_blocks, fn);
    for (int b = 0; b <= num_blocks; ++b) {
      block_of_[i] = b;
      if (Rec(i + 1, std::max(num_blocks, b + 1), fn)) return true;
    }
    return false;
  }

  /// For a fixed partition, enumerate the pinning of each block to
  /// "fresh" or to one constant, and emit assignments.
  bool EmitBlocks(int num_blocks,
                  const std::function<bool(const Identification&)>& fn) {
    // Type of each block: all member variables must agree.
    std::vector<std::optional<ValueType>> block_type(
        static_cast<size_t>(num_blocks));
    for (size_t i = 0; i < vars_.size(); ++i) {
      auto it = types_.find(vars_[i]);
      if (it == types_.end()) continue;
      auto& bt = block_type[static_cast<size_t>(block_of_[i])];
      if (!bt.has_value()) {
        bt = it->second;
      } else if (*bt != it->second) {
        return false;  // type clash: partition impossible
      }
    }
    std::vector<std::optional<Value>> pin(static_cast<size_t>(num_blocks));
    return PinRec(0, num_blocks, block_type, &pin, fn);
  }

  bool PinRec(int b, int num_blocks,
              const std::vector<std::optional<ValueType>>& block_type,
              std::vector<std::optional<Value>>* pin,
              const std::function<bool(const Identification&)>& fn) {
    if (b == num_blocks) {
      Identification id;
      FreshValueFactory factory;
      std::vector<Value> block_value(static_cast<size_t>(num_blocks));
      for (int k = 0; k < num_blocks; ++k) {
        const auto& p = (*pin)[static_cast<size_t>(k)];
        if (p.has_value()) {
          block_value[static_cast<size_t>(k)] = *p;
        } else {
          ValueType t = block_type[static_cast<size_t>(k)].value_or(
              ValueType::kInt);
          block_value[static_cast<size_t>(k)] = factory.Fresh(t);
        }
      }
      for (size_t i = 0; i < vars_.size(); ++i) {
        id.assignment[vars_[i]] =
            block_value[static_cast<size_t>(block_of_[i])];
      }
      return fn(id);
    }
    // Option 1: generic (fresh value).
    (*pin)[static_cast<size_t>(b)] = std::nullopt;
    if (PinRec(b + 1, num_blocks, block_type, pin, fn)) return true;
    // Option 2: one of the type-compatible constants.
    for (const Value& c : const_pool_) {
      const auto& bt = block_type[static_cast<size_t>(b)];
      if (bt.has_value() && c.type() != *bt) continue;
      (*pin)[static_cast<size_t>(b)] = c;
      if (PinRec(b + 1, num_blocks, block_type, pin, fn)) return true;
    }
    (*pin)[static_cast<size_t>(b)] = std::nullopt;
    return false;
  }

  std::vector<std::string> vars_;
  std::map<std::string, ValueType> types_;
  std::vector<Value> const_pool_;
  std::vector<int> block_of_;
};

/// Does the identification satisfy all ≠ atoms of `q`?
bool NeqsHold(const Cq& q, const std::map<std::string, Value>& assignment) {
  auto value_of = [&](const Term& t) -> Value {
    if (t.is_const()) return t.value();
    auto it = assignment.find(t.var_name());
    assert(it != assignment.end());
    return it->second;
  };
  for (const auto& [l, r] : q.neqs) {
    if (value_of(l) == value_of(r)) return false;
  }
  for (const auto& [l, r] : q.head_eqs) {
    if (assignment.at(l) != assignment.at(r)) return false;
  }
  for (const auto& [v, c] : q.head_consts) {
    if (assignment.at(v) != c) return false;
  }
  return true;
}

/// Builds the database of `q` under `assignment`.
Database Collapse(const Cq& q,
                  const std::map<std::string, Value>& assignment) {
  Database db;
  for (const CqAtom& a : q.atoms) {
    Tuple t;
    t.reserve(a.terms.size());
    for (const Term& term : a.terms) {
      t.push_back(term.is_const() ? term.value()
                                  : assignment.at(term.var_name()));
    }
    db.AddFact(a.pred, std::move(t));
  }
  return db;
}

/// Does some disjunct of `rhs` hold on `db` with the given head values?
bool RhsHolds(const Ucq& rhs, const Database& db, const Tuple& head_values) {
  DatabaseView view(db);
  for (const Cq& d : rhs.disjuncts) {
    Env seed;
    bool arity_ok = d.head.size() == head_values.size();
    assert(arity_ok);
    if (!arity_ok) continue;
    bool consistent = true;
    for (size_t i = 0; i < d.head.size(); ++i) {
      auto [it, inserted] = seed.emplace(d.head[i], head_values[i]);
      if (!inserted && it->second != head_values[i]) {
        consistent = false;
        break;
      }
    }
    if (!consistent) continue;
    if (EvalWithEnv(d.ToFormula(), view, seed)) return true;
  }
  return false;
}

}  // namespace

Result<bool> CqContainedInUcq(const Cq& q1, const Ucq& q2,
                              const schema::Schema& schema) {
  if (q1.head.size() != q2.head.size()) {
    return Status::InvalidArgument("containment: head arity mismatch");
  }
  Result<std::map<std::string, ValueType>> types = InferVarTypes(q1, schema);
  if (!types.ok()) return types.status();

  bool needs_identifications = q1.UsesInequality() || q2.UsesInequality();
  // Constants from both sides matter: a left variable mapping onto a
  // right-hand constant is a real possibility in some database.
  std::set<Value> const_set = q1.Constants();
  for (const Cq& d : q2.disjuncts) {
    std::set<Value> cs = d.Constants();
    const_set.insert(cs.begin(), cs.end());
  }

  auto counterexample = [&](const std::map<std::string, Value>& assignment) {
    if (!NeqsHold(q1, assignment)) return false;  // not a valid q1 model
    Database db = Collapse(q1, assignment);
    Tuple head_values;
    head_values.reserve(q1.head.size());
    for (const std::string& h : q1.head) {
      head_values.push_back(assignment.at(h));
    }
    return !RhsHolds(q2, db, head_values);
  };

  if (!needs_identifications) {
    // Chandra–Merlin: the single all-distinct canonical database decides.
    FreshValueFactory factory;
    std::map<std::string, Value> assignment;
    for (const auto& [var, type] : types.value()) {
      assignment[var] = factory.Fresh(type);
    }
    return !counterexample(assignment);
  }

  std::set<std::string> var_set = q1.Vars();
  std::vector<std::string> vars(var_set.begin(), var_set.end());
  IdentificationEnumerator en(vars, types.value(),
                              std::vector<Value>(const_set.begin(),
                                                 const_set.end()));
  bool found_counterexample =
      en.ForEach([&](const Identification& id) {
        return counterexample(id.assignment);
      });
  return !found_counterexample;
}

Result<bool> CqContained(const Cq& q1, const Cq& q2,
                         const schema::Schema& schema) {
  Ucq rhs;
  rhs.head = q2.head;
  rhs.disjuncts = {q2};
  return CqContainedInUcq(q1, rhs, schema);
}

Result<bool> UcqContained(const Ucq& q1, const Ucq& q2,
                          const schema::Schema& schema) {
  for (const Cq& d : q1.disjuncts) {
    Result<bool> r = CqContainedInUcq(d, q2, schema);
    if (!r.ok()) return r;
    if (!r.value()) return false;
  }
  return true;
}

Result<bool> SentenceContained(const PosFormulaPtr& f1,
                               const PosFormulaPtr& f2,
                               const schema::Schema& schema,
                               size_t max_disjuncts) {
  Result<Ucq> u1 = NormalizeToUcq(f1, {}, schema, max_disjuncts);
  if (!u1.ok()) return u1.status();
  Result<Ucq> u2 = NormalizeToUcq(f2, {}, schema, max_disjuncts);
  if (!u2.ok()) return u2.status();
  return UcqContained(u1.value(), u2.value(), schema);
}

namespace {

/// Extends the bijection fwd/rev with v1 -> v2; false on conflict.
bool BindVar(const std::string& v1, const std::string& v2, VarRenaming* fwd,
             VarRenaming* rev) {
  auto [fit, finserted] = fwd->emplace(v1, v2);
  if (!finserted) return fit->second == v2;
  auto [rit, rinserted] = rev->emplace(v2, v1);
  if (!rinserted) {
    fwd->erase(fit);
    return false;
  }
  return true;
}

/// Can t1 map onto t2 under (an extension of) the bijection?
bool BindTerm(const Term& t1, const Term& t2, VarRenaming* fwd,
              VarRenaming* rev,
              std::vector<std::pair<std::string, std::string>>* trail) {
  if (t1.is_const() != t2.is_const()) return false;
  if (t1.is_const()) return t1.value() == t2.value();
  size_t before = fwd->count(t1.var_name());
  if (!BindVar(t1.var_name(), t2.var_name(), fwd, rev)) return false;
  if (before == 0) trail->emplace_back(t1.var_name(), t2.var_name());
  return true;
}

/// Normalized encoding of a ≠ pair under `fwd` (variables renamed,
/// sides ordered), so multiset comparison is order-insensitive.
std::string NeqKey(const std::pair<Term, Term>& neq, const VarRenaming* fwd) {
  auto encode = [&](const Term& t) {
    if (t.is_const()) return "c:" + t.value().ToString();
    if (fwd != nullptr) {
      auto it = fwd->find(t.var_name());
      if (it != fwd->end()) return "v:" + it->second;
    }
    return "v:" + t.var_name();
  };
  std::string a = encode(neq.first);
  std::string b = encode(neq.second);
  if (b < a) std::swap(a, b);
  return a + "|" + b;
}

/// Backtracking multiset match of q1.atoms onto q2.atoms under a
/// growing variable bijection.
bool MatchAtoms(const Cq& q1, const Cq& q2, size_t i,
                std::vector<bool>* used, VarRenaming* fwd, VarRenaming* rev) {
  if (i == q1.atoms.size()) return true;
  const CqAtom& a1 = q1.atoms[i];
  for (size_t j = 0; j < q2.atoms.size(); ++j) {
    if ((*used)[j]) continue;
    const CqAtom& a2 = q2.atoms[j];
    if (!(a1.pred == a2.pred) || a1.terms.size() != a2.terms.size()) continue;
    std::vector<std::pair<std::string, std::string>> trail;
    bool bound = true;
    for (size_t k = 0; k < a1.terms.size() && bound; ++k) {
      bound = BindTerm(a1.terms[k], a2.terms[k], fwd, rev, &trail);
    }
    if (bound) {
      (*used)[j] = true;
      if (MatchAtoms(q1, q2, i + 1, used, fwd, rev)) return true;
      (*used)[j] = false;
    }
    for (const auto& [v1, v2] : trail) {
      fwd->erase(v1);
      rev->erase(v2);
    }
  }
  return false;
}

/// Multiset equality of string keys.
bool SameMultiset(std::vector<std::string> a, std::vector<std::string> b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace

std::optional<VarRenaming> CqEquivalentUpToRenaming(const Cq& q1,
                                                    const Cq& q2,
                                                    size_t max_atoms) {
  if (q1.atoms.size() != q2.atoms.size() ||
      q1.neqs.size() != q2.neqs.size() || q1.head.size() != q2.head.size() ||
      q1.head_eqs.size() != q2.head_eqs.size() ||
      q1.head_consts.size() != q2.head_consts.size()) {
    return std::nullopt;
  }
  if (q1.atoms.size() > max_atoms) return std::nullopt;  // don't know
  VarRenaming fwd;
  VarRenaming rev;
  // Heads are positional: the i-th answer variable must map to the
  // i-th answer variable.
  for (size_t i = 0; i < q1.head.size(); ++i) {
    if (!BindVar(q1.head[i], q2.head[i], &fwd, &rev)) return std::nullopt;
  }
  std::vector<bool> used(q2.atoms.size(), false);
  if (!MatchAtoms(q1, q2, 0, &used, &fwd, &rev)) return std::nullopt;
  // Every variable of both queries must be covered by the bijection —
  // a variable occurring only in a ≠ side condition has no canonical
  // image, so we conservatively answer "don't know".
  for (const std::string& v : q1.Vars()) {
    if (fwd.find(v) == fwd.end()) return std::nullopt;
  }
  for (const std::string& v : q2.Vars()) {
    if (rev.find(v) == rev.end()) return std::nullopt;
  }
  // ≠ side conditions and normalization residue must agree as
  // multisets under the renaming.
  std::vector<std::string> n1;
  std::vector<std::string> n2;
  for (const auto& neq : q1.neqs) n1.push_back(NeqKey(neq, &fwd));
  for (const auto& neq : q2.neqs) n2.push_back(NeqKey(neq, nullptr));
  if (!SameMultiset(std::move(n1), std::move(n2))) return std::nullopt;
  std::vector<std::string> e1;
  std::vector<std::string> e2;
  for (const auto& [l, r] : q1.head_eqs) {
    std::string a = fwd.at(l);
    std::string b = fwd.at(r);
    if (b < a) std::swap(a, b);
    e1.push_back(a + "|" + b);
  }
  for (const auto& [l, r] : q2.head_eqs) {
    std::string a = l;
    std::string b = r;
    if (b < a) std::swap(a, b);
    e2.push_back(a + "|" + b);
  }
  if (!SameMultiset(std::move(e1), std::move(e2))) return std::nullopt;
  std::vector<std::string> c1;
  std::vector<std::string> c2;
  for (const auto& [v, c] : q1.head_consts) {
    c1.push_back(fwd.at(v) + "|" + c.ToString());
  }
  for (const auto& [v, c] : q2.head_consts) {
    c2.push_back(v + "|" + c.ToString());
  }
  if (!SameMultiset(std::move(c1), std::move(c2))) return std::nullopt;
  return fwd;
}

namespace {

/// Perfect matching between disjunct lists where edge (i, j) holds iff
/// disjunct i of u1 is a renaming of disjunct j of u2.
bool MatchDisjuncts(const Ucq& u1, const Ucq& u2, size_t i,
                    std::vector<bool>* used,
                    std::vector<VarRenaming>* renamings) {
  if (i == u1.disjuncts.size()) return true;
  for (size_t j = 0; j < u2.disjuncts.size(); ++j) {
    if ((*used)[j]) continue;
    std::optional<VarRenaming> r =
        CqEquivalentUpToRenaming(u1.disjuncts[i], u2.disjuncts[j]);
    if (!r.has_value()) continue;
    (*used)[j] = true;
    renamings->push_back(std::move(*r));
    if (MatchDisjuncts(u1, u2, i + 1, used, renamings)) return true;
    renamings->pop_back();
    (*used)[j] = false;
  }
  return false;
}

}  // namespace

Result<bool> SentenceEquivalentUpToRenaming(const PosFormulaPtr& f1,
                                            const PosFormulaPtr& f2,
                                            const schema::Schema& schema,
                                            std::vector<VarRenaming>* witness,
                                            size_t max_disjuncts) {
  Result<Ucq> u1 = NormalizeToUcq(f1, {}, schema, max_disjuncts);
  if (!u1.ok()) return u1.status();
  Result<Ucq> u2 = NormalizeToUcq(f2, {}, schema, max_disjuncts);
  if (!u2.ok()) return u2.status();
  if (u1.value().disjuncts.size() != u2.value().disjuncts.size()) {
    return false;
  }
  // The disjunct-matching search is factorial in the worst case; past
  // this width "don't know" is the honest (and cheap) answer.
  if (u1.value().disjuncts.size() > 16) return false;
  std::vector<bool> used(u2.value().disjuncts.size(), false);
  std::vector<VarRenaming> renamings;
  if (!MatchDisjuncts(u1.value(), u2.value(), 0, &used, &renamings)) {
    return false;
  }
  if (witness != nullptr) *witness = std::move(renamings);
  return true;
}

}  // namespace logic
}  // namespace accltl
