#include "src/logic/containment.h"

#include <functional>

#include <algorithm>
#include <cassert>
#include <optional>
#include <vector>

namespace accltl {
namespace logic {

bool HomomorphismExists(const Cq& q, const Database& db, const Env& seed) {
  DatabaseView view(db);
  return EvalWithEnv(q.ToFormula(), view, seed);
}

namespace {

/// One identification of the left query's variables: a partition of the
/// variables where each block is either "generic" (a fresh value) or
/// pinned to one constant.
struct Identification {
  /// Variable -> value under this identification.
  std::map<std::string, Value> assignment;
};

/// Enumerates identifications of `vars` (restricted-growth partitions),
/// each block optionally pinned to a type-compatible constant from
/// `const_pool`, and calls `fn` for each. `fn` returning true stops the
/// enumeration (a counterexample was found).
class IdentificationEnumerator {
 public:
  IdentificationEnumerator(std::vector<std::string> vars,
                           std::map<std::string, ValueType> types,
                           std::vector<Value> const_pool)
      : vars_(std::move(vars)),
        types_(std::move(types)),
        const_pool_(std::move(const_pool)) {}

  /// Returns true iff `fn` returned true for some identification.
  bool ForEach(const std::function<bool(const Identification&)>& fn) {
    block_of_.assign(vars_.size(), 0);
    return Rec(0, 0, fn);
  }

 private:
  bool Rec(size_t i, int num_blocks,
           const std::function<bool(const Identification&)>& fn) {
    if (i == vars_.size()) return EmitBlocks(num_blocks, fn);
    for (int b = 0; b <= num_blocks; ++b) {
      block_of_[i] = b;
      if (Rec(i + 1, std::max(num_blocks, b + 1), fn)) return true;
    }
    return false;
  }

  /// For a fixed partition, enumerate the pinning of each block to
  /// "fresh" or to one constant, and emit assignments.
  bool EmitBlocks(int num_blocks,
                  const std::function<bool(const Identification&)>& fn) {
    // Type of each block: all member variables must agree.
    std::vector<std::optional<ValueType>> block_type(
        static_cast<size_t>(num_blocks));
    for (size_t i = 0; i < vars_.size(); ++i) {
      auto it = types_.find(vars_[i]);
      if (it == types_.end()) continue;
      auto& bt = block_type[static_cast<size_t>(block_of_[i])];
      if (!bt.has_value()) {
        bt = it->second;
      } else if (*bt != it->second) {
        return false;  // type clash: partition impossible
      }
    }
    std::vector<std::optional<Value>> pin(static_cast<size_t>(num_blocks));
    return PinRec(0, num_blocks, block_type, &pin, fn);
  }

  bool PinRec(int b, int num_blocks,
              const std::vector<std::optional<ValueType>>& block_type,
              std::vector<std::optional<Value>>* pin,
              const std::function<bool(const Identification&)>& fn) {
    if (b == num_blocks) {
      Identification id;
      FreshValueFactory factory;
      std::vector<Value> block_value(static_cast<size_t>(num_blocks));
      for (int k = 0; k < num_blocks; ++k) {
        const auto& p = (*pin)[static_cast<size_t>(k)];
        if (p.has_value()) {
          block_value[static_cast<size_t>(k)] = *p;
        } else {
          ValueType t = block_type[static_cast<size_t>(k)].value_or(
              ValueType::kInt);
          block_value[static_cast<size_t>(k)] = factory.Fresh(t);
        }
      }
      for (size_t i = 0; i < vars_.size(); ++i) {
        id.assignment[vars_[i]] =
            block_value[static_cast<size_t>(block_of_[i])];
      }
      return fn(id);
    }
    // Option 1: generic (fresh value).
    (*pin)[static_cast<size_t>(b)] = std::nullopt;
    if (PinRec(b + 1, num_blocks, block_type, pin, fn)) return true;
    // Option 2: one of the type-compatible constants.
    for (const Value& c : const_pool_) {
      const auto& bt = block_type[static_cast<size_t>(b)];
      if (bt.has_value() && c.type() != *bt) continue;
      (*pin)[static_cast<size_t>(b)] = c;
      if (PinRec(b + 1, num_blocks, block_type, pin, fn)) return true;
    }
    (*pin)[static_cast<size_t>(b)] = std::nullopt;
    return false;
  }

  std::vector<std::string> vars_;
  std::map<std::string, ValueType> types_;
  std::vector<Value> const_pool_;
  std::vector<int> block_of_;
};

/// Does the identification satisfy all ≠ atoms of `q`?
bool NeqsHold(const Cq& q, const std::map<std::string, Value>& assignment) {
  auto value_of = [&](const Term& t) -> Value {
    if (t.is_const()) return t.value();
    auto it = assignment.find(t.var_name());
    assert(it != assignment.end());
    return it->second;
  };
  for (const auto& [l, r] : q.neqs) {
    if (value_of(l) == value_of(r)) return false;
  }
  for (const auto& [l, r] : q.head_eqs) {
    if (assignment.at(l) != assignment.at(r)) return false;
  }
  for (const auto& [v, c] : q.head_consts) {
    if (assignment.at(v) != c) return false;
  }
  return true;
}

/// Builds the database of `q` under `assignment`.
Database Collapse(const Cq& q,
                  const std::map<std::string, Value>& assignment) {
  Database db;
  for (const CqAtom& a : q.atoms) {
    Tuple t;
    t.reserve(a.terms.size());
    for (const Term& term : a.terms) {
      t.push_back(term.is_const() ? term.value()
                                  : assignment.at(term.var_name()));
    }
    db.AddFact(a.pred, std::move(t));
  }
  return db;
}

/// Does some disjunct of `rhs` hold on `db` with the given head values?
bool RhsHolds(const Ucq& rhs, const Database& db, const Tuple& head_values) {
  DatabaseView view(db);
  for (const Cq& d : rhs.disjuncts) {
    Env seed;
    bool arity_ok = d.head.size() == head_values.size();
    assert(arity_ok);
    if (!arity_ok) continue;
    bool consistent = true;
    for (size_t i = 0; i < d.head.size(); ++i) {
      auto [it, inserted] = seed.emplace(d.head[i], head_values[i]);
      if (!inserted && it->second != head_values[i]) {
        consistent = false;
        break;
      }
    }
    if (!consistent) continue;
    if (EvalWithEnv(d.ToFormula(), view, seed)) return true;
  }
  return false;
}

}  // namespace

Result<bool> CqContainedInUcq(const Cq& q1, const Ucq& q2,
                              const schema::Schema& schema) {
  if (q1.head.size() != q2.head.size()) {
    return Status::InvalidArgument("containment: head arity mismatch");
  }
  Result<std::map<std::string, ValueType>> types = InferVarTypes(q1, schema);
  if (!types.ok()) return types.status();

  bool needs_identifications = q1.UsesInequality() || q2.UsesInequality();
  // Constants from both sides matter: a left variable mapping onto a
  // right-hand constant is a real possibility in some database.
  std::set<Value> const_set = q1.Constants();
  for (const Cq& d : q2.disjuncts) {
    std::set<Value> cs = d.Constants();
    const_set.insert(cs.begin(), cs.end());
  }

  auto counterexample = [&](const std::map<std::string, Value>& assignment) {
    if (!NeqsHold(q1, assignment)) return false;  // not a valid q1 model
    Database db = Collapse(q1, assignment);
    Tuple head_values;
    head_values.reserve(q1.head.size());
    for (const std::string& h : q1.head) {
      head_values.push_back(assignment.at(h));
    }
    return !RhsHolds(q2, db, head_values);
  };

  if (!needs_identifications) {
    // Chandra–Merlin: the single all-distinct canonical database decides.
    FreshValueFactory factory;
    std::map<std::string, Value> assignment;
    for (const auto& [var, type] : types.value()) {
      assignment[var] = factory.Fresh(type);
    }
    return !counterexample(assignment);
  }

  std::set<std::string> var_set = q1.Vars();
  std::vector<std::string> vars(var_set.begin(), var_set.end());
  IdentificationEnumerator en(vars, types.value(),
                              std::vector<Value>(const_set.begin(),
                                                 const_set.end()));
  bool found_counterexample =
      en.ForEach([&](const Identification& id) {
        return counterexample(id.assignment);
      });
  return !found_counterexample;
}

Result<bool> CqContained(const Cq& q1, const Cq& q2,
                         const schema::Schema& schema) {
  Ucq rhs;
  rhs.head = q2.head;
  rhs.disjuncts = {q2};
  return CqContainedInUcq(q1, rhs, schema);
}

Result<bool> UcqContained(const Ucq& q1, const Ucq& q2,
                          const schema::Schema& schema) {
  for (const Cq& d : q1.disjuncts) {
    Result<bool> r = CqContainedInUcq(d, q2, schema);
    if (!r.ok()) return r;
    if (!r.value()) return false;
  }
  return true;
}

Result<bool> SentenceContained(const PosFormulaPtr& f1,
                               const PosFormulaPtr& f2,
                               const schema::Schema& schema) {
  Result<Ucq> u1 = NormalizeToUcq(f1, {}, schema);
  if (!u1.ok()) return u1.status();
  Result<Ucq> u2 = NormalizeToUcq(f2, {}, schema);
  if (!u2.ok()) return u2.status();
  return UcqContained(u1.value(), u2.value(), schema);
}

}  // namespace logic
}  // namespace accltl
