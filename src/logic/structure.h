#ifndef ACCLTL_LOGIC_STRUCTURE_H_
#define ACCLTL_LOGIC_STRUCTURE_H_

#include <map>
#include <set>
#include <string>

#include "src/common/value.h"
#include "src/logic/predicate.h"
#include "src/schema/lts.h"
#include "src/store/match_index.h"
#include "src/store/tuple_range.h"

namespace accltl {
namespace logic {

/// Read-only view of a relational structure over (a subset of) the
/// SchAcc vocabulary. The evaluator (eval.h) works against this
/// interface, so instances, transitions and canonical databases are all
/// queried uniformly.
class StructureView {
 public:
  virtual ~StructureView() = default;

  /// Tuples interpreting `pred`; an empty range is the empty
  /// interpretation (instances serve interned fact spans, databases
  /// serve plain tuple sets — see store::TupleRange).
  virtual store::TupleRange GetTuples(const PredicateRef& pred) const = 0;

  /// The 0-ary IsBind_AcM proposition of the Sch0−Acc vocabulary
  /// (§4.2): did this position's transition use method `m`?
  virtual bool MethodUsed(schema::AccessMethodId m) const {
    (void)m;
    return false;
  }

  /// Optional index acceleration: the ascending fact ids of the tuples
  /// interpreting `pred` whose value at `position` is `v`, or nullptr
  /// when this view serves no index for the predicate (the evaluator
  /// then falls back to scanning GetTuples). An implementation must
  /// return exactly the subset of GetTuples with that value, in
  /// GetTuples (fact-id) order, so the indexed path enumerates the
  /// same matches in the same order as the scan.
  virtual const std::vector<store::FactId>* FactIdIndex(
      const PredicateRef& pred, int position, store::ValueId v) const {
    (void)pred;
    (void)position;
    (void)v;
    return nullptr;
  }
};

/// Views a plain instance: interprets only the kPlain space.
class InstanceView : public StructureView {
 public:
  explicit InstanceView(const schema::Instance& instance)
      : instance_(instance) {}

  store::TupleRange GetTuples(const PredicateRef& pred) const override {
    if (pred.space != PredSpace::kPlain) return store::TupleRange();
    return instance_.tuples(pred.id);
  }

 private:
  const schema::Instance& instance_;
};

/// Views the structure M(t) of a transition t = (I, (AcM, b̄), I′) (§2):
/// Rpre ↦ I(R), Rpost ↦ I′(R), IsBind_AcM ↦ {b̄}, other IsBind empty.
/// Also serves as M′(t) for the 0-ary vocabulary via MethodUsed.
class TransitionView : public StructureView {
 public:
  explicit TransitionView(const schema::Transition& t) : t_(t) {
    binding_singleton_.insert(t.access.binding);
  }

  store::TupleRange GetTuples(const PredicateRef& pred) const override {
    switch (pred.space) {
      case PredSpace::kPre:
        return t_.pre.tuples(pred.id);
      case PredSpace::kPost:
        return t_.post.tuples(pred.id);
      case PredSpace::kBind:
        return pred.id == t_.access.method
                   ? store::TupleRange(&binding_singleton_)
                   : store::TupleRange();
      case PredSpace::kPlain:
        return store::TupleRange();
    }
    return store::TupleRange();
  }

  bool MethodUsed(schema::AccessMethodId m) const override {
    return m == t_.access.method;
  }

 private:
  const schema::Transition& t_;
  std::set<Tuple> binding_singleton_;
};

/// TransitionView with store::MatchIndexCache acceleration: pre/post
/// relation atoms answer bound-position lookups through the cache's
/// per-(FactSet, position) value indexes, so evaluating a guard costs
/// the matching tuples, not a scan of the whole configuration.
/// Copy-on-write instances share unchanged FactSets, so a long-lived
/// cache (e.g. one per monitored session) reuses every index across
/// steps and only ever indexes the one relation a step touched.
/// The view holds the caller's LocalView; both must outlive it.
class IndexedTransitionView : public TransitionView {
 public:
  IndexedTransitionView(const schema::Transition& t,
                        store::MatchIndexCache::LocalView* index)
      : TransitionView(t), transition_(t), index_(index) {}

  const std::vector<store::FactId>* FactIdIndex(
      const PredicateRef& pred, int position,
      store::ValueId v) const override {
    const store::FactSet::Ptr* set = nullptr;
    switch (pred.space) {
      case PredSpace::kPre:
        set = &transition_.pre.facts(pred.id);
        break;
      case PredSpace::kPost:
        set = &transition_.post.facts(pred.id);
        break;
      default:
        // IsBind is a singleton and kPlain is empty on M(t): nothing
        // worth indexing.
        return nullptr;
    }
    return &index_->Lookup(*set, position, v);
  }

 private:
  const schema::Transition& transition_;
  store::MatchIndexCache::LocalView* index_;
};

/// A free-form database over any mix of vocabulary spaces; used for
/// canonical databases of queries and for the Datalog machinery.
class Database {
 public:
  /// Adds a fact; returns true if new.
  bool AddFact(const PredicateRef& pred, Tuple t) {
    return rels_[pred].insert(std::move(t)).second;
  }

  bool Contains(const PredicateRef& pred, const Tuple& t) const {
    auto it = rels_.find(pred);
    return it != rels_.end() && it->second.count(t) > 0;
  }

  const std::set<Tuple>* GetTuples(const PredicateRef& pred) const {
    auto it = rels_.find(pred);
    return it == rels_.end() ? nullptr : &it->second;
  }

  const std::map<PredicateRef, std::set<Tuple>>& relations() const {
    return rels_;
  }

  size_t TotalFacts() const {
    size_t n = 0;
    for (const auto& [pred, tuples] : rels_) n += tuples.size();
    return n;
  }

  void UnionWith(const Database& other) {
    for (const auto& [pred, tuples] : other.rels_) {
      rels_[pred].insert(tuples.begin(), tuples.end());
    }
  }

  std::set<Value> ActiveDomain() const {
    std::set<Value> dom;
    for (const auto& [pred, tuples] : rels_) {
      for (const Tuple& t : tuples) dom.insert(t.begin(), t.end());
    }
    return dom;
  }

  friend bool operator==(const Database& a, const Database& b) {
    return a.rels_ == b.rels_;
  }
  friend bool operator<(const Database& a, const Database& b) {
    return a.rels_ < b.rels_;
  }

  std::string ToString(const schema::Schema& schema) const;

 private:
  std::map<PredicateRef, std::set<Tuple>> rels_;
};

/// Views a Database. The 0-ary IsBind proposition holds when the
/// database contains the empty tuple for the bind predicate.
class DatabaseView : public StructureView {
 public:
  explicit DatabaseView(const Database& db) : db_(db) {}

  store::TupleRange GetTuples(const PredicateRef& pred) const override {
    return store::TupleRange(db_.GetTuples(pred));
  }

  bool MethodUsed(schema::AccessMethodId m) const override {
    return db_.Contains(logic::Bind(m), Tuple{});
  }

 private:
  const Database& db_;
};

}  // namespace logic
}  // namespace accltl

#endif  // ACCLTL_LOGIC_STRUCTURE_H_
