#include "src/logic/parser.h"

#include <cctype>
#include <vector>

#include "src/common/strings.h"

namespace accltl {
namespace logic {

namespace {

enum class TokKind {
  kIdent,
  kString,
  kInt,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kEq,
  kNeq,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int64_t int_value = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '(') {
        out->push_back({TokKind::kLParen, "("});
        ++i;
      } else if (c == ')') {
        out->push_back({TokKind::kRParen, ")"});
        ++i;
      } else if (c == ',') {
        out->push_back({TokKind::kComma, ","});
        ++i;
      } else if (c == '.') {
        out->push_back({TokKind::kDot, "."});
        ++i;
      } else if (c == '=') {
        out->push_back({TokKind::kEq, "="});
        ++i;
      } else if (c == '!' && i + 1 < text_.size() && text_[i + 1] == '=') {
        out->push_back({TokKind::kNeq, "!="});
        i += 2;
      } else if (c == '"') {
        size_t j = i + 1;
        while (j < text_.size() && text_[j] != '"') ++j;
        if (j >= text_.size()) {
          return Status::InvalidArgument("unterminated string literal");
        }
        out->push_back({TokKind::kString, text_.substr(i + 1, j - i - 1)});
        i = j + 1;
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && i + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        size_t j = i + (c == '-' ? 1 : 0);
        while (j < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[j]))) {
          ++j;
        }
        Token t;
        t.kind = TokKind::kInt;
        t.text = text_.substr(i, j - i);
        t.int_value = std::stoll(t.text);
        out->push_back(std::move(t));
        i = j;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_')) {
          ++j;
        }
        out->push_back({TokKind::kIdent, text_.substr(i, j - i)});
        i = j;
      } else {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "'");
      }
    }
    out->push_back({TokKind::kEnd, ""});
    return Status::OK();
  }

 private:
  const std::string& text_;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const schema::Schema& schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  Result<PosFormulaPtr> Parse() {
    Result<PosFormulaPtr> f = ParseFormulaLevel();
    if (!f.ok()) return f;
    if (Peek().kind != TokKind::kEnd) {
      return Status::InvalidArgument("trailing input after formula: '" +
                                     Peek().text + "'");
    }
    return f;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Take() { return tokens_[pos_++]; }

  bool TakeIf(TokKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool TakeKeyword(const std::string& kw) {
    if (Peek().kind == TokKind::kIdent && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<PosFormulaPtr> ParseFormulaLevel() {
    if (TakeKeyword("EXISTS")) {
      std::vector<std::string> vars;
      while (true) {
        if (Peek().kind != TokKind::kIdent) {
          return Status::InvalidArgument("expected variable after EXISTS");
        }
        vars.push_back(Take().text);
        if (!TakeIf(TokKind::kComma)) break;
      }
      if (!TakeIf(TokKind::kDot)) {
        return Status::InvalidArgument("expected '.' after EXISTS variables");
      }
      Result<PosFormulaPtr> body = ParseFormulaLevel();
      if (!body.ok()) return body;
      return PosFormula::Exists(std::move(vars), body.value());
    }
    return ParseDisjunct();
  }

  Result<PosFormulaPtr> ParseDisjunct() {
    Result<PosFormulaPtr> first = ParseConjunct();
    if (!first.ok()) return first;
    std::vector<PosFormulaPtr> parts = {first.value()};
    while (TakeKeyword("OR")) {
      Result<PosFormulaPtr> next = ParseConjunct();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    return PosFormula::Or(std::move(parts));
  }

  Result<PosFormulaPtr> ParseConjunct() {
    Result<PosFormulaPtr> first = ParseUnit();
    if (!first.ok()) return first;
    std::vector<PosFormulaPtr> parts = {first.value()};
    while (TakeKeyword("AND")) {
      Result<PosFormulaPtr> next = ParseUnit();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    return PosFormula::And(std::move(parts));
  }

  Result<PosFormulaPtr> ParseUnit() {
    if (TakeIf(TokKind::kLParen)) {
      Result<PosFormulaPtr> inner = ParseFormulaLevel();
      if (!inner.ok()) return inner;
      if (!TakeIf(TokKind::kRParen)) {
        return Status::InvalidArgument("expected ')'");
      }
      return inner;
    }
    if (TakeKeyword("TRUE")) return PosFormula::True();
    if (TakeKeyword("FALSE")) return PosFormula::False();
    if (TakeKeyword("EXISTS")) {
      --pos_;  // EXISTS nested without parens: let formula level handle
      return ParseFormulaLevel();
    }

    // Predicate atom: Ident '(' ... ')' with an uppercase-ish name, OR a
    // term-comparison.
    if (Peek().kind == TokKind::kIdent && Peek(1).kind == TokKind::kLParen &&
        LooksLikePredicate(Peek().text)) {
      return ParseAtom();
    }
    return ParseComparison();
  }

  static bool LooksLikePredicate(const std::string& name) {
    return !name.empty() && (std::isupper(static_cast<unsigned char>(
                                 name[0])) != 0);
  }

  Result<PredicateRef> ResolvePredicate(const std::string& name) {
    if (StartsWith(name, "IsBind_")) {
      Result<schema::AccessMethodId> m =
          schema_.FindMethod(name.substr(7));
      if (!m.ok()) return m.status();
      return Bind(m.value());
    }
    auto try_suffix = [&](const std::string& suffix,
                          PredSpace space) -> Result<PredicateRef> {
      std::string base = name.substr(0, name.size() - suffix.size());
      Result<schema::RelationId> r = schema_.FindRelation(base);
      if (!r.ok()) return r.status();
      return PredicateRef{space, r.value()};
    };
    if (name.size() > 4 && name.substr(name.size() - 4) == "_pre") {
      return try_suffix("_pre", PredSpace::kPre);
    }
    if (name.size() > 5 && name.substr(name.size() - 5) == "_post") {
      return try_suffix("_post", PredSpace::kPost);
    }
    Result<schema::RelationId> r = schema_.FindRelation(name);
    if (!r.ok()) return r.status();
    return Plain(r.value());
  }

  Result<PosFormulaPtr> ParseAtom() {
    std::string name = Take().text;
    Result<PredicateRef> pred = ResolvePredicate(name);
    if (!pred.ok()) return pred.status();
    if (!TakeIf(TokKind::kLParen)) {
      return Status::InvalidArgument("expected '(' after predicate " + name);
    }
    std::vector<Term> terms;
    if (!TakeIf(TokKind::kRParen)) {
      while (true) {
        Result<Term> t = ParseTerm();
        if (!t.ok()) return t.status();
        terms.push_back(t.value());
        if (TakeIf(TokKind::kRParen)) break;
        if (!TakeIf(TokKind::kComma)) {
          return Status::InvalidArgument("expected ',' or ')' in atom " +
                                         name);
        }
      }
    }
    PosFormulaPtr atom = PosFormula::MakeAtom(pred.value(), std::move(terms));
    Status s = atom->Validate(schema_);
    if (!s.ok()) return s;
    return atom;
  }

  Result<PosFormulaPtr> ParseComparison() {
    Result<Term> lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    if (TakeIf(TokKind::kEq)) {
      Result<Term> rhs = ParseTerm();
      if (!rhs.ok()) return rhs.status();
      return PosFormula::Eq(lhs.value(), rhs.value());
    }
    if (TakeIf(TokKind::kNeq)) {
      Result<Term> rhs = ParseTerm();
      if (!rhs.ok()) return rhs.status();
      return PosFormula::Neq(lhs.value(), rhs.value());
    }
    return Status::InvalidArgument("expected '=' or '!=' after term");
  }

  Result<Term> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kString: {
        Term out = Term::Const(Value::Str(t.text));
        ++pos_;
        return out;
      }
      case TokKind::kInt: {
        Term out = Term::Const(Value::Int(t.int_value));
        ++pos_;
        return out;
      }
      case TokKind::kIdent: {
        if (t.text == "true" || t.text == "false") {
          Term out = Term::Const(Value::Bool(t.text == "true"));
          ++pos_;
          return out;
        }
        if (std::islower(static_cast<unsigned char>(t.text[0])) ||
            t.text[0] == '_') {
          Term out = Term::Var(t.text);
          ++pos_;
          return out;
        }
        return Status::InvalidArgument(
            "expected a term, found predicate-like identifier '" + t.text +
            "' (variables start lowercase)");
      }
      default:
        return Status::InvalidArgument("expected a term, found '" + t.text +
                                       "'");
    }
  }

  std::vector<Token> tokens_;
  const schema::Schema& schema_;
  size_t pos_ = 0;
};

}  // namespace

Result<PosFormulaPtr> ParseFormula(const std::string& text,
                                   const schema::Schema& schema) {
  std::vector<Token> tokens;
  Lexer lexer(text);
  Status s = lexer.Tokenize(&tokens);
  if (!s.ok()) return s;
  Parser parser(std::move(tokens), schema);
  return parser.Parse();
}

}  // namespace logic
}  // namespace accltl
