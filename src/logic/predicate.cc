#include "src/logic/predicate.h"

namespace accltl {
namespace logic {

int PredicateArity(const PredicateRef& pred, const schema::Schema& schema) {
  switch (pred.space) {
    case PredSpace::kPlain:
    case PredSpace::kPre:
    case PredSpace::kPost:
      return schema.relation(pred.id).arity();
    case PredSpace::kBind:
      return schema.method(pred.id).num_inputs();
  }
  return 0;
}

ValueType PredicatePositionType(const PredicateRef& pred, int i,
                                const schema::Schema& schema) {
  switch (pred.space) {
    case PredSpace::kPlain:
    case PredSpace::kPre:
    case PredSpace::kPost:
      return schema.relation(pred.id).position_types[static_cast<size_t>(i)];
    case PredSpace::kBind: {
      const schema::AccessMethod& m = schema.method(pred.id);
      return schema.relation(m.relation)
          .position_types[static_cast<size_t>(m.input_positions[
              static_cast<size_t>(i)])];
    }
  }
  return ValueType::kInt;
}

std::string PredicateName(const PredicateRef& pred,
                          const schema::Schema& schema) {
  switch (pred.space) {
    case PredSpace::kPlain:
      return schema.relation(pred.id).name;
    case PredSpace::kPre:
      return schema.relation(pred.id).name + "_pre";
    case PredSpace::kPost:
      return schema.relation(pred.id).name + "_post";
    case PredSpace::kBind:
      return "IsBind_" + schema.method(pred.id).name;
  }
  return "?";
}

}  // namespace logic
}  // namespace accltl
