#ifndef ACCLTL_LOGIC_TERM_H_
#define ACCLTL_LOGIC_TERM_H_

#include <string>

#include "src/common/value.h"

namespace accltl {
namespace logic {

/// A term of the relational calculus tier: a variable (identified by
/// name) or a constant value.
class Term {
 public:
  /// Default-constructs the variable "x".
  Term() : is_var_(true), name_("x") {}

  static Term Var(std::string name) {
    Term t;
    t.is_var_ = true;
    t.name_ = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.is_var_ = false;
    t.value_ = std::move(v);
    return t;
  }

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }

  /// Requires is_var().
  const std::string& var_name() const { return name_; }
  /// Requires is_const().
  const Value& value() const { return value_; }

  std::string ToString() const {
    return is_var_ ? name_ : value_.ToString();
  }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_var_ != b.is_var_) return false;
    return a.is_var_ ? a.name_ == b.name_ : a.value_ == b.value_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.is_var_ != b.is_var_) return a.is_var_ < b.is_var_;
    return a.is_var_ ? a.name_ < b.name_ : a.value_ < b.value_;
  }

 private:
  bool is_var_ = true;
  std::string name_;  // when is_var_
  Value value_;       // when !is_var_
};

}  // namespace logic
}  // namespace accltl

#endif  // ACCLTL_LOGIC_TERM_H_
