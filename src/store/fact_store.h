#ifndef ACCLTL_STORE_FACT_STORE_H_
#define ACCLTL_STORE_FACT_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/value.h"
#include "src/store/stable_vector.h"

namespace accltl {
namespace store {

/// Dense id of an interned Value. Ids are assigned in first-interning
/// order and never recycled, so an id obtained once stays valid for the
/// process lifetime.
using ValueId = uint32_t;
/// Dense id of an interned (canonical) tuple. Fact ids are
/// relation-agnostic: two relations containing the same tuple share one
/// id, and instances attach ids to relations.
using FactId = uint32_t;

inline constexpr ValueId kNoValueId = 0xffffffffu;
inline constexpr FactId kNoFactId = 0xffffffffu;

/// splitmix64 finalizer: cheap, well-distributed 64-bit mixing.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Process-global interner for values and canonical facts.
///
/// The store is append-only: interning assigns the next dense id, and
/// decoded payloads live at stable addresses (store::StableVector) so
/// `value()` and `tuple()` references never move.  Every fact carries a
/// precomputed 64-bit mixed hash over its value ids; configuration
/// hashes (schema::Instance, store::FactSet) are XOR-folds of these, so
/// adding a fact updates a configuration hash in O(1).
///
/// Thread-safety: fully concurrent. Interning is striped — the
/// value-id and fact-id maps are split into kShards shards, each under
/// its own mutex, so parallel search workers interning mostly-distinct
/// payloads rarely contend. Id-indexed lookups (`value`, `tuple`,
/// `fact_hash`, `fact_values`) take no lock: payloads are written into
/// block-stable storage *before* the id escapes the shard mutex, so any
/// id a thread legitimately holds (received over a happens-before edge:
/// the interning call itself, a shard-map hit, a work-stealing deque, a
/// join) denotes fully-constructed, immutable data.
class Store {
 public:
  /// The process-global store.
  static Store& Get();

  /// Interns through a per-thread hit cache (ids are stable, so
  /// replaying a previous answer needs no lock).
  ValueId InternValue(const Value& v);
  /// kNoValueId when `v` was never interned (then no interned fact and
  /// no instance can contain it).
  ValueId TryFindValue(const Value& v) const;
  const Value& value(ValueId id) const { return values_[id]; }

  FactId InternTuple(const Tuple& t);
  /// kNoFactId when `t` was never interned.
  FactId TryFindTuple(const Tuple& t) const;
  const Tuple& tuple(FactId id) const { return facts_[id].decoded; }
  /// The interned value ids of the fact, in position order.
  const std::vector<ValueId>& fact_values(FactId id) const {
    return facts_[id].values;
  }
  /// Precomputed mixed hash; already safe to XOR-fold.
  uint64_t fact_hash(FactId id) const { return facts_[id].hash; }

  size_t num_values() const {
    return next_value_id_.load(std::memory_order_acquire);
  }
  size_t num_facts() const {
    return next_fact_id_.load(std::memory_order_acquire);
  }

 private:
  static constexpr size_t kShards = 32;  // power of two

  Store() = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  struct FactRep {
    std::vector<ValueId> values;
    Tuple decoded;
    uint64_t hash = 0;
  };

  struct IdVectorHash {
    size_t operator()(const std::vector<ValueId>& ids) const {
      uint64_t h = Mix64(ids.size());
      for (ValueId v : ids) h = Mix64(h ^ v);
      return static_cast<size_t>(h);
    }
  };

  struct ValueShard {
    mutable std::mutex mu;
    std::unordered_map<Value, ValueId, ValueHash> ids;
  };
  struct FactShard {
    mutable std::mutex mu;
    std::unordered_map<std::vector<ValueId>, FactId, IdVectorHash> ids;
  };

  ValueId InternValueSlow(const Value& v);
  FactId InternTupleSlow(const Tuple& t);

  ValueShard& value_shard(const Value& v) const {
    return value_shards_[ValueHash{}(v)&(kShards - 1)];
  }
  FactShard& fact_shard(const std::vector<ValueId>& ids) const {
    return fact_shards_[IdVectorHash{}(ids) & (kShards - 1)];
  }

  mutable ValueShard value_shards_[kShards];
  mutable FactShard fact_shards_[kShards];
  std::atomic<size_t> next_value_id_{0};
  std::atomic<size_t> next_fact_id_{0};
  StableVector<Value> values_;
  StableVector<FactRep> facts_;
};

}  // namespace store
}  // namespace accltl

#endif  // ACCLTL_STORE_FACT_STORE_H_
