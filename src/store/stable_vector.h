#ifndef ACCLTL_STORE_STABLE_VECTOR_H_
#define ACCLTL_STORE_STABLE_VECTOR_H_

#include <atomic>
#include <cstddef>
#include <memory>

namespace accltl {
namespace store {

/// Append-only, index-stable storage for interned payloads, safe for
/// concurrent readers while writers append.
///
/// Payloads live in fixed-size blocks; a block, once allocated, is
/// never moved or freed until destruction, so `operator[]` references
/// stay valid for the container's lifetime (the property std::deque
/// gave the single-threaded store — without std::deque's internal
/// block map, whose growth races with lock-free readers).
///
/// Memory model:
///  - Writers call `Emplace(i, ...)` for each index `i` exactly once
///    (indices come from an external atomic counter). Writers to
///    different indices may run concurrently; block allocation races
///    resolve by compare-exchange.
///  - A reader may call `operator[](i)` only with a *published* id: one
///    it received over a happens-before edge from the writer of slot i
///    (an interner-shard mutex, a work-stealing deque, a join). The
///    release CAS/store on the block pointer plus that edge make both
///    the block pointer and the slot contents visible.
template <typename T, size_t kBlockBits = 12, size_t kMaxBlockCount = 1u << 15>
class StableVector {
 public:
  static constexpr size_t kBlockSize = size_t{1} << kBlockBits;
  static constexpr size_t kBlockMask = kBlockSize - 1;

  StableVector() {
    for (auto& b : blocks_) b.store(nullptr, std::memory_order_relaxed);
  }
  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;
  ~StableVector() {
    for (auto& b : blocks_) delete[] b.load(std::memory_order_relaxed);
  }

  /// Constructs the element at index `i` (each index exactly once).
  template <typename... Args>
  void Emplace(size_t i, Args&&... args) {
    T* block = EnsureBlock(i >> kBlockBits);
    block[i & kBlockMask] = T(std::forward<Args>(args)...);
  }

  /// The element at published index `i` (see class comment).
  const T& operator[](size_t i) const {
    const T* block =
        blocks_[i >> kBlockBits].load(std::memory_order_acquire);
    return block[i & kBlockMask];
  }

 private:
  T* EnsureBlock(size_t b) {
    T* block = blocks_[b].load(std::memory_order_acquire);
    if (block != nullptr) return block;
    T* fresh = new T[kBlockSize]();
    if (blocks_[b].compare_exchange_strong(block, fresh,
                                           std::memory_order_acq_rel)) {
      return fresh;
    }
    delete[] fresh;  // another writer won the race
    return block;
  }

  std::atomic<T*> blocks_[kMaxBlockCount];
};

}  // namespace store
}  // namespace accltl

#endif  // ACCLTL_STORE_STABLE_VECTOR_H_
