#include "src/store/fact_set.h"

#include <iterator>

namespace accltl {
namespace store {

const FactSet::Ptr& FactSet::Empty() {
  static const Ptr empty = Ptr(new FactSet());
  return empty;
}

FactSet::Ptr FactSet::Make(std::vector<FactId> sorted_ids) {
  if (sorted_ids.empty()) return Empty();
  auto set = std::shared_ptr<FactSet>(new FactSet());
  const Store& store = Store::Get();
  uint64_t h = 0;
  for (FactId id : sorted_ids) h ^= store.fact_hash(id);
  set->ids_ = std::move(sorted_ids);
  set->hash_ = h;
  return set;
}

FactSet::Ptr FactSet::FromSorted(std::vector<FactId> ids) {
  return Make(std::move(ids));
}

FactSet::Ptr FactSet::FromUnsorted(std::vector<FactId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return Make(std::move(ids));
}

FactSet::Ptr FactSet::WithFact(const Ptr& base, FactId id, bool* added) {
  const std::vector<FactId>& ids = base->ids_;
  auto pos = std::lower_bound(ids.begin(), ids.end(), id);
  if (pos != ids.end() && *pos == id) {
    if (added != nullptr) *added = false;
    return base;
  }
  auto set = std::shared_ptr<FactSet>(new FactSet());
  set->ids_.reserve(ids.size() + 1);
  set->ids_.insert(set->ids_.end(), ids.begin(), pos);
  set->ids_.push_back(id);
  set->ids_.insert(set->ids_.end(), pos, ids.end());
  set->hash_ = base->hash_ ^ Store::Get().fact_hash(id);
  if (added != nullptr) *added = true;
  return set;
}

FactSet::Ptr FactSet::Union(const Ptr& a, const Ptr& b) {
  if (a->empty() || b.get() == a.get()) return b;
  if (b->empty()) return a;
  std::vector<FactId> merged;
  merged.reserve(a->size() + b->size());
  std::set_union(a->ids_.begin(), a->ids_.end(), b->ids_.begin(),
                 b->ids_.end(), std::back_inserter(merged));
  if (merged.size() == a->size()) return a;  // b ⊆ a
  if (merged.size() == b->size()) return b;  // a ⊆ b
  return Make(std::move(merged));
}

bool FactSet::SubsetOf(const FactSet& other) const {
  if (size() > other.size()) return false;
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

}  // namespace store
}  // namespace accltl
