#include "src/store/match_index.h"

namespace accltl {
namespace store {

const std::vector<FactId> MatchIndexCache::kEmpty;

const std::vector<FactId>& MatchIndexCache::Lookup(const FactSet::Ptr& set,
                                                   int position, ValueId v) {
  if (set->empty()) return kEmpty;
  PerSet& entry = cache_[set.get()];
  if (entry.keep_alive == nullptr) entry.keep_alive = set;
  auto [pos_it, built] = entry.by_position.try_emplace(position);
  if (built) {
    const Store& store = Store::Get();
    for (FactId id : set->ids()) {
      const std::vector<ValueId>& vals = store.fact_values(id);
      if (static_cast<size_t>(position) >= vals.size()) continue;
      (*pos_it).second[vals[static_cast<size_t>(position)]].push_back(id);
    }
  }
  auto it = pos_it->second.find(v);
  return it == pos_it->second.end() ? kEmpty : it->second;
}

void MatchIndexCache::Clear() { cache_.clear(); }

}  // namespace store
}  // namespace accltl
