#include "src/store/match_index.h"

namespace accltl {
namespace store {

const std::vector<FactId> MatchIndexCache::kEmpty;
const MatchIndexCache::PositionIndex MatchIndexCache::kEmptyIndex;

const MatchIndexCache::PositionIndex* MatchIndexCache::Find(
    const FactSet::Ptr& set, int position) {
  if (set->empty()) return &kEmptyIndex;
  Key key(set.get(), position);
  Shard& shard = shards_[KeyHash{}(key)&(kShards - 1)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) return it->second.index.get();
  // Build under the shard mutex: each (set, position) index is built
  // exactly once and is immutable afterwards, so references handed out
  // by Get() can never be invalidated by later lookups.
  auto index = std::make_shared<PositionIndex>();
  const Store& store = Store::Get();
  for (FactId id : set->ids()) {
    const std::vector<ValueId>& vals = store.fact_values(id);
    if (static_cast<size_t>(position) >= vals.size()) continue;
    index->by_value[vals[static_cast<size_t>(position)]].push_back(id);
  }
  Entry entry;
  entry.keep_alive = set;
  entry.index = std::move(index);
  return shard.entries.emplace(key, std::move(entry))
      .first->second.index.get();
}

void MatchIndexCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
  }
}

size_t MatchIndexCache::num_indexed_sets() const {
  // Counts distinct sets (not (set, position) entries), matching the
  // pre-sharded cache's notion.
  size_t count = 0;
  std::vector<const FactSet*> seen;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.entries) {
      bool is_new = true;
      for (const FactSet* s : seen) {
        if (s == key.first) {
          is_new = false;
          break;
        }
      }
      if (is_new) {
        seen.push_back(key.first);
        ++count;
      }
    }
  }
  return count;
}

}  // namespace store
}  // namespace accltl
