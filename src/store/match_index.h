#ifndef ACCLTL_STORE_MATCH_INDEX_H_
#define ACCLTL_STORE_MATCH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/store/fact_set.h"

namespace accltl {
namespace store {

/// Memoized per-relation match indexes for homomorphism search.
///
/// Keyed by the physical FactSet (not by instance): copy-on-write
/// instances share unchanged relations, so an index built while
/// matching at one search node is reused verbatim at every descendant
/// node whose relation was untouched — exactly the common case in
/// witness search, where each transition touches one relation.
///
/// The cache holds a shared_ptr to every indexed set, both to keep the
/// index valid and to prevent a freed set's address from aliasing a new
/// set. It grows until Clear() — size it by owner lifetime (per search
/// / per exploration); there is deliberately no automatic eviction,
/// because callers hold returned references across nested Lookups.
class MatchIndexCache {
 public:
  MatchIndexCache() = default;

  /// Fact ids of `set` whose value at `position` equals `v`, ascending.
  /// The reference is valid until Clear() (Lookup never evicts).
  const std::vector<FactId>& Lookup(const FactSet::Ptr& set, int position,
                                    ValueId v);

  void Clear();
  size_t num_indexed_sets() const { return cache_.size(); }

 private:
  struct PerSet {
    FactSet::Ptr keep_alive;
    /// position -> (value id -> ascending fact ids). Built lazily per
    /// position on first lookup.
    std::unordered_map<int, std::unordered_map<ValueId, std::vector<FactId>>>
        by_position;
  };

  std::unordered_map<const FactSet*, PerSet> cache_;
  static const std::vector<FactId> kEmpty;
};

}  // namespace store
}  // namespace accltl

#endif  // ACCLTL_STORE_MATCH_INDEX_H_
