#ifndef ACCLTL_STORE_MATCH_INDEX_H_
#define ACCLTL_STORE_MATCH_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/store/fact_set.h"

namespace accltl {
namespace store {

/// Memoized per-relation match indexes for homomorphism search.
///
/// Keyed by the physical FactSet (not by instance): copy-on-write
/// instances share unchanged relations, so an index built while
/// matching at one search node is reused verbatim at every other node
/// sharing the relation — including nodes being expanded *concurrently
/// by other workers*, which is exactly the sharing pattern of the
/// parallel engine.
///
/// Concurrency design (and the fix for the old cache's latent aliasing
/// bug): an index is built exactly once, into an immutable PositionIndex
/// owned by shared_ptr, and only then published. Lookups never mutate
/// published state, so a reference returned to one caller can never be
/// invalidated by another caller's lookup — the old cache grew per-set
/// maps in place on every read, which aliased across the COW-sharing
/// search nodes holding references into it and was unsafe the moment a
/// second reader appeared. The cache pins every indexed set
/// (shared_ptr), both to keep indexes valid and to prevent a freed
/// set's address from keying a different set.
///
/// Sharded: (set, position) keys are striped over kShards mutexes, so
/// concurrent readers of different relations do not contend. Clear()
/// requires external quiescence (no concurrent lookups) — callers size
/// the cache by owner lifetime (per search / per exploration).
class MatchIndexCache {
 private:
  struct PositionIndex;  // defined below; LocalView holds pointers to it

 public:
  MatchIndexCache() = default;

  /// Fact ids of `set` whose value at `position` equals `v`, ascending.
  /// Thread-safe. The reference is valid until Clear().
  const std::vector<FactId>& Lookup(const FactSet::Ptr& set, int position,
                                    ValueId v) {
    return Find(set, position)->Get(v);
  }

  /// Per-worker memo of resolved (set, position) indexes: skips the
  /// shard mutex on repeat lookups, which is the common case inside one
  /// worker's backtracking join. Views hold raw pointers into the
  /// shared cache and must not outlive it or span a Clear().
  class LocalView {
   public:
    explicit LocalView(MatchIndexCache* cache) : cache_(cache) {}

    const std::vector<FactId>& Lookup(const FactSet::Ptr& set, int position,
                                      ValueId v) {
      Key key(set.get(), position);
      auto it = memo_.find(key);
      const PositionIndex* index;
      if (it != memo_.end()) {
        index = it->second;
      } else {
        index = cache_->Find(set, position);
        memo_.emplace(key, index);
      }
      return index->Get(v);
    }

    /// Drops the memo (the raw PositionIndex pointers). Must be called
    /// before the owning cache's Clear() when the view outlives it.
    void Reset() { memo_.clear(); }

   private:
    using Key = std::pair<const FactSet*, int>;
    struct KeyHash {
      size_t operator()(const Key& k) const {
        return static_cast<size_t>(
            Mix64(reinterpret_cast<uintptr_t>(k.first) ^
                  (static_cast<uint64_t>(k.second) << 48)));
      }
    };
    MatchIndexCache* cache_;
    std::unordered_map<Key, const PositionIndex*, KeyHash> memo_;
  };

  /// Drops all indexes. Requires quiescence: no concurrent Lookup and
  /// no live LocalView or returned reference.
  void Clear();
  size_t num_indexed_sets() const;

 private:
  friend class LocalView;

  /// Immutable once published: value id -> ascending fact ids.
  struct PositionIndex {
    PositionIndex() = default;
    std::unordered_map<ValueId, std::vector<FactId>> by_value;

    const std::vector<FactId>& Get(ValueId v) const {
      auto it = by_value.find(v);
      return it == by_value.end() ? kEmpty : it->second;
    }
  };

  struct Entry {
    FactSet::Ptr keep_alive;
    std::shared_ptr<const PositionIndex> index;
  };

  using Key = std::pair<const FactSet*, int>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(
          Mix64(reinterpret_cast<uintptr_t>(k.first) ^
                (static_cast<uint64_t>(k.second) << 48)));
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> entries;
  };

  /// Finds or builds (once, under the shard mutex) the index for
  /// (set, position). The returned pointer stays valid until Clear().
  const PositionIndex* Find(const FactSet::Ptr& set, int position);

  static constexpr size_t kShards = 16;  // power of two
  static const std::vector<FactId> kEmpty;
  static const PositionIndex kEmptyIndex;

  Shard shards_[kShards];
};

}  // namespace store
}  // namespace accltl

#endif  // ACCLTL_STORE_MATCH_INDEX_H_
