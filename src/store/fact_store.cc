#include "src/store/fact_store.h"

namespace accltl {
namespace store {

Store& Store::Get() {
  static Store* instance = new Store();  // never destroyed: ids outlive main
  return *instance;
}

ValueId Store::InternValue(const Value& v) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = value_ids_.find(v);
  if (it != value_ids_.end()) return it->second;
  ValueId id = static_cast<ValueId>(values_.size());
  values_.push_back(v);
  value_ids_.emplace(v, id);
  return id;
}

ValueId Store::TryFindValue(const Value& v) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = value_ids_.find(v);
  return it == value_ids_.end() ? kNoValueId : it->second;
}

FactId Store::InternTuple(const Tuple& t) {
  std::vector<ValueId> ids;
  ids.reserve(t.size());
  for (const Value& v : t) ids.push_back(InternValue(v));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fact_ids_.find(ids);
  if (it != fact_ids_.end()) return it->second;
  FactId id = static_cast<FactId>(facts_.size());
  FactRep rep;
  rep.hash = Mix64(ids.size());
  for (ValueId v : ids) rep.hash = Mix64(rep.hash ^ v);
  rep.values = ids;
  rep.decoded = t;
  facts_.push_back(std::move(rep));
  fact_ids_.emplace(std::move(ids), id);
  return id;
}

FactId Store::TryFindTuple(const Tuple& t) const {
  std::vector<ValueId> ids;
  ids.reserve(t.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Value& v : t) {
      auto it = value_ids_.find(v);
      if (it == value_ids_.end()) return kNoFactId;
      ids.push_back(it->second);
    }
    auto it = fact_ids_.find(ids);
    return it == fact_ids_.end() ? kNoFactId : it->second;
  }
}

size_t Store::num_values() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_.size();
}

size_t Store::num_facts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return facts_.size();
}

}  // namespace store
}  // namespace accltl
