#include "src/store/fact_store.h"

namespace accltl {
namespace store {

namespace {

// Per-thread hit caches in front of the sharded interner. Search
// workers re-intern the same few payloads (fresh-value tuples, guard
// constants) millions of times; the ids are stable for the process
// lifetime, so a positive answer can be replayed without touching the
// shard mutexes — which otherwise become the contention point of the
// parallel engine. Negative answers are never cached (the payload may
// be interned by another thread at any time). Bounded: reset when
// oversized, correctness unaffected (pure cache of immutable facts).
constexpr size_t kLocalCacheCap = 1u << 16;

std::unordered_map<Value, ValueId, ValueHash>& LocalValueCache() {
  thread_local std::unordered_map<Value, ValueId, ValueHash> cache;
  if (cache.size() >= kLocalCacheCap) cache.clear();
  return cache;
}

std::unordered_map<Tuple, FactId, TupleHash>& LocalFactCache() {
  thread_local std::unordered_map<Tuple, FactId, TupleHash> cache;
  if (cache.size() >= kLocalCacheCap) cache.clear();
  return cache;
}

}  // namespace

Store& Store::Get() {
  static Store* instance = new Store();  // never destroyed: ids outlive main
  return *instance;
}

ValueId Store::InternValue(const Value& v) {
  std::unordered_map<Value, ValueId, ValueHash>& local = LocalValueCache();
  auto hit = local.find(v);
  if (hit != local.end()) return hit->second;
  ValueId id = InternValueSlow(v);
  local.emplace(v, id);
  return id;
}

ValueId Store::InternValueSlow(const Value& v) {
  ValueShard& shard = value_shard(v);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.ids.find(v);
  if (it != shard.ids.end()) return it->second;
  // Ids are dense across shards; the payload is written before the id
  // escapes (map insert under the shard mutex), so readers that obtain
  // the id — through this shard or any later happens-before edge — see
  // constructed data.
  ValueId id =
      static_cast<ValueId>(next_value_id_.fetch_add(1, std::memory_order_acq_rel));
  values_.Emplace(static_cast<size_t>(id), v);
  shard.ids.emplace(v, id);
  return id;
}

ValueId Store::TryFindValue(const Value& v) const {
  // Positive answers are stable and replayed from the thread-local
  // cache; negatives must always re-check (another thread may intern
  // the value at any moment).
  std::unordered_map<Value, ValueId, ValueHash>& local = LocalValueCache();
  auto hit = local.find(v);
  if (hit != local.end()) return hit->second;
  ValueShard& shard = value_shard(v);
  ValueId id = kNoValueId;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.ids.find(v);
    if (it != shard.ids.end()) id = it->second;
  }
  if (id != kNoValueId) local.emplace(v, id);
  return id;
}

FactId Store::InternTuple(const Tuple& t) {
  std::unordered_map<Tuple, FactId, TupleHash>& local = LocalFactCache();
  auto hit = local.find(t);
  if (hit != local.end()) return hit->second;
  FactId id = InternTupleSlow(t);
  local.emplace(t, id);
  return id;
}

FactId Store::InternTupleSlow(const Tuple& t) {
  std::vector<ValueId> ids;
  ids.reserve(t.size());
  for (const Value& v : t) ids.push_back(InternValue(v));
  FactShard& shard = fact_shard(ids);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.ids.find(ids);
  if (it != shard.ids.end()) return it->second;
  FactId id =
      static_cast<FactId>(next_fact_id_.fetch_add(1, std::memory_order_acq_rel));
  FactRep rep;
  rep.hash = Mix64(ids.size());
  for (ValueId v : ids) rep.hash = Mix64(rep.hash ^ v);
  rep.values = ids;
  rep.decoded = t;
  facts_.Emplace(static_cast<size_t>(id), std::move(rep));
  shard.ids.emplace(std::move(ids), id);
  return id;
}

FactId Store::TryFindTuple(const Tuple& t) const {
  std::unordered_map<Tuple, FactId, TupleHash>& local = LocalFactCache();
  auto hit = local.find(t);
  if (hit != local.end()) return hit->second;
  std::vector<ValueId> ids;
  ids.reserve(t.size());
  for (const Value& v : t) {
    ValueId id = TryFindValue(v);
    if (id == kNoValueId) return kNoFactId;
    ids.push_back(id);
  }
  FactShard& shard = fact_shard(ids);
  FactId id = kNoFactId;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.ids.find(ids);
    if (it != shard.ids.end()) id = it->second;
  }
  if (id != kNoFactId) local.emplace(t, id);
  return id;
}

}  // namespace store
}  // namespace accltl
