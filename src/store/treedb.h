#ifndef ACCLTL_STORE_TREEDB_H_
#define ACCLTL_STORE_TREEDB_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/store/fact_store.h"
#include "src/store/stable_vector.h"

namespace accltl {
namespace store {

/// Dense id of an interned tree node. Refs are assigned in
/// first-interning order within one TreeDb and stay valid until
/// `Clear()`; `kNilTreeRef` is the canonical empty set.
using TreeRef = uint32_t;
inline constexpr TreeRef kNilTreeRef = 0;

/// Concurrent tree-compressed configuration database (the treedbs-ll
/// idea from the multi-core model-checking playbook): a configuration's
/// fact-id sets and its automaton/tableau state fold into a binary tree
/// of interned nodes, so shared subtrees across the whole frontier —
/// and across the entire visited history — are stored exactly once.
///
/// Two tree families share one node arena:
///
///  - *Sets* of uint32 keys (fact ids, tableau states) are big-endian
///    Patricia tries: the shape is a function of the key set alone
///    (never of insertion order), so equal sets always intern to the
///    same root ref, and `InsertSet` derives a superset root by
///    path-copying O(log u) nodes (u = key bit-width) — the delta a
///    successor configuration needs when one access adds its response
///    facts to one relation.
///  - *Tuples* of fixed length fold as a balanced tree of interned
///    (left, right) pairs; `UpdateTuple` replaces one slot by copying
///    the O(log n) pairs on its spine.
///
/// Injectivity (the exact-confirmation property): interning is
/// hash-consing over the full node payload, and each family's shape is
/// canonical, so within one fold discipline equal refs ⇔ structurally
/// identical trees ⇔ equal contents. A visited table storing refs
/// therefore needs no separate exact confirmation — ref equality *is*
/// the exact check; a hash collision can never conflate two
/// configurations. (Node kinds are part of the interning key, so a
/// leaf, a Patricia branch and a tuple pair can never alias.)
///
/// Thread-safety: interning is striped like store::Store — sharded
/// maps under per-shard mutexes, payloads written into block-stable
/// storage before the ref escapes the shard mutex. Read paths
/// (`SetContains`, stats) are lock-free on published refs. `Clear()`
/// requires quiescence (no concurrent interning) and invalidates every
/// outstanding ref; the two-phase searches call it from the pilot
/// reset hook so the level sweep re-interns from scratch and
/// `num_nodes()` stays schedule-independent.
class TreeDb {
 public:
  TreeDb() = default;
  TreeDb(const TreeDb&) = delete;
  TreeDb& operator=(const TreeDb&) = delete;

  // --- Sets (canonical Patricia tries over uint32 keys) ---

  /// Derives `set ∪ {key}`; returns `set` itself when already present.
  TreeRef InsertSet(TreeRef set, uint32_t key);

  bool SetContains(TreeRef set, uint32_t key) const;

  /// Folds a whole key set (any order; duplicates collapse). Equal
  /// sets yield equal refs regardless of order.
  TreeRef SetFromKeys(const uint32_t* keys, size_t n);

  // --- Tuples (balanced folds of fixed length) ---

  /// Interns a scalar leaf (e.g. an automaton state).
  TreeRef InternLeaf(uint32_t value);

  /// Interns one (left, right) pair node.
  TreeRef InternPair(TreeRef left, TreeRef right);

  /// Balanced fold of `n` slot refs (n >= 1 interns pairs; n == 0
  /// returns kNilTreeRef; n == 1 returns the slot itself).
  TreeRef InternTuple(const TreeRef* slots, size_t n);

  /// Replaces slot `index` of an `n`-slot tuple built by InternTuple,
  /// re-interning only the O(log n) pairs on the slot's spine.
  TreeRef UpdateTuple(TreeRef root, size_t n, size_t index, TreeRef value);

  // --- Stats / lifecycle ---

  /// Distinct nodes interned since construction / the last Clear().
  /// Deterministic for the schedule-independent searches: the set of
  /// interned trees is a function of the explored configurations, not
  /// of worker scheduling (ref *values* are not).
  size_t num_nodes() const {
    return next_ref_.load(std::memory_order_acquire) - 1;
  }

  /// Arena payload bytes of the interned nodes (num_nodes ×
  /// sizeof(node)); the deterministic share of the structure's
  /// footprint (hash-map overhead varies with sharding).
  size_t bytes() const { return num_nodes() * kNodeBytes; }

  static constexpr size_t kNodeBytes = 4 * sizeof(uint32_t);

  /// Discards every node. Quiescent callers only; invalidates all
  /// outstanding refs.
  void Clear();

 private:
  // Node payload: (tag, a, b, c).
  //  - leaf:   tag = kTagLeaf,            a = value
  //  - branch: tag = kTagBranch + bitpos, a = prefix, b = left, c = right
  //  - pair:   tag = kTagPair,            a = left,   b = right
  struct Node {
    uint32_t tag = 0;
    uint32_t a = 0;
    uint32_t b = 0;
    uint32_t c = 0;
  };
  static constexpr uint32_t kTagLeaf = 1;
  static constexpr uint32_t kTagPair = 2;
  static constexpr uint32_t kTagBranch = 16;  // + bit position (0..31)

  static constexpr size_t kShards = 32;  // power of two

  struct NodeKey {
    uint32_t tag, a, b, c;
    friend bool operator==(const NodeKey& x, const NodeKey& y) {
      return x.tag == y.tag && x.a == y.a && x.b == y.b && x.c == y.c;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      uint64_t h = Mix64((uint64_t{k.tag} << 32) | k.a);
      h = Mix64(h ^ ((uint64_t{k.b} << 32) | k.c));
      return static_cast<size_t>(h);
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<NodeKey, TreeRef, NodeKeyHash> refs;
  };

  TreeRef Intern(uint32_t tag, uint32_t a, uint32_t b, uint32_t c);
  const Node& node(TreeRef r) const { return nodes_[r]; }

  TreeRef InternLeafNode(uint32_t key) { return Intern(kTagLeaf, key, 0, 0); }
  TreeRef InternBranch(uint32_t prefix, uint32_t bitpos, TreeRef left,
                       TreeRef right) {
    return Intern(kTagBranch + bitpos, prefix, left, right);
  }
  /// Joins two tries whose prefixes diverge (Patricia `join`).
  TreeRef Join(uint32_t p1, TreeRef t1, uint32_t p2, TreeRef t2);

  mutable Shard shards_[kShards];
  std::atomic<uint32_t> next_ref_{1};  // 0 = kNilTreeRef
  StableVector<Node> nodes_;
};

}  // namespace store
}  // namespace accltl

#endif  // ACCLTL_STORE_TREEDB_H_
