#ifndef ACCLTL_STORE_FACT_SET_H_
#define ACCLTL_STORE_FACT_SET_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "src/store/fact_store.h"

namespace accltl {
namespace store {

/// An immutable, shareable set of interned facts: the per-relation
/// building block of copy-on-write instances.
///
/// Invariants:
///  - `ids()` is strictly ascending (sorted by FactId, no duplicates);
///  - `hash()` is the XOR-fold of `Store::fact_hash` over the members,
///    maintained incrementally (commutative, so insertion order is
///    irrelevant and single-fact derivation is O(1) hash work);
///  - a FactSet never changes after construction — mutation derives a
///    new set (`WithFact`, `UnionWith`), so any number of instances can
///    alias one set safely.
class FactSet {
 public:
  using Ptr = std::shared_ptr<const FactSet>;

  /// The canonical empty set (shared; never null).
  static const Ptr& Empty();

  /// `ids` must be sorted ascending and duplicate-free.
  static Ptr FromSorted(std::vector<FactId> ids);
  /// Sorts and deduplicates.
  static Ptr FromUnsorted(std::vector<FactId> ids);

  const std::vector<FactId>& ids() const { return ids_; }
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  uint64_t hash() const { return hash_; }

  bool Contains(FactId id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  /// Derives `base` plus `id`. `*added` (optional) reports whether the
  /// fact was new; when it was not, `base` itself is returned (no copy).
  static Ptr WithFact(const Ptr& base, FactId id, bool* added = nullptr);

  /// Derives the union of `a` and `b` (sorted merge; returns an
  /// existing side unchanged when the other is a subset of it).
  static Ptr Union(const Ptr& a, const Ptr& b);

  bool SubsetOf(const FactSet& other) const;

  friend bool operator==(const FactSet& a, const FactSet& b) {
    return a.hash_ == b.hash_ && a.ids_ == b.ids_;
  }
  friend bool operator!=(const FactSet& a, const FactSet& b) {
    return !(a == b);
  }

 private:
  FactSet() = default;
  static Ptr Make(std::vector<FactId> sorted_ids);

  std::vector<FactId> ids_;
  uint64_t hash_ = 0;
};

}  // namespace store
}  // namespace accltl

#endif  // ACCLTL_STORE_FACT_SET_H_
