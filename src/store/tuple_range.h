#ifndef ACCLTL_STORE_TUPLE_RANGE_H_
#define ACCLTL_STORE_TUPLE_RANGE_H_

#include <algorithm>
#include <cstddef>
#include <set>

#include "src/common/value.h"
#include "src/store/fact_set.h"

namespace accltl {
namespace store {

/// A lightweight read-only range of tuples, unifying the two physical
/// representations the library uses: interned fact-id spans (instances)
/// and plain std::set<Tuple> (canonical databases, bindings). Iteration
/// yields `const Tuple&` either way; fact-id mode decodes through the
/// global store at O(1) per step with no allocation.
///
/// A default-constructed range is empty — "no interpretation" and "the
/// empty interpretation" are deliberately the same thing here.
class TupleRange {
 public:
  TupleRange() = default;
  /// Fact-id mode. `set` may be null (empty range). The range does not
  /// keep the set alive; the caller's set must outlive the range.
  explicit TupleRange(const FactSet* set)
      : ids_(set == nullptr || set->empty() ? nullptr : set->ids().data()),
        size_(set == nullptr ? 0 : set->size()) {}
  /// Set mode. `tuples` may be null (empty range).
  explicit TupleRange(const std::set<Tuple>* tuples)
      : set_(tuples), size_(tuples == nullptr ? 0 : tuples->size()) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Contains(const Tuple& t) const {
    if (set_ != nullptr) return set_->count(t) > 0;
    if (ids_ == nullptr) return false;
    FactId id = Store::Get().TryFindTuple(t);
    if (id == kNoFactId) return false;
    return std::binary_search(ids_, ids_ + size_, id);  // ids ascending
  }

  class const_iterator {
   public:
    const_iterator(const FactId* p, std::set<Tuple>::const_iterator it,
                   bool use_set)
        : p_(p), it_(it), use_set_(use_set) {}

    const Tuple& operator*() const {
      return use_set_ ? *it_ : Store::Get().tuple(*p_);
    }
    const Tuple* operator->() const { return &**this; }
    const_iterator& operator++() {
      if (use_set_) {
        ++it_;
      } else {
        ++p_;
      }
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.use_set_ ? a.it_ == b.it_ : a.p_ == b.p_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return !(a == b);
    }

   private:
    const FactId* p_;
    std::set<Tuple>::const_iterator it_;
    bool use_set_;
  };

  const_iterator begin() const {
    if (set_ != nullptr) return const_iterator(nullptr, set_->begin(), true);
    return const_iterator(ids_, {}, false);
  }
  const_iterator end() const {
    if (set_ != nullptr) return const_iterator(nullptr, set_->end(), true);
    return const_iterator(ids_ == nullptr ? nullptr : ids_ + size_, {},
                          false);
  }

 private:
  const FactId* ids_ = nullptr;
  const std::set<Tuple>* set_ = nullptr;
  size_t size_ = 0;
};

}  // namespace store
}  // namespace accltl

#endif  // ACCLTL_STORE_TUPLE_RANGE_H_
