#include "src/store/treedb.h"

#include "src/obs/metrics.h"

namespace accltl {
namespace store {

namespace {

/// Intern traffic: total lookups and distinct-node misses (the arena
/// growth rate). Written relaxed outside the shard lock.
struct TreeDbMetrics {
  obs::Counter* interns;
  obs::Counter* intern_misses;
  static const TreeDbMetrics& Get() {
    static const TreeDbMetrics m{
        obs::Registry::Get().counter("store.treedb.interns"),
        obs::Registry::Get().counter("store.treedb.intern_misses"),
    };
    return m;
  }
};

/// Big-endian Patricia helpers (Okasaki–Gill). `mask` is a single bit;
/// a branch's prefix keeps the bits strictly above its mask bit.
inline bool ZeroBit(uint32_t key, uint32_t mask) { return (key & mask) == 0; }

inline uint32_t MaskPrefix(uint32_t key, uint32_t mask) {
  return key & (~(mask - 1) ^ mask);
}

inline bool MatchPrefix(uint32_t key, uint32_t prefix, uint32_t mask) {
  return MaskPrefix(key, mask) == prefix;
}

inline uint32_t HighestBit(uint32_t x) {
  x |= x >> 1;
  x |= x >> 2;
  x |= x >> 4;
  x |= x >> 8;
  x |= x >> 16;
  return x - (x >> 1);
}

inline uint32_t BitPos(uint32_t mask) {
  uint32_t pos = 0;
  while ((mask >> pos) != 1u) ++pos;
  return pos;
}

}  // namespace

TreeRef TreeDb::Intern(uint32_t tag, uint32_t a, uint32_t b, uint32_t c) {
  const TreeDbMetrics& metrics = TreeDbMetrics::Get();
  metrics.interns->Inc();
  NodeKey key{tag, a, b, c};
  Shard& shard = shards_[NodeKeyHash{}(key)&(kShards - 1)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.refs.find(key);
  if (it != shard.refs.end()) return it->second;
  metrics.intern_misses->Inc();
  TreeRef ref = next_ref_.fetch_add(1, std::memory_order_acq_rel);
  // Publish the payload before the ref escapes the shard mutex (the
  // StableVector release-store plus any happens-before edge the caller
  // passes the ref over makes it readable lock-free).
  nodes_.Emplace(ref, Node{tag, a, b, c});
  shard.refs.emplace(key, ref);
  return ref;
}

TreeRef TreeDb::Join(uint32_t p1, TreeRef t1, uint32_t p2, TreeRef t2) {
  uint32_t mask = HighestBit(p1 ^ p2);
  uint32_t prefix = MaskPrefix(p1, mask);
  return ZeroBit(p1, mask) ? InternBranch(prefix, BitPos(mask), t1, t2)
                           : InternBranch(prefix, BitPos(mask), t2, t1);
}

TreeRef TreeDb::InsertSet(TreeRef set, uint32_t key) {
  if (set == kNilTreeRef) return InternLeafNode(key);
  const Node n = node(set);
  if (n.tag == kTagLeaf) {
    if (n.a == key) return set;
    return Join(key, InternLeafNode(key), n.a, set);
  }
  // Branch node. (Pair nodes never appear inside a set trie: the two
  // fold disciplines share the arena but never each other's roots.)
  uint32_t mask = 1u << (n.tag - kTagBranch);
  if (!MatchPrefix(key, n.a, mask)) {
    return Join(key, InternLeafNode(key), n.a, set);
  }
  if (ZeroBit(key, mask)) {
    TreeRef left = InsertSet(n.b, key);
    return left == n.b ? set : InternBranch(n.a, n.tag - kTagBranch, left, n.c);
  }
  TreeRef right = InsertSet(n.c, key);
  return right == n.c ? set : InternBranch(n.a, n.tag - kTagBranch, n.b, right);
}

bool TreeDb::SetContains(TreeRef set, uint32_t key) const {
  while (set != kNilTreeRef) {
    const Node& n = node(set);
    if (n.tag == kTagLeaf) return n.a == key;
    uint32_t mask = 1u << (n.tag - kTagBranch);
    if (!MatchPrefix(key, n.a, mask)) return false;
    set = ZeroBit(key, mask) ? n.b : n.c;
  }
  return false;
}

TreeRef TreeDb::SetFromKeys(const uint32_t* keys, size_t n) {
  TreeRef set = kNilTreeRef;
  for (size_t i = 0; i < n; ++i) set = InsertSet(set, keys[i]);
  return set;
}

TreeRef TreeDb::InternLeaf(uint32_t value) { return InternLeafNode(value); }

TreeRef TreeDb::InternPair(TreeRef left, TreeRef right) {
  return Intern(kTagPair, left, right, 0);
}

TreeRef TreeDb::InternTuple(const TreeRef* slots, size_t n) {
  if (n == 0) return kNilTreeRef;
  if (n == 1) return slots[0];
  size_t half = (n + 1) / 2;
  return InternPair(InternTuple(slots, half),
                    InternTuple(slots + half, n - half));
}

TreeRef TreeDb::UpdateTuple(TreeRef root, size_t n, size_t index,
                            TreeRef value) {
  if (n == 1) return value;
  const Node& pair = node(root);
  size_t half = (n + 1) / 2;
  if (index < half) {
    return InternPair(UpdateTuple(pair.a, half, index, value), pair.b);
  }
  return InternPair(pair.a,
                    UpdateTuple(pair.b, n - half, index - half, value));
}

void TreeDb::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.refs.clear();
  }
  // Stale arena slots are overwritten as refs are reassigned; blocks
  // stay allocated for reuse (Clear is a reset, not a shrink).
  next_ref_.store(1, std::memory_order_release);
}

}  // namespace store
}  // namespace accltl
