#ifndef ACCLTL_ENGINE_CANCEL_H_
#define ACCLTL_ENGINE_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace accltl {
namespace engine {

/// Cooperative cancellation token: an explicit cancel and/or a
/// wall-clock deadline, polled by the exploration workers at
/// node-expansion granularity (the same count-then-cut points as the
/// node budget).
///
/// Determinism contract: a token that never fires never changes any
/// result. `ShouldStop` on an unfired, deadline-free token is a single
/// relaxed atomic load — no writes, no fences, no clock reads — so
/// wiring a token through a search perturbs neither the schedule nor
/// the reduction. Once fired (from any thread), every worker observes
/// it at its next poll and the exploration aborts; the engines then
/// report `cancelled` instead of a definitive verdict (a witness found
/// *before* the cut is still returned — it is sound regardless).
///
/// Memory model: `Cancel()` (or the deadline poll that first observes
/// expiry) CASes the cause and then release-stores `fired_`; workers
/// acquire-load `fired_` and propagate through the explorer's existing
/// `abort` flag, which already carries a release/acquire edge to every
/// worker. The first cause to fire wins and is latched; later fires
/// are no-ops.
class CancelToken {
 public:
  enum class Cause : int {
    kNone = 0,
    kCancel = 1,
    kDeadline = 2,
  };

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Explicit cancellation; safe from any thread, idempotent.
  void Cancel() const { Fire(Cause::kCancel); }

  /// Arms the deadline. Call before handing the token to a search; the
  /// workers' polls fire it once the steady clock passes `when`.
  void ArmDeadline(std::chrono::steady_clock::time_point when) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            when.time_since_epoch())
            .count(),
        std::memory_order_release);
  }

  void ArmDeadlineAfter(std::chrono::milliseconds delay) {
    ArmDeadline(std::chrono::steady_clock::now() + delay);
  }

  bool fired() const { return fired_.load(std::memory_order_acquire); }

  /// Why the token fired (kNone while unfired). Latched: the first
  /// cause wins.
  Cause cause() const {
    return static_cast<Cause>(cause_.load(std::memory_order_acquire));
  }

  /// The worker-side poll: true once cancelled or past the deadline.
  /// Cheap when unfired (one load; plus one clock read when a deadline
  /// is armed) and write-free until the token actually fires.
  bool ShouldStop() const {
    if (fired_.load(std::memory_order_acquire)) return true;
    int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
    if (dl != 0 &&
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
                .count() >= dl) {
      Fire(Cause::kDeadline);
      return true;
    }
    return false;
  }

 private:
  void Fire(Cause cause) const {
    int expected = static_cast<int>(Cause::kNone);
    cause_.compare_exchange_strong(expected, static_cast<int>(cause),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire);
    fired_.store(true, std::memory_order_release);
  }

  mutable std::atomic<bool> fired_{false};
  mutable std::atomic<int> cause_{static_cast<int>(Cause::kNone)};
  std::atomic<int64_t> deadline_ns_{0};  // steady-clock ns; 0 = none
};

/// How the search engines store their visited set.
enum class VisitedMode {
  /// Full entries in the sharded visited table: each record keeps the
  /// exact (state, configuration) data, depth, and a materialized path
  /// for dominance checks.
  kExact,
  /// Tree-compressed entries: configurations fold into a store::TreeDb
  /// (shared subtrees stored once) and the visited table stores
  /// fixed-size tree-index slots (engine/compact_table.h). Verdicts,
  /// witnesses and node counts are byte-identical to kExact — ref
  /// equality is an exact identity check, never a lossy hash — the
  /// mode only changes the memory footprint (and is gated on that
  /// equivalence by the differential fuzzer's "compact" pair).
  kCompact,
};

/// The single source for execution-context knobs shared by every
/// search engine (worker count, cancellation, visited-set storage).
/// One ExecOptions flows from the caller — analysis::DecideOptions::
/// exec, or the service's per-request resolution — into every engine a
/// request touches, so two engines of one request can never disagree
/// on their worker count (the pre-service API hand-copied
/// `num_threads` into each engine's options struct, and a missed copy
/// silently changed results' timing).
struct ExecOptions {
  /// Search workers (engine::Explorer). 1 runs serially on the calling
  /// thread. Results are deterministic in this count — see the
  /// individual engines' schedule-independence notes.
  size_t num_threads = 1;
  /// Optional cooperative stop; null = not cancellable.
  const CancelToken* cancel = nullptr;
  /// Visited-set storage (exact records vs. tree-compressed indices).
  /// Never changes any verdict, witness, or node count — only bytes.
  VisitedMode visited_mode = VisitedMode::kExact;
  /// Budget over the visited set's accounted bytes
  /// (Stats::visited_bytes + the treedb arena in compact mode); 0 =
  /// unlimited. Exceeding it stops the search with exhausted_budget
  /// set, at the same count-then-cut points as the node budget — the
  /// knob that lets a fixed-RAM sweep truncate cleanly instead of
  /// OOMing, and the benchmarks show completing under kCompact where
  /// kExact is cut. Like a binding max_nodes, a binding byte budget is
  /// scoped out of the cross-thread-count determinism guarantee.
  size_t max_visited_bytes = 0;
};

}  // namespace engine
}  // namespace accltl

#endif  // ACCLTL_ENGINE_CANCEL_H_
