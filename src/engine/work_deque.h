#ifndef ACCLTL_ENGINE_WORK_DEQUE_H_
#define ACCLTL_ENGINE_WORK_DEQUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace accltl {
namespace engine {

/// Chase-Lev work-stealing deque (the C11 formulation of Lê, Pop,
/// Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing for
/// Weak Memory Models", PPoPP'13).
///
/// One owner thread pushes and pops at the bottom (LIFO — depth-first
/// on its own work); any number of thief threads steal from the top
/// (FIFO — they take the oldest, shallowest nodes, which in a
/// branch-and-bound search are the largest unexplored subtrees).
///
/// T must be trivially copyable (use a pointer). The deque never owns
/// the elements; callers manage lifetime. Retired buffers from grows
/// are kept until destruction because a concurrent thief may still be
/// reading a stale buffer pointer.
template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable<T>::value,
                "WorkStealingDeque elements must be trivially copyable");

 public:
  explicit WorkStealingDeque(int64_t initial_capacity = 256)
      : top_(0), bottom_(0) {
    auto buffer = std::make_unique<Buffer>(initial_capacity);
    buffer_.store(buffer.get(), std::memory_order_relaxed);
    retired_.push_back(std::move(buffer));
  }
  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. Pushes at the bottom.
  void Push(T item) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buffer = buffer_.load(std::memory_order_relaxed);
    if (b - t > buffer->capacity - 1) {
      buffer = Grow(buffer, t, b);
    }
    buffer->Put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only. Pops from the bottom (most recently pushed). Returns
  /// false when the deque is empty.
  bool Pop(T* out) {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buffer = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_relaxed);
    bool ok = false;
    if (t <= b) {
      *out = buffer->Get(b);
      ok = true;
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          ok = false;  // a thief got it
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return ok;
  }

  /// Any thread. Steals from the top (oldest). Returns false when the
  /// deque is empty or the steal lost a race (caller just retries
  /// elsewhere).
  bool Steal(T* out) {
    int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    Buffer* buffer = buffer_.load(std::memory_order_acquire);
    T item = buffer->Get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;  // lost the race
    }
    *out = item;
    return true;
  }

  /// Owner only (or quiescent). Approximate size.
  int64_t size() const {
    return bottom_.load(std::memory_order_relaxed) -
           top_.load(std::memory_order_relaxed);
  }

 private:
  struct Buffer {
    explicit Buffer(int64_t cap)
        : capacity(cap), data(new std::atomic<T>[static_cast<size_t>(cap)]) {}
    // Release/acquire on the element slot itself. The classic
    // formulation publishes elements through the release fence in
    // Push, which is correct but invisible to ThreadSanitizer (it
    // does not model fences); pairing the slot accesses directly
    // costs nothing on x86 and gives every consumer a first-class
    // happens-before edge to the element's pointee.
    T Get(int64_t i) const {
      return data[static_cast<size_t>(i % capacity)].load(
          std::memory_order_acquire);
    }
    void Put(int64_t i, T item) {
      data[static_cast<size_t>(i % capacity)].store(
          item, std::memory_order_release);
    }
    int64_t capacity;
    std::unique_ptr<std::atomic<T>[]> data;
  };

  Buffer* Grow(Buffer* old, int64_t t, int64_t b) {
    auto bigger = std::make_unique<Buffer>(old->capacity * 2);
    for (int64_t i = t; i < b; ++i) bigger->Put(i, old->Get(i));
    Buffer* raw = bigger.get();
    buffer_.store(raw, std::memory_order_release);
    retired_.push_back(std::move(bigger));  // old stays alive for thieves
    return raw;
  }

  std::atomic<int64_t> top_;
  std::atomic<int64_t> bottom_;
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;
};

}  // namespace engine
}  // namespace accltl

#endif  // ACCLTL_ENGINE_WORK_DEQUE_H_
