#ifndef ACCLTL_ENGINE_VISITED_TABLE_H_
#define ACCLTL_ENGINE_VISITED_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace accltl {
namespace engine {

namespace internal {
/// Visited-table instruments (shared by every ShardedVisitedTable
/// instantiation); resolved once, written relaxed off the hot path —
/// after the shard lock is released, never under it.
struct VisitedMetrics {
  obs::Counter* inserts;
  obs::Counter* dominated;
  obs::Histogram* probe_len;
  static const VisitedMetrics& Get() {
    static const VisitedMetrics m{
        obs::Registry::Get().counter("engine.visited.inserts"),
        obs::Registry::Get().counter("engine.visited.dominated"),
        obs::Registry::Get().histogram("engine.visited.probe_len"),
    };
    return m;
  }
};
}  // namespace internal

/// Sharded concurrent visited table for state-space exploration.
///
/// Keyed by a caller-supplied 64-bit hash (for the witness search:
/// Mix64 over (automaton state, configuration hash)); each hash bucket
/// keeps the full entries so the caller's dominance predicate can
/// confirm exactly on collision — a hash collision can never prune
/// wrongly. Buckets are striped over shards, each under its own mutex;
/// a check-and-insert is atomic per shard, so two workers racing the
/// same state resolve deterministically (one inserts, the other sees
/// the entry).
template <typename Entry>
class ShardedVisitedTable {
 public:
  explicit ShardedVisitedTable(size_t shard_count = 64)
      : mask_(RoundUpPow2(shard_count) - 1),
        shards_(RoundUpPow2(shard_count)) {}

  ShardedVisitedTable(const ShardedVisitedTable&) = delete;
  ShardedVisitedTable& operator=(const ShardedVisitedTable&) = delete;

  /// Atomically: if some existing entry with this hash dominates
  /// `entry` (per `dominates(existing, entry)` — which must include the
  /// exact-equality confirmation of whatever the hash abbreviates),
  /// returns true and inserts nothing. Otherwise inserts `entry`,
  /// drops existing entries that `entry` dominates — reporting each to
  /// `evict` first, so the caller can cancel in-flight work hanging
  /// off a superseded entry — and returns false.
  ///
  /// `dominates(a, b)` must mean "a's presence makes exploring b
  /// redundant" and be reflexive-compatible with the caller's search
  /// order (see DESIGN.md, deterministic reduction).
  template <typename Dominates, typename Evict>
  bool CheckAndInsert(uint64_t hash, Entry entry, const Dominates& dominates,
                      const Evict& evict) {
    const internal::VisitedMetrics& metrics = internal::VisitedMetrics::Get();
    size_t probes = 0;
    bool hit = false;
    {
      Shard& shard = shards_[static_cast<size_t>(hash) & mask_];
      std::lock_guard<std::mutex> lock(shard.mu);
      std::vector<Entry>& bucket = shard.buckets[hash];
      probes = bucket.size();
      for (const Entry& existing : bucket) {
        if (dominates(existing, entry)) {
          hit = true;
          break;
        }
      }
      if (!hit) {
        // Keep the bucket minimal: remove entries the newcomer
        // dominates.
        size_t kept = 0;
        for (size_t i = 0; i < bucket.size(); ++i) {
          if (dominates(entry, bucket[i])) {
            evict(bucket[i]);
          } else {
            if (kept != i) bucket[kept] = std::move(bucket[i]);
            ++kept;
          }
        }
        bucket.resize(kept);
        bucket.push_back(std::move(entry));
      }
    }
    metrics.probe_len->Record(probes);
    (hit ? metrics.dominated : metrics.inserts)->Inc();
    return hit;
  }

  template <typename Dominates>
  bool CheckAndInsert(uint64_t hash, Entry entry,
                      const Dominates& dominates) {
    return CheckAndInsert(hash, std::move(entry), dominates,
                          [](const Entry&) {});
  }

  /// Total entries across shards (quiescent callers only — counts
  /// under per-shard locks but not atomically across shards).
  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [hash, bucket] : shard.buckets) {
        total += bucket.size();
      }
    }
    return total;
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.buckets.clear();
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<Entry>> buckets;
  };

  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  size_t mask_;
  std::vector<Shard> shards_;
};

}  // namespace engine
}  // namespace accltl

#endif  // ACCLTL_ENGINE_VISITED_TABLE_H_
