#include "src/engine/thread_pool.h"

#include <algorithm>

namespace accltl {
namespace engine {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Global() {
  // Sized to the hardware, but never below 7 pool threads (8-way
  // regions): scaling knobs like --threads 8 must stay meaningful —
  // oversubscribed but correct — on small boxes and CI runners.
  static ThreadPool* pool = new ThreadPool(std::max<size_t>(
      7, std::thread::hardware_concurrency() == 0
             ? 1
             : std::thread::hardware_concurrency() - 1));
  return *pool;
}

void ThreadPool::Run(size_t parallelism,
                     const std::function<void(size_t)>& fn) {
  parallelism = std::max<size_t>(1, std::min(parallelism, size() + 1));
  if (parallelism == 1) {
    fn(0);
    return;
  }
  std::lock_guard<std::mutex> region(region_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    region_fn_ = &fn;
    region_parallelism_ = parallelism;
    active_ = parallelism - 1;  // pool-side workers
    ++generation_;
  }
  work_cv_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  region_fn_ = nullptr;
}

void ThreadPool::WorkerLoop(size_t pool_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t worker_index = 0;
    bool participate = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      worker_index = pool_index + 1;
      participate = worker_index < region_parallelism_;
      fn = region_fn_;
      // active_ counts participants only (parallelism - 1), so a
      // non-participating thread just goes back to sleep.
      if (!participate) continue;
    }
    (*fn)(worker_index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace engine
}  // namespace accltl
