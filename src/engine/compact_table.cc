#include "src/engine/compact_table.h"

#include <utility>

namespace accltl {
namespace engine {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

CompactVisitedTable::CompactVisitedTable(size_t shard_count)
    : shard_mask_(RoundUpPow2(shard_count) - 1),
      shards_(RoundUpPow2(shard_count)) {
  for (Shard& shard : shards_) shard.slots.resize(kInitialSlots);
}

void CompactVisitedTable::MaybeGrow(Shard* shard) {
  size_t cap = shard->slots.size();
  if ((shard->live + shard->tombstones + 1) * 10 < cap * 7) return;
  // Grow only when live entries crowd the array; a tombstone-heavy
  // shard rehashes at the same capacity, dropping the tombstones.
  size_t new_cap = (shard->live + 1) * 10 >= cap * 5 ? cap * 2 : cap;
  std::vector<CompactEntry> old;
  old.swap(shard->slots);
  shard->slots.resize(new_cap);
  shard->tombstones = 0;
  size_t mask = new_cap - 1;
  for (CompactEntry& entry : old) {
    if (entry.ref == store::kNilTreeRef || entry.ref == kTombstoneRef) {
      continue;
    }
    size_t probe = static_cast<size_t>(store::Mix64(entry.ref)) & mask;
    while (shard->slots[probe].ref != store::kNilTreeRef) {
      probe = (probe + 1) & mask;
    }
    shard->slots[probe] = std::move(entry);
  }
}

size_t CompactVisitedTable::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.live;
  }
  return total;
}

size_t CompactVisitedTable::capacity_bytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.slots.size() * sizeof(CompactEntry);
  }
  return total;
}

void CompactVisitedTable::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.slots.clear();
    shard.slots.resize(kInitialSlots);
    shard.live = 0;
    shard.tombstones = 0;
  }
}

CompactRefSet::CompactRefSet() : slots_(64) {}

bool CompactRefSet::Insert(store::TreeRef ref) {
  if (ref == store::kNilTreeRef) {
    // kNilTreeRef is a legitimate key — a single-relation empty
    // configuration folds to the canonical empty set, and InternTuple
    // over one slot returns that slot itself (treedb.h) — but it
    // doubles as the open-addressing empty-slot marker, so it is
    // tracked out of band.
    if (has_nil_) return false;
    has_nil_ = true;
    ++live_;
    return true;
  }
  if ((live_ + 1) * 10 >= slots_.size() * 7) Grow();
  size_t mask = slots_.size() - 1;
  size_t probe = static_cast<size_t>(store::Mix64(ref)) & mask;
  while (slots_[probe] != store::kNilTreeRef) {
    if (slots_[probe] == ref) return false;
    probe = (probe + 1) & mask;
  }
  slots_[probe] = ref;
  ++live_;
  return true;
}

void CompactRefSet::Grow() {
  std::vector<store::TreeRef> old;
  old.swap(slots_);
  slots_.resize(old.size() * 2);
  size_t mask = slots_.size() - 1;
  for (store::TreeRef ref : old) {
    if (ref == store::kNilTreeRef) continue;
    size_t probe = static_cast<size_t>(store::Mix64(ref)) & mask;
    while (slots_[probe] != store::kNilTreeRef) probe = (probe + 1) & mask;
    slots_[probe] = ref;
  }
}

}  // namespace engine
}  // namespace accltl
