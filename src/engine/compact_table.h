#ifndef ACCLTL_ENGINE_COMPACT_TABLE_H_
#define ACCLTL_ENGINE_COMPACT_TABLE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/obs/metrics.h"
#include "src/store/treedb.h"

namespace accltl {
namespace engine {

namespace internal {
/// Compact-table instruments; written relaxed after the shard lock is
/// released (no-perturbation contract, DESIGN.md §8).
struct CompactVisitedMetrics {
  obs::Counter* inserts;
  obs::Counter* dominated;
  obs::Histogram* probe_len;
  static const CompactVisitedMetrics& Get() {
    static const CompactVisitedMetrics m{
        obs::Registry::Get().counter("engine.cvisited.inserts"),
        obs::Registry::Get().counter("engine.cvisited.dominated"),
        obs::Registry::Get().histogram("engine.cvisited.probe_len"),
    };
    return m;
  }
};
}  // namespace internal

/// Entry of the compact visited table: the tree-compressed identity of
/// a search node plus the dominance tie-breakers. Where the exact
/// tables keep a full (state, Instance, depth, path, materialized
/// links) record per visited node — hundreds of bytes once the O(depth)
/// links vector and the per-relation handles are counted — a compact
/// entry is one fixed-size slot: the store::TreeDb ref *is* the exact
/// identity (ref equality ⇔ equal (state, configuration), see
/// treedb.h), and path comparisons walk the shared chain on the rare
/// ref-equal collision instead of keeping a per-entry pointer vector.
///
/// `path` is a type-erased pin of the engine::PathLink chain head (the
/// solvers know the concrete step type); it keeps the chain alive for
/// exactly as long as the entry can win a dominance comparison.
struct CompactEntry {
  store::TreeRef ref = store::kNilTreeRef;
  uint32_t depth = 0;
  std::shared_ptr<const void> path;
};

/// Cleary/quotient-style compact hash table over tree refs: sharded
/// open-addressing slot arrays storing CompactEntry values in place —
/// no per-bucket vectors, no node allocations, no stored 64-bit hash
/// (the ref quotient is the full identity, so the slot needs nothing
/// else). Preserves the ShardedVisitedTable contract exactly:
/// CheckAndInsert is atomic per shard, an existing dominating entry
/// suppresses the insert, and inserted entries evict entries they
/// dominate — reporting each to the evict hook first. Exact
/// confirmation is ref equality (false-positive-free by TreeDb
/// injectivity); a probe-sequence collision between distinct refs can
/// never conflate entries.
///
/// Deletion uses tombstones (kTombstoneRef), dropped on growth rehash.
class CompactVisitedTable {
 public:
  explicit CompactVisitedTable(size_t shard_count = 64);

  CompactVisitedTable(const CompactVisitedTable&) = delete;
  CompactVisitedTable& operator=(const CompactVisitedTable&) = delete;

  /// Atomically: if an existing entry with `entry.ref` dominates
  /// `entry` (per `dominates(existing, entry)`), returns true and
  /// inserts nothing. Otherwise inserts `entry`, drops existing
  /// same-ref entries it dominates — reporting each to `evict` first —
  /// and returns false. `dominates` is only ever called on entries
  /// with equal refs (the exact identity), mirroring the sharded
  /// table's "dominance only relates equal classes" discipline.
  ///
  /// Precondition: `entry.ref` is neither kNilTreeRef nor 0xffffffff —
  /// both are slot markers here. The searches satisfy this by
  /// construction: their entry refs come from TreeDb::InternPair over
  /// (state, configuration), which always allocates a real node; raw
  /// configuration refs, which CAN fold to kNilTreeRef, go through
  /// CompactRefSet instead.
  template <typename Dominates, typename Evict>
  bool CheckAndInsert(CompactEntry entry, const Dominates& dominates,
                      const Evict& evict) {
    assert(entry.ref != store::kNilTreeRef && entry.ref != kTombstoneRef);
    const internal::CompactVisitedMetrics& metrics =
        internal::CompactVisitedMetrics::Get();
    uint64_t probes = 0;
    bool hit = false;
    {
      Shard& shard = shards_[ShardIndex(entry.ref)];
      std::lock_guard<std::mutex> lock(shard.mu);
      MaybeGrow(&shard);
      size_t mask = shard.slots.size() - 1;
      size_t i = static_cast<size_t>(store::Mix64(entry.ref)) & mask;
      size_t insert_at = shard.slots.size();  // first reusable slot seen
      // Pass 1: suppression. Any dominating twin wins before we mutate.
      for (size_t probe = i;; probe = (probe + 1) & mask) {
        CompactEntry& slot = shard.slots[probe];
        ++probes;
        if (slot.ref == store::kNilTreeRef) break;
        if (slot.ref == kTombstoneRef) {
          if (insert_at == shard.slots.size()) insert_at = probe;
          continue;
        }
        if (slot.ref == entry.ref && dominates(slot, entry)) {
          hit = true;
          break;
        }
      }
      if (!hit) {
        // Pass 2: evict dominated twins, then insert.
        for (size_t probe = i;; probe = (probe + 1) & mask) {
          CompactEntry& slot = shard.slots[probe];
          if (slot.ref == store::kNilTreeRef) {
            if (insert_at == shard.slots.size()) insert_at = probe;
            break;
          }
          if (slot.ref == entry.ref && dominates(entry, slot)) {
            evict(slot);
            slot.ref = kTombstoneRef;
            slot.path.reset();
            ++shard.tombstones;
            --shard.live;
            if (insert_at == shard.slots.size()) insert_at = probe;
          }
        }
        CompactEntry& dest = shard.slots[insert_at];
        if (dest.ref == kTombstoneRef) --shard.tombstones;
        dest = std::move(entry);
        ++shard.live;
      }
    }
    metrics.probe_len->Record(probes);
    (hit ? metrics.dominated : metrics.inserts)->Inc();
    return hit;
  }

  template <typename Dominates>
  bool CheckAndInsert(CompactEntry entry, const Dominates& dominates) {
    return CheckAndInsert(std::move(entry), dominates,
                          [](const CompactEntry&) {});
  }

  /// Live entries across shards (quiescent callers only).
  size_t size() const;

  /// Deterministic footprint: live entries × slot size. (Allocated
  /// capacity additionally depends on how refs — whose values are
  /// schedule-dependent — spread over shards, so it is reported
  /// separately.)
  size_t bytes() const { return size() * sizeof(CompactEntry); }

  /// Allocated slot bytes (capacity × slot size, all shards).
  size_t capacity_bytes() const;

  void Clear();

 private:
  static constexpr store::TreeRef kTombstoneRef = 0xffffffffu;
  static constexpr size_t kInitialSlots = 16;  // per shard, power of two

  struct Shard {
    mutable std::mutex mu;
    std::vector<CompactEntry> slots;
    size_t live = 0;
    size_t tombstones = 0;
  };

  size_t ShardIndex(store::TreeRef ref) const {
    // Shard on high hash bits, probe on low: one ref's shard choice and
    // probe sequence stay independent.
    return static_cast<size_t>(store::Mix64(ref) >> 32) & shard_mask_;
  }

  /// Rehashes when live + tombstones crowd the slot array; grows only
  /// when live entries demand it (a tombstone-heavy shard rehashes in
  /// place). Caller holds the shard mutex.
  void MaybeGrow(Shard* shard);

  size_t shard_mask_;
  std::vector<Shard> shards_;
};

/// Serial quotient set of tree refs: the LTS explorer's seen-set,
/// consulted only inside the level barrier (one thread). Open
/// addressing over raw refs — ~4 bytes of payload per distinct
/// configuration versus a full Instance handle per entry in the exact
/// table. No deletions, so no tombstones. All ref values are legal
/// keys, including kNilTreeRef (a single-relation empty configuration
/// folds to it), which is held out of band of the slot array.
class CompactRefSet {
 public:
  CompactRefSet();

  CompactRefSet(const CompactRefSet&) = delete;
  CompactRefSet& operator=(const CompactRefSet&) = delete;

  /// True when `ref` was newly inserted; false when already present.
  bool Insert(store::TreeRef ref);

  size_t size() const { return live_; }
  /// Deterministic footprint: distinct refs × ref size.
  size_t bytes() const { return live_ * sizeof(store::TreeRef); }

 private:
  void Grow();

  std::vector<store::TreeRef> slots_;  // kNilTreeRef = empty
  bool has_nil_ = false;  // the out-of-band kNilTreeRef member bit
  size_t live_ = 0;
};

}  // namespace engine
}  // namespace accltl

#endif  // ACCLTL_ENGINE_COMPACT_TABLE_H_
