#ifndef ACCLTL_ENGINE_EXPLORER_H_
#define ACCLTL_ENGINE_EXPLORER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/engine/cancel.h"
#include "src/engine/thread_pool.h"
#include "src/engine/work_deque.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace accltl {
namespace engine {

namespace internal {
/// Process-wide explorer instruments, resolved once per process (the
/// registry lookup takes a lock; hot loops use these cached pointers).
/// All are write-only from the workers — see the no-perturbation
/// contract in DESIGN.md §8.
struct ExplorerMetrics {
  obs::Counter* pops;
  obs::Counter* steals;
  obs::Counter* levels;
  obs::Counter* idle_wait_us;
  obs::Histogram* deque_depth;
  static const ExplorerMetrics& Get() {
    static const ExplorerMetrics m{
        obs::Registry::Get().counter("engine.pops"),
        obs::Registry::Get().counter("engine.steals"),
        obs::Registry::Get().counter("engine.levels"),
        obs::Registry::Get().counter("engine.idle_wait_us"),
        obs::Registry::Get().histogram("engine.deque_depth"),
    };
    return m;
  }
};
}  // namespace internal

/// Generic parallel state-space exploration driver with two traversal
/// disciplines over the same worker/deque substrate.
///
/// `Run` is free-running: each worker depth-firsts its own Chase-Lev
/// deque (LIFO) and steals the oldest node from a sibling when idle.
/// With one worker this is exactly a deterministic depth-first search;
/// with several, the visit order is schedule-dependent — callers whose
/// result must not depend on scheduling use `RunLevels`.
///
/// `RunLevels` is level-synchronous (the discipline of multi-core BFS
/// reachability à la LTSmin): workers consume one depth level from the
/// work-stealing deques in any order, children are collected
/// per-worker, and a caller-supplied `reduce` runs at the barrier over
/// the *complete* child set — so deduplication and result reduction
/// see the same deterministic batch whatever the schedule, and the
/// surviving frontier (hence every per-level statistic) is identical
/// at every worker count.
///
/// Budget (both modes): pops are counted in one atomic; the pop that
/// exceeds `max_nodes` is counted, not visited, and aborts the
/// exploration — the same "count, then cut" semantics the serial
/// searches use, now enforced globally across workers.
///
/// Termination of `Run`: an atomic pending-node count (incremented
/// before a push becomes visible, decremented after its visit
/// completes) lets idle workers distinguish "no work anywhere" from
/// "work in flight". `RunLevels` terminates a level when its processed
/// count reaches the level size.
template <typename Node>
class Explorer {
 public:
  struct Options {
    size_t num_threads = 1;
    /// Budget over popped nodes; exceeding it aborts with
    /// budget_exhausted set.
    size_t max_nodes = static_cast<size_t>(-1);
    /// Cooperative stop, polled at the same count-then-cut points as
    /// the budget (before each pop). A token that never fires never
    /// perturbs the exploration (the poll is read-only); a fired token
    /// aborts all workers and sets Stats::cancelled.
    const CancelToken* cancel = nullptr;
  };

  struct Stats {
    size_t nodes_explored = 0;
    bool budget_exhausted = false;
    /// True when the exploration stopped on abort (budget, visitor, or
    /// cancellation) rather than by draining the frontier.
    bool aborted = false;
    /// True when Options::cancel fired and stopped the exploration.
    bool cancelled = false;
    /// Level mode only: number of completed level barriers (the depth
    /// of the deepest fully-reduced frontier).
    size_t levels_completed = 0;
    /// Visited-set accounting, filled in by the owning search (the
    /// explorer itself holds no visited table): bytes retained by the
    /// visited structure at the end of the run — full-entry deep sizes
    /// under VisitedMode::kExact, fixed-size index slots under
    /// kCompact. Deterministic at every worker count whenever the
    /// search itself is (the entry set is schedule-independent; only
    /// transient peaks are not).
    size_t visited_bytes = 0;
    /// Distinct store::TreeDb nodes interned (kCompact only; 0 under
    /// kExact). The tree-compression denominator: visited_bytes +
    /// treedb arena vs. the exact mode's footprint.
    size_t treedb_nodes = 0;
  };

  class Context;

  /// Level-synchronous exploration. Per level: workers drain the
  /// frontier through the work-stealing deques, calling
  /// `visit(std::unique_ptr<Node>, Context&)` which emits children via
  /// Context::Emit; at the barrier, `reduce` maps the per-worker child
  /// batches (ownership transferred as raw pointers, one vector per
  /// worker so the reducer can preserve allocation affinity) to the
  /// next frontier — dedup, pruning, reordering are the caller's
  /// policy. `reduce` runs on the calling thread between levels and
  /// may itself use the thread pool.
  ///
  /// Per-level aggregation hook: a reducer may instead take
  /// `(size_t level, batches)` — `level` is the depth of the children
  /// being reduced (1 for the roots' children), so callers that keep
  /// per-level statistics record them at the barrier without
  /// maintaining their own counter across calls.
  template <typename Visit, typename Reduce>
  Stats RunLevels(std::vector<std::unique_ptr<Node>> roots,
                  const Options& options, const Visit& visit,
                  const Reduce& reduce) {
    size_t workers = options.num_threads < 1 ? 1 : options.num_threads;
    // Don't touch (or lazily construct) the global pool for a serial
    // exploration.
    if (workers > 1) {
      workers = std::min(workers, ThreadPool::Global().size() + 1);
    }
    Shared shared(workers, options.max_nodes, options.cancel);
    std::vector<std::unique_ptr<Node>> frontier = std::move(roots);
    size_t level = 0;
    while (!frontier.empty() &&
           !shared.abort.load(std::memory_order_acquire)) {
      shared.level_size = frontier.size();
      shared.processed.store(0, std::memory_order_relaxed);
      for (auto& buffer : shared.emitted) buffer.clear();
      {
        obs::Span level_span("level", static_cast<int64_t>(level));
        if (workers == 1) {
          // Inline — a serial exploration never touches the pool.
          LevelWorker(0, 1, &shared, &frontier, visit);
        } else {
          ThreadPool::Global().Run(workers, [&](size_t w) {
            LevelWorker(w, workers, &shared, &frontier, visit);
          });
        }
      }
      frontier.clear();
      std::vector<std::vector<Node*>> batches(workers);
      for (size_t w = 0; w < workers; ++w) {
        batches[w].swap(shared.emitted[w]);
      }
      // The barrier poll: the reduce of a large level runs for
      // milliseconds with no pops, so check the token here too rather
      // than paying a whole reduce after the deadline fired.
      shared.Cancelled();
      if (shared.abort.load(std::memory_order_acquire)) {
        for (auto& batch : batches) {
          for (Node* child : batch) delete child;
        }
        break;
      }
      ++level;
      {
        obs::Span reduce_span("barrier-reduce", static_cast<int64_t>(level));
        if constexpr (std::is_invocable_v<Reduce, size_t,
                                          std::vector<std::vector<Node*>>>) {
          frontier = reduce(level, std::move(batches));
        } else {
          frontier = reduce(std::move(batches));
        }
      }
      internal::ExplorerMetrics::Get().levels->Inc();
    }
    // An abort can leave seeded nodes in the deques — free them
    // (single-threaded again after the pool region).
    Node* leftover = nullptr;
    for (auto& deque : shared.deques) {
      while (deque->Pop(&leftover)) delete leftover;
    }
    Stats stats = shared.SnapshotStats();
    stats.levels_completed = level;
    return stats;
  }

  /// Explores from `roots`. `visit(std::unique_ptr<Node>, Context&)`
  /// must be callable concurrently from `num_threads` workers.
  template <typename Visit>
  Stats Run(std::vector<std::unique_ptr<Node>> roots, const Options& options,
            const Visit& visit) {
    // The pool caps real parallelism at size() + 1; ask for more and
    // the extra deques would never drain, so clamp here too (but do
    // not touch the global pool for a serial exploration).
    size_t workers = options.num_threads < 1 ? 1 : options.num_threads;
    if (workers > 1) {
      workers = std::min(workers, ThreadPool::Global().size() + 1);
    }
    Shared shared(workers, options.max_nodes, options.cancel);
    // Seed round-robin. Owner-only push is fine here: the workers have
    // not started, and starting them synchronizes-with these writes.
    for (size_t i = 0; i < roots.size(); ++i) {
      shared.pending.fetch_add(1, std::memory_order_relaxed);
      shared.deques[i % workers]->Push(roots[i].release());
    }
    if (workers == 1) {
      // Inline — a serial exploration never touches the pool.
      WorkerLoop(0, 1, &shared, visit);
    } else {
      ThreadPool::Global().Run(workers, [&](size_t w) {
        WorkerLoop(w, workers, &shared, visit);
      });
    }
    // Drain whatever an abort left behind (single-threaded again).
    Node* leftover = nullptr;
    for (auto& deque : shared.deques) {
      while (deque->Pop(&leftover)) delete leftover;
    }
    return shared.SnapshotStats();
  }

 private:
  struct Shared {
    Shared(size_t workers, size_t max_nodes_in, const CancelToken* cancel_in)
        : emitted(workers), max_nodes(max_nodes_in), cancel(cancel_in) {
      deques.reserve(workers);
      for (size_t i = 0; i < workers; ++i) {
        deques.push_back(std::make_unique<WorkStealingDeque<Node*>>());
      }
    }

    /// The per-pop cancellation poll: raises the shared abort (and the
    /// cancelled stat) once the token fires. Read-only until then.
    bool Cancelled() {
      if (cancel == nullptr || !cancel->ShouldStop()) return false;
      cancelled.store(true, std::memory_order_relaxed);
      abort.store(true, std::memory_order_release);
      return true;
    }

    /// The Stats fields both traversal modes read back identically
    /// (RunLevels adds levels_completed; the owning search fills the
    /// visited/treedb accounting).
    Stats SnapshotStats() const {
      Stats stats;
      stats.nodes_explored = popped.load(std::memory_order_relaxed);
      stats.budget_exhausted =
          budget_exhausted.load(std::memory_order_relaxed);
      stats.aborted = abort.load(std::memory_order_relaxed);
      stats.cancelled = cancelled.load(std::memory_order_relaxed);
      return stats;
    }

    std::vector<std::unique_ptr<WorkStealingDeque<Node*>>> deques;
    std::atomic<size_t> pending{0};
    std::atomic<size_t> popped{0};
    std::atomic<size_t> processed{0};
    std::atomic<bool> abort{false};
    std::atomic<bool> budget_exhausted{false};
    std::atomic<bool> cancelled{false};
    std::vector<std::vector<Node*>> emitted;  // per worker, level mode
    size_t level_size = 0;
    size_t max_nodes;
    const CancelToken* cancel;
  };

 public:
  class Context {
   public:
    size_t worker_id() const { return worker_; }

    /// Free-running mode: emits a child node onto this worker's deque.
    void Push(std::unique_ptr<Node> child) {
      shared_->pending.fetch_add(1, std::memory_order_release);
      shared_->deques[worker_]->Push(child.release());
    }

    /// Level mode: collects a child for the barrier reduction.
    void Emit(std::unique_ptr<Node> child) {
      shared_->emitted[worker_].push_back(child.release());
    }

    /// Raises the global cooperative stop.
    void Abort() { shared_->abort.store(true, std::memory_order_release); }

    /// True once the exploration is stopping. Also polls the cancel
    /// token, so visitors that check mid-expansion (long realization
    /// enumerations) observe a deadline without waiting for the next
    /// pop — an unfired token still costs only a read.
    bool aborted() const {
      if (shared_->abort.load(std::memory_order_acquire)) return true;
      return shared_->Cancelled();
    }

   private:
    friend class Explorer;
    Context(Shared* shared, size_t worker)
        : shared_(shared), worker_(worker) {}
    Shared* shared_;
    size_t worker_;
  };

 private:
  template <typename Visit>
  static void WorkerLoop(size_t w, size_t workers, Shared* shared,
                         const Visit& visit) {
    const internal::ExplorerMetrics& metrics = internal::ExplorerMetrics::Get();
    obs::SetThreadLane("worker", static_cast<int>(w));
    obs::Span drain_span("drain", static_cast<int64_t>(w));
    Context ctx(shared, w);
    Node* raw = nullptr;
    int idle_sweeps = 0;
    for (;;) {
      if (shared->abort.load(std::memory_order_acquire)) return;
      if (shared->Cancelled()) return;
      bool got = shared->deques[w]->Pop(&raw);
      if (!got) {
        for (size_t k = 1; !got && k < workers; ++k) {
          got = shared->deques[(w + k) % workers]->Steal(&raw);
        }
        if (got) {
          metrics.steals->Inc();
          obs::TraceInstant("steal");
        }
      }
      if (!got) {
        if (shared->pending.load(std::memory_order_acquire) == 0) return;
        TimedBackoff(&idle_sweeps, metrics);
        continue;
      }
      idle_sweeps = 0;
      std::unique_ptr<Node> node(raw);
      size_t n = shared->popped.fetch_add(1, std::memory_order_relaxed) + 1;
      metrics.pops->Inc();
      metrics.deque_depth->Record(
          static_cast<uint64_t>(std::max<int64_t>(0, shared->deques[w]->size())));
      if (n > shared->max_nodes) {
        // Counted but not visited — "count, then cut".
        shared->budget_exhausted.store(true, std::memory_order_relaxed);
        shared->abort.store(true, std::memory_order_release);
        shared->pending.fetch_sub(1, std::memory_order_release);
        return;
      }
      visit(std::move(node), ctx);
      shared->pending.fetch_sub(1, std::memory_order_release);
    }
  }

  /// Idle-wait ladder: brief yields, then escalating micro-sleeps. On
  /// shared or oversubscribed cores a pure yield-spin steals cycles
  /// from the worker actually finishing the tail of the level.
  static void Backoff(int* idle_sweeps) {
    ++*idle_sweeps;
    if (*idle_sweeps < 32) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(
          std::min(200, (*idle_sweeps - 32 + 1) * 20)));
    }
  }

  /// Backoff plus idle-time accounting (level mode: this is the
  /// barrier-wait time). The clock reads exist only to feed the
  /// counter, so they are skipped entirely when metrics are off.
  static void TimedBackoff(int* idle_sweeps,
                           const internal::ExplorerMetrics& metrics) {
    if (!obs::MetricsEnabled()) {
      Backoff(idle_sweeps);
      return;
    }
    auto t0 = std::chrono::steady_clock::now();
    Backoff(idle_sweeps);
    metrics.idle_wait_us->Inc(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }

  template <typename Visit>
  static void LevelWorker(size_t w, size_t workers, Shared* shared,
                          std::vector<std::unique_ptr<Node>>* frontier,
                          const Visit& visit) {
    const internal::ExplorerMetrics& metrics = internal::ExplorerMetrics::Get();
    obs::SetThreadLane("worker", static_cast<int>(w));
    obs::Span drain_span("level-drain", static_cast<int64_t>(w));
    // Seed this worker's slice (owner-only pushes).
    for (size_t i = w; i < frontier->size(); i += workers) {
      shared->deques[w]->Push((*frontier)[i].release());
    }
    Context ctx(shared, w);
    Node* raw = nullptr;
    int idle_sweeps = 0;
    for (;;) {
      if (shared->abort.load(std::memory_order_acquire)) return;
      if (shared->Cancelled()) return;
      bool got = shared->deques[w]->Pop(&raw);
      if (!got) {
        for (size_t k = 1; !got && k < workers; ++k) {
          got = shared->deques[(w + k) % workers]->Steal(&raw);
        }
        if (got) {
          metrics.steals->Inc();
          obs::TraceInstant("steal");
        }
      }
      if (!got) {
        if (shared->processed.load(std::memory_order_acquire) >=
            shared->level_size) {
          return;  // level drained (a seed race cannot under-count:
                   // every seeded node is processed exactly once)
        }
        TimedBackoff(&idle_sweeps, metrics);
        continue;
      }
      idle_sweeps = 0;
      std::unique_ptr<Node> node(raw);
      size_t n = shared->popped.fetch_add(1, std::memory_order_relaxed) + 1;
      metrics.pops->Inc();
      metrics.deque_depth->Record(
          static_cast<uint64_t>(std::max<int64_t>(0, shared->deques[w]->size())));
      if (n > shared->max_nodes) {
        shared->budget_exhausted.store(true, std::memory_order_relaxed);
        shared->abort.store(true, std::memory_order_release);
        return;
      }
      visit(std::move(node), ctx);
      shared->processed.fetch_add(1, std::memory_order_release);
    }
  }
};

}  // namespace engine
}  // namespace accltl

#endif  // ACCLTL_ENGINE_EXPLORER_H_
