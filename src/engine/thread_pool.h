#ifndef ACCLTL_ENGINE_THREAD_POOL_H_
#define ACCLTL_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace accltl {
namespace engine {

/// Fixed-size pool of worker threads executing parallel regions.
///
/// A region is a function fn(worker_index) executed once per worker
/// index in [0, parallelism): the calling thread participates as
/// worker 0 and the pool threads take 1..parallelism-1, so a
/// parallelism-1 region never touches a pool thread (the serial path
/// stays genuinely serial). Threads are created once and parked on a
/// condition variable between regions — search calls pay no
/// thread-spawn latency.
///
/// One region runs at a time; concurrent Run() callers serialize on an
/// internal mutex (searches from multiple front-end threads queue up
/// rather than oversubscribing the cores).
class ThreadPool {
 public:
  /// Creates `num_threads` parked workers (callers then get
  /// parallelism up to num_threads + 1 including themselves).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-global pool, created on first use with
  /// max(hardware_concurrency() - 1, 7) threads — sized to the
  /// hardware, but never below 7 so 8-way scaling knobs stay
  /// meaningful (oversubscribed but correct) on small boxes.
  static ThreadPool& Global();

  /// Number of pool threads (max parallelism is size() + 1).
  size_t size() const { return threads_.size(); }

  /// Runs fn(0) .. fn(parallelism - 1) across the caller (index 0) and
  /// the pool; blocks until every index returned. parallelism is
  /// clamped to size() + 1. fn must be safe to call concurrently.
  void Run(size_t parallelism, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop(size_t pool_index);

  std::mutex region_mu_;  // one region at a time

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  size_t region_parallelism_ = 0;
  const std::function<void(size_t)>* region_fn_ = nullptr;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace engine
}  // namespace accltl

#endif  // ACCLTL_ENGINE_THREAD_POOL_H_
