#ifndef ACCLTL_ENGINE_PATH_LINK_H_
#define ACCLTL_ENGINE_PATH_LINK_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace accltl {
namespace engine {

/// Generic path reconstruction for parallel searches: an immutable
/// parent chain of steps, so sibling subtrees share every common
/// prefix and no search mutates a path in place (the serial engines'
/// mutable push/pop path vector does not survive work stealing).
///
/// Each link carries an *order-preserving byte key* of its step:
/// memcmp order over keys must equal the caller's content order over
/// steps. Prefix-first lexicographic comparison over key sequences is
/// then the deterministic reduction order shared by every engine
/// client (see DESIGN.md §3).
template <typename Step>
struct PathLink {
  std::shared_ptr<const PathLink> parent;
  Step step;
  std::string key;
};

/// Prefix-first lexicographic over step keys: -1 / 0 / +1.
template <typename Step>
int CmpPathKeys(const std::vector<const PathLink<Step>*>& a,
                const std::vector<const PathLink<Step>*>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i]->key.compare(b[i]->key);
    if (c != 0) return c < 0 ? -1 : 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

/// Extends `parent_path` by one step; appends the new link to
/// `links` (the root-to-node materialization callers keep per node so
/// comparisons never walk or allocate). Returns the owning chain head.
template <typename Step>
std::shared_ptr<const PathLink<Step>> ExtendPath(
    std::shared_ptr<const PathLink<Step>> parent_path, Step step,
    std::string key, std::vector<const PathLink<Step>*>* links) {
  auto link = std::make_shared<PathLink<Step>>();
  link->parent = std::move(parent_path);
  link->step = std::move(step);
  link->key = std::move(key);
  links->push_back(link.get());
  return link;
}

/// The content-minimal accepting path found so far, shared across
/// workers. Immutable snapshots are swapped under a short lock;
/// readers compare outside it. `Prunes` is the upward-closed bound
/// used to cut subtrees: once a node can no longer precede the best
/// path in the prefix-first order, neither can any extension.
template <typename Step>
class BestPathTracker {
 public:
  struct Path {
    std::vector<std::string> keys;
    std::vector<Step> steps;
  };

  std::shared_ptr<const Path> Snapshot() const {
    if (!known_.load(std::memory_order_acquire)) return nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    return best_;
  }

  /// Records an accepting path; keeps the content-minimal one.
  void Offer(const std::vector<const PathLink<Step>*>& path) {
    auto candidate = std::make_shared<Path>();
    candidate->keys.reserve(path.size());
    candidate->steps.reserve(path.size());
    for (const PathLink<Step>* link : path) {
      candidate->keys.push_back(link->key);
      candidate->steps.push_back(link->step);
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (best_ != nullptr) {
      // Prefix-first compare on the precomputed keys.
      size_t n = std::min(candidate->keys.size(), best_->keys.size());
      int c = 0;
      for (size_t i = 0; i < n && c == 0; ++i) {
        c = candidate->keys[i].compare(best_->keys[i]);
      }
      if (c == 0 && candidate->keys.size() >= best_->keys.size()) return;
      if (c > 0) return;
    }
    best_ = std::move(candidate);
    known_.store(true, std::memory_order_release);
  }

  /// True when no extension of the node with these links can precede
  /// the current best path (prefix-compare), so its subtree is
  /// redundant.
  bool Prunes(const std::vector<const PathLink<Step>*>& links) const {
    std::shared_ptr<const Path> best = Snapshot();
    if (best == nullptr) return false;
    size_t n = std::min(links.size(), best->keys.size());
    for (size_t i = 0; i < n; ++i) {
      int c = links[i]->key.compare(best->keys[i]);
      if (c < 0) return false;  // strictly earlier: may still improve
      if (c > 0) return true;   // strictly later: every extension is too
    }
    // Equal on the common prefix: improving requires being a proper
    // prefix of the best path.
    return links.size() >= best->keys.size();
  }

 private:
  std::atomic<bool> known_{false};
  mutable std::mutex mu_;
  std::shared_ptr<const Path> best_;
};

}  // namespace engine
}  // namespace accltl

#endif  // ACCLTL_ENGINE_PATH_LINK_H_
