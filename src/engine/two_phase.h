#ifndef ACCLTL_ENGINE_TWO_PHASE_H_
#define ACCLTL_ENGINE_TWO_PHASE_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "src/engine/cancel.h"
#include "src/engine/explorer.h"
#include "src/engine/thread_pool.h"
#include "src/obs/trace.h"

namespace accltl {
namespace engine {

/// The shared parallel-search driver of the witness engines
/// (automata::BoundedWitnessSearch, analysis::CheckZeroArySatisfiable):
///
/// - one worker: serial depth-first in the caller's reduction order
///   (`dfs_visit` expands children pf-sorted), whose first accept is
///   the reduced answer;
/// - several workers: a serial pf-DFS *pilot* with a small node cap
///   (fast satisfiable answers and small exhaustive sweeps finish here
///   with the very result the serial path returns), then — only if the
///   pilot was cut — `reset()` discards its partial state and a
///   level-synchronous sweep (`level_visit` + `reduce`) re-explores
///   with deterministic barrier reductions, against the budget that
///   remains after the pilot.
///
/// `found()` reports whether the pilot already produced an accepting
/// answer. The returned stats aggregate both phases; `budget_exhausted`
/// is the final phase's verdict (the pilot's cut is an internal
/// staging step, not a caller-visible budget). `exec.cancel` is polled
/// by both phases at node granularity: a cancelled pilot is returned
/// as-is (its `cancelled` stat set) rather than escalating to the
/// sweep.
template <typename Node, typename MakeRoots, typename DfsVisit,
          typename LevelVisit, typename Reduce, typename FoundFn,
          typename ResetFn>
typename Explorer<Node>::Stats TwoPhaseExplore(
    const ExecOptions& exec, size_t max_nodes, const MakeRoots& make_roots,
    const DfsVisit& dfs_visit, const LevelVisit& level_visit,
    const Reduce& reduce, const FoundFn& found, const ResetFn& reset) {
  size_t workers = exec.num_threads < 1 ? 1 : exec.num_threads;
  Explorer<Node> explorer;
  typename Explorer<Node>::Options eopts;
  eopts.num_threads = 1;
  eopts.max_nodes = max_nodes;
  eopts.cancel = exec.cancel;
  if (workers == 1) {
    obs::Span span("serial-dfs");
    return explorer.Run(make_roots(), eopts, dfs_visit);
  }
  constexpr size_t kPilotBudget = 256;
  eopts.max_nodes = std::min(kPilotBudget, max_nodes);
  typename Explorer<Node>::Stats pilot;
  {
    obs::Span span("pilot");
    pilot = explorer.Run(make_roots(), eopts, dfs_visit);
  }
  if (found() || pilot.cancelled || !pilot.budget_exhausted ||
      eopts.max_nodes == max_nodes) {
    // Found, cancelled, swept, or the global budget itself is spent.
    return pilot;
  }
  reset();
  typename Explorer<Node>::Options bopts;
  bopts.num_threads = workers;
  bopts.cancel = exec.cancel;
  // The pilot's pops count against the caller's budget: the total
  // across both phases never exceeds max_nodes.
  bopts.max_nodes = max_nodes - pilot.nodes_explored;
  obs::Span span("sweep");
  typename Explorer<Node>::Stats stats =
      explorer.RunLevels(make_roots(), bopts, level_visit, reduce);
  stats.nodes_explored += pilot.nodes_explored;
  return stats;
}

/// The shared barrier reduction: stripe the merged child batch by
/// class hash (the caller's dominance relation must only relate nodes
/// of equal class, so related nodes always share a stripe), sort each
/// stripe with `less` (a strict weak order on node *content*), and
/// keep the nodes `keep` accepts, in sorted order. Every input batch
/// set is complete and every stripe reduces deterministically, so the
/// surviving frontier is identical at every worker count (only its
/// concatenation order varies, which the level barrier erases).
///
/// `keep` typically applies the best-path prune and the visited-table
/// check-and-insert; it runs concurrently across stripes but in
/// sorted order within each stripe.
template <typename Node, typename HashFn, typename LessFn, typename KeepFn>
std::vector<std::unique_ptr<Node>> ReduceLevelByContent(
    std::vector<std::vector<Node*>> batches, const HashFn& class_hash,
    const LessFn& less, const KeepFn& keep) {
  constexpr size_t kStripes = 64;
  size_t producers = batches.size();
  // Phase A (parallel): each worker buckets the children *it*
  // emitted — allocation affinity, no shared writes.
  std::vector<std::vector<std::vector<Node*>>> bucketed(
      producers, std::vector<std::vector<Node*>>(kStripes));
  ThreadPool::Global().Run(producers, [&](size_t w) {
    for (Node* child : batches[w]) {
      bucketed[w][static_cast<size_t>(class_hash(*child)) & (kStripes - 1)]
          .push_back(child);
    }
  });
  // Phase B (parallel): each worker owns a set of stripes.
  std::vector<std::vector<std::unique_ptr<Node>>> outs(producers);
  ThreadPool::Global().Run(producers, [&](size_t w) {
    std::vector<std::unique_ptr<Node>> stripe;
    for (size_t s = w; s < kStripes; s += producers) {
      stripe.clear();
      for (size_t p = 0; p < producers; ++p) {
        for (Node* child : bucketed[p][s]) stripe.emplace_back(child);
      }
      std::sort(stripe.begin(), stripe.end(),
                [&](const std::unique_ptr<Node>& a,
                    const std::unique_ptr<Node>& b) {
                  return less(*a, *b);
                });
      for (std::unique_ptr<Node>& node : stripe) {
        if (keep(*node)) outs[w].push_back(std::move(node));
      }
    }
  });
  std::vector<std::unique_ptr<Node>> frontier;
  size_t total = 0;
  for (auto& out : outs) total += out.size();
  frontier.reserve(total);
  for (auto& out : outs) {
    for (auto& node : out) frontier.push_back(std::move(node));
  }
  return frontier;
}

}  // namespace engine
}  // namespace accltl

#endif  // ACCLTL_ENGINE_TWO_PHASE_H_
