#ifndef ACCLTL_WORKLOAD_WORKLOAD_H_
#define ACCLTL_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "src/accltl/formula.h"
#include "src/common/rng.h"
#include "src/schema/access.h"
#include "src/schema/instance.h"
#include "src/schema/schema.h"

namespace accltl {
namespace workload {

/// The paper's running example (§1, Figure 1): Mobile(name, postcode,
/// street, phoneno) with method AcM1 (input: name) and Address(street,
/// postcode, name, houseno) with method AcM2 (inputs: street,
/// postcode). All positions are strings except phone/house numbers.
struct PhoneDirectory {
  schema::Schema schema;
  schema::RelationId mobile = 0;
  schema::RelationId address = 0;
  schema::AccessMethodId acm1 = 0;
  schema::AccessMethodId acm2 = 0;
};

PhoneDirectory MakePhoneDirectory();

/// A small concrete universe for the phone directory (Smith/Jones on
/// Parks Rd, deterministic extras drawn from `rng`).
schema::Instance MakePhoneUniverse(const PhoneDirectory& pd, Rng* rng,
                                   size_t extra_people);

/// Random schema: `relations` relations of arity in [1, max_arity] (all
/// string positions), each with 1-2 access methods with random input
/// positions.
schema::Schema RandomSchema(Rng* rng, int relations, int max_arity);

/// Random boolean conjunctive query over the plain vocabulary:
/// `atoms` atoms, variable pool of `vars` names, joined randomly.
logic::PosFormulaPtr RandomCq(Rng* rng, const schema::Schema& schema,
                              int atoms, int vars);

/// Random AccLTL formula in the 0-ary fragment: temporal skeleton of
/// `depth` operators over random pre/post sentences and 0-ary IsBind
/// atoms. `allow_until` = false yields the X-only fragment.
acc::AccPtr RandomZeroAryFormula(Rng* rng, const schema::Schema& schema,
                                 int depth, bool allow_until);

/// Random binding-positive formula (AccLTL+): like RandomZeroAryFormula
/// but atoms may use n-ary IsBind with variables shared with pre atoms
/// (dataflow shapes), keeping IsBind positive.
acc::AccPtr RandomBindingPositiveFormula(Rng* rng,
                                         const schema::Schema& schema,
                                         int depth);

/// Random instance over `schema`: about `facts` facts with values from
/// a pool of `domain` values per position type (strings "d0…", small
/// ints, booleans — typed positions get typed values).
schema::Instance RandomInstance(Rng* rng, const schema::Schema& schema,
                                size_t facts, int domain);

/// Scenario family: result-bounded methods. Like RandomSchema, but
/// every relation additionally carries at least one bounded method
/// (`bound k` with k in [1, max_bound]), and roughly half of the
/// unbounded methods are kept alongside — the schema mixes bounded
/// and unbounded access to the same relations, the shape that forces
/// engines to branch on *which* <=k-subset a method answered. Bounded
/// methods are never `exact`: an exact bound-k method's response-size
/// floor breaks monotonicity in k, which the `bounded` fuzz pair
/// checks as a metamorphic property.
schema::Schema RandomBoundedSchema(Rng* rng, int relations, int max_arity,
                                   int max_bound);

/// Scenario family: high-arity relations (arity 4-6) with *mixed*
/// position types (string/int/bool) and methods spanning the
/// input/output spectrum — input-free dumps, half-input lookups, and
/// all-input membership tests. The base RandomSchema never produces
/// any of these shapes (it is all-string, arity-capped, coin-flip
/// inputs).
schema::Schema RandomHighArityMixedSchema(Rng* rng, int relations);

/// Scenario family: guarded Until nests — negation-free skeletons of
/// the shape  ([guard] AND φ1) U ([release] AND φ2)  with Untils
/// nested through both operands. Always binding-positive;
/// `allow_nary_bind` = false keeps every IsBind atom 0-ary (the
/// Sch0−Acc vocabulary), so the same family feeds both the zero-ary
/// and the AccLTL+ engines.
acc::AccPtr RandomGuardedUntilFormula(Rng* rng, const schema::Schema& schema,
                                      int depth, bool allow_nary_bind);

/// Scenario family: instance whose active domain splits into
/// `components` disjoint value blocks (every fact draws all its
/// string/int values from one block), producing disconnected active
/// domains — the shape that exercises reachability pruning and
/// grounded-binding pools. Boolean positions are the documented
/// exception: a two-element domain cannot be partitioned, so blocks
/// share {false, true} and full disconnection holds only for schemas
/// without bool positions (e.g. RandomSchema's).
schema::Instance RandomDisconnectedInstance(Rng* rng,
                                            const schema::Schema& schema,
                                            size_t facts, int domain,
                                            int components);

/// Random schema-consistent access/response stream of `steps` steps:
/// each step picks a method uniformly, draws its binding from the
/// active domain of `universe`, and answers with a well-formed subset
/// of the universe's matching tuples (full / empty / one tuple). The
/// shared step source for the streaming-session fuzzer pair, the
/// session tests and BM_ConcurrentSessions.
schema::AccessPath RandomAccessStream(Rng* rng, const schema::Schema& schema,
                                      const schema::Instance& universe,
                                      size_t steps);

}  // namespace workload
}  // namespace accltl

#endif  // ACCLTL_WORKLOAD_WORKLOAD_H_
