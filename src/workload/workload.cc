#include "src/workload/workload.h"

#include <algorithm>

namespace accltl {
namespace workload {

using logic::PosFormula;
using logic::PosFormulaPtr;
using logic::Term;

PhoneDirectory MakePhoneDirectory() {
  PhoneDirectory pd;
  pd.mobile = pd.schema.AddRelation(
      "Mobile", {ValueType::kString, ValueType::kString, ValueType::kString,
                 ValueType::kInt});
  pd.address = pd.schema.AddRelation(
      "Address", {ValueType::kString, ValueType::kString, ValueType::kString,
                  ValueType::kInt});
  pd.acm1 = pd.schema.AddAccessMethod("AcM1", pd.mobile, {0});
  pd.acm2 = pd.schema.AddAccessMethod("AcM2", pd.address, {0, 1});
  return pd;
}

schema::Instance MakePhoneUniverse(const PhoneDirectory& pd, Rng* rng,
                                   size_t extra_people) {
  schema::Instance universe(pd.schema);
  universe.AddFact(pd.mobile,
                   {Value::Str("Smith"), Value::Str("OX13QD"),
                    Value::Str("Parks Rd"), Value::Int(5551212)});
  universe.AddFact(pd.address,
                   {Value::Str("Parks Rd"), Value::Str("OX13QD"),
                    Value::Str("Smith"), Value::Int(13)});
  universe.AddFact(pd.address,
                   {Value::Str("Parks Rd"), Value::Str("OX13QD"),
                    Value::Str("Jones"), Value::Int(16)});
  for (size_t i = 0; i < extra_people; ++i) {
    std::string person = "P" + std::to_string(i);
    std::string street = "St" + std::to_string(rng->Uniform(extra_people / 2 + 1));
    std::string postcode = "PC" + std::to_string(rng->Uniform(4));
    universe.AddFact(pd.mobile,
                     {Value::Str(person), Value::Str(postcode),
                      Value::Str(street),
                      Value::Int(static_cast<int64_t>(1000 + i))});
    universe.AddFact(pd.address,
                     {Value::Str(street), Value::Str(postcode),
                      Value::Str(person),
                      Value::Int(static_cast<int64_t>(rng->Uniform(99)))});
  }
  return universe;
}

schema::Schema RandomSchema(Rng* rng, int relations, int max_arity) {
  schema::Schema s;
  for (int r = 0; r < relations; ++r) {
    int arity = 1 + static_cast<int>(rng->Uniform(
                        static_cast<uint64_t>(max_arity)));
    std::vector<ValueType> types(static_cast<size_t>(arity),
                                 ValueType::kString);
    schema::RelationId id =
        s.AddRelation("R" + std::to_string(r), std::move(types));
    int methods = 1 + static_cast<int>(rng->Uniform(2));
    for (int m = 0; m < methods; ++m) {
      std::vector<schema::Position> inputs;
      for (int p = 0; p < arity; ++p) {
        if (rng->Chance(1, 2)) inputs.push_back(p);
      }
      s.AddAccessMethod("M" + std::to_string(r) + "_" + std::to_string(m), id,
                        std::move(inputs));
    }
  }
  return s;
}

logic::PosFormulaPtr RandomCq(Rng* rng, const schema::Schema& schema,
                              int atoms, int vars) {
  std::vector<PosFormulaPtr> conj;
  std::vector<std::string> var_names;
  for (int v = 0; v < vars; ++v) var_names.push_back("q" + std::to_string(v));
  for (int a = 0; a < atoms; ++a) {
    schema::RelationId r = static_cast<schema::RelationId>(
        rng->Uniform(static_cast<uint64_t>(schema.num_relations())));
    std::vector<Term> terms;
    for (int p = 0; p < schema.relation(r).arity(); ++p) {
      terms.push_back(Term::Var(rng->Pick(var_names)));
    }
    conj.push_back(PosFormula::MakeAtom(logic::Plain(r), std::move(terms)));
  }
  return PosFormula::Exists(std::move(var_names),
                            PosFormula::And(std::move(conj)));
}

namespace {

PosFormulaPtr RandomTransitionSentence(Rng* rng,
                                       const schema::Schema& schema,
                                       bool allow_nary_bind,
                                       bool allow_bind) {
  // A small random sentence: one or two pre/post atoms, optionally an
  // IsBind atom.
  std::vector<PosFormulaPtr> conj;
  std::vector<std::string> vars;
  int natoms = 1 + static_cast<int>(rng->Uniform(2));
  for (int a = 0; a < natoms; ++a) {
    schema::RelationId r = static_cast<schema::RelationId>(
        rng->Uniform(static_cast<uint64_t>(schema.num_relations())));
    logic::PredSpace space =
        rng->Chance(1, 2) ? logic::PredSpace::kPre : logic::PredSpace::kPost;
    std::vector<Term> terms;
    for (int p = 0; p < schema.relation(r).arity(); ++p) {
      std::string v = "z" + std::to_string(rng->Uniform(3));
      terms.push_back(Term::Var(v));
      vars.push_back(v);
    }
    conj.push_back(PosFormula::MakeAtom(logic::PredicateRef{space, r},
                                        std::move(terms)));
  }
  if (allow_bind && rng->Chance(1, 3)) {
    schema::AccessMethodId m = static_cast<schema::AccessMethodId>(
        rng->Uniform(static_cast<uint64_t>(schema.num_access_methods())));
    if (allow_nary_bind && schema.method(m).num_inputs() > 0 &&
        rng->Chance(1, 2)) {
      std::vector<Term> terms;
      for (int i = 0; i < schema.method(m).num_inputs(); ++i) {
        std::string v = "z" + std::to_string(rng->Uniform(3));
        terms.push_back(Term::Var(v));
        vars.push_back(v);
      }
      conj.push_back(PosFormula::MakeAtom(logic::Bind(m), std::move(terms)));
    } else {
      conj.push_back(PosFormula::MakeAtom(logic::Bind(m), {}));
    }
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return PosFormula::Exists(std::move(vars), PosFormula::And(std::move(conj)));
}

acc::AccPtr RandomTemporal(Rng* rng, const schema::Schema& schema, int depth,
                           bool allow_until, bool allow_nary_bind,
                           bool binding_positive_context,
                           bool allow_bind = true) {
  using acc::AccFormula;
  if (depth <= 0) {
    return AccFormula::Atom(
        RandomTransitionSentence(rng, schema, allow_nary_bind, allow_bind));
  }
  switch (rng->Uniform(allow_until ? 5 : 4)) {
    case 0: {
      // Negation: in a binding-positive context, the negated subtree
      // must avoid IsBind atoms entirely (Def. 4.1).
      acc::AccPtr sub = RandomTemporal(
          rng, schema, depth - 1, allow_until,
          /*allow_nary_bind=*/false, binding_positive_context,
          /*allow_bind=*/!binding_positive_context && allow_bind);
      return AccFormula::Not(sub);
    }
    case 1:
      return AccFormula::Next(RandomTemporal(rng, schema, depth - 1,
                                             allow_until, allow_nary_bind,
                                             binding_positive_context,
                                             allow_bind));
    case 2:
      return AccFormula::And(
          {RandomTemporal(rng, schema, depth - 1, allow_until,
                          allow_nary_bind, binding_positive_context,
                          allow_bind),
           RandomTemporal(rng, schema, depth / 2, allow_until,
                          allow_nary_bind, binding_positive_context,
                          allow_bind)});
    case 3:
      return AccFormula::Or(
          {RandomTemporal(rng, schema, depth - 1, allow_until,
                          allow_nary_bind, binding_positive_context,
                          allow_bind),
           RandomTemporal(rng, schema, depth / 2, allow_until,
                          allow_nary_bind, binding_positive_context,
                          allow_bind)});
    default:
      return AccFormula::Until(
          RandomTemporal(rng, schema, depth / 2, allow_until, allow_nary_bind,
                         binding_positive_context, allow_bind),
          RandomTemporal(rng, schema, depth - 1, allow_until, allow_nary_bind,
                         binding_positive_context, allow_bind));
  }
}

}  // namespace

acc::AccPtr RandomZeroAryFormula(Rng* rng, const schema::Schema& schema,
                                 int depth, bool allow_until) {
  return RandomTemporal(rng, schema, depth, allow_until,
                        /*allow_nary_bind=*/false,
                        /*binding_positive_context=*/false);
}

acc::AccPtr RandomBindingPositiveFormula(Rng* rng,
                                         const schema::Schema& schema,
                                         int depth) {
  return RandomTemporal(rng, schema, depth, /*allow_until=*/true,
                        /*allow_nary_bind=*/true,
                        /*binding_positive_context=*/true);
}

schema::Instance RandomInstance(Rng* rng, const schema::Schema& schema,
                                size_t facts, int domain) {
  schema::Instance out(schema);
  for (size_t i = 0; i < facts; ++i) {
    schema::RelationId r = static_cast<schema::RelationId>(
        rng->Uniform(static_cast<uint64_t>(schema.num_relations())));
    Tuple t;
    for (int p = 0; p < schema.relation(r).arity(); ++p) {
      t.push_back(Value::Str(
          "d" + std::to_string(rng->Uniform(static_cast<uint64_t>(domain)))));
    }
    out.AddFact(r, std::move(t));
  }
  return out;
}

}  // namespace workload
}  // namespace accltl
