#include "src/workload/workload.h"

#include <algorithm>

namespace accltl {
namespace workload {

using logic::PosFormula;
using logic::PosFormulaPtr;
using logic::Term;

PhoneDirectory MakePhoneDirectory() {
  PhoneDirectory pd;
  pd.mobile = pd.schema.AddRelation(
      "Mobile", {ValueType::kString, ValueType::kString, ValueType::kString,
                 ValueType::kInt});
  pd.address = pd.schema.AddRelation(
      "Address", {ValueType::kString, ValueType::kString, ValueType::kString,
                  ValueType::kInt});
  pd.acm1 = pd.schema.AddAccessMethod("AcM1", pd.mobile, {0});
  pd.acm2 = pd.schema.AddAccessMethod("AcM2", pd.address, {0, 1});
  return pd;
}

schema::Instance MakePhoneUniverse(const PhoneDirectory& pd, Rng* rng,
                                   size_t extra_people) {
  schema::Instance universe(pd.schema);
  universe.AddFact(pd.mobile,
                   {Value::Str("Smith"), Value::Str("OX13QD"),
                    Value::Str("Parks Rd"), Value::Int(5551212)});
  universe.AddFact(pd.address,
                   {Value::Str("Parks Rd"), Value::Str("OX13QD"),
                    Value::Str("Smith"), Value::Int(13)});
  universe.AddFact(pd.address,
                   {Value::Str("Parks Rd"), Value::Str("OX13QD"),
                    Value::Str("Jones"), Value::Int(16)});
  for (size_t i = 0; i < extra_people; ++i) {
    std::string person = "P" + std::to_string(i);
    std::string street = "St" + std::to_string(rng->Uniform(extra_people / 2 + 1));
    std::string postcode = "PC" + std::to_string(rng->Uniform(4));
    universe.AddFact(pd.mobile,
                     {Value::Str(person), Value::Str(postcode),
                      Value::Str(street),
                      Value::Int(static_cast<int64_t>(1000 + i))});
    universe.AddFact(pd.address,
                     {Value::Str(street), Value::Str(postcode),
                      Value::Str(person),
                      Value::Int(static_cast<int64_t>(rng->Uniform(99)))});
  }
  return universe;
}

schema::Schema RandomSchema(Rng* rng, int relations, int max_arity) {
  schema::Schema s;
  for (int r = 0; r < relations; ++r) {
    int arity = 1 + static_cast<int>(rng->Uniform(
                        static_cast<uint64_t>(max_arity)));
    std::vector<ValueType> types(static_cast<size_t>(arity),
                                 ValueType::kString);
    schema::RelationId id =
        s.AddRelation("R" + std::to_string(r), std::move(types));
    int methods = 1 + static_cast<int>(rng->Uniform(2));
    for (int m = 0; m < methods; ++m) {
      std::vector<schema::Position> inputs;
      for (int p = 0; p < arity; ++p) {
        if (rng->Chance(1, 2)) inputs.push_back(p);
      }
      s.AddAccessMethod("M" + std::to_string(r) + "_" + std::to_string(m), id,
                        std::move(inputs));
    }
  }
  return s;
}

schema::Schema RandomBoundedSchema(Rng* rng, int relations, int max_arity,
                                   int max_bound) {
  schema::Schema s;
  for (int r = 0; r < relations; ++r) {
    int arity = 1 + static_cast<int>(rng->Uniform(
                        static_cast<uint64_t>(max_arity)));
    std::vector<ValueType> types(static_cast<size_t>(arity),
                                 ValueType::kString);
    schema::RelationId id =
        s.AddRelation("R" + std::to_string(r), std::move(types));
    // At least one bounded method per relation; a coin-flip unbounded
    // sibling keeps the bounded/unbounded mix in one schema.
    int bounded_methods = 1 + static_cast<int>(rng->Uniform(2));
    for (int m = 0; m < bounded_methods; ++m) {
      std::vector<schema::Position> inputs;
      for (int p = 0; p < arity; ++p) {
        if (rng->Chance(1, 2)) inputs.push_back(p);
      }
      int bound = 1 + static_cast<int>(
                          rng->Uniform(static_cast<uint64_t>(max_bound)));
      s.AddAccessMethod("B" + std::to_string(r) + "_" + std::to_string(m), id,
                        std::move(inputs), /*exact=*/false,
                        /*idempotent=*/false, bound);
    }
    if (rng->Chance(1, 2)) {
      std::vector<schema::Position> inputs;
      for (int p = 0; p < arity; ++p) {
        if (rng->Chance(1, 2)) inputs.push_back(p);
      }
      s.AddAccessMethod("U" + std::to_string(r), id, std::move(inputs));
    }
  }
  return s;
}

logic::PosFormulaPtr RandomCq(Rng* rng, const schema::Schema& schema,
                              int atoms, int vars) {
  std::vector<PosFormulaPtr> conj;
  std::vector<std::string> var_names;
  for (int v = 0; v < vars; ++v) var_names.push_back("q" + std::to_string(v));
  for (int a = 0; a < atoms; ++a) {
    schema::RelationId r = static_cast<schema::RelationId>(
        rng->Uniform(static_cast<uint64_t>(schema.num_relations())));
    std::vector<Term> terms;
    for (int p = 0; p < schema.relation(r).arity(); ++p) {
      terms.push_back(Term::Var(rng->Pick(var_names)));
    }
    conj.push_back(PosFormula::MakeAtom(logic::Plain(r), std::move(terms)));
  }
  return PosFormula::Exists(std::move(var_names),
                            PosFormula::And(std::move(conj)));
}

namespace {

/// Variable name for a position of the given type. Variables are
/// typed by name ("z0" string, "zi0" int, "zb0" bool) so one variable
/// never spans differently-typed positions — the logic layer rejects
/// such formulas as InvalidArgument. All-string schemas keep the
/// historical "z0".."z2" names.
std::string TypedVar(Rng* rng, ValueType type) {
  std::string k = std::to_string(rng->Uniform(3));
  switch (type) {
    case ValueType::kString:
      return "z" + k;
    case ValueType::kInt:
      return "zi" + k;
    case ValueType::kBool:
      return "zb" + k;
  }
  return "z" + k;
}

PosFormulaPtr RandomTransitionSentence(Rng* rng,
                                       const schema::Schema& schema,
                                       bool allow_nary_bind,
                                       bool allow_bind) {
  // A small random sentence: one or two pre/post atoms, optionally an
  // IsBind atom.
  std::vector<PosFormulaPtr> conj;
  std::vector<std::string> vars;
  int natoms = 1 + static_cast<int>(rng->Uniform(2));
  for (int a = 0; a < natoms; ++a) {
    schema::RelationId r = static_cast<schema::RelationId>(
        rng->Uniform(static_cast<uint64_t>(schema.num_relations())));
    logic::PredSpace space =
        rng->Chance(1, 2) ? logic::PredSpace::kPre : logic::PredSpace::kPost;
    std::vector<Term> terms;
    for (int p = 0; p < schema.relation(r).arity(); ++p) {
      std::string v = TypedVar(
          rng, schema.relation(r).position_types[static_cast<size_t>(p)]);
      terms.push_back(Term::Var(v));
      vars.push_back(v);
    }
    conj.push_back(PosFormula::MakeAtom(logic::PredicateRef{space, r},
                                        std::move(terms)));
  }
  if (allow_bind && rng->Chance(1, 3)) {
    schema::AccessMethodId m = static_cast<schema::AccessMethodId>(
        rng->Uniform(static_cast<uint64_t>(schema.num_access_methods())));
    if (allow_nary_bind && schema.method(m).num_inputs() > 0 &&
        rng->Chance(1, 2)) {
      const schema::AccessMethod& am = schema.method(m);
      const schema::Relation& rel = schema.relation(am.relation);
      std::vector<Term> terms;
      for (int i = 0; i < am.num_inputs(); ++i) {
        std::string v = TypedVar(
            rng, rel.position_types[static_cast<size_t>(
                     am.input_positions[static_cast<size_t>(i)])]);
        terms.push_back(Term::Var(v));
        vars.push_back(v);
      }
      conj.push_back(PosFormula::MakeAtom(logic::Bind(m), std::move(terms)));
    } else {
      conj.push_back(PosFormula::MakeAtom(logic::Bind(m), {}));
    }
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return PosFormula::Exists(std::move(vars), PosFormula::And(std::move(conj)));
}

acc::AccPtr RandomTemporal(Rng* rng, const schema::Schema& schema, int depth,
                           bool allow_until, bool allow_nary_bind,
                           bool binding_positive_context,
                           bool allow_bind = true) {
  using acc::AccFormula;
  if (depth <= 0) {
    return AccFormula::Atom(
        RandomTransitionSentence(rng, schema, allow_nary_bind, allow_bind));
  }
  switch (rng->Uniform(allow_until ? 5 : 4)) {
    case 0: {
      // Negation: in a binding-positive context, the negated subtree
      // must avoid IsBind atoms entirely (Def. 4.1).
      acc::AccPtr sub = RandomTemporal(
          rng, schema, depth - 1, allow_until,
          /*allow_nary_bind=*/false, binding_positive_context,
          /*allow_bind=*/!binding_positive_context && allow_bind);
      return AccFormula::Not(sub);
    }
    case 1:
      return AccFormula::Next(RandomTemporal(rng, schema, depth - 1,
                                             allow_until, allow_nary_bind,
                                             binding_positive_context,
                                             allow_bind));
    case 2:
      return AccFormula::And(
          {RandomTemporal(rng, schema, depth - 1, allow_until,
                          allow_nary_bind, binding_positive_context,
                          allow_bind),
           RandomTemporal(rng, schema, depth / 2, allow_until,
                          allow_nary_bind, binding_positive_context,
                          allow_bind)});
    case 3:
      return AccFormula::Or(
          {RandomTemporal(rng, schema, depth - 1, allow_until,
                          allow_nary_bind, binding_positive_context,
                          allow_bind),
           RandomTemporal(rng, schema, depth / 2, allow_until,
                          allow_nary_bind, binding_positive_context,
                          allow_bind)});
    default:
      return AccFormula::Until(
          RandomTemporal(rng, schema, depth / 2, allow_until, allow_nary_bind,
                         binding_positive_context, allow_bind),
          RandomTemporal(rng, schema, depth - 1, allow_until, allow_nary_bind,
                         binding_positive_context, allow_bind));
  }
}

}  // namespace

acc::AccPtr RandomZeroAryFormula(Rng* rng, const schema::Schema& schema,
                                 int depth, bool allow_until) {
  return RandomTemporal(rng, schema, depth, allow_until,
                        /*allow_nary_bind=*/false,
                        /*binding_positive_context=*/false);
}

acc::AccPtr RandomBindingPositiveFormula(Rng* rng,
                                         const schema::Schema& schema,
                                         int depth) {
  return RandomTemporal(rng, schema, depth, /*allow_until=*/true,
                        /*allow_nary_bind=*/true,
                        /*binding_positive_context=*/true);
}

namespace {

/// One random value of the declared type; strings/ints draw from a
/// `domain`-sized pool (with an optional prefix partitioning the pool
/// into disjoint blocks), booleans from {false, true}.
Value RandomTypedValue(Rng* rng, ValueType type, int domain,
                       const std::string& prefix) {
  uint64_t k = rng->Uniform(static_cast<uint64_t>(domain));
  switch (type) {
    case ValueType::kString:
      return Value::Str(prefix + "d" + std::to_string(k));
    case ValueType::kInt:
      // Distinct blocks use distinct int ranges so components stay
      // disconnected through int positions too.
      return Value::Int(static_cast<int64_t>(k) +
                        (prefix.empty() ? 0
                                        : 1000 * static_cast<int64_t>(
                                                     prefix.size())));
    case ValueType::kBool:
      return Value::Bool(k % 2 == 1);
  }
  return Value::Str(prefix + "d" + std::to_string(k));
}

schema::Instance RandomInstanceImpl(Rng* rng, const schema::Schema& schema,
                                    size_t facts, int domain,
                                    int components) {
  schema::Instance out(schema);
  for (size_t i = 0; i < facts; ++i) {
    schema::RelationId r = static_cast<schema::RelationId>(
        rng->Uniform(static_cast<uint64_t>(schema.num_relations())));
    std::string prefix;
    if (components > 1) {
      uint64_t c = rng->Uniform(static_cast<uint64_t>(components));
      // Length-encoded prefix: blocks "c", "cc", … never share string
      // values and map to distinct int ranges above.
      prefix = std::string(static_cast<size_t>(c) + 1, 'c');
    }
    Tuple t;
    for (int p = 0; p < schema.relation(r).arity(); ++p) {
      t.push_back(RandomTypedValue(
          rng, schema.relation(r).position_types[static_cast<size_t>(p)],
          domain, prefix));
    }
    out.AddFact(r, std::move(t));
  }
  return out;
}

}  // namespace

schema::Instance RandomInstance(Rng* rng, const schema::Schema& schema,
                                size_t facts, int domain) {
  return RandomInstanceImpl(rng, schema, facts, domain, /*components=*/1);
}

schema::Instance RandomDisconnectedInstance(Rng* rng,
                                            const schema::Schema& schema,
                                            size_t facts, int domain,
                                            int components) {
  return RandomInstanceImpl(rng, schema, facts, domain, components);
}

schema::Schema RandomHighArityMixedSchema(Rng* rng, int relations) {
  schema::Schema s;
  for (int r = 0; r < relations; ++r) {
    int arity = 4 + static_cast<int>(rng->Uniform(3));
    std::vector<ValueType> types;
    for (int p = 0; p < arity; ++p) {
      switch (rng->Uniform(4)) {
        case 0:
          types.push_back(ValueType::kInt);
          break;
        case 1:
          types.push_back(ValueType::kBool);
          break;
        default:
          types.push_back(ValueType::kString);
          break;
      }
    }
    schema::RelationId id =
        s.AddRelation("H" + std::to_string(r), std::move(types));
    // Methods span the input/output spectrum: a dump (no inputs), a
    // membership test (all inputs), and a random lookup in between.
    s.AddAccessMethod("H" + std::to_string(r) + "_dump", id, {});
    std::vector<schema::Position> all;
    for (int p = 0; p < arity; ++p) all.push_back(p);
    s.AddAccessMethod("H" + std::to_string(r) + "_member", id, all);
    std::vector<schema::Position> some;
    for (int p = 0; p < arity; ++p) {
      if (rng->Chance(1, 2)) some.push_back(p);
    }
    s.AddAccessMethod("H" + std::to_string(r) + "_lookup", id,
                      std::move(some));
  }
  return s;
}

acc::AccPtr RandomGuardedUntilFormula(Rng* rng, const schema::Schema& schema,
                                      int depth, bool allow_nary_bind) {
  using acc::AccFormula;
  if (depth <= 0) {
    return AccFormula::Atom(
        RandomTransitionSentence(rng, schema, allow_nary_bind,
                                 /*allow_bind=*/true));
  }
  acc::AccPtr guard = AccFormula::Atom(RandomTransitionSentence(
      rng, schema, allow_nary_bind, /*allow_bind=*/rng->Chance(1, 2)));
  acc::AccPtr hold = AccFormula::And(
      {guard, RandomGuardedUntilFormula(rng, schema, depth - 1,
                                        allow_nary_bind)});
  acc::AccPtr release =
      RandomGuardedUntilFormula(rng, schema, depth / 2, allow_nary_bind);
  if (rng->Chance(1, 2)) {
    release = AccFormula::And(
        {AccFormula::Atom(RandomTransitionSentence(
             rng, schema, allow_nary_bind, /*allow_bind=*/true)),
         release});
  }
  return AccFormula::Until(hold, release);
}

schema::AccessPath RandomAccessStream(Rng* rng, const schema::Schema& schema,
                                      const schema::Instance& universe,
                                      size_t steps) {
  schema::AccessPath path;
  std::vector<Value> domain;
  for (const Value& v : universe.ActiveDomain()) domain.push_back(v);
  // An empty universe still yields well-formed (all-miss) streams.
  if (domain.empty()) domain.push_back(Value::Str("d0"));
  for (size_t i = 0; i < steps; ++i) {
    schema::AccessMethodId m = static_cast<schema::AccessMethodId>(
        rng->Uniform(static_cast<uint64_t>(schema.num_access_methods())));
    const schema::AccessMethod& method = schema.method(m);
    Tuple binding;
    for (schema::Position pos : method.input_positions) {
      (void)pos;
      binding.push_back(
          domain[rng->Uniform(static_cast<uint64_t>(domain.size()))]);
    }
    schema::AccessStep step;
    step.access = {m, binding};
    std::vector<Tuple> matching =
        universe.Matching(method.relation, method.input_positions, binding);
    // Random well-formed subset response: full, empty, or one tuple.
    switch (rng->Uniform(3)) {
      case 0:
        step.response = schema::Response(matching.begin(), matching.end());
        break;
      case 1:
        break;  // empty
      default:
        if (!matching.empty()) {
          step.response = {matching[rng->Uniform(
              static_cast<uint64_t>(matching.size()))]};
        }
        break;
    }
    path.Append(std::move(step));
  }
  return path;
}

}  // namespace workload
}  // namespace accltl
