#ifndef ACCLTL_OBS_TRACE_H_
#define ACCLTL_OBS_TRACE_H_

#include <cstdint>
#include <string>

namespace accltl {
namespace obs {

/// Span-based structured tracer emitting Chrome trace-event JSON
/// (loadable in Perfetto or chrome://tracing).
///
/// Tracing is off by default and costs one relaxed load per
/// instrumented site when off. When on, each thread appends events to
/// its own buffer (a per-buffer mutex is taken only on append and at
/// dump time, so threads never contend with each other); the dump
/// renders one lane per thread, named via SetThreadLane. Like metrics,
/// trace recording is write-only — event data never flows back into
/// engine decisions (DESIGN.md §8).

bool TracingEnabled();

/// Clears all buffered events and starts recording. Timestamps are
/// relative to this call; the calling thread's lane is named "main".
void StartTracing();

/// Stops recording; buffered events stay available to WriteTrace.
void StopTracing();

/// Names the calling thread's lane in the trace viewer ("worker-3",
/// "dispatcher"). index < 0 uses the prefix alone. First name wins:
/// a thread keeps the lane of its first role (a dispatcher that later
/// joins a parallel region as worker 0 stays "dispatcher"). No-op
/// while tracing is off. Threads that record events without ever
/// naming a lane render as "thread-<tid>".
void SetThreadLane(const char* prefix, int index = -1);

/// Records an instant event (rendered as a tick in the lane). name
/// must have static storage duration (string literals).
void TraceInstant(const char* name);

/// Records a completed span with explicit bounds, for durations whose
/// start crossed a thread boundary (e.g. dispatcher queue wait).
void TraceSpanAt(const char* name, int64_t start_us, int64_t dur_us);

/// Microseconds since StartTracing (0 when tracing is off); pairs with
/// TraceSpanAt.
int64_t TraceNowUs();

/// Serializes everything recorded since StartTracing as Chrome
/// trace-event JSON.
std::string TraceJson();

/// TraceJson written to a file; returns false on I/O failure.
bool WriteTrace(const std::string& path);

/// RAII duration span on the calling thread's lane. The name must
/// have static storage duration; an optional integer argument (level
/// depth, node count) is attached as args.v.
class Span {
 public:
  explicit Span(const char* name);
  Span(const char* name, int64_t arg);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  int64_t start_us_;
  int64_t arg_;
  bool has_arg_;
  bool active_;
};

}  // namespace obs
}  // namespace accltl

#endif  // ACCLTL_OBS_TRACE_H_
