#include "src/obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace accltl {
namespace obs {

namespace {

struct Event {
  const char* name;  // static storage (string literals at call sites)
  char phase;        // 'X' complete, 'i' instant
  int64_t ts_us;
  int64_t dur_us;
  int64_t arg;
  bool has_arg;
};

struct ThreadBuffer {
  std::mutex mu;
  std::vector<Event> events;
  std::string lane_name;
  uint32_t tid;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<int64_t> epoch_ns{0};  // steady_clock origin of this trace
  std::mutex registry_mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::atomic<uint32_t> next_tid{0};
};

TraceState& State() {
  static TraceState* s = new TraceState();
  return *s;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& s = State();
    b->tid = s.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(s.registry_mu);
    s.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t NowUs() {
  return (SteadyNowNs() - State().epoch_ns.load(std::memory_order_relaxed)) /
         1000;
}

void Append(const Event& e) {
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(e);
}

void AppendJsonEscaped(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

bool TracingEnabled() {
  return State().enabled.load(std::memory_order_relaxed);
}

void StartTracing() {
  TraceState& s = State();
  {
    std::lock_guard<std::mutex> lock(s.registry_mu);
    for (auto& b : s.buffers) {
      std::lock_guard<std::mutex> bl(b->mu);
      b->events.clear();
    }
  }
  s.epoch_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  s.enabled.store(true, std::memory_order_relaxed);
  // The thread that starts the trace owns the "main" lane. Explicit
  // (not "first buffer wins"): a dispatcher or pool thread may create
  // its buffer before the main thread records anything.
  {
    ThreadBuffer& buf = LocalBuffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.lane_name = "main";
  }
}

void StopTracing() {
  State().enabled.store(false, std::memory_order_relaxed);
}

void SetThreadLane(const char* prefix, int index) {
  if (!TracingEnabled()) return;
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  // First name wins: lanes identify threads, and a thread's first role
  // is its identity. Without this, a dispatcher (or the main thread)
  // that participates in a parallel region as worker 0 would have its
  // lane renamed "worker-0" mid-trace.
  if (!buf.lane_name.empty()) return;
  buf.lane_name = prefix;
  if (index >= 0) {
    buf.lane_name.push_back('-');
    buf.lane_name += std::to_string(index);
  }
}

void TraceInstant(const char* name) {
  if (!TracingEnabled()) return;
  Append(Event{name, 'i', NowUs(), 0, 0, false});
}

void TraceSpanAt(const char* name, int64_t start_us, int64_t dur_us) {
  if (!TracingEnabled()) return;
  if (dur_us < 0) dur_us = 0;
  Append(Event{name, 'X', start_us, dur_us, 0, false});
}

int64_t TraceNowUs() {
  if (!TracingEnabled()) return 0;
  return NowUs();
}

std::string TraceJson() {
  TraceState& s = State();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> lock(s.registry_mu);
  for (auto& b : s.buffers) {
    std::lock_guard<std::mutex> bl(b->mu);
    if (b->events.empty() && b->lane_name.empty()) continue;
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << b->tid << ",\"args\":{\"name\":\"";
    AppendJsonEscaped(out, b->lane_name.empty()
                               ? "thread-" + std::to_string(b->tid)
                               : b->lane_name);
    out << "\"}}";
    for (const Event& e : b->events) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << e.name << "\",\"cat\":\"accltl\",\"ph\":\""
          << e.phase << "\",\"ts\":" << e.ts_us << ",\"pid\":1,\"tid\":"
          << b->tid;
      if (e.phase == 'X') out << ",\"dur\":" << e.dur_us;
      if (e.phase == 'i') out << ",\"s\":\"t\"";
      if (e.has_arg) out << ",\"args\":{\"v\":" << e.arg << "}";
      out << "}";
    }
  }
  out << "]}";
  return out.str();
}

bool WriteTrace(const std::string& path) {
  std::string json = TraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

Span::Span(const char* name)
    : name_(name), start_us_(0), arg_(0), has_arg_(false),
      active_(TracingEnabled()) {
  if (active_) start_us_ = NowUs();
}

Span::Span(const char* name, int64_t arg)
    : name_(name), start_us_(0), arg_(arg), has_arg_(true),
      active_(TracingEnabled()) {
  if (active_) start_us_ = NowUs();
}

Span::~Span() {
  if (!active_) return;
  int64_t end_us = NowUs();
  Append(Event{name_, 'X', start_us_,
               end_us > start_us_ ? end_us - start_us_ : 0, arg_, has_arg_});
}

}  // namespace obs
}  // namespace accltl
