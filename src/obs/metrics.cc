#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

namespace accltl {
namespace obs {

namespace {

std::atomic<int>& EnabledFlag() {
  // -1 = uninitialized, 0 = off, 1 = on. Env is consulted once, on the
  // first record/query; SetMetricsEnabled overrides at any time.
  static std::atomic<int> flag{-1};
  return flag;
}

}  // namespace

bool MetricsEnabled() {
  int v = EnabledFlag().load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  const char* env = std::getenv("ACCLTL_METRICS");
  int resolved = (env != nullptr && std::strcmp(env, "0") == 0) ? 0 : 1;
  int expected = -1;
  // A racing SetMetricsEnabled wins over the env default.
  EnabledFlag().compare_exchange_strong(expected, resolved,
                                        std::memory_order_relaxed);
  return EnabledFlag().load(std::memory_order_relaxed) != 0;
}

void SetMetricsEnabled(bool enabled) {
  EnabledFlag().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

namespace internal {

size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

}  // namespace internal

size_t HistogramSnapshot::BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  size_t width = 0;  // position of highest set bit, 0-based
  while (v >>= 1) ++width;
  return width + 1;
}

uint64_t HistogramSnapshot::BucketLowerBound(size_t i) {
  if (i == 0) return 0;
  return uint64_t{1} << (i - 1);
}

uint64_t HistogramSnapshot::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << i) - 1;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
  total += other.total;
  sum += other.sum;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (total == 0) return 0;
  p = std::max(0.0, std::min(1.0, p));
  // Rank of the p-quantile element, 1-based; ceil(p * total).
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  if (rank * 1.0 < p * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      uint64_t c = s.counts[i].load(std::memory_order_relaxed);
      snap.counts[i] += c;
      snap.total += c;
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

const uint64_t* MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& kv : counters) {
    if (kv.first == name) return &kv.second;
  }
  return nullptr;
}

const int64_t* MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& kv : gauges) {
    if (kv.first == name) return &kv.second;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& kv : histograms) {
    if (kv.first == name) return &kv.second;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream out;
  for (const auto& kv : counters) {
    out << kv.first << " = " << kv.second << "\n";
  }
  for (const auto& kv : gauges) {
    out << kv.first << " = " << kv.second << "\n";
  }
  for (const auto& kv : histograms) {
    const HistogramSnapshot& h = kv.second;
    out << kv.first << " count=" << h.total << " sum=" << h.sum
        << " p50=" << h.Percentile(0.50) << " p90=" << h.Percentile(0.90)
        << " p99=" << h.Percentile(0.99) << "\n";
  }
  return out.str();
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "accltl_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheus() const {
  std::ostringstream out;
  for (const auto& kv : counters) {
    std::string n = PrometheusName(kv.first);
    out << "# TYPE " << n << " counter\n" << n << " " << kv.second << "\n";
  }
  for (const auto& kv : gauges) {
    std::string n = PrometheusName(kv.first);
    out << "# TYPE " << n << " gauge\n" << n << " " << kv.second << "\n";
  }
  for (const auto& kv : histograms) {
    std::string n = PrometheusName(kv.first);
    const HistogramSnapshot& h = kv.second;
    out << "# TYPE " << n << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      cumulative += h.counts[i];
      // Emit only occupied boundaries plus +Inf to keep the exposition
      // compact; cumulative counts stay correct because skipped empty
      // buckets contribute nothing.
      if (h.counts[i] == 0) continue;
      out << n << "_bucket{le=\"" << HistogramSnapshot::BucketUpperBound(i)
          << "\"} " << cumulative << "\n";
    }
    out << n << "_bucket{le=\"+Inf\"} " << h.total << "\n";
    out << n << "_sum " << h.sum << "\n";
    out << n << "_count " << h.total << "\n";
  }
  return out.str();
}

Registry& Registry::Get() {
  static Registry* r = new Registry();
  return *r;
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter());
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge());
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram());
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& kv : counters_) {
    snap.counters.emplace_back(kv.first, kv.second->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& kv : gauges_) {
    snap.gauges.emplace_back(kv.first, kv.second->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& kv : histograms_) {
    snap.histograms.emplace_back(kv.first, kv.second->Snapshot());
  }
  return snap;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : counters_) kv.second->Reset();
  for (auto& kv : gauges_) kv.second->Reset();
  for (auto& kv : histograms_) kv.second->Reset();
}

}  // namespace obs
}  // namespace accltl
