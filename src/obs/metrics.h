#ifndef ACCLTL_OBS_METRICS_H_
#define ACCLTL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace accltl {
namespace obs {

/// Lock-free metrics registry.
///
/// Instruments are write-only from the engine's point of view: hot
/// paths increment relaxed per-worker-sharded atomics and never read
/// them back, so instrumentation cannot feed into search decisions
/// (the no-perturbation contract, DESIGN.md §8). Readers assemble a
/// `MetricsSnapshot` by summing the shards; a snapshot taken during
/// concurrent updates is a consistent-enough point-in-time view (each
/// instrument's value is monotone between two quiescent points, never
/// torn below a previously observed value).
///
/// Metrics default to enabled and can be disabled process-wide by the
/// environment variable ACCLTL_METRICS=0 (read once at first use) or
/// programmatically via SetMetricsEnabled(false). When disabled, every
/// record path is a single relaxed load plus a predicted branch.

/// Whether record paths update the registry. Relaxed load; callers may
/// use it to skip clock reads that exist only to feed a metric.
bool MetricsEnabled();

/// Overrides the ACCLTL_METRICS environment default for this process.
void SetMetricsEnabled(bool enabled);

namespace internal {
// Shard count for counters and histograms. Threads are assigned a
// shard round-robin at first use; with <= 8 active workers per region
// contention is rare, and false sharing is prevented by padding each
// shard to its own cache line.
constexpr size_t kShards = 8;
size_t ShardIndex();
}  // namespace internal

/// Monotone event count, sharded per worker thread.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    shards_[internal::ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over shards. Monotone across calls that race with Inc.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[internal::kShards];
};

/// Last-write-wins signed level (queue depth, occupancy). Unsharded:
/// gauges are set/adjusted at coarse points, not in per-node loops.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
    if (!MetricsEnabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (!MetricsEnabled()) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Mergeable point-in-time histogram state; also the accumulator used
/// by HistogramSnapshot consumers (percentiles, renderers).
struct HistogramSnapshot {
  // Bucket 0 holds exactly {0}; bucket i >= 1 holds [2^(i-1), 2^i - 1].
  static constexpr size_t kBuckets = 65;

  std::array<uint64_t, kBuckets> counts{};
  uint64_t total = 0;
  uint64_t sum = 0;

  /// Bucket index for a recorded value (log2 bucketing).
  static size_t BucketIndex(uint64_t v);
  /// Smallest value that lands in bucket i.
  static uint64_t BucketLowerBound(size_t i);
  /// Largest value that lands in bucket i (saturates at UINT64_MAX).
  static uint64_t BucketUpperBound(size_t i);

  /// Pointwise sum; associative and commutative, so shard/partial
  /// snapshots can be merged in any order.
  void Merge(const HistogramSnapshot& other);

  /// Upper bound of the bucket containing the p-quantile (p in
  /// [0, 1]). Returns 0 for an empty histogram. Log2 buckets bound the
  /// relative error by 2x, which is the advertised precision.
  uint64_t Percentile(double p) const;
};

/// Log2-bucketed distribution, sharded like Counter.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t v) {
    if (!MetricsEnabled()) return;
    Shard& s = shards_[internal::ShardIndex()];
    s.counts[HistogramSnapshot::BucketIndex(v)].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, HistogramSnapshot::kBuckets> counts{};
    std::atomic<uint64_t> sum{0};
  };
  Shard shards_[internal::kShards];
};

/// Point-in-time view of every registered instrument, with renderers.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  const uint64_t* counter(const std::string& name) const;
  const int64_t* gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;

  /// Human-readable dump, one instrument per line (histograms include
  /// count/sum/p50/p90/p99).
  std::string ToText() const;

  /// Prometheus exposition format (text version 0.0.4). Metric names
  /// are prefixed with "accltl_" and non-identifier characters become
  /// '_'; histograms render cumulative le-labelled buckets.
  std::string ToPrometheus() const;
};

/// Name-keyed instrument registry. Lookup takes a mutex; call sites
/// resolve their instruments once (static locals) and then use the
/// returned pointer lock-free. Pointers are stable for the process
/// lifetime — instruments are never unregistered.
class Registry {
 public:
  static Registry& Get();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument (tests, CLI runs). Registered names and
  /// handed-out pointers stay valid.
  void Reset();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace accltl

#endif  // ACCLTL_OBS_METRICS_H_
