#include "src/automata/compile.h"

#include "src/accltl/abstraction.h"
#include "src/accltl/fragments.h"
#include "src/ltl/tableau.h"

namespace accltl {
namespace automata {

Result<AAutomaton> CompileToAutomaton(const acc::AccPtr& formula,
                                      const schema::Schema& schema,
                                      size_t max_states,
                                      CompileStats* stats) {
  (void)schema;
  acc::FragmentInfo info = acc::Analyze(formula);
  if (!info.binding_positive) {
    return Status::Unsupported(
        "CompileToAutomaton requires a binding-positive formula (AccLTL+, "
        "Def. 4.1); negated IsBind atoms cannot appear in A-automaton "
        "guards (Def. 4.3)");
  }

  acc::Abstraction abs = acc::Abstract(formula);
  Result<ltl::TableauAutomaton> tableau =
      ltl::BuildTableau(abs.skeleton, max_states);
  if (!tableau.ok()) return tableau.status();
  const ltl::TableauAutomaton& ta = tableau.value();
  if (stats != nullptr) {
    stats->tableau_states = static_cast<size_t>(ta.num_states);
  }

  AAutomaton out;
  // States 0..num_states-1 mirror the tableau; one extra accepting sink
  // receives "the word may end here" edges.
  for (int i = 0; i < ta.num_states; ++i) out.AddState();
  int sink = out.AddState();
  out.SetInitial(ta.initial);
  out.AddAccepting(sink);

  for (const ltl::TableauEdge& e : ta.edges) {
    Guard guard;
    std::vector<logic::PosFormulaPtr> pos;
    pos.reserve(e.pos_lits.size());
    for (int p : e.pos_lits) {
      pos.push_back(abs.atoms[static_cast<size_t>(p)]);
    }
    guard.positive = pos.empty() ? logic::PosFormula::True()
                                 : logic::PosFormula::And(std::move(pos));
    for (int p : e.neg_lits) {
      guard.negated.push_back(abs.atoms[static_cast<size_t>(p)]);
    }
    out.AddTransition(e.from, guard, e.to);
    if (e.may_end) {
      out.AddTransition(e.from, std::move(guard), sink);
    }
    if (stats != nullptr) {
      stats->automaton_transitions += e.may_end ? 2 : 1;
    }
  }
  ACCLTL_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace automata
}  // namespace accltl
