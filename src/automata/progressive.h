#ifndef ACCLTL_AUTOMATA_PROGRESSIVE_H_
#define ACCLTL_AUTOMATA_PROGRESSIVE_H_

#include <vector>

#include "src/automata/a_automaton.h"
#include "src/common/status.h"
#include "src/datalog/containment.h"
#include "src/datalog/program.h"
#include "src/logic/cq.h"

namespace accltl {
namespace automata {

/// One stage (maximal strongly connected component occurrence) of a
/// progressive A-automaton (Def. 4.8). A stage carries the complete
/// Φ-type (which post-shifted guard sentences are true at end of stage)
/// and, except for the last stage, the single transition crossing into
/// the next stage (condition 5: its binding uses constants only).
struct Stage {
  /// States of the SCC underlying this stage.
  std::vector<int> states;
  /// Entry state of the run into this stage.
  int entry = 0;
  /// Φ-type: truth of each Φ sentence at end of stage (monotone across
  /// stages since configurations only grow).
  std::vector<bool> type;
  /// Internal transitions usable in this stage (positives implied by the
  /// type, negated parts false in the type) — condition 4's "free
  /// replay" transitions.
  std::vector<int> internal_transitions;  // indices into automaton
  /// Crossing transition to the next stage (unused for the last stage).
  int crossing_transition = -1;
  /// Guard disjunct of the crossing transition realized by the crossing
  /// access, with bind variables instantiated by fresh constants
  /// (condition 5).
  logic::Cq crossing_disjunct;
  /// Access method of the crossing access.
  schema::AccessMethodId crossing_method = 0;
};

/// A progressive A-automaton (Def. 4.8): the original automaton
/// restricted to a chain of stages C1 … Ch with the initial state in C1
/// and an accepting state reachable in Ch.
struct ProgressiveAutomaton {
  const AAutomaton* automaton = nullptr;
  std::vector<Stage> stages;
  /// Φ: post-shifted guard sentences (positives existentialized over
  /// their bindings — the ϕ̃ operation of §4.1 — and negated parts).
  std::vector<logic::PosFormulaPtr> phi;
};

struct DecomposeOptions {
  size_t max_variants = 4096;
  size_t max_phi = 12;
  size_t max_stages = 8;
};

/// Lemma 4.9: decomposes an A-automaton into progressive automata
/// A1 … An with L(A) empty iff all L(Ai) empty. Stages enumerate both
/// SCC-chain positions and the (monotone) flip points of the Φ
/// sentences; crossing bindings are instantiated with fresh constants.
///
/// NOTE(paper-gap): the paper defers the full construction to its
/// appendix. This reconstruction follows the printed conditions 1–6 of
/// Def. 4.8 and the sketch after Lemma 4.9; fresh constants stand in
/// for the crossing bindings (sound over unbounded domains), and guard
/// "implication" checks (condition 4) use positive-sentence containment.
Result<std::vector<ProgressiveAutomaton>> DecomposeToProgressive(
    const AAutomaton& automaton, const schema::Schema& schema,
    const DecomposeOptions& options = {});

/// Lemma 4.10: builds the Datalog program PA and positive sentence P′A
/// with L(A) non-empty iff PA ⊄ P′A. See the .cc for the predicate
/// naming (BG_R_i backgrounds, XBG_R_i crossing backgrounds, V_R_i
/// views, Stage_i markers).
struct DatalogReduction {
  datalog::Program program;
  datalog::DlUcq constraint;  // P′A
};

Result<DatalogReduction> BuildDatalogReduction(
    const ProgressiveAutomaton& pa, const schema::Schema& schema);

/// The full 2EXPTIME pipeline (Thm 4.6): decompose, reduce each
/// progressive automaton to a Datalog containment instance (Lemma
/// 4.10), decide with the Prop. 4.11 type fixpoint. Returns true iff
/// L(A) is EMPTY.
struct PipelineStats {
  size_t variants = 0;
  size_t datalog_rules = 0;
  size_t constraint_disjuncts = 0;
  datalog::ContainmentStats containment;
};

Result<bool> EmptinessViaDatalog(const AAutomaton& automaton,
                                 const schema::Schema& schema,
                                 const DecomposeOptions& options = {},
                                 PipelineStats* stats = nullptr);

}  // namespace automata
}  // namespace accltl

#endif  // ACCLTL_AUTOMATA_PROGRESSIVE_H_
