#include "src/automata/progressive.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "src/logic/containment.h"
#include "src/logic/cq.h"

namespace accltl {
namespace automata {

namespace {

using logic::Cq;
using logic::CqAtom;
using logic::PosFormula;
using logic::PosFormulaPtr;
using logic::PredSpace;

// ---------------------------------------------------------------------------
// Guard analysis
// ---------------------------------------------------------------------------

/// The ϕ̃ operation (§4.1): post-shift a guard disjunct and
/// existentialize the binding (drop IsBind atoms; their variables were
/// already existential in the sentence).
PosFormulaPtr PostShiftDisjunct(const Cq& d) {
  std::vector<PosFormulaPtr> conjuncts;
  for (const CqAtom& a : d.atoms) {
    if (a.pred.space == PredSpace::kBind) continue;
    logic::PredicateRef pred = a.pred;
    if (pred.space == PredSpace::kPre) pred.space = PredSpace::kPost;
    conjuncts.push_back(PosFormula::MakeAtom(pred, a.terms));
  }
  for (const auto& [l, r] : d.neqs) {
    conjuncts.push_back(PosFormula::Neq(l, r));
  }
  PosFormulaPtr body = PosFormula::And(std::move(conjuncts));
  std::set<std::string> var_set;
  for (const CqAtom& a : d.atoms) {
    for (const logic::Term& t : a.terms) {
      if (t.is_var()) var_set.insert(t.var_name());
    }
  }
  return PosFormula::Exists(
      std::vector<std::string>(var_set.begin(), var_set.end()), body);
}

PosFormulaPtr PostShiftSentence(const PosFormulaPtr& f) {
  // γ sentences use no IsBind; shift pre atoms to post.
  std::function<PosFormulaPtr(const PosFormulaPtr&)> rec =
      [&](const PosFormulaPtr& g) -> PosFormulaPtr {
    switch (g->kind()) {
      case logic::NodeKind::kAtom: {
        logic::PredicateRef pred = g->pred();
        if (pred.space == PredSpace::kPre) pred.space = PredSpace::kPost;
        return PosFormula::MakeAtom(pred, g->terms());
      }
      case logic::NodeKind::kAnd:
      case logic::NodeKind::kOr: {
        std::vector<PosFormulaPtr> kids;
        for (const PosFormulaPtr& c : g->children()) kids.push_back(rec(c));
        return g->kind() == logic::NodeKind::kAnd
                   ? PosFormula::And(std::move(kids))
                   : PosFormula::Or(std::move(kids));
      }
      case logic::NodeKind::kExists:
        return PosFormula::Exists(g->bound_vars(), rec(g->body()));
      default:
        return g;
    }
  };
  return rec(f);
}

/// Per-transition normalized guard info.
struct GuardInfo {
  logic::Ucq positive;                 // ψ+ disjuncts
  std::vector<int> disjunct_phi;       // Φ index of each disjunct's ϕ̃
  std::vector<int> negated_phi;        // Φ indices of post-shifted γs
  std::vector<PosFormulaPtr> negated;  // the original γs
};

int InternPhi(const PosFormulaPtr& f, std::vector<PosFormulaPtr>* phi) {
  for (size_t i = 0; i < phi->size(); ++i) {
    if (PosFormula::Equal((*phi)[i], f)) return static_cast<int>(i);
  }
  phi->push_back(f);
  return static_cast<int>(phi->size() - 1);
}

// ---------------------------------------------------------------------------
// SCC computation (iterative Tarjan)
// ---------------------------------------------------------------------------

std::vector<int> ComputeSccs(int num_states,
                             const std::vector<ATransition>& transitions,
                             int* num_sccs) {
  std::vector<std::vector<int>> adj(static_cast<size_t>(num_states));
  for (const ATransition& t : transitions) {
    adj[static_cast<size_t>(t.from)].push_back(t.to);
  }
  std::vector<int> index(static_cast<size_t>(num_states), -1);
  std::vector<int> low(static_cast<size_t>(num_states), 0);
  std::vector<bool> on_stack(static_cast<size_t>(num_states), false);
  std::vector<int> stack;
  std::vector<int> scc(static_cast<size_t>(num_states), -1);
  int next_index = 0;
  int next_scc = 0;

  std::function<void(int)> strongconnect = [&](int v) {
    index[static_cast<size_t>(v)] = low[static_cast<size_t>(v)] =
        next_index++;
    stack.push_back(v);
    on_stack[static_cast<size_t>(v)] = true;
    for (int w : adj[static_cast<size_t>(v)]) {
      if (index[static_cast<size_t>(w)] == -1) {
        strongconnect(w);
        low[static_cast<size_t>(v)] =
            std::min(low[static_cast<size_t>(v)], low[static_cast<size_t>(w)]);
      } else if (on_stack[static_cast<size_t>(w)]) {
        low[static_cast<size_t>(v)] = std::min(low[static_cast<size_t>(v)],
                                               index[static_cast<size_t>(w)]);
      }
    }
    if (low[static_cast<size_t>(v)] == index[static_cast<size_t>(v)]) {
      while (true) {
        int w = stack.back();
        stack.pop_back();
        on_stack[static_cast<size_t>(w)] = false;
        scc[static_cast<size_t>(w)] = next_scc;
        if (w == v) break;
      }
      ++next_scc;
    }
  };
  for (int v = 0; v < num_states; ++v) {
    if (index[static_cast<size_t>(v)] == -1) strongconnect(v);
  }
  *num_sccs = next_scc;
  return scc;
}

// ---------------------------------------------------------------------------
// Decomposition
// ---------------------------------------------------------------------------

class Decomposer {
 public:
  Decomposer(const AAutomaton& automaton, const schema::Schema& schema,
             const DecomposeOptions& options)
      : automaton_(automaton), schema_(schema), options_(options) {}

  Result<std::vector<ProgressiveAutomaton>> Run() {
    // 1. Normalize guards and build Φ.
    for (const ATransition& t : automaton_.transitions()) {
      GuardInfo info;
      PosFormulaPtr pos =
          t.guard.positive ? t.guard.positive : PosFormula::True();
      if (pos->UsesInequality()) {
        return Status::Unsupported(
            "progressive pipeline requires inequality-free guards "
            "(Thm 5.2: AccLTL+ with != is undecidable)");
      }
      Result<logic::Ucq> ucq = logic::NormalizeToUcq(pos, {}, schema_);
      if (!ucq.ok()) return ucq.status();
      info.positive = ucq.value();
      if (pos->kind() == logic::NodeKind::kTrue) {
        info.positive.disjuncts = {Cq{}};
      }
      for (const Cq& d : info.positive.disjuncts) {
        info.disjunct_phi.push_back(InternPhi(PostShiftDisjunct(d), &phi_));
      }
      for (const PosFormulaPtr& gamma : t.guard.negated) {
        if (gamma->UsesInequality()) {
          return Status::Unsupported(
              "progressive pipeline requires inequality-free guards");
        }
        info.negated.push_back(gamma);
        info.negated_phi.push_back(InternPhi(PostShiftSentence(gamma), &phi_));
      }
      guards_.push_back(std::move(info));
    }
    if (phi_.size() > options_.max_phi) {
      return Status::ResourceExhausted("progressive decomposition: |Phi| = " +
                                       std::to_string(phi_.size()) +
                                       " exceeds max_phi");
    }
    // Drop trivially-true ϕ̃ (empty disjunct): treat as always-true by
    // pinning them true in every type.
    scc_ = ComputeSccs(automaton_.num_states(), automaton_.transitions(),
                       &num_sccs_);

    std::vector<bool> type(phi_.size(), false);
    // The empty-disjunct ϕ̃ (TRUE) is true from the start.
    for (size_t i = 0; i < phi_.size(); ++i) {
      if (phi_[i]->kind() == logic::NodeKind::kTrue) type[i] = true;
    }
    std::vector<Stage> stages;
    Status s = Dfs(automaton_.initial(), type, &stages);
    if (!s.ok()) return s;
    return std::move(variants_);
  }

 private:
  /// Internal usable transitions for the SCC of `entry` under `type`:
  /// transitions inside the SCC whose γ̃s are false and some disjunct ϕ̃
  /// true, restricted to states reachable from entry.
  Stage BuildStage(int entry, const std::vector<bool>& type) const {
    Stage stage;
    stage.entry = entry;
    stage.type = type;
    int my_scc = scc_[static_cast<size_t>(entry)];
    for (int s = 0; s < automaton_.num_states(); ++s) {
      if (scc_[static_cast<size_t>(s)] == my_scc) stage.states.push_back(s);
    }
    // Usable transitions (before reachability).
    std::vector<int> usable;
    for (size_t ti = 0; ti < automaton_.transitions().size(); ++ti) {
      const ATransition& t = automaton_.transitions()[ti];
      if (scc_[static_cast<size_t>(t.from)] != my_scc ||
          scc_[static_cast<size_t>(t.to)] != my_scc) {
        continue;
      }
      const GuardInfo& g = guards_[ti];
      bool negs_ok = true;
      for (int np : g.negated_phi) {
        if (type[static_cast<size_t>(np)]) {
          negs_ok = false;
          break;
        }
      }
      if (!negs_ok) continue;
      bool some_pos = false;
      for (int dp : g.disjunct_phi) {
        if (type[static_cast<size_t>(dp)]) {
          some_pos = true;
          break;
        }
      }
      if (some_pos) usable.push_back(static_cast<int>(ti));
    }
    // Reachability from entry over usable transitions.
    std::set<int> reach = {entry};
    bool grew = true;
    while (grew) {
      grew = false;
      for (int ti : usable) {
        const ATransition& t =
            automaton_.transitions()[static_cast<size_t>(ti)];
        if (reach.count(t.from) > 0 && reach.insert(t.to).second) grew = true;
      }
    }
    for (int ti : usable) {
      const ATransition& t = automaton_.transitions()[static_cast<size_t>(ti)];
      if (reach.count(t.from) > 0) stage.internal_transitions.push_back(ti);
    }
    reachable_cache_ = reach;
    return stage;
  }

  /// Fresh constant of the right type for crossing bindings.
  Value FreshConstant(ValueType type) {
    int64_t n = const_counter_++;
    switch (type) {
      case ValueType::kInt:
        return Value::Int(-2000000 - n);
      case ValueType::kString:
        return Value::Str("~x" + std::to_string(n));
      case ValueType::kBool:
        return Value::Bool(n % 2 == 0);
    }
    return Value::Int(-2000000 - n);
  }

  /// Instantiates the bind variables of a crossing disjunct with fresh
  /// constants (Def. 4.8 condition 5) and enumerates the candidate
  /// crossing methods. A bind atom forces the method; otherwise the
  /// crossing access may be on ANY relation (its response routes
  /// through XBG into the next stage's views), so one candidate per
  /// relation-with-methods is enumerated. A single heuristic pick here
  /// loses accepting paths whose crossing step reveals tuples the
  /// guard itself does not mention — e.g. X [R1_pre(x,y)] crosses on a
  /// TRUE guard whose access must be on R1, while the old "method 0"
  /// pick routed the reveal into the wrong relation and certified a
  /// satisfiable language EMPTY (found by differential fuzzing; see
  /// tests/corpus/).
  Result<std::vector<std::pair<Cq, schema::AccessMethodId>>>
  InstantiateCrossing(const Cq& disjunct) {
    std::optional<schema::AccessMethodId> method;
    for (const CqAtom& a : disjunct.atoms) {
      if (a.pred.space == PredSpace::kBind) {
        if (method.has_value() && *method != a.pred.id) {
          return Status::InvalidArgument(
              "crossing disjunct names two access methods");
        }
        method = a.pred.id;
      }
    }
    Cq out = disjunct;
    if (!method.has_value()) {
      std::vector<std::pair<Cq, schema::AccessMethodId>> candidates;
      for (schema::RelationId r = 0; r < schema_.num_relations(); ++r) {
        const std::vector<schema::AccessMethodId>& ms = schema_.methods_on(r);
        // The reduction only keys the crossing by its relation (XBG
        // routing and input-constant patterns from bind atoms, absent
        // here), so one method per relation covers all of them.
        if (!ms.empty()) candidates.emplace_back(out, ms[0]);
      }
      return candidates;
    }
    // Substitute bind-atom variables by fresh constants everywhere.
    std::map<std::string, Value> subst;
    const schema::AccessMethod& am = schema_.method(*method);
    const schema::Relation& rel = schema_.relation(am.relation);
    for (CqAtom& a : out.atoms) {
      if (a.pred.space != PredSpace::kBind) continue;
      for (size_t i = 0; i < a.terms.size(); ++i) {
        if (!a.terms[i].is_var()) continue;
        ValueType vt = rel.position_types[static_cast<size_t>(
            am.input_positions[i])];
        auto [it, inserted] =
            subst.emplace(a.terms[i].var_name(), FreshConstant(vt));
        (void)inserted;
        (void)it;
      }
    }
    auto apply = [&](logic::Term& t) {
      if (!t.is_var()) return;
      auto it = subst.find(t.var_name());
      if (it != subst.end()) t = logic::Term::Const(it->second);
    };
    for (CqAtom& a : out.atoms) {
      for (logic::Term& t : a.terms) apply(t);
    }
    for (auto& [l, r] : out.neqs) {
      apply(l);
      apply(r);
    }
    return std::vector<std::pair<Cq, schema::AccessMethodId>>{
        {out, *method}};
  }

  /// Enumerates monotone supersets of `type` (including equality when
  /// allowed) and calls fn.
  void ForEachSuperset(const std::vector<bool>& type, bool strict,
                       const std::function<void(const std::vector<bool>&)>& fn) {
    std::vector<size_t> free_idx;
    for (size_t i = 0; i < type.size(); ++i) {
      if (!type[i]) free_idx.push_back(i);
    }
    size_t combos = size_t{1} << free_idx.size();
    for (size_t mask = 0; mask < combos; ++mask) {
      if (strict && mask == 0) continue;
      std::vector<bool> next = type;
      for (size_t b = 0; b < free_idx.size(); ++b) {
        if (mask & (size_t{1} << b)) next[free_idx[b]] = true;
      }
      fn(next);
      if (overflow_) return;
    }
  }

  Status Dfs(int entry, const std::vector<bool>& type,
             std::vector<Stage>* stages) {
    if (overflow_) {
      return Status::ResourceExhausted(
          "progressive decomposition exceeded max_variants");
    }
    if (stages->size() >= options_.max_stages) return Status::OK();
    Stage stage = BuildStage(entry, type);
    std::set<int> reach = reachable_cache_;

    // Option 1: finish here if an accepting state is reachable.
    bool accepting_reachable = false;
    for (int s : reach) {
      if (automaton_.IsAccepting(s)) {
        accepting_reachable = true;
        break;
      }
    }
    if (accepting_reachable) {
      ProgressiveAutomaton variant;
      variant.automaton = &automaton_;
      variant.stages = *stages;
      variant.stages.push_back(stage);
      variant.phi = phi_;
      variants_.push_back(std::move(variant));
      if (variants_.size() >= options_.max_variants) {
        overflow_ = true;
        return Status::ResourceExhausted(
            "progressive decomposition exceeded max_variants");
      }
    }

    // Option 2: cross to a next stage — either a type flip within the
    // same SCC or a move to another SCC (the stage sequence of Def. 4.8
    // condition 5, with flips splitting an SCC into several stages).
    int my_scc = scc_[static_cast<size_t>(entry)];
    for (size_t ti = 0; ti < automaton_.transitions().size(); ++ti) {
      const ATransition& t = automaton_.transitions()[ti];
      if (reach.count(t.from) == 0) continue;
      bool same_scc = scc_[static_cast<size_t>(t.to)] == my_scc &&
                      scc_[static_cast<size_t>(t.from)] == my_scc;
      const GuardInfo& g = guards_[ti];
      for (size_t di = 0; di < g.positive.disjuncts.size(); ++di) {
        Result<std::vector<std::pair<Cq, schema::AccessMethodId>>> inst =
            InstantiateCrossing(g.positive.disjuncts[di]);
        if (!inst.ok()) continue;
        for (const auto& [crossing_cq, crossing_method] : inst.value()) {
          Status status = Status::OK();
          ForEachSuperset(type, /*strict=*/same_scc, [&](const std::vector<
                                                         bool>& next_type) {
            // Crossing requirements: the realized disjunct's ϕ̃ true and
            // all γ̃ false in the next type.
            if (!next_type[static_cast<size_t>(g.disjunct_phi[di])]) return;
            for (int np : g.negated_phi) {
              if (next_type[static_cast<size_t>(np)]) return;
            }
            std::vector<Stage> extended = *stages;
            Stage crossing_stage = stage;
            crossing_stage.crossing_transition = static_cast<int>(ti);
            crossing_stage.crossing_disjunct = crossing_cq;
            crossing_stage.crossing_method = crossing_method;
            extended.push_back(std::move(crossing_stage));
            Status s = Dfs(t.to, next_type, &extended);
            if (!s.ok()) status = s;
          });
          if (!status.ok() && overflow_) return status;
        }
      }
    }
    return Status::OK();
  }

  const AAutomaton& automaton_;
  const schema::Schema& schema_;
  const DecomposeOptions& options_;
  std::vector<GuardInfo> guards_;
  std::vector<PosFormulaPtr> phi_;
  std::vector<int> scc_;
  int num_sccs_ = 0;
  int64_t const_counter_ = 0;
  std::vector<ProgressiveAutomaton> variants_;
  bool overflow_ = false;
  mutable std::set<int> reachable_cache_;
};

}  // namespace

Result<std::vector<ProgressiveAutomaton>> DecomposeToProgressive(
    const AAutomaton& automaton, const schema::Schema& schema,
    const DecomposeOptions& options) {
  ACCLTL_RETURN_IF_ERROR(automaton.Validate());
  Decomposer d(automaton, schema, options);
  return d.Run();
}

// ---------------------------------------------------------------------------
// Lemma 4.10: the Datalog reduction
// ---------------------------------------------------------------------------

namespace {

std::string RelName(const schema::Schema& schema, schema::RelationId r) {
  return schema.relation(r).name;
}

/// Rewrites a (pre|post)-space CQ atom into a Datalog atom over the
/// stage-i view predicates.
datalog::DlAtom ViewAtom(const schema::Schema& schema, const CqAtom& a,
                         int stage) {
  datalog::DlAtom out;
  out.pred = "V_" + RelName(schema, a.pred.id) + "_" + std::to_string(stage);
  out.terms = a.terms;
  return out;
}

}  // namespace

Result<DatalogReduction> BuildDatalogReduction(const ProgressiveAutomaton& pa,
                                               const schema::Schema& schema) {
  DatalogReduction out;
  datalog::Program& prog = out.program;
  const AAutomaton& automaton = *pa.automaton;
  int h = static_cast<int>(pa.stages.size());
  assert(h >= 1);

  auto stage_pred = [](int i) { return "Stage_" + std::to_string(i); };
  auto typeok_pred = [](int i) { return "TypeOK_" + std::to_string(i); };
  auto bg = [&](schema::RelationId r, int i) {
    return "BG_" + RelName(schema, r) + "_" + std::to_string(i);
  };
  auto xbg = [&](schema::RelationId r, int i) {
    return "XBG_" + RelName(schema, r) + "_" + std::to_string(i);
  };
  auto view = [&](schema::RelationId r, int i) {
    return "V_" + RelName(schema, r) + "_" + std::to_string(i);
  };

  // Stage_1 is reachable from the start.
  prog.AddRule(datalog::DlRule{datalog::DlAtom{stage_pred(1), {}}, {}});

  int rename_counter = 0;
  auto fresh_var = [&] {
    return logic::Term::Var("r$" + std::to_string(rename_counter++));
  };

  // Every view predicate must be intensional even when no access can
  // populate it (otherwise it would default to an extensional relation
  // the containment adversary may fill). A tautological self-rule makes
  // it IDB without deriving anything.
  for (int i = 1; i <= h; ++i) {
    for (schema::RelationId r = 0; r < schema.num_relations(); ++r) {
      datalog::DlRule self;
      std::vector<logic::Term> vars;
      for (int pidx = 0; pidx < schema.relation(r).arity(); ++pidx) {
        vars.push_back(fresh_var());
      }
      self.head = datalog::DlAtom{view(r, i), vars};
      self.body.push_back(datalog::DlAtom{view(r, i), vars});
      prog.AddRule(std::move(self));
    }
  }

  // --- Per-stage view-accumulation rules -----------------------------------
  for (int i = 1; i <= h; ++i) {
    const Stage& stage = pa.stages[static_cast<size_t>(i - 1)];
    for (int ti : stage.internal_transitions) {
      const ATransition& t =
          automaton.transitions()[static_cast<size_t>(ti)];
      PosFormulaPtr pos =
          t.guard.positive ? t.guard.positive : PosFormula::True();
      Result<logic::Ucq> ucq = logic::NormalizeToUcq(pos, {}, schema);
      if (!ucq.ok()) return ucq.status();
      logic::Ucq positive = ucq.value();
      if (pos->kind() == logic::NodeKind::kTrue) {
        positive.disjuncts = {Cq{}};
      }
      for (const Cq& d : positive.disjuncts) {
        // Only disjuncts whose ϕ̃ is true in this stage's type can fire
        // here (monotonicity: firing makes ϕ̃ true by end of stage).
        int phi_idx = -1;
        PosFormulaPtr shifted = PostShiftDisjunct(d);
        for (size_t k = 0; k < pa.phi.size(); ++k) {
          if (PosFormula::Equal(pa.phi[k], shifted)) {
            phi_idx = static_cast<int>(k);
            break;
          }
        }
        if (phi_idx >= 0 && !stage.type[static_cast<size_t>(phi_idx)]) {
          continue;
        }
        // Split atoms; the accessed relation gains one new tuple per
        // Datalog step. NOTE(paper-gap): the appendix's construction
        // adds response tuples one at a time; within a stage this is
        // justified by condition 4's free-replay property.
        std::vector<const CqAtom*> pre, post, bind;
        for (const CqAtom& a : d.atoms) {
          switch (a.pred.space) {
            case PredSpace::kPre:
              pre.push_back(&a);
              break;
            case PredSpace::kPost:
              post.push_back(&a);
              break;
            case PredSpace::kBind:
              bind.push_back(&a);
              break;
            case PredSpace::kPlain:
              break;
          }
        }
        std::optional<schema::AccessMethodId> method;
        if (!bind.empty()) method = bind[0]->pred.id;

        // Choose the subset of post atoms denoting the new tuple; all
        // must unify with one head tuple over the accessed relation.
        size_t subsets = size_t{1} << post.size();
        for (size_t mask = 1; mask < subsets; ++mask) {
          std::optional<schema::RelationId> target;
          std::vector<const CqAtom*> as_new, as_old;
          bool ok = true;
          for (size_t b = 0; b < post.size(); ++b) {
            if (mask & (size_t{1} << b)) {
              if (target.has_value() && *target != post[b]->pred.id) {
                ok = false;
                break;
              }
              target = post[b]->pred.id;
              as_new.push_back(post[b]);
            } else {
              as_old.push_back(post[b]);
            }
          }
          if (!ok || !target.has_value()) continue;
          if (method.has_value() &&
              schema.method(*method).relation != *target) {
            continue;
          }
          // Unify all new atoms with the head tuple (term-level MGU).
          std::map<std::string, logic::Term> mgu;
          std::function<logic::Term(logic::Term)> res =
              [&](logic::Term x) {
                while (x.is_var()) {
                  auto it = mgu.find(x.var_name());
                  if (it == mgu.end()) break;
                  x = it->second;
                }
                return x;
              };
          bool unified = true;
          for (size_t b = 1; b < as_new.size() && unified; ++b) {
            for (size_t p = 0; p < as_new[b]->terms.size(); ++p) {
              logic::Term x = res(as_new[0]->terms[p]);
              logic::Term y = res(as_new[b]->terms[p]);
              if (x == y) continue;
              if (x.is_var()) {
                mgu[x.var_name()] = y;
              } else if (y.is_var()) {
                mgu[y.var_name()] = x;
              } else {
                unified = false;
                break;
              }
            }
          }
          if (!unified) continue;
          // Binding agreement: bind atom terms equal head tuple's input
          // positions.
          if (method.has_value()) {
            const schema::AccessMethod& am = schema.method(*method);
            for (const CqAtom* batom : bind) {
              for (size_t bi = 0; bi < batom->terms.size() && unified;
                   ++bi) {
                logic::Term x = res(batom->terms[bi]);
                logic::Term y = res(
                    as_new[0]->terms[static_cast<size_t>(
                        am.input_positions[bi])]);
                if (x == y) continue;
                if (x.is_var()) {
                  mgu[x.var_name()] = y;
                } else if (y.is_var()) {
                  mgu[y.var_name()] = x;
                } else {
                  unified = false;
                }
              }
            }
            if (!unified) continue;
          }
          auto subst_atom = [&](const CqAtom& a) {
            CqAtom c = a;
            for (logic::Term& term : c.terms) term = res(term);
            return c;
          };
          datalog::DlRule rule;
          CqAtom head_atom = subst_atom(*as_new[0]);
          rule.head = datalog::DlAtom{view(*target, i), head_atom.terms};
          rule.body.push_back(datalog::DlAtom{stage_pred(i), {}});
          rule.body.push_back(
              datalog::DlAtom{bg(*target, i), head_atom.terms});
          for (const CqAtom* a : pre) {
            rule.body.push_back(ViewAtom(schema, subst_atom(*a), i));
          }
          for (const CqAtom* a : as_old) {
            rule.body.push_back(ViewAtom(schema, subst_atom(*a), i));
          }
          prog.AddRule(std::move(rule));
        }
      }
    }

    // TypeOK_i: concrete witnesses for every Φ sentence the type claims
    // true (used by crossing/goal rules; justifies free replay).
    std::vector<datalog::DlAtom> typeok_body = {
        datalog::DlAtom{stage_pred(i), {}}};
    for (size_t k = 0; k < pa.phi.size(); ++k) {
      if (!stage.type[k]) continue;
      if (pa.phi[k]->kind() == logic::NodeKind::kTrue) continue;
      std::string tok = "TOK_" + std::to_string(i) + "_" + std::to_string(k);
      Result<logic::Ucq> ucq = logic::NormalizeToUcq(pa.phi[k], {}, schema);
      if (!ucq.ok()) return ucq.status();
      for (const Cq& d : ucq.value().disjuncts) {
        datalog::DlRule rule;
        rule.head = datalog::DlAtom{tok, {}};
        rule.body.push_back(datalog::DlAtom{stage_pred(i), {}});
        // Rename disjunct variables apart from other rules.
        std::map<std::string, logic::Term> ren;
        for (const CqAtom& a : d.atoms) {
          CqAtom c = a;
          for (logic::Term& term : c.terms) {
            if (term.is_var()) {
              auto [it, inserted] = ren.emplace(term.var_name(), fresh_var());
              term = it->second;
            }
          }
          rule.body.push_back(ViewAtom(schema, c, i));
        }
        prog.AddRule(std::move(rule));
      }
      typeok_body.push_back(datalog::DlAtom{tok, {}});
    }
    prog.AddRule(
        datalog::DlRule{datalog::DlAtom{typeok_pred(i), {}}, typeok_body});

    // Crossing into stage i+1.
    if (i < h) {
      const Cq& cd = stage.crossing_disjunct;
      datalog::DlRule rule;
      rule.head = datalog::DlAtom{stage_pred(i + 1), {}};
      rule.body.push_back(datalog::DlAtom{stage_pred(i), {}});
      rule.body.push_back(datalog::DlAtom{typeok_pred(i), {}});
      schema::RelationId xrel = schema.method(stage.crossing_method).relation;
      for (const CqAtom& a : cd.atoms) {
        if (a.pred.space == PredSpace::kBind) continue;  // constants already
        if (a.pred.space == PredSpace::kPre) {
          rule.body.push_back(ViewAtom(schema, a, i));
        } else {
          // Post atom: revealed earlier or by the crossing access.
          // Encode the "by the crossing" option only for the accessed
          // relation; generate both variants as separate rules would
          // double the rule count — here we use the XBG option when the
          // relation matches, plus a view option rule below.
          if (a.pred.id == xrel) {
            rule.body.push_back(
                datalog::DlAtom{xbg(a.pred.id, i), a.terms});
          } else {
            rule.body.push_back(ViewAtom(schema, a, i));
          }
        }
      }
      prog.AddRule(std::move(rule));

      // Views carry over, plus the crossing tuples that agree with the
      // (constant) crossing binding.
      for (schema::RelationId r = 0; r < schema.num_relations(); ++r) {
        datalog::DlRule carry;
        std::vector<logic::Term> vars;
        for (int pidx = 0; pidx < schema.relation(r).arity(); ++pidx) {
          vars.push_back(fresh_var());
        }
        carry.head = datalog::DlAtom{view(r, i + 1), vars};
        carry.body.push_back(datalog::DlAtom{stage_pred(i + 1), {}});
        carry.body.push_back(datalog::DlAtom{view(r, i), vars});
        prog.AddRule(std::move(carry));
      }
      {
        datalog::DlRule xin;
        std::vector<logic::Term> pattern;
        const schema::AccessMethod& am = schema.method(stage.crossing_method);
        // Pattern: input positions forced to the crossing binding
        // constants (taken from the instantiated bind atom when
        // present; otherwise fresh constants are already embedded in
        // the disjunct or the binding is unconstrained).
        std::map<int, Value> input_consts;
        for (const CqAtom& a : cd.atoms) {
          if (a.pred.space != PredSpace::kBind) continue;
          for (size_t bi = 0; bi < a.terms.size(); ++bi) {
            if (a.terms[bi].is_const()) {
              input_consts[am.input_positions[bi]] = a.terms[bi].value();
            }
          }
        }
        for (int pidx = 0; pidx < schema.relation(xrel).arity(); ++pidx) {
          auto it = input_consts.find(pidx);
          pattern.push_back(it != input_consts.end()
                                ? logic::Term::Const(it->second)
                                : fresh_var());
        }
        xin.head = datalog::DlAtom{view(xrel, i + 1), pattern};
        xin.body.push_back(datalog::DlAtom{stage_pred(i + 1), {}});
        xin.body.push_back(datalog::DlAtom{xbg(xrel, i), pattern});
        prog.AddRule(std::move(xin));
      }
    }
  }

  // Goal.
  prog.AddRule(datalog::DlRule{
      datalog::DlAtom{"Accept", {}},
      {datalog::DlAtom{stage_pred(h), {}},
       datalog::DlAtom{typeok_pred(h), {}}}});
  prog.SetGoal("Accept");

  // --- P′A: the negative constraints ---------------------------------------
  // For each γ required false through stage L (its last-false stage), a
  // violation disjunct: γ holds over the backgrounds visible by stage L
  // (BG_*_1..L and XBG_*_1..L-1), expanded over per-atom stage choices.
  std::set<std::string> emitted;
  for (int i = 1; i <= h; ++i) {
    const Stage& stage = pa.stages[static_cast<size_t>(i - 1)];
    std::vector<int> gamma_transitions = stage.internal_transitions;
    if (i < h) gamma_transitions.push_back(stage.crossing_transition);
    for (int ti : gamma_transitions) {
      const ATransition& t =
          automaton.transitions()[static_cast<size_t>(ti)];
      for (const PosFormulaPtr& gamma : t.guard.negated) {
        // Horizon: last stage whose type keeps γ̃ false. Crossing
        // negatives are checked against stage i+1 content.
        PosFormulaPtr shifted = PostShiftSentence(gamma);
        int phi_idx = -1;
        for (size_t k = 0; k < pa.phi.size(); ++k) {
          if (PosFormula::Equal(pa.phi[k], shifted)) {
            phi_idx = static_cast<int>(k);
            break;
          }
        }
        int horizon = i;
        if (phi_idx >= 0) {
          for (int j = h; j >= 1; --j) {
            if (!pa.stages[static_cast<size_t>(j - 1)]
                     .type[static_cast<size_t>(phi_idx)]) {
              horizon = std::max(horizon, j);
              break;
            }
          }
        }
        std::string key =
            gamma->ToString(schema) + "@" + std::to_string(horizon);
        if (!emitted.insert(key).second) continue;
        Result<logic::Ucq> ucq = logic::NormalizeToUcq(gamma, {}, schema);
        if (!ucq.ok()) return ucq.status();
        for (const Cq& d : ucq.value().disjuncts) {
          // Expand per-atom stage assignments <= horizon.
          std::vector<datalog::DlAtom> atoms_template;
          std::function<void(size_t, std::vector<datalog::DlAtom>*)> expand =
              [&](size_t ai, std::vector<datalog::DlAtom>* acc) {
                if (ai == d.atoms.size()) {
                  out.constraint.push_back(datalog::DlCq{*acc});
                  return;
                }
                const CqAtom& a = d.atoms[ai];
                for (int j = 1; j <= horizon; ++j) {
                  acc->push_back(datalog::DlAtom{bg(a.pred.id, j), a.terms});
                  expand(ai + 1, acc);
                  acc->pop_back();
                  if (j < horizon) {
                    acc->push_back(
                        datalog::DlAtom{xbg(a.pred.id, j), a.terms});
                    expand(ai + 1, acc);
                    acc->pop_back();
                  }
                }
              };
          std::vector<datalog::DlAtom> acc;
          expand(0, &acc);
        }
      }
    }
  }
  return out;
}

Result<bool> EmptinessViaDatalog(const AAutomaton& automaton,
                                 const schema::Schema& schema,
                                 const DecomposeOptions& options,
                                 PipelineStats* stats) {
  // An automaton whose initial state is accepting accepts the empty
  // path.
  if (automaton.IsAccepting(automaton.initial())) return false;

  Result<std::vector<ProgressiveAutomaton>> variants =
      DecomposeToProgressive(automaton, schema, options);
  if (!variants.ok()) return variants.status();
  if (stats != nullptr) stats->variants = variants.value().size();

  for (const ProgressiveAutomaton& pa : variants.value()) {
    Result<DatalogReduction> red = BuildDatalogReduction(pa, schema);
    if (!red.ok()) return red.status();
    if (stats != nullptr) {
      stats->datalog_rules += red.value().program.rules().size();
      stats->constraint_disjuncts += red.value().constraint.size();
    }
    datalog::ContainmentStats cstats;
    Result<bool> contained = datalog::ContainedInPositive(
        red.value().program, red.value().constraint, {}, &cstats);
    if (stats != nullptr) {
      stats->containment.type_entries += cstats.type_entries;
      stats->containment.compositions += cstats.compositions;
      stats->containment.iterations += cstats.iterations;
    }
    if (!contained.ok()) return contained.status();
    if (!contained.value()) return false;  // witness exists: non-empty
  }
  return true;  // all variants contained: L(A) empty
}

}  // namespace automata
}  // namespace accltl
