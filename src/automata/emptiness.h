#ifndef ACCLTL_AUTOMATA_EMPTINESS_H_
#define ACCLTL_AUTOMATA_EMPTINESS_H_

#include <cstddef>

#include "src/automata/a_automaton.h"
#include "src/engine/cancel.h"
#include "src/schema/access.h"

namespace accltl {
namespace automata {

struct WitnessSearchOptions {
  /// Maximum access-path length explored.
  size_t max_path_length = 6;
  /// Restrict to grounded paths (§2): binding values must come from the
  /// current configuration (no guessed values).
  bool grounded = false;
  /// Require the witness to be an idempotent path.
  bool require_idempotent = false;
  /// Require the witness to be exact (for all methods).
  bool require_exact = false;
  /// Node budget for the search.
  size_t max_nodes = 200000;
  /// Cap on realizations enumerated per (transition, disjunct) step.
  size_t max_realizations_per_step = 512;
  /// Prune revisits of a (state, configuration) pair at the same or a
  /// greater depth, keyed by the 64-bit configuration hash. Exposed so
  /// tests/benchmarks can measure the nodes_explored reduction.
  bool use_visited_dedup = true;
};

struct WitnessSearchResult {
  /// True when an accepting access path was found (L(A) non-empty).
  bool found = false;
  schema::AccessPath witness;
  /// True when a budget was hit before the bounded space was exhausted
  /// — the `max_nodes` budget or the `max_realizations_per_step` cap;
  /// `found == false` then means "unknown", not "empty".
  bool exhausted_budget = false;
  /// True when `exec.cancel` fired (deadline or explicit cancel) and
  /// stopped the search; `found == false` then means "unknown". A
  /// witness found before the cut is still returned (it is sound).
  bool cancelled = false;
  size_t nodes_explored = 0;
  /// Logical bytes held live by the visited set at the end of the
  /// search (plus the treedb arena under VisitedMode::kCompact).
  /// Deterministic whenever the search result is.
  size_t visited_bytes = 0;
  /// Interned tree nodes (kCompact only; 0 under kExact).
  size_t treedb_nodes = 0;
};

/// Bounded explicit-state emptiness: searches for an accepting access
/// path of length ≤ max_path_length, growing a concrete instance whose
/// facts realize the positive guard parts via homomorphism search and
/// fresh ("guessed") values, and checking the negated parts on each
/// concrete transition. Sound: a returned witness is a real accepting
/// access path. Complete up to the path-length bound for guards whose
/// negative parts do not force value fusion (see DESIGN.md).
///
/// `exec` is the single execution-context source (engine/cancel.h):
/// worker count and cancellation. Results reduce deterministically by
/// the content order on access paths (see DESIGN.md, "Parallel
/// engine"), independent of scheduling: the same witness and the same
/// exhausted_budget verdict at every `exec.num_threads`, provided
/// `max_nodes` is not the binding constraint (the serial and parallel
/// disciplines spend the budget on different node orders, so searches
/// cut off mid-space may diverge — clearly-under or clearly-over
/// budgets are deterministic either way). The total node count across
/// phases never exceeds `max_nodes` at any setting, and a cancel
/// token that never fires never changes any result.
WitnessSearchResult BoundedWitnessSearch(
    const AAutomaton& automaton, const schema::Schema& schema,
    const schema::Instance& initial, const WitnessSearchOptions& options,
    const engine::ExecOptions& exec = {});

}  // namespace automata
}  // namespace accltl

#endif  // ACCLTL_AUTOMATA_EMPTINESS_H_
