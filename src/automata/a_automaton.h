#ifndef ACCLTL_AUTOMATA_A_AUTOMATON_H_
#define ACCLTL_AUTOMATA_A_AUTOMATON_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/logic/formula.h"
#include "src/logic/structure.h"
#include "src/schema/access.h"
#include "src/schema/lts.h"

namespace accltl {
namespace automata {

/// A transition guard ψ− ∧ ψ+ (Def. 4.3): ψ+ is an FO∃+ sentence over
/// SchAcc (may mention IsBind); ψ− is a conjunction of negated FO∃+
/// sentences that must not mention IsBind.
struct Guard {
  /// ψ+ (TRUE when absent).
  logic::PosFormulaPtr positive;
  /// The γ of each ¬γ conjunct of ψ−.
  std::vector<logic::PosFormulaPtr> negated;

  /// Evaluates the guard on the transition structure M(t).
  bool Eval(const schema::Transition& t) const;

  /// Evaluates the guard against an arbitrary structure view — e.g. a
  /// logic::IndexedTransitionView, which answers bound-position atom
  /// probes through a MatchIndexCache instead of scanning (the online
  /// monitor's per-step path).
  bool Eval(const logic::StructureView& view) const;

  /// Evaluates only the ψ− part (every ¬γ conjunct). For callers that
  /// constructed `t` to satisfy ψ+ (e.g. realization enumeration),
  /// re-evaluating the positive join is pure waste.
  bool EvalNegated(const schema::Transition& t) const;

  std::string ToString(const schema::Schema& schema) const;
};

struct ATransition {
  int from = 0;
  Guard guard;
  int to = 0;
};

/// An Access-automaton (Def. 4.3): finite control running over access
/// paths; each path transition must satisfy the guard of the automaton
/// transition taken.
class AAutomaton {
 public:
  AAutomaton() = default;

  /// Adds a state; returns its id.
  int AddState() { return num_states_++; }

  void SetInitial(int s) { initial_ = s; }
  void AddAccepting(int s) { accepting_.insert(s); }
  void AddTransition(int from, Guard guard, int to) {
    transitions_.push_back(ATransition{from, std::move(guard), to});
  }

  int num_states() const { return num_states_; }
  int initial() const { return initial_; }
  const std::set<int>& accepting() const { return accepting_; }
  bool IsAccepting(int s) const { return accepting_.count(s) > 0; }
  const std::vector<ATransition>& transitions() const { return transitions_; }

  /// Transitions leaving `s`.
  std::vector<const ATransition*> From(int s) const;

  /// Checks Def. 4.3's well-formedness: state ids in range and no
  /// IsBind predicate inside the negated guard parts.
  Status Validate() const;

  std::string ToString(const schema::Schema& schema) const;

 private:
  int num_states_ = 0;
  int initial_ = 0;
  std::set<int> accepting_;
  std::vector<ATransition> transitions_;
};

/// Does the automaton accept this access path (some run over all
/// transitions ending in an accepting state)? NFA subset simulation;
/// guards evaluated on each M(ti).
bool Accepts(const AAutomaton& automaton, const schema::Schema& schema,
             const schema::AccessPath& path,
             const schema::Instance& initial);

/// Same over pre-materialized transitions.
bool AcceptsTransitions(const AAutomaton& automaton,
                        const std::vector<schema::Transition>& transitions);

}  // namespace automata
}  // namespace accltl

#endif  // ACCLTL_AUTOMATA_A_AUTOMATON_H_
