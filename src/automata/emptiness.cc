#include "src/automata/emptiness.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>

#include "src/logic/cq.h"
#include "src/logic/eval.h"

namespace accltl {
namespace automata {

namespace {

using logic::Cq;
using logic::CqAtom;
using logic::Env;
using logic::PredSpace;
using schema::AccessMethodId;
using schema::Instance;
using schema::RelationId;

/// One way to take an automaton transition as a concrete access.
struct Realization {
  AccessMethodId method = 0;
  Tuple binding;
  std::vector<Tuple> new_facts;
};

/// Enumerates concrete realizations of a guard disjunct from the
/// current instance; calls `fn` for each (stop when it returns true).
class RealizationEnumerator {
 public:
  RealizationEnumerator(const schema::Schema& schema, const Instance& current,
                        const WitnessSearchOptions& options,
                        logic::FreshValueFactory* factory)
      : schema_(schema),
        current_(current),
        options_(options),
        factory_(factory) {}

  bool ForEach(const Cq& disjunct,
               const std::function<bool(const Realization&)>& fn) {
    // Partition atoms by space.
    std::vector<const CqAtom*> pre, post, bind;
    for (const CqAtom& a : disjunct.atoms) {
      switch (a.pred.space) {
        case PredSpace::kPre:
          pre.push_back(&a);
          break;
        case PredSpace::kPost:
          post.push_back(&a);
          break;
        case PredSpace::kBind:
          bind.push_back(&a);
          break;
        case PredSpace::kPlain:
          return false;  // not a transition formula
      }
    }
    // All bind atoms must agree on the method (a transition has one).
    std::optional<AccessMethodId> method;
    for (const CqAtom* b : bind) {
      if (method.has_value() && *method != b->pred.id) return false;
      method = b->pred.id;
    }
    std::vector<AccessMethodId> methods;
    if (method.has_value()) {
      methods.push_back(*method);
    } else {
      for (AccessMethodId m = 0; m < schema_.num_access_methods(); ++m) {
        methods.push_back(m);
      }
    }
    emitted_ = 0;
    for (AccessMethodId m : methods) {
      // Choose which post atoms denote newly returned tuples. Post atoms
      // can also map to already-revealed facts; mapping to *other* new
      // facts is covered by putting both atoms in the new set.
      RelationId target = schema_.method(m).relation;
      size_t subsets = size_t{1} << post.size();
      for (size_t mask = 0; mask < subsets; ++mask) {
        std::vector<const CqAtom*> as_new, as_old;
        bool ok = true;
        for (size_t i = 0; i < post.size(); ++i) {
          if (mask & (size_t{1} << i)) {
            if (post[i]->pred.id != target) {
              ok = false;
              break;
            }
            as_new.push_back(post[i]);
          } else {
            as_old.push_back(post[i]);
          }
        }
        if (!ok) continue;
        if (Match(disjunct, m, pre, as_old, as_new, bind, fn)) return true;
        if (emitted_ >= options_.max_realizations_per_step) return false;
      }
    }
    return false;
  }

 private:
  /// Backtracking match of pre/old-post atoms against revealed facts,
  /// then instantiation of new facts and the binding.
  bool Match(const Cq& disjunct, AccessMethodId m,
             const std::vector<const CqAtom*>& pre,
             const std::vector<const CqAtom*>& as_old,
             const std::vector<const CqAtom*>& as_new,
             const std::vector<const CqAtom*>& bind,
             const std::function<bool(const Realization&)>& fn) {
    std::vector<const CqAtom*> to_match = pre;
    to_match.insert(to_match.end(), as_old.begin(), as_old.end());
    Env env;
    std::function<bool(size_t)> rec = [&](size_t idx) -> bool {
      if (emitted_ >= options_.max_realizations_per_step) return false;
      if (idx == to_match.size()) {
        return Finish(disjunct, m, as_new, bind, &env, fn);
      }
      const CqAtom& atom = *to_match[idx];
      for (const Tuple& tuple : current_.tuples(atom.pred.id)) {
        std::vector<std::string> newly;
        bool ok = true;
        for (size_t i = 0; i < tuple.size(); ++i) {
          const logic::Term& t = atom.terms[i];
          if (t.is_const()) {
            if (t.value() != tuple[i]) {
              ok = false;
              break;
            }
          } else {
            auto it = env.find(t.var_name());
            if (it != env.end()) {
              if (it->second != tuple[i]) {
                ok = false;
                break;
              }
            } else {
              env[t.var_name()] = tuple[i];
              newly.push_back(t.var_name());
            }
          }
        }
        if (ok && rec(idx + 1)) return true;
        for (const std::string& v : newly) env.erase(v);
      }
      return false;
    };
    return rec(0);
  }

  /// Term to value: bound / constant / fresh (registering in env).
  std::optional<Value> Resolve(const logic::Term& t, ValueType type, Env* env,
                               bool allow_fresh) {
    if (t.is_const()) return t.value();
    auto it = env->find(t.var_name());
    if (it != env->end()) return it->second;
    if (!allow_fresh) return std::nullopt;
    Value v = factory_->Fresh(type);
    (*env)[t.var_name()] = v;
    return v;
  }

  bool Finish(const Cq& disjunct, AccessMethodId m,
              const std::vector<const CqAtom*>& as_new,
              const std::vector<const CqAtom*>& bind, Env* env,
              const std::function<bool(const Realization&)>& fn) {
    const schema::AccessMethod& method = schema_.method(m);
    const schema::Relation& rel = schema_.relation(method.relation);
    Env saved = *env;
    auto restore = [&] { *env = saved; };

    Realization r;
    r.method = m;

    // 0-ary IsBind atoms (the Sch0−Acc abstraction) constrain only the
    // method, not the binding values — drop them here.
    std::vector<const CqAtom*> bind_full;
    for (const CqAtom* b : bind) {
      if (static_cast<int>(b->terms.size()) == method.num_inputs() &&
          !b->terms.empty()) {
        bind_full.push_back(b);
      }
    }

    // Binding first: bind-atom terms; grounded mode forbids fresh values
    // in bindings.
    if (!bind_full.empty()) {
      const CqAtom& batom = *bind_full[0];
      for (size_t i = 0; i < batom.terms.size(); ++i) {
        ValueType type = rel.position_types[static_cast<size_t>(
            method.input_positions[i])];
        std::optional<Value> v =
            Resolve(batom.terms[i], type, env, /*allow_fresh=*/
                    !options_.grounded);
        if (!v.has_value()) {
          restore();
          return false;
        }
        r.binding.push_back(*v);
      }
      // Remaining bind atoms (same method) must agree.
      for (size_t b = 1; b < bind_full.size(); ++b) {
        for (size_t i = 0; i < bind_full[b]->terms.size(); ++i) {
          ValueType type = rel.position_types[static_cast<size_t>(
              method.input_positions[i])];
          std::optional<Value> v =
              Resolve(bind_full[b]->terms[i], type, env, !options_.grounded);
          if (!v.has_value() || *v != r.binding[i]) {
            restore();
            return false;
          }
        }
      }
    }

    // New facts. When the binding is already fixed (bind atoms), the
    // response must agree with it on input positions — propagate the
    // binding into unbound variables there instead of inventing fresh
    // values that could never agree.
    for (const CqAtom* a : as_new) {
      if (!r.binding.empty()) {
        for (size_t i = 0; i < method.input_positions.size(); ++i) {
          const logic::Term& term =
              a->terms[static_cast<size_t>(method.input_positions[i])];
          if (term.is_var() && env->find(term.var_name()) == env->end()) {
            (*env)[term.var_name()] = r.binding[i];
          }
        }
      }
      Tuple t;
      t.reserve(a->terms.size());
      bool ok = true;
      for (size_t i = 0; i < a->terms.size(); ++i) {
        std::optional<Value> v =
            Resolve(a->terms[i], rel.position_types[i], env, true);
        if (!v.has_value()) {
          ok = false;
          break;
        }
        t.push_back(*v);
      }
      if (!ok) {
        restore();
        return false;
      }
      r.new_facts.push_back(std::move(t));
    }

    // Derive or check the binding from the new facts.
    if (bind_full.empty()) {
      if (!r.new_facts.empty()) {
        for (schema::Position p : method.input_positions) {
          r.binding.push_back(r.new_facts[0][static_cast<size_t>(p)]);
        }
      } else {
        // Free access: pick deterministic binding values.
        for (schema::Position p : method.input_positions) {
          ValueType type = rel.position_types[static_cast<size_t>(p)];
          std::optional<Value> v;
          if (options_.grounded) {
            for (const Value& cand : current_.ActiveDomain()) {
              if (cand.type() == type) {
                v = cand;
                break;
              }
            }
          } else {
            v = factory_->Fresh(type);
          }
          if (!v.has_value()) {
            restore();
            return false;  // grounded and nothing to enter into the form
          }
          r.binding.push_back(*v);
        }
      }
      if (options_.grounded) {
        std::set<Value> dom = current_.ActiveDomain();
        for (const Value& v : r.binding) {
          if (dom.count(v) == 0) {
            restore();
            return false;
          }
        }
      }
    }
    // Responses must agree with the binding on input positions.
    for (const Tuple& t : r.new_facts) {
      for (size_t i = 0; i < method.input_positions.size(); ++i) {
        if (t[static_cast<size_t>(method.input_positions[i])] !=
            r.binding[i]) {
          restore();
          return false;
        }
      }
    }
    // Inequalities of the disjunct.
    for (const auto& [l, rterm] : disjunct.neqs) {
      auto value_of = [&](const logic::Term& t) -> std::optional<Value> {
        if (t.is_const()) return t.value();
        auto it = env->find(t.var_name());
        if (it == env->end()) return std::nullopt;
        return it->second;
      };
      std::optional<Value> lv = value_of(l), rv = value_of(rterm);
      if (!lv.has_value() || !rv.has_value() || *lv == *rv) {
        restore();
        return false;
      }
    }
    ++emitted_;
    bool stop = fn(r);
    restore();
    return stop;
  }

  const schema::Schema& schema_;
  const Instance& current_;
  const WitnessSearchOptions& options_;
  logic::FreshValueFactory* factory_;
  size_t emitted_ = 0;
};

class Searcher {
 public:
  Searcher(const AAutomaton& automaton, const schema::Schema& schema,
           const WitnessSearchOptions& options)
      : automaton_(automaton), schema_(schema), options_(options) {
    // Pre-normalize guards to UCQs.
    for (const ATransition& t : automaton_.transitions()) {
      logic::PosFormulaPtr pos =
          t.guard.positive ? t.guard.positive : logic::PosFormula::True();
      Result<logic::Ucq> ucq = logic::NormalizeToUcq(pos, {}, schema_);
      guards_.push_back(ucq.ok() ? ucq.value() : logic::Ucq{});
      // Degenerate case: TRUE normalizes to one empty disjunct.
      if (pos->kind() == logic::NodeKind::kTrue) {
        logic::Ucq truth;
        truth.disjuncts.push_back(logic::Cq{});
        guards_.back() = truth;
      }
    }
    // Speculative fact pool: canonical (frozen) facts of every guard
    // disjunct. Guards often require facts in their *pre* structure
    // that only an earlier, unconstrained access can reveal; injecting
    // pool facts through permissive transitions realizes such paths.
    for (const logic::Ucq& g : guards_) {
      for (const logic::Cq& d : g.disjuncts) {
        logic::Cq data_only;
        for (const logic::CqAtom& a : d.atoms) {
          if (a.pred.space == PredSpace::kPre ||
              a.pred.space == PredSpace::kPost) {
            data_only.atoms.push_back(a);
          }
        }
        if (data_only.atoms.empty()) continue;
        Result<logic::FrozenCq> frozen =
            logic::FreezeCq(data_only, schema_, &factory_);
        if (!frozen.ok()) continue;
        for (const auto& [pred, tuples] : frozen.value().db.relations()) {
          for (const Tuple& t : tuples) {
            if (pool_.size() >= 64) break;
            pool_.emplace_back(pred.id, t);
          }
        }
      }
    }
  }

  WitnessSearchResult Run(const Instance& initial) {
    result_ = WitnessSearchResult{};
    path_.clear();
    Dfs(automaton_.initial(), initial, 0);
    return result_;
  }

 private:
  bool AcceptHere(int state, const Instance& initial_instance) {
    if (!automaton_.IsAccepting(state)) return false;
    schema::AccessPath path(path_);
    if (options_.require_idempotent && !path.IsIdempotent()) return false;
    if (options_.require_exact &&
        !path.IsExact(schema_, initial_instance)) {
      return false;
    }
    result_.found = true;
    result_.witness = path;
    return true;
  }

  bool Dfs(int state, const Instance& current, size_t depth) {
    if (++result_.nodes_explored > options_.max_nodes) {
      result_.exhausted_budget = true;
      return false;
    }
    if (AcceptHere(state, initial_for_checks_ ? *initial_for_checks_
                                              : current)) {
      return true;
    }
    if (depth >= options_.max_path_length) return false;
    auto key = std::make_pair(state, current);
    auto it = visited_.find(key);
    if (it != visited_.end() && it->second <= depth) return false;
    visited_[key] = depth;

    for (size_t ti = 0; ti < automaton_.transitions().size(); ++ti) {
      const ATransition& at = automaton_.transitions()[ti];
      if (at.from != state) continue;
      RealizationEnumerator en(schema_, current, options_, &factory_);
      for (const logic::Cq& disjunct : guards_[ti].disjuncts) {
        bool stop = en.ForEach(disjunct, [&](const Realization& r) -> bool {
          schema::Response response(r.new_facts.begin(), r.new_facts.end());
          return TryTransition(at, schema::Access{r.method, r.binding},
                               std::move(response), current, depth);
        });
        if (stop) return true;
        if (result_.exhausted_budget) return false;
      }
      // Speculative pool injection: reveal one canonical fact through
      // this transition (useful when the guard is permissive and a
      // later guard needs the fact in its pre-structure).
      for (const auto& [rel, tuple] : pool_) {
        if (current.Contains(rel, tuple)) continue;
        for (schema::AccessMethodId m : schema_.methods_on(rel)) {
          const schema::AccessMethod& am = schema_.method(m);
          Tuple binding;
          for (schema::Position p : am.input_positions) {
            binding.push_back(tuple[static_cast<size_t>(p)]);
          }
          if (options_.grounded) {
            std::set<Value> dom = current.ActiveDomain();
            bool ok = true;
            for (const Value& v : binding) {
              if (dom.count(v) == 0) {
                ok = false;
                break;
              }
            }
            if (!ok) continue;
          }
          if (TryTransition(at, schema::Access{m, binding},
                            schema::Response{tuple}, current, depth)) {
            return true;
          }
          if (result_.exhausted_budget) return false;
        }
      }
    }
    return false;
  }

  /// Takes the automaton transition with a concrete access if the full
  /// guard holds on it; recurses. Returns true when a witness was found.
  bool TryTransition(const ATransition& at, schema::Access access,
                     schema::Response response,
                     const schema::Instance& current, size_t depth) {
    schema::Transition t = schema::MakeTransition(
        schema_, current, std::move(access), std::move(response));
    if (!at.guard.Eval(t)) return false;
    path_.push_back(schema::AccessStep{t.access, t.response});
    bool found = Dfs(at.to, t.post, depth + 1);
    if (!found) path_.pop_back();
    return found;
  }

  const AAutomaton& automaton_;
  const schema::Schema& schema_;
  const WitnessSearchOptions& options_;
  std::vector<logic::Ucq> guards_;
  std::vector<std::pair<RelationId, Tuple>> pool_;
  logic::FreshValueFactory factory_;
  std::map<std::pair<int, Instance>, size_t> visited_;
  std::vector<schema::AccessStep> path_;
  WitnessSearchResult result_;
  const Instance* initial_for_checks_ = nullptr;

 public:
  void SetInitialForChecks(const Instance* initial) {
    initial_for_checks_ = initial;
  }
};

}  // namespace

WitnessSearchResult BoundedWitnessSearch(const AAutomaton& automaton,
                                         const schema::Schema& schema,
                                         const schema::Instance& initial,
                                         const WitnessSearchOptions& options) {
  Searcher searcher(automaton, schema, options);
  searcher.SetInitialForChecks(&initial);
  return searcher.Run(initial);
}

}  // namespace automata
}  // namespace accltl
