#include "src/automata/emptiness.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/logic/cq.h"
#include "src/logic/eval.h"
#include "src/store/fact_store.h"
#include "src/store/match_index.h"

namespace accltl {
namespace automata {

namespace {

using logic::Cq;
using logic::CqAtom;
using logic::Env;
using logic::PredSpace;
using schema::AccessMethodId;
using schema::Instance;
using schema::RelationId;

/// One way to take an automaton transition as a concrete access.
struct Realization {
  AccessMethodId method = 0;
  Tuple binding;
  std::vector<Tuple> new_facts;
  /// Interned ids of new_facts (same order): lets the searcher build
  /// the post configuration without re-interning tuple data.
  std::vector<store::FactId> new_fact_ids;
};

/// Enumerates concrete realizations of a guard disjunct from the
/// current instance; calls `fn` for each (stop when it returns true).
class RealizationEnumerator {
 public:
  RealizationEnumerator(const schema::Schema& schema, const Instance& current,
                        const WitnessSearchOptions& options,
                        logic::FreshValueFactory* factory,
                        store::MatchIndexCache* index)
      : schema_(schema),
        current_(current),
        options_(options),
        factory_(factory),
        index_(index) {}

  /// True when max_realizations_per_step cut the enumeration short:
  /// a non-exhaustive step means the overall search may be incomplete.
  bool truncated() const { return truncated_; }

  bool ForEach(const Cq& disjunct,
               const std::function<bool(const Realization&)>& fn) {
    // Partition atoms by space.
    std::vector<const CqAtom*> pre, post, bind;
    for (const CqAtom& a : disjunct.atoms) {
      switch (a.pred.space) {
        case PredSpace::kPre:
          pre.push_back(&a);
          break;
        case PredSpace::kPost:
          post.push_back(&a);
          break;
        case PredSpace::kBind:
          bind.push_back(&a);
          break;
        case PredSpace::kPlain:
          return false;  // not a transition formula
      }
    }
    // All bind atoms must agree on the method (a transition has one).
    std::optional<AccessMethodId> method;
    for (const CqAtom* b : bind) {
      if (method.has_value() && *method != b->pred.id) return false;
      method = b->pred.id;
    }
    std::vector<AccessMethodId> methods;
    if (method.has_value()) {
      methods.push_back(*method);
    } else {
      for (AccessMethodId m = 0; m < schema_.num_access_methods(); ++m) {
        methods.push_back(m);
      }
    }
    emitted_ = 0;
    for (AccessMethodId m : methods) {
      // Choose which post atoms denote newly returned tuples. Post atoms
      // can also map to already-revealed facts; mapping to *other* new
      // facts is covered by putting both atoms in the new set.
      RelationId target = schema_.method(m).relation;
      size_t subsets = size_t{1} << post.size();
      for (size_t mask = 0; mask < subsets; ++mask) {
        std::vector<const CqAtom*> as_new, as_old;
        bool ok = true;
        for (size_t i = 0; i < post.size(); ++i) {
          if (mask & (size_t{1} << i)) {
            if (post[i]->pred.id != target) {
              ok = false;
              break;
            }
            as_new.push_back(post[i]);
          } else {
            as_old.push_back(post[i]);
          }
        }
        if (!ok) continue;
        if (Match(disjunct, m, pre, as_old, as_new, bind, fn)) return true;
        // truncated_ is set exactly when the cap suppressed a completed
        // match; enumeration past the cap without suppression proves
        // exhaustiveness and must not flag the result as unknown.
        if (truncated_) return false;
      }
    }
    return false;
  }

 private:
  /// Backtracking match of pre/old-post atoms against revealed facts,
  /// then instantiation of new facts and the binding.
  bool Match(const Cq& disjunct, AccessMethodId m,
             const std::vector<const CqAtom*>& pre,
             const std::vector<const CqAtom*>& as_old,
             const std::vector<const CqAtom*>& as_new,
             const std::vector<const CqAtom*>& bind,
             const std::function<bool(const Realization&)>& fn) {
    std::vector<const CqAtom*> to_match = pre;
    to_match.insert(to_match.end(), as_old.begin(), as_old.end());
    Env env;
    std::function<bool(size_t)> rec = [&](size_t idx) -> bool {
      if (truncated_) return false;
      if (idx == to_match.size()) {
        if (emitted_ >= options_.max_realizations_per_step) {
          // The cap is suppressing a fully-matched candidate: the step
          // is non-exhaustive from here on.
          truncated_ = true;
          return false;
        }
        return Finish(disjunct, m, as_new, bind, &env, fn);
      }
      const CqAtom& atom = *to_match[idx];
      auto try_tuple = [&](const Tuple& tuple) -> bool {
        if (tuple.size() != atom.terms.size()) return false;
        std::vector<std::string> newly;
        bool ok = true;
        for (size_t i = 0; i < tuple.size(); ++i) {
          const logic::Term& t = atom.terms[i];
          if (t.is_const()) {
            if (t.value() != tuple[i]) {
              ok = false;
              break;
            }
          } else {
            auto it = env.find(t.var_name());
            if (it != env.end()) {
              if (it->second != tuple[i]) {
                ok = false;
                break;
              }
            } else {
              env[t.var_name()] = tuple[i];
              newly.push_back(t.var_name());
            }
          }
        }
        if (ok && rec(idx + 1)) return true;
        for (const std::string& v : newly) env.erase(v);
        return false;
      };
      // Candidate selection: when some atom position carries a bound
      // value (constant or env-bound variable), scan only the facts
      // matching it via the memoized per-relation index; COW sharing
      // makes the index valid across all nodes sharing the relation.
      const store::Store& store = store::Store::Get();
      int bound_pos = -1;
      store::ValueId bound_val = store::kNoValueId;
      bool dead = false;
      for (size_t i = 0; i < atom.terms.size(); ++i) {
        const logic::Term& t = atom.terms[i];
        const Value* v = nullptr;
        if (t.is_const()) {
          v = &t.value();
        } else {
          auto it = env.find(t.var_name());
          if (it != env.end()) v = &it->second;
        }
        if (v == nullptr) continue;
        bound_pos = static_cast<int>(i);
        bound_val = store.TryFindValue(*v);
        // A never-interned value occurs in no instance fact: no match.
        dead = bound_val == store::kNoValueId;
        break;
      }
      if (dead) return false;
      if (bound_pos >= 0) {
        const std::vector<store::FactId>& candidates = index_->Lookup(
            current_.facts(atom.pred.id), bound_pos, bound_val);
        for (store::FactId fact : candidates) {
          if (try_tuple(store.tuple(fact))) return true;
        }
        return false;
      }
      for (const Tuple& tuple : current_.tuples(atom.pred.id)) {
        if (try_tuple(tuple)) return true;
      }
      return false;
    };
    return rec(0);
  }

  /// Term to value: bound / constant / fresh (registering in env).
  std::optional<Value> Resolve(const logic::Term& t, ValueType type, Env* env,
                               bool allow_fresh) {
    if (t.is_const()) return t.value();
    auto it = env->find(t.var_name());
    if (it != env->end()) return it->second;
    if (!allow_fresh) return std::nullopt;
    Value v = factory_->Fresh(type);
    (*env)[t.var_name()] = v;
    return v;
  }

  bool Finish(const Cq& disjunct, AccessMethodId m,
              const std::vector<const CqAtom*>& as_new,
              const std::vector<const CqAtom*>& bind, Env* env,
              const std::function<bool(const Realization&)>& fn) {
    const schema::AccessMethod& method = schema_.method(m);
    const schema::Relation& rel = schema_.relation(method.relation);
    Env saved = *env;
    auto restore = [&] { *env = saved; };

    Realization r;
    r.method = m;

    // 0-ary IsBind atoms (the Sch0−Acc abstraction) constrain only the
    // method, not the binding values — drop them here.
    std::vector<const CqAtom*> bind_full;
    for (const CqAtom* b : bind) {
      if (static_cast<int>(b->terms.size()) == method.num_inputs() &&
          !b->terms.empty()) {
        bind_full.push_back(b);
      }
    }

    // Binding first: bind-atom terms; grounded mode forbids fresh values
    // in bindings.
    if (!bind_full.empty()) {
      const CqAtom& batom = *bind_full[0];
      for (size_t i = 0; i < batom.terms.size(); ++i) {
        ValueType type = rel.position_types[static_cast<size_t>(
            method.input_positions[i])];
        std::optional<Value> v =
            Resolve(batom.terms[i], type, env, /*allow_fresh=*/
                    !options_.grounded);
        if (!v.has_value()) {
          restore();
          return false;
        }
        r.binding.push_back(*v);
      }
      // Remaining bind atoms (same method) must agree.
      for (size_t b = 1; b < bind_full.size(); ++b) {
        for (size_t i = 0; i < bind_full[b]->terms.size(); ++i) {
          ValueType type = rel.position_types[static_cast<size_t>(
              method.input_positions[i])];
          std::optional<Value> v =
              Resolve(bind_full[b]->terms[i], type, env, !options_.grounded);
          if (!v.has_value() || *v != r.binding[i]) {
            restore();
            return false;
          }
        }
      }
    }

    // New facts. When the binding is already fixed (bind atoms), the
    // response must agree with it on input positions — propagate the
    // binding into unbound variables there instead of inventing fresh
    // values that could never agree.
    for (const CqAtom* a : as_new) {
      if (!r.binding.empty()) {
        for (size_t i = 0; i < method.input_positions.size(); ++i) {
          const logic::Term& term =
              a->terms[static_cast<size_t>(method.input_positions[i])];
          if (term.is_var() && env->find(term.var_name()) == env->end()) {
            (*env)[term.var_name()] = r.binding[i];
          }
        }
      }
      Tuple t;
      t.reserve(a->terms.size());
      bool ok = true;
      for (size_t i = 0; i < a->terms.size(); ++i) {
        std::optional<Value> v =
            Resolve(a->terms[i], rel.position_types[i], env, true);
        if (!v.has_value()) {
          ok = false;
          break;
        }
        t.push_back(*v);
      }
      if (!ok) {
        restore();
        return false;
      }
      r.new_facts.push_back(std::move(t));
    }

    // Derive or check the binding from the new facts.
    if (bind_full.empty()) {
      if (!r.new_facts.empty()) {
        for (schema::Position p : method.input_positions) {
          r.binding.push_back(r.new_facts[0][static_cast<size_t>(p)]);
        }
      } else {
        // Free access: pick deterministic binding values.
        for (schema::Position p : method.input_positions) {
          ValueType type = rel.position_types[static_cast<size_t>(p)];
          std::optional<Value> v;
          if (options_.grounded) {
            for (const Value& cand : current_.ActiveDomain()) {
              if (cand.type() == type) {
                v = cand;
                break;
              }
            }
          } else {
            v = factory_->Fresh(type);
          }
          if (!v.has_value()) {
            restore();
            return false;  // grounded and nothing to enter into the form
          }
          r.binding.push_back(*v);
        }
      }
      if (options_.grounded) {
        std::set<Value> dom = current_.ActiveDomain();
        for (const Value& v : r.binding) {
          if (dom.count(v) == 0) {
            restore();
            return false;
          }
        }
      }
    }
    // Responses must agree with the binding on input positions.
    for (const Tuple& t : r.new_facts) {
      for (size_t i = 0; i < method.input_positions.size(); ++i) {
        if (t[static_cast<size_t>(method.input_positions[i])] !=
            r.binding[i]) {
          restore();
          return false;
        }
      }
    }
    // Inequalities of the disjunct.
    for (const auto& [l, rterm] : disjunct.neqs) {
      auto value_of = [&](const logic::Term& t) -> std::optional<Value> {
        if (t.is_const()) return t.value();
        auto it = env->find(t.var_name());
        if (it == env->end()) return std::nullopt;
        return it->second;
      };
      std::optional<Value> lv = value_of(l), rv = value_of(rterm);
      if (!lv.has_value() || !rv.has_value() || *lv == *rv) {
        restore();
        return false;
      }
    }
    // Intern only on emit: rejected candidates (binding disagreement,
    // inequalities) must not grow the append-only global store.
    for (const Tuple& t : r.new_facts) {
      r.new_fact_ids.push_back(store::Store::Get().InternTuple(t));
    }
    ++emitted_;
    bool stop = fn(r);
    restore();
    return stop;
  }

  const schema::Schema& schema_;
  const Instance& current_;
  const WitnessSearchOptions& options_;
  logic::FreshValueFactory* factory_;
  store::MatchIndexCache* index_;
  size_t emitted_ = 0;
  bool truncated_ = false;
};

/// The search-independent compilation of an automaton: normalized UCQ
/// guards plus the speculative fact pool. Building it costs UCQ
/// normalization and freezing per guard, so plans are cached across
/// searches (memoized by a structural fingerprint of the automaton and
/// schema — self-contained, no pointers into the inputs).
struct SearchPlan {
  /// Pins of the automaton's guard formulas: while a plan is cached,
  /// these shared_ptrs keep the formula addresses alive, which is what
  /// makes pointer-identity plan keys sound (an address can only be
  /// reused after the plan — and its key — is gone).
  std::vector<logic::PosFormulaPtr> pinned_formulas;
  std::vector<logic::Ucq> guards;
  /// Per transition: the positive guard has a trivially-true disjunct
  /// (no atoms, no inequalities), so ψ+ holds on *every* transition and
  /// pool injection only needs to check ψ−.
  std::vector<bool> trivially_positive;
  std::vector<std::pair<RelationId, store::FactId>> pool;
  /// Factory state after pool freezing: searches must continue the
  /// fresh-value sequence to avoid colliding with pool values.
  logic::FreshValueFactory factory_after_pool;
};

std::shared_ptr<const SearchPlan> BuildPlan(const AAutomaton& automaton,
                                            const schema::Schema& schema) {
  auto plan = std::make_shared<SearchPlan>();
  // Pre-normalize guards to UCQs.
  for (const ATransition& t : automaton.transitions()) {
    logic::PosFormulaPtr pos =
        t.guard.positive ? t.guard.positive : logic::PosFormula::True();
    Result<logic::Ucq> ucq = logic::NormalizeToUcq(pos, {}, schema);
    plan->guards.push_back(ucq.ok() ? ucq.value() : logic::Ucq{});
    // Degenerate case: TRUE normalizes to one empty disjunct.
    if (pos->kind() == logic::NodeKind::kTrue) {
      logic::Ucq truth;
      truth.disjuncts.push_back(logic::Cq{});
      plan->guards.back() = truth;
    }
    bool trivial = false;
    for (const logic::Cq& d : plan->guards.back().disjuncts) {
      if (d.atoms.empty() && d.neqs.empty()) {
        trivial = true;
        break;
      }
    }
    plan->trivially_positive.push_back(trivial);
  }
  // Speculative fact pool: canonical (frozen) facts of every guard
  // disjunct. Guards often require facts in their *pre* structure
  // that only an earlier, unconstrained access can reveal; injecting
  // pool facts through permissive transitions realizes such paths.
  logic::FreshValueFactory factory;
  for (const logic::Ucq& g : plan->guards) {
    for (const logic::Cq& d : g.disjuncts) {
      logic::Cq data_only;
      for (const logic::CqAtom& a : d.atoms) {
        if (a.pred.space == PredSpace::kPre ||
            a.pred.space == PredSpace::kPost) {
          data_only.atoms.push_back(a);
        }
      }
      if (data_only.atoms.empty()) continue;
      Result<logic::FrozenCq> frozen =
          logic::FreezeCq(data_only, schema, &factory);
      if (!frozen.ok()) continue;
      for (const auto& [pred, tuples] : frozen.value().db.relations()) {
        for (const Tuple& t : tuples) {
          if (plan->pool.size() >= 64) break;
          // Interned once here; every Contains check during the
          // search is then a binary search over fact ids.
          plan->pool.emplace_back(pred.id,
                                  store::Store::Get().InternTuple(t));
        }
      }
    }
  }
  plan->factory_after_pool = factory;
  for (const ATransition& t : automaton.transitions()) {
    if (t.guard.positive) plan->pinned_formulas.push_back(t.guard.positive);
    for (const logic::PosFormulaPtr& g : t.guard.negated) {
      plan->pinned_formulas.push_back(g);
    }
  }
  return plan;
}

/// Structural key for the plan cache. Guard formulas are identified by
/// address (sound: cached plans pin them — see pinned_formulas); the
/// schema contributes its shape and names (schemas are append-only, so
/// any change shows up in the counts/names).
std::vector<uint64_t> PlanKey(const AAutomaton& automaton,
                              const schema::Schema& schema) {
  std::vector<uint64_t> key;
  std::hash<std::string> str_hash;
  key.push_back(reinterpret_cast<uintptr_t>(&schema));
  key.push_back(static_cast<uint64_t>(schema.num_relations()));
  key.push_back(static_cast<uint64_t>(schema.num_access_methods()));
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const schema::Relation& rel = schema.relation(r);
    key.push_back(str_hash(rel.name));
    uint64_t types = rel.position_types.size();
    for (ValueType t : rel.position_types) {
      types = store::Mix64(types ^ static_cast<uint64_t>(t));
    }
    key.push_back(types);
  }
  for (AccessMethodId m = 0; m < schema.num_access_methods(); ++m) {
    const schema::AccessMethod& am = schema.method(m);
    uint64_t h = str_hash(am.name) ^ static_cast<uint64_t>(am.relation);
    for (schema::Position p : am.input_positions) {
      h = store::Mix64(h ^ static_cast<uint64_t>(p));
    }
    key.push_back(h);
  }
  key.push_back(static_cast<uint64_t>(automaton.num_states()));
  key.push_back(static_cast<uint64_t>(automaton.initial()));
  for (int s : automaton.accepting()) {
    key.push_back(static_cast<uint64_t>(static_cast<unsigned>(s)));
  }
  for (const ATransition& t : automaton.transitions()) {
    key.push_back(static_cast<uint64_t>(static_cast<unsigned>(t.from)));
    key.push_back(static_cast<uint64_t>(static_cast<unsigned>(t.to)));
    key.push_back(reinterpret_cast<uintptr_t>(t.guard.positive.get()));
    for (const logic::PosFormulaPtr& g : t.guard.negated) {
      key.push_back(reinterpret_cast<uintptr_t>(g.get()));
    }
    key.push_back(0x2d);  // transition separator
  }
  return key;
}

struct PlanKeyHash {
  size_t operator()(const std::vector<uint64_t>& key) const {
    uint64_t h = store::Mix64(key.size());
    for (uint64_t v : key) h = store::Mix64(h ^ v);
    return static_cast<size_t>(h);
  }
};

std::shared_ptr<const SearchPlan> GetPlan(const AAutomaton& automaton,
                                          const schema::Schema& schema) {
  std::vector<uint64_t> key = PlanKey(automaton, schema);
  static std::mutex mu;
  static auto* cache =
      new std::unordered_map<std::vector<uint64_t>,
                             std::shared_ptr<const SearchPlan>, PlanKeyHash>();
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }
  std::shared_ptr<const SearchPlan> plan = BuildPlan(automaton, schema);
  std::lock_guard<std::mutex> lock(mu);
  if (cache->size() >= 128) cache->clear();
  return cache->emplace(std::move(key), std::move(plan)).first->second;
}

class Searcher {
 public:
  Searcher(const AAutomaton& automaton, const schema::Schema& schema,
           const WitnessSearchOptions& options)
      : automaton_(automaton),
        schema_(schema),
        options_(options),
        plan_(GetPlan(automaton, schema)),
        guards_(plan_->guards),
        pool_(plan_->pool),
        factory_(plan_->factory_after_pool) {}

  WitnessSearchResult Run(const Instance& initial) {
    result_ = WitnessSearchResult{};
    path_.clear();
    visited_.clear();
    abort_ = false;
    Dfs(automaton_.initial(), initial, 0);
    return result_;
  }

 private:
  bool AcceptHere(int state, const Instance& initial_instance) {
    if (!automaton_.IsAccepting(state)) return false;
    schema::AccessPath path(path_);
    if (options_.require_idempotent && !path.IsIdempotent()) return false;
    if (options_.require_exact &&
        !path.IsExact(schema_, initial_instance)) {
      return false;
    }
    result_.found = true;
    result_.witness = path;
    return true;
  }

  /// Prunes re-expansion of a (state, configuration) pair already seen
  /// at the same or a smaller depth. Keyed by the 64-bit configuration
  /// hash; the bucket keeps the (cheap, COW) instances to confirm
  /// equality exactly, so a hash collision can never prune wrongly.
  bool VisitedBefore(int state, const Instance& current, size_t depth) {
    uint64_t key =
        store::Mix64(current.hash() ^ store::Mix64(
            static_cast<uint64_t>(static_cast<unsigned>(state))));
    std::vector<std::pair<Instance, size_t>>& bucket = visited_[key];
    for (auto& [config, seen_depth] : bucket) {
      if (config == current) {
        if (seen_depth <= depth) return true;
        seen_depth = depth;
        return false;
      }
    }
    bucket.emplace_back(current, depth);
    return false;
  }

  bool Dfs(int state, const Instance& current, size_t depth) {
    if (++result_.nodes_explored > options_.max_nodes) {
      result_.exhausted_budget = true;
      abort_ = true;
      return false;
    }
    if (AcceptHere(state, initial_for_checks_ ? *initial_for_checks_
                                              : current)) {
      return true;
    }
    if (depth >= options_.max_path_length) return false;
    if (options_.use_visited_dedup && VisitedBefore(state, current, depth)) {
      return false;
    }

    for (size_t ti = 0; ti < automaton_.transitions().size(); ++ti) {
      const ATransition& at = automaton_.transitions()[ti];
      if (at.from != state) continue;
      RealizationEnumerator en(schema_, current, options_, &factory_,
                               &index_cache_);
      for (const logic::Cq& disjunct : guards_[ti].disjuncts) {
        bool stop = en.ForEach(disjunct, [&](const Realization& r) -> bool {
          // The enumerator constructed this access to satisfy the
          // disjunct (hence ψ+); only ψ− needs checking.
          return TryTransition(at, schema::Access{r.method, r.binding},
                               r.new_fact_ids, current, depth,
                               /*positive_known=*/true);
        });
        if (en.truncated()) result_.exhausted_budget = true;
        if (stop) return true;
        if (abort_) return false;
      }
      // Speculative pool injection: reveal one canonical fact through
      // this transition (useful when the guard is permissive and a
      // later guard needs the fact in its pre-structure).
      for (const auto& [rel, fact] : pool_) {
        if (current.facts(rel)->Contains(fact)) continue;
        const Tuple& tuple = store::Store::Get().tuple(fact);
        for (schema::AccessMethodId m : schema_.methods_on(rel)) {
          const schema::AccessMethod& am = schema_.method(m);
          Tuple binding;
          for (schema::Position p : am.input_positions) {
            binding.push_back(tuple[static_cast<size_t>(p)]);
          }
          if (options_.grounded) {
            std::set<Value> dom = current.ActiveDomain();
            bool ok = true;
            for (const Value& v : binding) {
              if (dom.count(v) == 0) {
                ok = false;
                break;
              }
            }
            if (!ok) continue;
          }
          if (TryTransition(at, schema::Access{m, binding}, {fact}, current,
                            depth,
                            /*positive_known=*/plan_->trivially_positive[ti])) {
            return true;
          }
          if (abort_) return false;
        }
      }
    }
    return false;
  }

  /// Takes the automaton transition with a concrete access (response
  /// given as interned fact ids) if the full guard holds on it;
  /// recurses. Returns true when a witness was found. `positive_known`
  /// skips the ψ+ re-evaluation for transitions built from a
  /// realization of a positive-guard disjunct.
  bool TryTransition(const ATransition& at, schema::Access access,
                     const std::vector<store::FactId>& response_ids,
                     const schema::Instance& current, size_t depth,
                     bool positive_known = false) {
    schema::Transition t = schema::MakeTransitionFromIds(
        schema_, current, std::move(access), response_ids);
    if (positive_known ? !at.guard.EvalNegated(t) : !at.guard.Eval(t)) {
      return false;
    }
    path_.push_back(schema::AccessStep{t.access, t.response});
    bool found = Dfs(at.to, t.post, depth + 1);
    if (!found) path_.pop_back();
    return found;
  }

  const AAutomaton& automaton_;
  const schema::Schema& schema_;
  const WitnessSearchOptions& options_;
  std::shared_ptr<const SearchPlan> plan_;
  const std::vector<logic::Ucq>& guards_;
  const std::vector<std::pair<RelationId, store::FactId>>& pool_;
  logic::FreshValueFactory factory_;
  std::unordered_map<uint64_t, std::vector<std::pair<Instance, size_t>>>
      visited_;
  store::MatchIndexCache index_cache_;
  std::vector<schema::AccessStep> path_;
  WitnessSearchResult result_;
  bool abort_ = false;
  const Instance* initial_for_checks_ = nullptr;

 public:
  void SetInitialForChecks(const Instance* initial) {
    initial_for_checks_ = initial;
  }
};

}  // namespace

WitnessSearchResult BoundedWitnessSearch(const AAutomaton& automaton,
                                         const schema::Schema& schema,
                                         const schema::Instance& initial,
                                         const WitnessSearchOptions& options) {
  Searcher searcher(automaton, schema, options);
  searcher.SetInitialForChecks(&initial);
  return searcher.Run(initial);
}

}  // namespace automata
}  // namespace accltl
