#include "src/automata/emptiness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/engine/compact_table.h"
#include "src/engine/explorer.h"
#include "src/engine/path_link.h"
#include "src/engine/two_phase.h"
#include "src/engine/visited_table.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/treedb.h"
#include "src/logic/cq.h"
#include "src/logic/eval.h"
#include "src/store/fact_store.h"
#include "src/store/match_index.h"

namespace accltl {
namespace automata {

namespace {

/// Witness-engine instruments (write-only; DESIGN.md §8).
struct WitnessMetrics {
  obs::Counter* expansions;
  obs::Counter* children;
  obs::Counter* plan_builds;
  static const WitnessMetrics& Get() {
    static const WitnessMetrics m{
        obs::Registry::Get().counter("automata.expansions"),
        obs::Registry::Get().counter("automata.children"),
        obs::Registry::Get().counter("automata.plan_builds"),
    };
    return m;
  }
};

using logic::Cq;
using logic::CqAtom;
using logic::Env;
using logic::PredSpace;
using schema::AccessMethodId;
using schema::Instance;
using schema::RelationId;

/// One way to take an automaton transition as a concrete access.
struct Realization {
  AccessMethodId method = 0;
  Tuple binding;
  std::vector<Tuple> new_facts;
  /// Interned ids of new_facts (same order): lets the searcher build
  /// the post configuration without re-interning tuple data.
  std::vector<store::FactId> new_fact_ids;
};

/// Enumerates concrete realizations of a guard disjunct from the
/// current instance; calls `fn` for each (stop when it returns true).
class RealizationEnumerator {
 public:
  RealizationEnumerator(const schema::Schema& schema, const Instance& current,
                        const WitnessSearchOptions& options,
                        int64_t fresh_base,
                        store::MatchIndexCache::LocalView* index)
      : schema_(schema),
        current_(current),
        options_(options),
        base_factory_(logic::FreshValueFactory::StartingAt(fresh_base)),
        index_(index) {}

  /// True when max_realizations_per_step cut the enumeration short:
  /// a non-exhaustive step means the overall search may be incomplete.
  bool truncated() const { return truncated_; }

  bool ForEach(const Cq& disjunct,
               const std::function<bool(const Realization&)>& fn) {
    // Partition atoms by space.
    std::vector<const CqAtom*> pre, post, bind;
    for (const CqAtom& a : disjunct.atoms) {
      switch (a.pred.space) {
        case PredSpace::kPre:
          pre.push_back(&a);
          break;
        case PredSpace::kPost:
          post.push_back(&a);
          break;
        case PredSpace::kBind:
          bind.push_back(&a);
          break;
        case PredSpace::kPlain:
          return false;  // not a transition formula
      }
    }
    // All bind atoms must agree on the method (a transition has one).
    std::optional<AccessMethodId> method;
    for (const CqAtom* b : bind) {
      if (method.has_value() && *method != b->pred.id) return false;
      method = b->pred.id;
    }
    std::vector<AccessMethodId> methods;
    if (method.has_value()) {
      methods.push_back(*method);
    } else {
      for (AccessMethodId m = 0; m < schema_.num_access_methods(); ++m) {
        methods.push_back(m);
      }
    }
    emitted_ = 0;
    for (AccessMethodId m : methods) {
      // Choose which post atoms denote newly returned tuples. Post atoms
      // can also map to already-revealed facts; mapping to *other* new
      // facts is covered by putting both atoms in the new set.
      RelationId target = schema_.method(m).relation;
      size_t subsets = size_t{1} << post.size();
      for (size_t mask = 0; mask < subsets; ++mask) {
        std::vector<const CqAtom*> as_new, as_old;
        bool ok = true;
        for (size_t i = 0; i < post.size(); ++i) {
          if (mask & (size_t{1} << i)) {
            if (post[i]->pred.id != target) {
              ok = false;
              break;
            }
            as_new.push_back(post[i]);
          } else {
            as_old.push_back(post[i]);
          }
        }
        if (!ok) continue;
        if (Match(disjunct, m, pre, as_old, as_new, bind, fn)) return true;
        // truncated_ is set exactly when the cap suppressed a completed
        // match; enumeration past the cap without suppression proves
        // exhaustiveness and must not flag the result as unknown.
        if (truncated_) return false;
      }
    }
    return false;
  }

 private:
  /// Backtracking match of pre/old-post atoms against revealed facts,
  /// then instantiation of new facts and the binding.
  bool Match(const Cq& disjunct, AccessMethodId m,
             const std::vector<const CqAtom*>& pre,
             const std::vector<const CqAtom*>& as_old,
             const std::vector<const CqAtom*>& as_new,
             const std::vector<const CqAtom*>& bind,
             const std::function<bool(const Realization&)>& fn) {
    std::vector<const CqAtom*> to_match = pre;
    to_match.insert(to_match.end(), as_old.begin(), as_old.end());
    Env env;
    std::function<bool(size_t)> rec = [&](size_t idx) -> bool {
      if (truncated_) return false;
      if (idx == to_match.size()) {
        if (emitted_ >= options_.max_realizations_per_step) {
          // The cap is suppressing a fully-matched candidate: the step
          // is non-exhaustive from here on.
          truncated_ = true;
          return false;
        }
        return Finish(disjunct, m, as_new, bind, &env, fn);
      }
      const CqAtom& atom = *to_match[idx];
      auto try_tuple = [&](const Tuple& tuple) -> bool {
        if (tuple.size() != atom.terms.size()) return false;
        std::vector<std::string> newly;
        bool ok = true;
        for (size_t i = 0; i < tuple.size(); ++i) {
          const logic::Term& t = atom.terms[i];
          if (t.is_const()) {
            if (t.value() != tuple[i]) {
              ok = false;
              break;
            }
          } else {
            auto it = env.find(t.var_name());
            if (it != env.end()) {
              if (it->second != tuple[i]) {
                ok = false;
                break;
              }
            } else {
              env[t.var_name()] = tuple[i];
              newly.push_back(t.var_name());
            }
          }
        }
        if (ok && rec(idx + 1)) return true;
        for (const std::string& v : newly) env.erase(v);
        return false;
      };
      // Candidate selection: when some atom position carries a bound
      // value (constant or env-bound variable), scan only the facts
      // matching it via the memoized per-relation index; COW sharing
      // makes the index valid across all nodes sharing the relation.
      const store::Store& store = store::Store::Get();
      int bound_pos = -1;
      store::ValueId bound_val = store::kNoValueId;
      bool dead = false;
      for (size_t i = 0; i < atom.terms.size(); ++i) {
        const logic::Term& t = atom.terms[i];
        const Value* v = nullptr;
        if (t.is_const()) {
          v = &t.value();
        } else {
          auto it = env.find(t.var_name());
          if (it != env.end()) v = &it->second;
        }
        if (v == nullptr) continue;
        bound_pos = static_cast<int>(i);
        bound_val = store.TryFindValue(*v);
        // A never-interned value occurs in no instance fact: no match.
        dead = bound_val == store::kNoValueId;
        break;
      }
      if (dead) return false;
      if (bound_pos >= 0) {
        const std::vector<store::FactId>& candidates = index_->Lookup(
            current_.facts(atom.pred.id), bound_pos, bound_val);
        for (store::FactId fact : candidates) {
          if (try_tuple(store.tuple(fact))) return true;
        }
        return false;
      }
      for (const Tuple& tuple : current_.tuples(atom.pred.id)) {
        if (try_tuple(tuple)) return true;
      }
      return false;
    };
    return rec(0);
  }

  /// Term to value: bound / constant / fresh (registering in env).
  std::optional<Value> Resolve(const logic::Term& t, ValueType type, Env* env,
                               logic::FreshValueFactory* factory,
                               bool allow_fresh) {
    if (t.is_const()) return t.value();
    auto it = env->find(t.var_name());
    if (it != env->end()) return it->second;
    if (!allow_fresh) return std::nullopt;
    Value v = factory->Fresh(type);
    (*env)[t.var_name()] = v;
    return v;
  }

  bool Finish(const Cq& disjunct, AccessMethodId m,
              const std::vector<const CqAtom*>& as_new,
              const std::vector<const CqAtom*>& bind, Env* env,
              const std::function<bool(const Realization&)>& fn) {
    const schema::AccessMethod& method = schema_.method(m);
    const schema::Relation& rel = schema_.relation(method.relation);
    Env saved = *env;
    auto restore = [&] { *env = saved; };
    // Every candidate draws fresh values from the node's base (which
    // is a function of the node's configuration), so a realization's
    // fresh values depend only on the node and the candidate itself —
    // never on how many sibling candidates were enumerated before it.
    // That makes the child *set* independent of enumeration order,
    // hence of the global fact-interning order, hence of the worker
    // schedule; and it makes equal configurations expand to
    // content-identical subtrees, which is what lets the visited
    // table transfer subtrees between path-equivalent nodes.
    logic::FreshValueFactory factory = base_factory_;

    Realization r;
    r.method = m;

    // 0-ary IsBind atoms (the Sch0−Acc abstraction) constrain only the
    // method, not the binding values — drop them here.
    std::vector<const CqAtom*> bind_full;
    for (const CqAtom* b : bind) {
      if (static_cast<int>(b->terms.size()) == method.num_inputs() &&
          !b->terms.empty()) {
        bind_full.push_back(b);
      }
    }

    // Binding first: bind-atom terms; grounded mode forbids fresh values
    // in bindings.
    if (!bind_full.empty()) {
      const CqAtom& batom = *bind_full[0];
      for (size_t i = 0; i < batom.terms.size(); ++i) {
        ValueType type = rel.position_types[static_cast<size_t>(
            method.input_positions[i])];
        std::optional<Value> v =
            Resolve(batom.terms[i], type, env, &factory, /*allow_fresh=*/
                    !options_.grounded);
        if (!v.has_value()) {
          restore();
          return false;
        }
        r.binding.push_back(*v);
      }
      // Remaining bind atoms (same method) must agree.
      for (size_t b = 1; b < bind_full.size(); ++b) {
        for (size_t i = 0; i < bind_full[b]->terms.size(); ++i) {
          ValueType type = rel.position_types[static_cast<size_t>(
              method.input_positions[i])];
          std::optional<Value> v = Resolve(bind_full[b]->terms[i], type, env,
                                           &factory, !options_.grounded);
          if (!v.has_value() || *v != r.binding[i]) {
            restore();
            return false;
          }
        }
      }
    }

    // New facts. When the binding is already fixed (bind atoms), the
    // response must agree with it on input positions — propagate the
    // binding into unbound variables there instead of inventing fresh
    // values that could never agree.
    for (const CqAtom* a : as_new) {
      if (!r.binding.empty()) {
        for (size_t i = 0; i < method.input_positions.size(); ++i) {
          const logic::Term& term =
              a->terms[static_cast<size_t>(method.input_positions[i])];
          if (term.is_var() && env->find(term.var_name()) == env->end()) {
            (*env)[term.var_name()] = r.binding[i];
          }
        }
      }
      Tuple t;
      t.reserve(a->terms.size());
      bool ok = true;
      for (size_t i = 0; i < a->terms.size(); ++i) {
        std::optional<Value> v =
            Resolve(a->terms[i], rel.position_types[i], env, &factory, true);
        if (!v.has_value()) {
          ok = false;
          break;
        }
        t.push_back(*v);
      }
      if (!ok) {
        restore();
        return false;
      }
      r.new_facts.push_back(std::move(t));
    }

    // Derive or check the binding from the new facts.
    if (bind_full.empty()) {
      if (!r.new_facts.empty()) {
        for (schema::Position p : method.input_positions) {
          r.binding.push_back(r.new_facts[0][static_cast<size_t>(p)]);
        }
      } else {
        // Free access: pick deterministic binding values.
        for (schema::Position p : method.input_positions) {
          ValueType type = rel.position_types[static_cast<size_t>(p)];
          std::optional<Value> v;
          if (options_.grounded) {
            for (const Value& cand : current_.ActiveDomain()) {
              if (cand.type() == type) {
                v = cand;
                break;
              }
            }
          } else {
            v = factory.Fresh(type);
          }
          if (!v.has_value()) {
            restore();
            return false;  // grounded and nothing to enter into the form
          }
          r.binding.push_back(*v);
        }
      }
      if (options_.grounded) {
        std::set<Value> dom = current_.ActiveDomain();
        for (const Value& v : r.binding) {
          if (dom.count(v) == 0) {
            restore();
            return false;
          }
        }
      }
    }
    // Responses must agree with the binding on input positions.
    for (const Tuple& t : r.new_facts) {
      for (size_t i = 0; i < method.input_positions.size(); ++i) {
        if (t[static_cast<size_t>(method.input_positions[i])] !=
            r.binding[i]) {
          restore();
          return false;
        }
      }
    }
    // Inequalities of the disjunct.
    for (const auto& [l, rterm] : disjunct.neqs) {
      auto value_of = [&](const logic::Term& t) -> std::optional<Value> {
        if (t.is_const()) return t.value();
        auto it = env->find(t.var_name());
        if (it == env->end()) return std::nullopt;
        return it->second;
      };
      std::optional<Value> lv = value_of(l), rv = value_of(rterm);
      if (!lv.has_value() || !rv.has_value() || *lv == *rv) {
        restore();
        return false;
      }
    }
    // Intern only on emit: rejected candidates (binding disagreement,
    // inequalities) must not grow the append-only global store.
    for (const Tuple& t : r.new_facts) {
      r.new_fact_ids.push_back(store::Store::Get().InternTuple(t));
    }
    ++emitted_;
    bool stop = fn(r);
    restore();
    return stop;
  }

  const schema::Schema& schema_;
  const Instance& current_;
  const WitnessSearchOptions& options_;
  logic::FreshValueFactory base_factory_;
  store::MatchIndexCache::LocalView* index_;
  size_t emitted_ = 0;
  bool truncated_ = false;
};

/// The search-independent compilation of an automaton: normalized UCQ
/// guards plus the speculative fact pool. Building it costs UCQ
/// normalization and freezing per guard, so plans are cached across
/// searches (memoized by a structural fingerprint of the automaton and
/// schema — self-contained, no pointers into the inputs).
struct SearchPlan {
  /// Pins of the automaton's guard formulas: while a plan is cached,
  /// these shared_ptrs keep the formula addresses alive, which is what
  /// makes pointer-identity plan keys sound (an address can only be
  /// reused after the plan — and its key — is gone).
  std::vector<logic::PosFormulaPtr> pinned_formulas;
  std::vector<logic::Ucq> guards;
  /// Per transition: the positive guard has a trivially-true disjunct
  /// (no atoms, no inequalities), so ψ+ holds on *every* transition and
  /// pool injection only needs to check ψ−.
  std::vector<bool> trivially_positive;
  std::vector<std::pair<RelationId, store::FactId>> pool;
  /// Factory state after pool freezing: searches must continue the
  /// fresh-value sequence to avoid colliding with pool values.
  logic::FreshValueFactory factory_after_pool;
};

std::shared_ptr<const SearchPlan> BuildPlan(const AAutomaton& automaton,
                                            const schema::Schema& schema) {
  auto plan = std::make_shared<SearchPlan>();
  // Pre-normalize guards to UCQs.
  for (const ATransition& t : automaton.transitions()) {
    logic::PosFormulaPtr pos =
        t.guard.positive ? t.guard.positive : logic::PosFormula::True();
    Result<logic::Ucq> ucq = logic::NormalizeToUcq(pos, {}, schema);
    plan->guards.push_back(ucq.ok() ? ucq.value() : logic::Ucq{});
    // Degenerate case: TRUE normalizes to one empty disjunct.
    if (pos->kind() == logic::NodeKind::kTrue) {
      logic::Ucq truth;
      truth.disjuncts.push_back(logic::Cq{});
      plan->guards.back() = truth;
    }
    bool trivial = false;
    for (const logic::Cq& d : plan->guards.back().disjuncts) {
      if (d.atoms.empty() && d.neqs.empty()) {
        trivial = true;
        break;
      }
    }
    plan->trivially_positive.push_back(trivial);
  }
  // Speculative fact pool: canonical (frozen) facts of every guard
  // disjunct. Guards often require facts in their *pre* structure
  // that only an earlier, unconstrained access can reveal; injecting
  // pool facts through permissive transitions realizes such paths.
  logic::FreshValueFactory factory;
  for (const logic::Ucq& g : plan->guards) {
    for (const logic::Cq& d : g.disjuncts) {
      logic::Cq data_only;
      for (const logic::CqAtom& a : d.atoms) {
        if (a.pred.space == PredSpace::kPre ||
            a.pred.space == PredSpace::kPost) {
          data_only.atoms.push_back(a);
        }
      }
      if (data_only.atoms.empty()) continue;
      Result<logic::FrozenCq> frozen =
          logic::FreezeCq(data_only, schema, &factory);
      if (!frozen.ok()) continue;
      for (const auto& [pred, tuples] : frozen.value().db.relations()) {
        for (const Tuple& t : tuples) {
          if (plan->pool.size() >= 64) break;
          // Interned once here; every Contains check during the
          // search is then a binary search over fact ids.
          plan->pool.emplace_back(pred.id,
                                  store::Store::Get().InternTuple(t));
        }
      }
    }
  }
  plan->factory_after_pool = factory;
  for (const ATransition& t : automaton.transitions()) {
    if (t.guard.positive) plan->pinned_formulas.push_back(t.guard.positive);
    for (const logic::PosFormulaPtr& g : t.guard.negated) {
      plan->pinned_formulas.push_back(g);
    }
  }
  return plan;
}

/// Structural key for the plan cache. Guard formulas are identified by
/// address (sound: cached plans pin them — see pinned_formulas); the
/// schema contributes its shape and names (schemas are append-only, so
/// any change shows up in the counts/names).
std::vector<uint64_t> PlanKey(const AAutomaton& automaton,
                              const schema::Schema& schema) {
  std::vector<uint64_t> key;
  std::hash<std::string> str_hash;
  key.push_back(reinterpret_cast<uintptr_t>(&schema));
  key.push_back(static_cast<uint64_t>(schema.num_relations()));
  key.push_back(static_cast<uint64_t>(schema.num_access_methods()));
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const schema::Relation& rel = schema.relation(r);
    key.push_back(str_hash(rel.name));
    uint64_t types = rel.position_types.size();
    for (ValueType t : rel.position_types) {
      types = store::Mix64(types ^ static_cast<uint64_t>(t));
    }
    key.push_back(types);
  }
  for (AccessMethodId m = 0; m < schema.num_access_methods(); ++m) {
    const schema::AccessMethod& am = schema.method(m);
    uint64_t h = str_hash(am.name) ^ static_cast<uint64_t>(am.relation);
    for (schema::Position p : am.input_positions) {
      h = store::Mix64(h ^ static_cast<uint64_t>(p));
    }
    // Semantics-bearing method attributes: bounded/unbounded variants
    // of one schema must never share a plan.
    h = store::Mix64(h ^ static_cast<uint64_t>(am.result_bound + 1));
    h = store::Mix64(h ^ ((am.exact ? 2u : 0u) | (am.idempotent ? 1u : 0u)));
    key.push_back(h);
  }
  key.push_back(static_cast<uint64_t>(automaton.num_states()));
  key.push_back(static_cast<uint64_t>(automaton.initial()));
  for (int s : automaton.accepting()) {
    key.push_back(static_cast<uint64_t>(static_cast<unsigned>(s)));
  }
  for (const ATransition& t : automaton.transitions()) {
    key.push_back(static_cast<uint64_t>(static_cast<unsigned>(t.from)));
    key.push_back(static_cast<uint64_t>(static_cast<unsigned>(t.to)));
    key.push_back(reinterpret_cast<uintptr_t>(t.guard.positive.get()));
    for (const logic::PosFormulaPtr& g : t.guard.negated) {
      key.push_back(reinterpret_cast<uintptr_t>(g.get()));
    }
    key.push_back(0x2d);  // transition separator
  }
  return key;
}

struct PlanKeyHash {
  size_t operator()(const std::vector<uint64_t>& key) const {
    uint64_t h = store::Mix64(key.size());
    for (uint64_t v : key) h = store::Mix64(h ^ v);
    return static_cast<size_t>(h);
  }
};

std::shared_ptr<const SearchPlan> GetPlan(const AAutomaton& automaton,
                                          const schema::Schema& schema) {
  std::vector<uint64_t> key = PlanKey(automaton, schema);
  static std::mutex mu;
  static auto* cache =
      new std::unordered_map<std::vector<uint64_t>,
                             std::shared_ptr<const SearchPlan>, PlanKeyHash>();
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }
  std::shared_ptr<const SearchPlan> plan;
  {
    obs::Span span("prepare-plan");
    plan = BuildPlan(automaton, schema);
    WitnessMetrics::Get().plan_builds->Inc();
  }
  std::lock_guard<std::mutex> lock(mu);
  if (cache->size() >= 128) cache->clear();
  return cache->emplace(std::move(key), std::move(plan)).first->second;
}

// --- Deterministic reduction order ------------------------------------------
//
// Witnesses (and partial paths) are totally ordered by *content*:
// prefix-first lexicographic over access steps, each step compared by
// (method, binding, response) through the precomputed order-preserving
// byte key `schema::StepOrderKey` (built once per materialized child,
// outside every lock): comparisons sit inside visited-table shard
// sections and the best-witness reduction, where rebuilding
// value-by-value comparisons was the engine's contention point. The
// order mentions no ids, no pointers and no interning artifacts, so it
// is identical across runs and worker counts; the engine returns the
// minimum accepting path under it — which is exactly the path a serial
// depth-first search visits first when every node's children are
// expanded in sorted order. The chain/compare/best-tracking machinery
// is the generic `engine::PathLink` layer shared with the zero-ary
// solver's engine port.

using PathLink = engine::PathLink<schema::AccessStep>;
using engine::CmpPathKeys;

/// One frontier node of the witness search.
struct SearchNode {
  int state = 0;
  Instance config;
  uint32_t depth = 0;
  /// Fresh-value base for expanding this node: a pure function of the
  /// configuration (max embedded fresh index + 1, floored at the
  /// plan's post-pool counter), never of the exploration order.
  int64_t fresh_base = 0;
  std::shared_ptr<const PathLink> path;
  /// Root-to-node materialization of `path` (pointers into the chain,
  /// kept alive by it). Built once at node creation — on a worker —
  /// so the barrier reduction and every dominance check compare paths
  /// without walking or allocating.
  std::vector<const PathLink*> links;
  /// Compact mode only: the tree-compressed identity
  /// pair(state, tuple(per-relation set refs)) and its ingredients.
  /// Children derive these as *deltas* — the one accessed relation's
  /// set ref is extended by the response fact ids and the O(log R)
  /// tuple spine re-interned — instead of re-encoding the whole
  /// configuration.
  store::TreeRef ref = store::kNilTreeRef;
  store::TreeRef config_ref = store::kNilTreeRef;
  std::vector<store::TreeRef> rel_refs;
};

/// Root-to-node materialization of a bare chain (compact visited
/// entries keep only the chain head; comparisons walk it on the rare
/// ref-equal collision instead of paying a per-entry pointer vector).
void MaterializeChain(const PathLink* head,
                      std::vector<const PathLink*>* out) {
  for (const PathLink* link = head; link != nullptr;
       link = link->parent.get()) {
    out->push_back(link);
  }
  std::reverse(out->begin(), out->end());
}

int CmpChains(const PathLink* a, const PathLink* b) {
  std::vector<const PathLink*> va, vb;
  MaterializeChain(a, &va);
  MaterializeChain(b, &vb);
  return CmpPathKeys(va, vb);
}

/// Shared state of one BoundedWitnessSearch run.
class Search {
 public:
  Search(const AAutomaton& automaton, const schema::Schema& schema,
         const WitnessSearchOptions& options,
         const engine::ExecOptions& exec, const Instance& initial)
      : automaton_(automaton),
        schema_(schema),
        options_(options),
        exec_(exec),
        initial_(initial),
        plan_(GetPlan(automaton, schema)),
        workers_(std::max<size_t>(1, exec.num_threads)),
        compact_(exec.visited_mode == engine::VisitedMode::kCompact) {
    local_views_.reserve(workers_);
    for (size_t i = 0; i < workers_; ++i) {
      local_views_.emplace_back(&index_cache_);
    }
  }

  WitnessSearchResult Run() {
    // One worker: serial pf-DFS whose first accept is the reduced
    // answer. More: pf-DFS pilot, then a level-synchronous sweep with
    // the deterministic barrier reduction (see engine/two_phase.h).
    engine::ExecOptions run_exec = exec_;
    run_exec.num_threads = workers_;
    engine::Explorer<SearchNode>::Stats stats =
        engine::TwoPhaseExplore<SearchNode>(
            run_exec, options_.max_nodes, [this] { return MakeRoots(); },
            [this](std::unique_ptr<SearchNode> node,
                   engine::Explorer<SearchNode>::Context& ctx) {
              VisitDfs(std::move(node), ctx);
            },
            [this](std::unique_ptr<SearchNode> node,
                   engine::Explorer<SearchNode>::Context& ctx) {
              VisitLevel(std::move(node), ctx);
            },
            [this](std::vector<std::vector<SearchNode*>> batches) {
              auto start = std::chrono::steady_clock::now();
              auto frontier = ReduceLevel(std::move(batches));
              reduce_micros_ +=
                  static_cast<uint64_t>(std::chrono::duration_cast<
                                            std::chrono::microseconds>(
                                            std::chrono::steady_clock::now() -
                                            start)
                                            .count());
              // The byte budget's level-mode cut point: decided at the
              // barrier over the complete reduced frontier, so the cut
              // level is schedule-independent.
              if (OverMemoryBudget()) {
                memory_truncated_.store(true, std::memory_order_relaxed);
                frontier.clear();
              }
              return frontier;
            },
            [this] { return BestSnapshot() != nullptr; },
            [this] {
              // The sweep must see a deterministic table and
              // truncation state: the pilot's partial state is
              // discarded. In compact mode the treedb resets with it —
              // the sweep re-interns from its roots, so the final node
              // count never depends on what the pilot touched.
              visited_.Clear();
              compact_visited_.Clear();
              treedb_.Clear();
              visited_bytes_.store(0, std::memory_order_relaxed);
              realization_truncated_.store(false, std::memory_order_relaxed);
              memory_truncated_.store(false, std::memory_order_relaxed);
            });
    stats.visited_bytes =
        visited_bytes_.load(std::memory_order_relaxed) +
        (compact_ ? treedb_.bytes() : 0);
    stats.treedb_nodes = compact_ ? treedb_.num_nodes() : 0;
    if (std::getenv("ACCLTL_SEARCH_DEBUG") != nullptr) {
      std::fprintf(stderr, "search: nodes=%zu reduce_ms=%llu visited_b=%zu\n",
                   stats.nodes_explored,
                   static_cast<unsigned long long>(reduce_micros_ / 1000),
                   stats.visited_bytes);
    }
    return Finalize(stats);
  }

 private:
  std::vector<std::unique_ptr<SearchNode>> MakeRoots() {
    auto root = std::make_unique<SearchNode>();
    root->state = automaton_.initial();
    root->config = initial_;
    root->depth = 0;
    // Root fresh base: above the plan's pool values and above any
    // fresh-shaped value the caller's initial instance embeds.
    root->fresh_base = plan_->factory_after_pool.counter();
    for (const Value& v : initial_.ActiveDomain()) {
      root->fresh_base =
          std::max(root->fresh_base, logic::FreshValueIndex(v) + 1);
    }
    if (compact_) {
      root->rel_refs.resize(schema_.num_relations());
      for (RelationId r = 0; r < schema_.num_relations(); ++r) {
        const std::vector<store::FactId>& ids = initial_.facts(r)->ids();
        root->rel_refs[r] = treedb_.SetFromKeys(ids.data(), ids.size());
      }
      root->config_ref =
          treedb_.InternTuple(root->rel_refs.data(), root->rel_refs.size());
      root->ref = treedb_.InternPair(
          treedb_.InternLeaf(static_cast<uint32_t>(root->state)),
          root->config_ref);
    }
    if (options_.use_visited_dedup) {
      // Seeding the table with the root (depth 0, empty path) makes it
      // dominate every do-nothing loop back to the initial
      // configuration outright.
      RegisterNode(*root);
    }
    std::vector<std::unique_ptr<SearchNode>> roots;
    roots.push_back(std::move(root));
    return roots;
  }

  WitnessSearchResult Finalize(
      const engine::Explorer<SearchNode>::Stats& stats) {
    WitnessSearchResult result;
    result.nodes_explored = stats.nodes_explored;
    result.exhausted_budget =
        stats.budget_exhausted ||
        realization_truncated_.load(std::memory_order_relaxed) ||
        memory_truncated_.load(std::memory_order_relaxed);
    result.cancelled = stats.cancelled;
    result.visited_bytes = stats.visited_bytes;
    result.treedb_nodes = stats.treedb_nodes;
    std::shared_ptr<const BestWitness> best = BestSnapshot();
    result.found = best != nullptr;
    if (best != nullptr) result.witness = schema::AccessPath(best->steps);
    return result;
  }

  /// Dedup entry: exact data for confirmation plus the dominance
  /// tie-breakers (depth, path content). `path` pins the chain the
  /// `links` pointers reference.
  struct VisitedEntry {
    int state;
    Instance config;
    uint32_t depth;
    std::shared_ptr<const PathLink> path;
    std::vector<const PathLink*> links;
  };

  /// Candidate child during expansion, before sorting.
  struct Child {
    int to_state;
    Instance post;
    schema::AccessStep step;
    std::string key;
    int64_t fresh_base;
    /// Compact mode: the delta against the parent — the accessed
    /// relation and the interned response fact ids the treedb extends
    /// the parent's set ref by.
    RelationId rel = 0;
    std::vector<store::FactId> response_ids;
  };

  static uint64_t NodeHash(int state, const Instance& config) {
    return store::Mix64(
        config.hash() ^
        store::Mix64(static_cast<uint64_t>(static_cast<unsigned>(state))));
  }

  using BestWitness = engine::BestPathTracker<schema::AccessStep>::Path;

  std::shared_ptr<const BestWitness> BestSnapshot() {
    return best_.Snapshot();
  }

  /// "existing makes candidate redundant": same exact (state, config),
  /// no deeper, and no later in path-content order. Equal
  /// configurations expand identically (configuration-derived fresh
  /// bases), so the pf-smaller, depth-no-worse twin's subtree contains
  /// the same suffixes under a smaller prefix — exploring the
  /// candidate could only rediscover pf-larger witnesses.
  static bool Dominates(const VisitedEntry& existing,
                        const VisitedEntry& candidate) {
    if (existing.state != candidate.state) return false;
    if (existing.depth > candidate.depth) return false;
    if (!(existing.config == candidate.config)) return false;
    return CmpPathKeys(existing.links, candidate.links) <= 0;
  }

  /// True when no extension of `node` can precede the current best
  /// witness (prefix-compare against it), so the subtree is redundant.
  bool PrunedByBest(const SearchNode& node) {
    return best_.Prunes(node.links);
  }

  /// Records an accepting path; keeps the content-minimal one.
  void OfferWitness(const std::vector<const PathLink*>& path) {
    best_.Offer(path);
  }

  bool AcceptHere(const SearchNode& node) {
    if (!automaton_.IsAccepting(node.state)) return false;
    if (options_.require_idempotent || options_.require_exact) {
      std::vector<schema::AccessStep> copy;
      copy.reserve(node.links.size());
      for (const PathLink* link : node.links) copy.push_back(link->step);
      schema::AccessPath path(std::move(copy));
      if (options_.require_idempotent && !path.IsIdempotent()) return false;
      if (options_.require_exact && !path.IsExact(schema_, initial_)) {
        return false;
      }
    }
    OfferWitness(node.links);
    return true;
  }

  /// Serial visitor: pf-ordered depth-first with push-time dedup.
  void VisitDfs(std::unique_ptr<SearchNode> node,
                engine::Explorer<SearchNode>::Context& ctx) {
    // The byte budget's serial cut point: checked per pop on the one
    // worker, so the cut node is deterministic.
    if (OverMemoryBudget()) {
      memory_truncated_.store(true, std::memory_order_relaxed);
      ctx.Abort();
      return;
    }
    if (PrunedByBest(*node)) return;
    if (AcceptHere(*node)) {
      // A single worker pops in exactly the reduction order, so the
      // first accepting node is the final answer — stop the drain.
      ctx.Abort();
      return;
    }
    if (node->depth >= options_.max_path_length) return;
    std::vector<Child> children = Expand(*node, ctx);
    WitnessMetrics::Get().expansions->Inc();
    WitnessMetrics::Get().children->Inc(children.size());
    // pf order: smallest child pops first. Content ties (the same
    // access step can drive a nondeterministic automaton into several
    // states) resolve accepting states first, so the first accept a
    // serial run sees is the content-minimal accepting *path*, not an
    // artifact of state numbering — the same witness the
    // level-synchronous reduction selects.
    std::sort(children.begin(), children.end(),
              [this](const Child& a, const Child& b) {
                int c = a.key.compare(b.key);
                if (c != 0) return c < 0;
                bool aa = automaton_.IsAccepting(a.to_state);
                bool ba = automaton_.IsAccepting(b.to_state);
                if (aa != ba) return aa;
                return a.to_state < b.to_state;
              });
    // Register in ascending key order (a same-batch twin with the
    // larger path is then dominated outright, never registered-then-
    // evicted while already queued — there is no pop-time re-check),
    // but push in descending order so the owner's LIFO pops the
    // smallest survivor first.
    std::vector<std::unique_ptr<SearchNode>> survivors;
    survivors.reserve(children.size());
    for (Child& child : children) {
      std::unique_ptr<SearchNode> next = MakeNode(*node, child);
      if (PrunedByBest(*next)) continue;  // see ReduceLevel: prune first
      if (options_.use_visited_dedup && !RegisterNode(*next)) continue;
      survivors.push_back(std::move(next));
    }
    for (size_t i = survivors.size(); i-- > 0;) {
      ctx.Push(std::move(survivors[i]));
    }
  }

  /// Level-mode visitor: emit every child; the barrier reduction does
  /// the deduplication and pruning over the complete batch. No
  /// best-path work-saver prune here: whether a node expands decides
  /// whether its realization-cap truncation is recorded, and a
  /// mid-level prune races the accept that published the bound — the
  /// barrier reduction prunes the same nodes deterministically one
  /// level later, keeping `exhausted_budget` schedule-independent.
  void VisitLevel(std::unique_ptr<SearchNode> node,
                  engine::Explorer<SearchNode>::Context& ctx) {
    if (AcceptHere(*node)) return;
    if (node->depth >= options_.max_path_length) return;
    std::vector<Child> children = Expand(*node, ctx);
    WitnessMetrics::Get().expansions->Inc();
    WitnessMetrics::Get().children->Inc(children.size());
    for (Child& child : children) {
      ctx.Emit(MakeNode(*node, child));
    }
  }

  /// Barrier reduction via the shared striped reducer: dominance only
  /// relates nodes of equal (state, config), which always share a
  /// stripe, so stripes reduce independently and deterministically —
  /// per stripe: content-sort, dominance dedup in that order (a kept
  /// node is never evicted by a later same-depth sibling), and drop
  /// children that cannot beat the best witness known at the end of
  /// the level.
  std::vector<std::unique_ptr<SearchNode>> ReduceLevel(
      std::vector<std::vector<SearchNode*>> batches) {
    return engine::ReduceLevelByContent<SearchNode>(
        std::move(batches),
        [](const SearchNode& node) {
          return NodeHash(node.state, node.config);
        },
        [this](const SearchNode& a, const SearchNode& b) {
          int c = CmpPathKeys(a.links, b.links);
          if (c != 0) return c < 0;
          bool aa = automaton_.IsAccepting(a.state);
          bool ba = automaton_.IsAccepting(b.state);
          if (aa != ba) return aa;
          return a.state < b.state;
        },
        [this](const SearchNode& node) {
          // Best-prune *before* registering: a best-pruned node needs
          // no visited entry (anything it would dominate is itself
          // best-pruned — the bound is upward-closed in the path
          // order), and registering it would leave schedule-dependent
          // entries behind when a mid-level prune raced the accept.
          if (PrunedByBest(node)) return false;
          if (options_.use_visited_dedup && !RegisterNode(node)) return false;
          return true;
        });
  }

  /// Logical footprint of an exact entry: struct plus the owned
  /// vectors' live elements (sizes, never capacities — capacities are
  /// allocator/schedule artifacts and visited_bytes must be
  /// deterministic whenever the search is).
  /// Logical footprint of one exact entry: the struct, the path-link
  /// index, and the full materialized configuration — set headers plus
  /// every fact id (sizes, never capacities). COW sharing between
  /// entries is an allocator courtesy, not a representation guarantee,
  /// so each entry is charged its own state vector; that is precisely
  /// the representation the tree database replaces.
  static size_t EntryBytes(const VisitedEntry& entry) {
    size_t bytes = sizeof(VisitedEntry) +
                   entry.links.size() * sizeof(const PathLink*);
    for (schema::RelationId r = 0; r < entry.config.num_relations(); ++r) {
      bytes += sizeof(store::FactSet::Ptr) + sizeof(store::FactSet) +
               entry.config.facts(r)->size() * sizeof(store::FactId);
    }
    return bytes;
  }

  /// Enters a node into the visited table. Returns false when it is
  /// dominated (redundant — do not explore). Both modes maintain
  /// visited_bytes_ as the live entries' logical footprint (add on
  /// insert, subtract on evict), so the byte budget sees the table as
  /// it stands.
  bool RegisterNode(const SearchNode& node) {
    if (compact_) {
      engine::CompactEntry entry;
      entry.ref = node.ref;
      entry.depth = node.depth;
      entry.path = std::shared_ptr<const void>(node.path, node.path.get());
      bool dominated = compact_visited_.CheckAndInsert(
          std::move(entry),
          [](const engine::CompactEntry& existing,
             const engine::CompactEntry& candidate) {
            // Ref equality (checked by the table) *is* the exact
            // (state, config) identity; only the tie-breakers remain.
            if (existing.depth > candidate.depth) return false;
            return CmpChains(
                       static_cast<const PathLink*>(existing.path.get()),
                       static_cast<const PathLink*>(candidate.path.get())) <=
                   0;
          },
          [this](const engine::CompactEntry&) {
            visited_bytes_.fetch_sub(sizeof(engine::CompactEntry),
                                     std::memory_order_relaxed);
          });
      if (!dominated) {
        visited_bytes_.fetch_add(sizeof(engine::CompactEntry),
                                 std::memory_order_relaxed);
      }
      return !dominated;
    }
    VisitedEntry entry;
    entry.state = node.state;
    entry.config = node.config;
    entry.depth = node.depth;
    entry.path = node.path;
    entry.links = node.links;
    size_t entry_bytes = EntryBytes(entry);
    bool dominated = visited_.CheckAndInsert(
        NodeHash(node.state, node.config), std::move(entry), Dominates,
        [this](const VisitedEntry& evicted) {
          visited_bytes_.fetch_sub(EntryBytes(evicted),
                                   std::memory_order_relaxed);
        });
    if (!dominated) {
      visited_bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
    }
    return !dominated;
  }

  /// True once the accounted footprint (table entries plus the treedb
  /// arena in compact mode) exceeds a nonzero max_visited_bytes.
  bool OverMemoryBudget() const {
    size_t cap = exec_.max_visited_bytes;
    if (cap == 0) return false;
    size_t used = visited_bytes_.load(std::memory_order_relaxed) +
                  (compact_ ? treedb_.bytes() : 0);
    return used > cap;
  }

  std::unique_ptr<SearchNode> MakeNode(const SearchNode& parent,
                                       Child& child) {
    auto next = std::make_unique<SearchNode>();
    next->state = child.to_state;
    next->config = std::move(child.post);
    next->depth = parent.depth + 1;
    next->fresh_base = child.fresh_base;
    next->links.reserve(parent.links.size() + 1);
    next->links = parent.links;
    next->path = engine::ExtendPath(parent.path, std::move(child.step),
                                    std::move(child.key), &next->links);
    if (compact_) {
      // Delta extension: only the accessed relation's set ref moves,
      // then the O(log R) tuple spine and the (state, config) pair
      // re-intern — the unchanged relations' subtrees are shared with
      // the parent by construction.
      next->rel_refs = parent.rel_refs;
      store::TreeRef set = next->rel_refs[child.rel];
      for (store::FactId f : child.response_ids) {
        set = treedb_.InsertSet(set, f);
      }
      if (set != parent.rel_refs[child.rel]) {
        next->rel_refs[child.rel] = set;
        next->config_ref = treedb_.UpdateTuple(
            parent.config_ref, next->rel_refs.size(), child.rel, set);
      } else {
        next->config_ref = parent.config_ref;
      }
      next->ref = treedb_.InternPair(
          treedb_.InternLeaf(static_cast<uint32_t>(next->state)),
          next->config_ref);
    }
    return next;
  }

  std::vector<Child> Expand(const SearchNode& node,
                            engine::Explorer<SearchNode>::Context& ctx) {
    store::MatchIndexCache::LocalView& view = local_views_[ctx.worker_id()];
    std::vector<Child> children;
    for (size_t ti = 0; ti < automaton_.transitions().size(); ++ti) {
      const ATransition& at = automaton_.transitions()[ti];
      if (at.from != node.state) continue;
      RealizationEnumerator en(schema_, node.config, options_,
                               node.fresh_base, &view);
      for (const logic::Cq& disjunct : plan_->guards[ti].disjuncts) {
        en.ForEach(disjunct, [&](const Realization& r) -> bool {
          // The enumerator constructed this access to satisfy the
          // disjunct (hence ψ+); only ψ− needs checking.
          TryChild(at, schema::Access{r.method, r.binding}, r.new_fact_ids,
                   node,
                   /*positive_known=*/true, &children);
          return ctx.aborted();
        });
        if (en.truncated()) {
          realization_truncated_.store(true, std::memory_order_relaxed);
        }
        if (ctx.aborted()) return children;
      }
      // Speculative pool injection: reveal one canonical fact through
      // this transition (useful when the guard is permissive and a
      // later guard needs the fact in its pre-structure).
      for (const auto& [rel, fact] : plan_->pool) {
        if (node.config.facts(rel)->Contains(fact)) continue;
        const Tuple& tuple = store::Store::Get().tuple(fact);
        for (schema::AccessMethodId m : schema_.methods_on(rel)) {
          const schema::AccessMethod& am = schema_.method(m);
          Tuple binding;
          for (schema::Position p : am.input_positions) {
            binding.push_back(tuple[static_cast<size_t>(p)]);
          }
          if (options_.grounded) {
            std::set<Value> dom = node.config.ActiveDomain();
            bool ok = true;
            for (const Value& v : binding) {
              if (dom.count(v) == 0) {
                ok = false;
                break;
              }
            }
            if (!ok) continue;
          }
          TryChild(at, schema::Access{m, binding}, {fact}, node,
                   /*positive_known=*/plan_->trivially_positive[ti],
                   &children);
          if (ctx.aborted()) return children;
        }
      }
    }
    return children;
  }

  /// Evaluates the full guard on the concrete transition; collects a
  /// child when it holds. `positive_known` skips the ψ+ re-evaluation
  /// for accesses built from a realization of a positive-guard
  /// disjunct.
  void TryChild(const ATransition& at, schema::Access access,
                const std::vector<store::FactId>& response_ids,
                const SearchNode& node, bool positive_known,
                std::vector<Child>* children) {
    // Result-bounded method: a response larger than the bound is not a
    // behaviour of the access interface, whichever path proposed it
    // (guard realization or speculative pool injection). Bound 0
    // rejects every non-empty response.
    const schema::AccessMethod& am = schema_.method(access.method);
    if (am.bounded() &&
        response_ids.size() > static_cast<size_t>(am.result_bound)) {
      return;
    }
    schema::Transition t = schema::MakeTransitionFromIds(
        schema_, node.config, std::move(access), response_ids);
    if (positive_known ? !at.guard.EvalNegated(t) : !at.guard.Eval(t)) {
      return;
    }
    Child child;
    child.to_state = at.to;
    child.post = std::move(t.post);
    child.step = schema::AccessStep{std::move(t.access),
                                    std::move(t.response)};
    child.key = schema::StepOrderKey(child.step);
    // Incremental configuration-derived fresh base: the parent's base
    // already covers its configuration; only the response's values can
    // raise it.
    child.fresh_base = node.fresh_base;
    for (const Tuple& tuple : child.step.response) {
      for (const Value& v : tuple) {
        child.fresh_base =
            std::max(child.fresh_base, logic::FreshValueIndex(v) + 1);
      }
    }
    if (compact_) {
      child.rel = schema_.method(child.step.access.method).relation;
      child.response_ids = response_ids;
    }
    children->push_back(std::move(child));
  }

  const AAutomaton& automaton_;
  const schema::Schema& schema_;
  const WitnessSearchOptions& options_;
  engine::ExecOptions exec_;
  const Instance& initial_;
  std::shared_ptr<const SearchPlan> plan_;
  size_t workers_;

  store::MatchIndexCache index_cache_;
  std::vector<store::MatchIndexCache::LocalView> local_views_;
  engine::ShardedVisitedTable<VisitedEntry> visited_{256};
  std::atomic<bool> realization_truncated_{false};

  /// Compact-mode storage (see engine/cancel.h VisitedMode): the
  /// tree-compressed configuration database plus the fixed-slot
  /// visited table. visited_bytes_ tracks the live entries' logical
  /// footprint in *either* mode; memory_truncated_ latches a byte-
  /// budget cut (reported as exhausted_budget).
  bool compact_;
  store::TreeDb treedb_;
  engine::CompactVisitedTable compact_visited_{256};
  std::atomic<size_t> visited_bytes_{0};
  std::atomic<bool> memory_truncated_{false};

  engine::BestPathTracker<schema::AccessStep> best_;
  uint64_t reduce_micros_ = 0;  // caller-thread only (barrier phase)
};

}  // namespace

WitnessSearchResult BoundedWitnessSearch(const AAutomaton& automaton,
                                         const schema::Schema& schema,
                                         const schema::Instance& initial,
                                         const WitnessSearchOptions& options,
                                         const engine::ExecOptions& exec) {
  Search search(automaton, schema, options, exec, initial);
  return search.Run();
}

}  // namespace automata
}  // namespace accltl
