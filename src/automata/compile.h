#ifndef ACCLTL_AUTOMATA_COMPILE_H_
#define ACCLTL_AUTOMATA_COMPILE_H_

#include "src/accltl/formula.h"
#include "src/automata/a_automaton.h"
#include "src/common/status.h"

namespace accltl {
namespace automata {

struct CompileStats {
  size_t tableau_states = 0;
  size_t automaton_transitions = 0;
};

/// Lemma 4.5: compiles an AccLTL+ formula into an equivalent
/// A-automaton (size worst-case exponential in |φ|).
///
/// The construction abstracts atoms into propositions, builds the
/// finite-word LTL tableau, and re-concretizes each tableau edge into a
/// guard: required-true atoms conjoin into ψ+, required-false atoms
/// become the ψ− conjuncts. Binding-positivity of the input guarantees
/// required-false atoms never mention IsBind, so the result satisfies
/// Def. 4.3; non-binding-positive inputs are rejected (kUnsupported).
Result<AAutomaton> CompileToAutomaton(const acc::AccPtr& formula,
                                      const schema::Schema& schema,
                                      size_t max_states = 1u << 18,
                                      CompileStats* stats = nullptr);

}  // namespace automata
}  // namespace accltl

#endif  // ACCLTL_AUTOMATA_COMPILE_H_
