#include "src/automata/a_automaton.h"

#include "src/accltl/semantics.h"
#include "src/common/strings.h"
#include "src/logic/eval.h"

namespace accltl {
namespace automata {

bool Guard::Eval(const schema::Transition& t) const {
  logic::TransitionView view(t);
  return Eval(view);
}

bool Guard::Eval(const logic::StructureView& view) const {
  if (positive != nullptr && !logic::EvalSentence(positive, view)) {
    return false;
  }
  for (const logic::PosFormulaPtr& gamma : negated) {
    if (logic::EvalSentence(gamma, view)) return false;
  }
  return true;
}

bool Guard::EvalNegated(const schema::Transition& t) const {
  if (negated.empty()) return true;
  logic::TransitionView view(t);
  for (const logic::PosFormulaPtr& gamma : negated) {
    if (logic::EvalSentence(gamma, view)) return false;
  }
  return true;
}

std::string Guard::ToString(const schema::Schema& schema) const {
  std::vector<std::string> parts;
  if (positive != nullptr) parts.push_back(positive->ToString(schema));
  for (const logic::PosFormulaPtr& gamma : negated) {
    parts.push_back("NOT(" + gamma->ToString(schema) + ")");
  }
  if (parts.empty()) return "TRUE";
  return Join(parts, " AND ");
}

std::vector<const ATransition*> AAutomaton::From(int s) const {
  std::vector<const ATransition*> out;
  for (const ATransition& t : transitions_) {
    if (t.from == s) out.push_back(&t);
  }
  return out;
}

Status AAutomaton::Validate() const {
  if (initial_ < 0 || initial_ >= num_states_) {
    return Status::InvalidArgument("initial state out of range");
  }
  for (int s : accepting_) {
    if (s < 0 || s >= num_states_) {
      return Status::InvalidArgument("accepting state out of range");
    }
  }
  for (const ATransition& t : transitions_) {
    if (t.from < 0 || t.from >= num_states_ || t.to < 0 ||
        t.to >= num_states_) {
      return Status::InvalidArgument("transition state out of range");
    }
    for (const logic::PosFormulaPtr& gamma : t.guard.negated) {
      if (gamma->UsesBind()) {
        return Status::InvalidArgument(
            "negated guard component mentions IsBind (violates Def. 4.3)");
      }
      if (!gamma->IsSentence()) {
        return Status::InvalidArgument("guard component is not a sentence");
      }
    }
    if (t.guard.positive != nullptr && !t.guard.positive->IsSentence()) {
      return Status::InvalidArgument("guard component is not a sentence");
    }
  }
  return Status::OK();
}

std::string AAutomaton::ToString(const schema::Schema& schema) const {
  std::string out = "states: " + std::to_string(num_states_) +
                    ", initial: " + std::to_string(initial_) + ", accepting:";
  for (int s : accepting_) out += " " + std::to_string(s);
  out += "\n";
  for (const ATransition& t : transitions_) {
    out += "  " + std::to_string(t.from) + " --[" +
           t.guard.ToString(schema) + "]--> " + std::to_string(t.to) + "\n";
  }
  return out;
}

bool AcceptsTransitions(const AAutomaton& automaton,
                        const std::vector<schema::Transition>& transitions) {
  std::set<int> current = {automaton.initial()};
  for (const schema::Transition& t : transitions) {
    std::set<int> next;
    for (const ATransition& at : automaton.transitions()) {
      if (current.count(at.from) == 0) continue;
      if (next.count(at.to) > 0) continue;
      if (at.guard.Eval(t)) next.insert(at.to);
    }
    current = std::move(next);
    if (current.empty()) return false;
  }
  for (int s : current) {
    if (automaton.IsAccepting(s)) return true;
  }
  return false;
}

bool Accepts(const AAutomaton& automaton, const schema::Schema& schema,
             const schema::AccessPath& path,
             const schema::Instance& initial) {
  std::vector<schema::Transition> transitions =
      acc::PathTransitions(schema, path, initial);
  return AcceptsTransitions(automaton, transitions);
}

}  // namespace automata
}  // namespace accltl
