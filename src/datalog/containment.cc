#include "src/datalog/containment.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "src/common/strings.h"

namespace accltl {
namespace datalog {

std::string DlCq::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(atoms.size());
  for (const DlAtom& a : atoms) parts.push_back(a.ToString());
  return Join(parts, " AND ");
}

namespace {

// ---------------------------------------------------------------------------
// Shared small helpers
// ---------------------------------------------------------------------------

using Env = std::map<std::string, Value>;

bool MatchDlAtom(const DlAtom& atom, const DlDatabase& db, Env* env,
                 const std::function<bool()>& k) {
  const std::set<Tuple>* tuples = db.GetTuples(atom.pred);
  if (tuples == nullptr) return false;
  for (const Tuple& tuple : *tuples) {
    if (tuple.size() != atom.terms.size()) continue;
    std::vector<std::string> newly;
    bool ok = true;
    for (size_t i = 0; i < tuple.size(); ++i) {
      const logic::Term& t = atom.terms[i];
      if (t.is_const()) {
        if (t.value() != tuple[i]) {
          ok = false;
          break;
        }
      } else {
        auto it = env->find(t.var_name());
        if (it != env->end()) {
          if (it->second != tuple[i]) {
            ok = false;
            break;
          }
        } else {
          (*env)[t.var_name()] = tuple[i];
          newly.push_back(t.var_name());
        }
      }
    }
    if (ok && k()) return true;
    for (const std::string& v : newly) env->erase(v);
  }
  return false;
}

bool CqHoldsOnDb(const DlCq& q, const DlDatabase& db) {
  Env env;
  std::function<bool(size_t)> rec = [&](size_t i) -> bool {
    if (i == q.atoms.size()) return true;
    return MatchDlAtom(q.atoms[i], db, &env, [&] { return rec(i + 1); });
  };
  return rec(0);
}

}  // namespace

bool UcqHoldsOnDb(const DlUcq& query, const DlDatabase& db) {
  for (const DlCq& q : query) {
    if (CqHoldsOnDb(q, db)) return true;
  }
  return false;
}

bool DlUcqContained(const DlUcq& lhs, const DlUcq& rhs) {
  // Freeze each lhs disjunct (vars -> distinct fresh values) and check
  // rhs on the canonical database. Exact for ≠-free queries.
  for (const DlCq& q : lhs) {
    DlDatabase db;
    int counter = 0;
    std::map<std::string, Value> frozen;
    for (const DlAtom& a : q.atoms) {
      Tuple t;
      t.reserve(a.terms.size());
      for (const logic::Term& term : a.terms) {
        if (term.is_const()) {
          t.push_back(term.value());
        } else {
          auto [it, inserted] = frozen.emplace(
              term.var_name(), Value::Str("~dl" + std::to_string(counter)));
          if (inserted) ++counter;
          t.push_back(it->second);
        }
      }
      db.AddFact(a.pred, std::move(t));
    }
    if (!UcqHoldsOnDb(rhs, db)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// UnfoldToUcq
// ---------------------------------------------------------------------------

namespace {

/// Most-general unifier of two term vectors (variables on both sides are
/// from disjoint namespaces thanks to renaming). Returns false on clash.
bool UnifyTerms(const std::vector<logic::Term>& a,
                const std::vector<logic::Term>& b,
                std::map<std::string, logic::Term>* subst) {
  auto resolve = [&](logic::Term t) {
    while (t.is_var()) {
      auto it = subst->find(t.var_name());
      if (it == subst->end()) break;
      t = it->second;
    }
    return t;
  };
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    logic::Term x = resolve(a[i]);
    logic::Term y = resolve(b[i]);
    if (x == y) continue;
    if (x.is_var()) {
      (*subst)[x.var_name()] = y;
    } else if (y.is_var()) {
      (*subst)[y.var_name()] = x;
    } else {
      return false;  // distinct constants
    }
  }
  return true;
}

logic::Term ApplySubstTerm(const std::map<std::string, logic::Term>& subst,
                           logic::Term t) {
  while (t.is_var()) {
    auto it = subst.find(t.var_name());
    if (it == subst.end()) break;
    t = it->second;
  }
  return t;
}

}  // namespace

Result<DlUcq> UnfoldToUcq(const Program& p, size_t max_disjuncts) {
  if (p.IsRecursive()) {
    return Status::Unsupported("UnfoldToUcq requires a nonrecursive program");
  }
  // Work items: partially unfolded bodies.
  std::vector<std::vector<DlAtom>> pending;
  int rename_counter = 0;

  // Seed with each goal rule's body. The goal head terms are irrelevant
  // for the boolean query.
  for (const DlRule* r : p.RulesFor(p.goal())) {
    std::vector<DlAtom> body;
    std::map<std::string, logic::Term> rename;
    std::string prefix = "u" + std::to_string(rename_counter++) + "$";
    for (const DlAtom& a : r->body) {
      DlAtom copy = a;
      for (logic::Term& t : copy.terms) {
        if (t.is_var()) t = logic::Term::Var(prefix + t.var_name());
      }
      body.push_back(std::move(copy));
    }
    pending.push_back(std::move(body));
  }
  if (p.RulesFor(p.goal()).empty()) {
    return DlUcq{};  // goal underivable: empty union (FALSE)
  }

  DlUcq out;
  while (!pending.empty()) {
    if (pending.size() + out.size() > max_disjuncts) {
      return Status::ResourceExhausted("UnfoldToUcq exceeded max_disjuncts");
    }
    std::vector<DlAtom> body = std::move(pending.back());
    pending.pop_back();
    // Find the first IDB atom.
    size_t idx = body.size();
    for (size_t i = 0; i < body.size(); ++i) {
      if (p.IsIdb(body[i].pred)) {
        idx = i;
        break;
      }
    }
    if (idx == body.size()) {
      DlCq q;
      q.atoms = std::move(body);
      out.push_back(std::move(q));
      continue;
    }
    DlAtom target = body[idx];
    for (const DlRule* r : p.RulesFor(target.pred)) {
      std::string prefix = "u" + std::to_string(rename_counter++) + "$";
      auto rename_term = [&](logic::Term t) {
        return t.is_var() ? logic::Term::Var(prefix + t.var_name()) : t;
      };
      std::vector<logic::Term> head_terms;
      head_terms.reserve(r->head.terms.size());
      for (const logic::Term& t : r->head.terms) {
        head_terms.push_back(rename_term(t));
      }
      std::map<std::string, logic::Term> subst;
      if (!UnifyTerms(head_terms, target.terms, &subst)) continue;
      std::vector<DlAtom> next;
      next.reserve(body.size() - 1 + r->body.size());
      for (size_t i = 0; i < body.size(); ++i) {
        if (i == idx) continue;
        DlAtom copy = body[i];
        for (logic::Term& t : copy.terms) t = ApplySubstTerm(subst, t);
        next.push_back(std::move(copy));
      }
      for (const DlAtom& a : r->body) {
        DlAtom copy = a;
        for (logic::Term& t : copy.terms) {
          t = ApplySubstTerm(subst, rename_term(t));
        }
        next.push_back(std::move(copy));
      }
      pending.push_back(std::move(next));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// ContainedInPositive: the type fixpoint of Prop. 4.11
// ---------------------------------------------------------------------------

namespace {

/// The image of one query variable under a partial embedding, expressed
/// against the expansion's interface.
///
/// Invariants (after canonicalization against the profile):
///  - internal => no slots, no constant; the variable maps to a value
///    created strictly inside the expansion and occurs in no query atom
///    outside the embedding's atom set.
///  - slots hold profile-class representatives; |slots| >= 2 is a
///    *requirement* that the parent pass equal values to those classes.
///  - constant + nonempty slots is a requirement that those interface
///    classes carry that constant.
struct ImageSpec {
  bool internal = false;
  std::set<int> slots;
  std::optional<Value> constant;

  friend bool operator<(const ImageSpec& a, const ImageSpec& b) {
    if (a.internal != b.internal) return a.internal < b.internal;
    if (a.slots != b.slots) return a.slots < b.slots;
    if (a.constant.has_value() != b.constant.has_value()) {
      return a.constant.has_value() < b.constant.has_value();
    }
    if (a.constant.has_value() && !(*a.constant == *b.constant)) {
      return *a.constant < *b.constant;
    }
    return false;
  }
  friend bool operator==(const ImageSpec& a, const ImageSpec& b) {
    return !(a < b) && !(b < a);
  }
};

/// A partial embedding of query disjunct `disjunct` into an expansion.
struct Embedding {
  int disjunct = 0;
  std::set<int> atoms;  // indices into query[disjunct].atoms
  std::map<std::string, ImageSpec> vars;
  /// Interface classes required to carry a constant.
  std::map<int, Value> slot_consts;

  bool Unconditional() const {
    if (!slot_consts.empty()) return false;
    for (const auto& [v, spec] : vars) {
      if (spec.slots.size() >= 2) return false;
      if (spec.constant.has_value() && !spec.slots.empty()) return false;
    }
    return true;
  }

  friend bool operator<(const Embedding& a, const Embedding& b) {
    if (a.disjunct != b.disjunct) return a.disjunct < b.disjunct;
    if (a.atoms != b.atoms) return a.atoms < b.atoms;
    if (a.vars != b.vars) return a.vars < b.vars;
    return a.slot_consts < b.slot_consts;
  }
  friend bool operator==(const Embedding& a, const Embedding& b) {
    return !(a < b) && !(b < a);
  }
};

/// Equalities/constants an expansion forces on its own interface.
struct Profile {
  /// slot -> class representative (smallest slot of the class).
  std::vector<int> cls;
  /// class representative -> forced constant.
  std::map<int, Value> cls_const;

  friend bool operator<(const Profile& a, const Profile& b) {
    if (a.cls != b.cls) return a.cls < b.cls;
    return a.cls_const < b.cls_const;
  }
  friend bool operator==(const Profile& a, const Profile& b) {
    return a.cls == b.cls && a.cls_const == b.cls_const;
  }
};

struct TypeEntry {
  Profile profile;
  std::set<Embedding> embeddings;

  friend bool operator<(const TypeEntry& a, const TypeEntry& b) {
    if (!(a.profile == b.profile)) return a.profile < b.profile;
    return a.embeddings < b.embeddings;
  }
};

/// Union-find over rule terms (variables and constants).
class TermUf {
 public:
  int NodeOfVar(const std::string& v) {
    auto [it, inserted] = var_ids_.emplace(v, next_id_);
    if (inserted) {
      ++next_id_;
      parent_.push_back(it->second);
      const_of_.emplace_back();
      is_local_.push_back(false);
    }
    return it->second;
  }

  int NodeOfConst(const Value& c) {
    auto [it, inserted] = const_ids_.emplace(c, next_id_);
    if (inserted) {
      ++next_id_;
      parent_.push_back(it->second);
      const_of_.emplace_back(c);
      is_local_.push_back(false);
    }
    return it->second;
  }

  int NodeOfTerm(const logic::Term& t) {
    return t.is_var() ? NodeOfVar(t.var_name()) : NodeOfConst(t.value());
  }

  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  /// Returns false on constant clash.
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    // Merge b into a.
    if (const_of_[static_cast<size_t>(b)].has_value()) {
      if (const_of_[static_cast<size_t>(a)].has_value()) {
        if (!(*const_of_[static_cast<size_t>(a)] ==
              *const_of_[static_cast<size_t>(b)])) {
          return false;
        }
      } else {
        const_of_[static_cast<size_t>(a)] = const_of_[static_cast<size_t>(b)];
      }
    }
    parent_[static_cast<size_t>(b)] = a;
    return true;
  }

  const std::optional<Value>& ConstOf(int x) {
    return const_of_[static_cast<size_t>(Find(x))];
  }

 private:
  std::map<std::string, int> var_ids_;
  std::map<Value, int> const_ids_;
  int next_id_ = 0;
  std::vector<int> parent_;
  std::vector<std::optional<Value>> const_of_;
  std::vector<bool> is_local_;
};

/// The fixpoint engine.
class TypeFixpoint {
 public:
  TypeFixpoint(const Program& program, const DlUcq& query,
               const ContainmentOptions& options, ContainmentStats* stats)
      : program_(program), query_(query), options_(options), stats_(stats) {}

  Result<bool> Run() {
    // Index variables per disjunct atom for the "internal vars stay
    // inside" check.
    for (const DlCq& q : query_) {
      if (q.atoms.empty()) return true;  // TRUE disjunct: always contained
    }

    bool changed = true;
    while (changed) {
      changed = false;
      if (stats_ != nullptr) ++stats_->iterations;
      for (const DlRule& rule : program_.rules()) {
        Result<bool> r = ProcessRule(rule, &changed);
        if (!r.ok()) return r.status();
      }
    }
    // Contained iff no counterexample type survives for the goal.
    auto it = types_.find(program_.goal());
    return it == types_.end() || it->second.empty();
  }

 private:
  /// Enumerates all ways to compose `rule` from current child types and
  /// inserts the results.
  Result<bool> ProcessRule(const DlRule& rule, bool* changed) {
    // Split the body.
    std::vector<const DlAtom*> idb_atoms, edb_atoms;
    for (const DlAtom& a : rule.body) {
      (program_.IsIdb(a.pred) ? idb_atoms : edb_atoms).push_back(&a);
    }
    // Pick one TypeEntry per IDB atom.
    std::vector<const std::vector<TypeEntry>*> pools;
    pools.reserve(idb_atoms.size());
    for (const DlAtom* a : idb_atoms) {
      auto it = types_.find(a->pred);
      if (it == types_.end() || it->second.empty()) return false;  // no-op
      pools.push_back(&it->second);
    }
    std::vector<size_t> choice(idb_atoms.size(), 0);
    while (true) {
      if (stats_ != nullptr &&
          ++stats_->compositions > options_.max_compositions) {
        return Status::ResourceExhausted(
            "containment: composition budget exhausted");
      }
      std::vector<const TypeEntry*> chosen;
      chosen.reserve(choice.size());
      for (size_t i = 0; i < choice.size(); ++i) {
        chosen.push_back(&(*pools[i])[choice[i]]);
      }
      ACCLTL_RETURN_IF_ERROR(
          Compose(rule, idb_atoms, edb_atoms, chosen, changed));
      // Advance the product iterator.
      size_t k = 0;
      for (; k < choice.size(); ++k) {
        if (++choice[k] < pools[k]->size()) break;
        choice[k] = 0;
      }
      if (k == choice.size()) break;
      if (choice.empty()) break;
    }
    if (choice.empty()) {
      // No IDB atoms: single composition already done above via the
      // empty-product iteration (the loop body ran once).
    }
    return false;
  }

  Status Compose(const DlRule& rule, const std::vector<const DlAtom*>& idb,
                 const std::vector<const DlAtom*>& edb,
                 const std::vector<const TypeEntry*>& chosen, bool* changed) {
    // --- Structural value classes -------------------------------------
    TermUf uf;
    // Make sure every rule term has a node.
    for (const logic::Term& t : rule.head.terms) uf.NodeOfTerm(t);
    for (const DlAtom& a : rule.body) {
      for (const logic::Term& t : a.terms) uf.NodeOfTerm(t);
    }
    // Child profiles constrain this node's terms.
    for (size_t i = 0; i < idb.size(); ++i) {
      const Profile& prof = chosen[i]->profile;
      const std::vector<logic::Term>& args = idb[i]->terms;
      for (size_t s = 0; s < args.size(); ++s) {
        int rep = prof.cls[s];
        if (rep != static_cast<int>(s)) {
          if (!uf.Union(uf.NodeOfTerm(args[s]),
                        uf.NodeOfTerm(args[static_cast<size_t>(rep)]))) {
            return Status::OK();  // constant clash: combo unrealizable
          }
        }
      }
      for (const auto& [rep, c] : prof.cls_const) {
        if (!uf.Union(uf.NodeOfTerm(args[static_cast<size_t>(rep)]),
                      uf.NodeOfConst(c))) {
          return Status::OK();
        }
      }
    }

    // --- Head profile ---------------------------------------------------
    Profile profile;
    int head_arity = static_cast<int>(rule.head.terms.size());
    profile.cls.resize(static_cast<size_t>(head_arity));
    std::map<int, int> class_to_first_slot;  // uf class -> first slot
    for (int j = 0; j < head_arity; ++j) {
      int cls = uf.Find(uf.NodeOfTerm(rule.head.terms[static_cast<size_t>(j)]));
      auto [it, inserted] = class_to_first_slot.emplace(cls, j);
      profile.cls[static_cast<size_t>(j)] = it->second;
      if (inserted) {
        const std::optional<Value>& c = uf.ConstOf(cls);
        if (c.has_value()) profile.cls_const[j] = *c;
      }
    }
    // Exposure map: uf class -> profile representative slot (if exposed).
    const std::map<int, int>& exposure = class_to_first_slot;

    // --- Embeddings ------------------------------------------------------
    TypeEntry entry;
    entry.profile = profile;
    bool discard_entry = false;  // set when an unconditional full is found

    for (int d = 0; d < static_cast<int>(query_.size()) && !discard_entry;
         ++d) {
      ComposeDisjunct(rule, idb, edb, chosen, &uf, exposure, profile, d,
                      &entry, &discard_entry);
    }
    if (discard_entry) return Status::OK();

    InsertEntry(rule.head.pred, std::move(entry), changed);
    return Status::OK();
  }

  /// Enumerates composed embeddings for disjunct `d` and adds them to
  /// `entry`. Sets `*discard` when an unconditional full embedding
  /// arises (the expansion then always satisfies the query).
  void ComposeDisjunct(const DlRule& rule,
                       const std::vector<const DlAtom*>& idb,
                       const std::vector<const DlAtom*>& edb,
                       const std::vector<const TypeEntry*>& chosen,
                       TermUf* uf, const std::map<int, int>& exposure,
                       const Profile& profile, int d, TypeEntry* entry,
                       bool* discard) {
    // Candidate embeddings per child for this disjunct (+ the empty one).
    std::vector<std::vector<const Embedding*>> child_cands(idb.size());
    for (size_t i = 0; i < idb.size(); ++i) {
      child_cands[i].push_back(nullptr);  // nullptr = empty embedding
      for (const Embedding& e : chosen[i]->embeddings) {
        if (e.disjunct == d) child_cands[i].push_back(&e);
      }
    }

    std::vector<size_t> pick(idb.size(), 0);
    while (true) {
      TryChildCombo(rule, idb, edb, chosen, uf, exposure, profile, d,
                    child_cands, pick, entry, discard);
      if (*discard) return;
      size_t k = 0;
      for (; k < pick.size(); ++k) {
        if (++pick[k] < child_cands[k].size()) break;
        pick[k] = 0;
      }
      if (k == pick.size()) break;
      if (pick.empty()) break;
    }
  }

  /// Requirements collected while composing one embedding.
  struct Requirements {
    /// Per query variable: structural classes it must equal.
    std::map<std::string, std::set<int>> var_classes;
    /// Per query variable: constants it must equal.
    std::map<std::string, Value> var_consts;
    /// Query variables pinned internal (by child index).
    std::map<std::string, size_t> var_internal;
    /// Structural classes required to carry constants.
    std::map<int, Value> class_consts;
    bool failed = false;
  };

  void RequireVarClass(Requirements* req, const std::string& v, int cls) {
    req->var_classes[v].insert(cls);
  }
  void RequireVarConst(Requirements* req, const std::string& v,
                       const Value& c) {
    auto [it, inserted] = req->var_consts.emplace(v, c);
    if (!inserted && !(it->second == c)) req->failed = true;
  }
  void RequireClassConst(Requirements* req, int cls, const Value& c,
                         TermUf* uf) {
    const std::optional<Value>& structural = uf->ConstOf(cls);
    if (structural.has_value()) {
      if (!(*structural == c)) req->failed = true;
      return;  // already satisfied structurally
    }
    auto [it, inserted] = req->class_consts.emplace(cls, c);
    if (!inserted && !(it->second == c)) req->failed = true;
  }

  void TryChildCombo(const DlRule& rule, const std::vector<const DlAtom*>& idb,
                     const std::vector<const DlAtom*>& edb,
                     const std::vector<const TypeEntry*>& chosen, TermUf* uf,
                     const std::map<int, int>& exposure,
                     const Profile& profile, int d,
                     const std::vector<std::vector<const Embedding*>>& cands,
                     const std::vector<size_t>& pick, TypeEntry* entry,
                     bool* discard) {
    (void)chosen;
    const DlCq& q = query_[static_cast<size_t>(d)];
    std::set<int> covered;
    Requirements req;
    // 1. Child embeddings.
    for (size_t i = 0; i < idb.size() && !req.failed; ++i) {
      const Embedding* e = cands[i][pick[i]];
      if (e == nullptr) continue;
      // Atom sets must be disjoint.
      for (int a : e->atoms) {
        if (!covered.insert(a).second) {
          req.failed = true;
          break;
        }
      }
      if (req.failed) break;
      const std::vector<logic::Term>& args = idb[i]->terms;
      for (const auto& [v, spec] : e->vars) {
        if (spec.internal) {
          auto [it, inserted] = req.var_internal.emplace(v, i);
          if (!inserted) req.failed = true;
          continue;
        }
        for (int s : spec.slots) {
          RequireVarClass(&req, v,
                          uf->Find(uf->NodeOfTerm(args[static_cast<size_t>(
                              s)])));
        }
        if (spec.constant.has_value()) {
          RequireVarConst(&req, v, *spec.constant);
        }
      }
      for (const auto& [s, c] : e->slot_consts) {
        RequireClassConst(
            &req, uf->Find(uf->NodeOfTerm(args[static_cast<size_t>(s)])), c,
            uf);
      }
    }
    if (req.failed) return;

    // 2. Local EDB part: each uncovered atom may map to a local atom.
    // Backtracking enumeration; each full assignment yields a candidate.
    std::vector<int> uncovered;
    for (int a = 0; a < static_cast<int>(q.atoms.size()); ++a) {
      if (covered.count(a) == 0) uncovered.push_back(a);
    }

    std::function<void(size_t, std::set<int>*, Requirements*)> rec =
        [&](size_t idx, std::set<int>* local_atoms, Requirements* current) {
          if (*discard) return;
          if (current->failed) return;
          if (idx == uncovered.size()) {
            FinishEmbedding(rule, uf, exposure, profile, d, covered,
                            *local_atoms, *current, entry, discard);
            return;
          }
          int qa = uncovered[idx];
          // Option A: leave the atom unmapped.
          rec(idx + 1, local_atoms, current);
          if (*discard) return;
          // Option B: map it onto one of the rule's local EDB atoms.
          const DlAtom& qatom = q.atoms[static_cast<size_t>(qa)];
          for (const DlAtom* latom : edb) {
            if (latom->pred != qatom.pred ||
                latom->terms.size() != qatom.terms.size()) {
              continue;
            }
            Requirements next = *current;
            for (size_t pos = 0; pos < qatom.terms.size() && !next.failed;
                 ++pos) {
              const logic::Term& qt = qatom.terms[pos];
              const logic::Term& lt = latom->terms[pos];
              int cls = uf->Find(uf->NodeOfTerm(lt));
              if (qt.is_var()) {
                RequireVarClass(&next, qt.var_name(), cls);
              } else {
                RequireClassConst(&next, cls, qt.value(), uf);
              }
            }
            if (next.failed) continue;
            local_atoms->insert(qa);
            rec(idx + 1, local_atoms, &next);
            local_atoms->erase(qa);
            if (*discard) return;
          }
        };
    std::set<int> local_atoms;
    rec(0, &local_atoms, &req);
  }

  /// Resolves requirements into a parent-level embedding.
  void FinishEmbedding(const DlRule& rule, TermUf* uf,
                       const std::map<int, int>& exposure,
                       const Profile& profile, int d,
                       const std::set<int>& child_atoms,
                       const std::set<int>& local_atoms,
                       const Requirements& req, TypeEntry* entry,
                       bool* discard) {
    (void)rule;
    (void)profile;
    const DlCq& q = query_[static_cast<size_t>(d)];
    Embedding out;
    out.disjunct = d;
    out.atoms = child_atoms;
    out.atoms.insert(local_atoms.begin(), local_atoms.end());

    // Internal variables must not occur outside the embedding.
    for (const auto& [v, child] : req.var_internal) {
      (void)child;
      if (req.var_classes.count(v) > 0 || req.var_consts.count(v) > 0) {
        return;  // internal value can't equal anything else
      }
      for (int a = 0; a < static_cast<int>(q.atoms.size()); ++a) {
        if (out.atoms.count(a) > 0) continue;
        for (const logic::Term& t : q.atoms[static_cast<size_t>(a)].terms) {
          if (t.is_var() && t.var_name() == v) return;
        }
      }
      ImageSpec spec;
      spec.internal = true;
      out.vars[v] = spec;
    }

    // Per-variable class/constant resolution.
    std::set<std::string> vars_seen;
    for (const auto& [v, classes] : req.var_classes) vars_seen.insert(v);
    for (const auto& [v, c] : req.var_consts) vars_seen.insert(v);
    for (const std::string& v : vars_seen) {
      std::optional<Value> c;
      auto cit = req.var_consts.find(v);
      if (cit != req.var_consts.end()) c = cit->second;
      ImageSpec spec;
      auto vit = req.var_classes.find(v);
      if (vit != req.var_classes.end()) {
        for (int cls : vit->second) {
          const std::optional<Value>& structural = uf->ConstOf(cls);
          if (structural.has_value()) {
            if (c.has_value()) {
              if (!(*structural == *c)) return;  // clash
            } else {
              c = structural;
            }
            continue;  // class value known: no interface dependence
          }
          auto eit = exposure.find(cls);
          if (eit == exposure.end()) {
            // Hidden fresh class: its value can equal nothing else.
            if (c.has_value() || vit->second.size() >= 2) return;
            spec.internal = true;
            // Must not occur outside the embedding (same check as above).
            for (int a = 0; a < static_cast<int>(q.atoms.size()); ++a) {
              if (out.atoms.count(a) > 0) continue;
              for (const logic::Term& t :
                   q.atoms[static_cast<size_t>(a)].terms) {
                if (t.is_var() && t.var_name() == v) return;
              }
            }
            break;
          }
          spec.slots.insert(eit->second);
        }
      }
      if (!spec.internal) {
        spec.constant = c;
        if (spec.slots.empty() && !c.has_value()) {
          // Unreachable: a variable in vars_seen has a class or constant
          // requirement, and classes without constants were either
          // exposed (slots) or hidden (internal/early return).
          return;
        }
      }
      out.vars[v] = spec;
    }

    // Residual class-constant requirements become slot constraints.
    for (const auto& [cls, c] : req.class_consts) {
      const std::optional<Value>& structural = uf->ConstOf(cls);
      if (structural.has_value()) {
        if (!(*structural == c)) return;
        continue;
      }
      auto eit = exposure.find(cls);
      if (eit == exposure.end()) return;  // hidden fresh value != constant
      auto [it, inserted] = out.slot_consts.emplace(eit->second, c);
      if (!inserted && !(it->second == c)) return;
    }

    if (static_cast<int>(out.atoms.size()) ==
            static_cast<int>(q.atoms.size()) &&
        out.Unconditional()) {
      *discard = true;
      return;
    }
    entry->embeddings.insert(std::move(out));
  }

  /// Antichain insertion: keep only ⊆-minimal embedding sets per profile.
  void InsertEntry(const std::string& pred, TypeEntry entry, bool* changed) {
    std::vector<TypeEntry>& pool = types_[pred];
    for (const TypeEntry& existing : pool) {
      if (existing.profile == entry.profile &&
          std::includes(entry.embeddings.begin(), entry.embeddings.end(),
                        existing.embeddings.begin(),
                        existing.embeddings.end())) {
        return;  // dominated by an existing smaller entry
      }
    }
    pool.erase(std::remove_if(pool.begin(), pool.end(),
                              [&](const TypeEntry& existing) {
                                return existing.profile == entry.profile &&
                                       std::includes(
                                           existing.embeddings.begin(),
                                           existing.embeddings.end(),
                                           entry.embeddings.begin(),
                                           entry.embeddings.end());
                              }),
               pool.end());
    pool.push_back(std::move(entry));
    if (stats_ != nullptr) ++stats_->type_entries;
    *changed = true;
  }

  const Program& program_;
  const DlUcq& query_;
  const ContainmentOptions& options_;
  ContainmentStats* stats_;
  std::map<std::string, std::vector<TypeEntry>> types_;
};

}  // namespace

Result<bool> ContainedInPositive(const Program& p, const DlUcq& query,
                                 const ContainmentOptions& options,
                                 ContainmentStats* stats) {
  ACCLTL_RETURN_IF_ERROR(p.Validate());
  // Wrap the goal so the top-level interface is 0-ary: every residual
  // interface requirement must then have been resolved inside.
  Program wrapped = p;
  const std::string kGoal0 = "$goal0";
  {
    // Find the goal arity from some rule; a goal with no rules is the
    // empty program (trivially contained).
    std::vector<const DlRule*> goal_rules = p.RulesFor(p.goal());
    if (goal_rules.empty()) return true;
    DlRule wrapper;
    wrapper.head = DlAtom{kGoal0, {}};
    DlAtom body_atom;
    body_atom.pred = p.goal();
    size_t arity = goal_rules[0]->head.terms.size();
    for (size_t i = 0; i < arity; ++i) {
      body_atom.terms.push_back(logic::Term::Var("g$" + std::to_string(i)));
    }
    wrapper.body.push_back(std::move(body_atom));
    wrapped.AddRule(std::move(wrapper));
    wrapped.SetGoal(kGoal0);
  }
  // An empty union (FALSE) is only contained if the program accepts
  // nothing; handled naturally by the fixpoint (any surviving goal type
  // is a counterexample).
  TypeFixpoint fix(wrapped, query, options, stats);
  return fix.Run();
}


namespace {

using Renaming = std::map<std::string, std::string>;

/// Extends the bijection fwd/rev with v1 -> v2; false on conflict.
bool BindRenamedVar(const std::string& v1, const std::string& v2,
                    Renaming* fwd, Renaming* rev) {
  auto [fit, finserted] = fwd->emplace(v1, v2);
  if (!finserted) return fit->second == v2;
  auto [rit, rinserted] = rev->emplace(v2, v1);
  if (!rinserted) {
    fwd->erase(fit);
    return false;
  }
  return true;
}

/// Backtracking multiset match of a.atoms onto b.atoms under a growing
/// variable bijection.
bool MatchDlAtoms(const DlCq& a, const DlCq& b, size_t i,
                  std::vector<bool>* used, Renaming* fwd, Renaming* rev) {
  if (i == a.atoms.size()) return true;
  const DlAtom& a1 = a.atoms[i];
  for (size_t j = 0; j < b.atoms.size(); ++j) {
    if ((*used)[j]) continue;
    const DlAtom& a2 = b.atoms[j];
    if (a1.pred != a2.pred || a1.terms.size() != a2.terms.size()) continue;
    std::vector<std::pair<std::string, std::string>> trail;
    bool bound = true;
    for (size_t k = 0; k < a1.terms.size() && bound; ++k) {
      const logic::Term& t1 = a1.terms[k];
      const logic::Term& t2 = a2.terms[k];
      if (t1.is_const() != t2.is_const()) {
        bound = false;
      } else if (t1.is_const()) {
        bound = t1.value() == t2.value();
      } else {
        size_t before = fwd->count(t1.var_name());
        bound = BindRenamedVar(t1.var_name(), t2.var_name(), fwd, rev);
        if (bound && before == 0) {
          trail.emplace_back(t1.var_name(), t2.var_name());
        }
      }
    }
    if (bound) {
      (*used)[j] = true;
      if (MatchDlAtoms(a, b, i + 1, used, fwd, rev)) return true;
      (*used)[j] = false;
    }
    for (const auto& [v1, v2] : trail) {
      fwd->erase(v1);
      rev->erase(v2);
    }
  }
  return false;
}

bool MatchDlDisjuncts(const DlUcq& lhs, const DlUcq& rhs, size_t i,
                      std::vector<bool>* used,
                      std::vector<Renaming>* renamings) {
  if (i == lhs.size()) return true;
  for (size_t j = 0; j < rhs.size(); ++j) {
    if ((*used)[j]) continue;
    std::optional<Renaming> r = DlCqEquivalentUpToRenaming(lhs[i], rhs[j]);
    if (!r.has_value()) continue;
    (*used)[j] = true;
    renamings->push_back(std::move(*r));
    if (MatchDlDisjuncts(lhs, rhs, i + 1, used, renamings)) return true;
    renamings->pop_back();
    (*used)[j] = false;
  }
  return false;
}

}  // namespace

std::optional<std::map<std::string, std::string>> DlCqEquivalentUpToRenaming(
    const DlCq& a, const DlCq& b, size_t max_atoms) {
  if (a.atoms.size() != b.atoms.size()) return std::nullopt;
  if (a.atoms.size() > max_atoms) return std::nullopt;  // don't know
  Renaming fwd;
  Renaming rev;
  std::vector<bool> used(b.atoms.size(), false);
  if (!MatchDlAtoms(a, b, 0, &used, &fwd, &rev)) return std::nullopt;
  return fwd;
}

bool DlUcqEquivalentUpToRenaming(
    const DlUcq& lhs, const DlUcq& rhs,
    std::vector<std::map<std::string, std::string>>* witness) {
  if (lhs.size() != rhs.size()) return false;
  // Factorial matching past this width; "don't know" is the honest
  // (and cheap) answer.
  if (lhs.size() > 16) return false;
  std::vector<bool> used(rhs.size(), false);
  std::vector<Renaming> renamings;
  if (!MatchDlDisjuncts(lhs, rhs, 0, &used, &renamings)) return false;
  if (witness != nullptr) *witness = std::move(renamings);
  return true;
}

}  // namespace datalog
}  // namespace accltl
