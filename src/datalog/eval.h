#ifndef ACCLTL_DATALOG_EVAL_H_
#define ACCLTL_DATALOG_EVAL_H_

#include <map>
#include <string>

#include "src/datalog/program.h"

namespace accltl {
namespace datalog {

/// Statistics of a bottom-up evaluation (for the benchmarks).
struct EvalStats {
  size_t iterations = 0;
  size_t facts_derived = 0;
  size_t rule_firings = 0;
};

/// Computes the least fixpoint P(D) (§4.1) by semi-naive bottom-up
/// evaluation: each iteration joins rule bodies with at least one
/// delta-bound IDB atom, so settled facts are never re-derived.
/// Returns the database extended with all derived IDB facts.
DlDatabase Evaluate(const Program& program, const DlDatabase& edb,
                    EvalStats* stats = nullptr);

/// Naive (re-derive everything each round) evaluation — the baseline
/// the semi-naive benchmark compares against; results are identical.
DlDatabase EvaluateNaive(const Program& program, const DlDatabase& edb,
                         EvalStats* stats = nullptr);

/// True iff the program accepts `edb`: goal predicate non-empty in the
/// least fixpoint.
bool Accepts(const Program& program, const DlDatabase& edb);

}  // namespace datalog
}  // namespace accltl

#endif  // ACCLTL_DATALOG_EVAL_H_
