#include "src/datalog/eval.h"

#include <cassert>
#include <functional>

namespace accltl {
namespace datalog {

namespace {

using Env = std::map<std::string, Value>;

/// Matches `atom` against tuples of `source`, extending `env`;
/// calls `k` per match. Returns true if `k` ever returned true.
bool MatchAtom(const DlAtom& atom, const std::set<Tuple>* source, Env* env,
               const std::function<bool()>& k) {
  if (source == nullptr) return false;
  for (const Tuple& tuple : *source) {
    if (tuple.size() != atom.terms.size()) continue;
    std::vector<std::string> newly;
    bool ok = true;
    for (size_t i = 0; i < tuple.size(); ++i) {
      const logic::Term& t = atom.terms[i];
      if (t.is_const()) {
        if (t.value() != tuple[i]) {
          ok = false;
          break;
        }
      } else {
        auto it = env->find(t.var_name());
        if (it != env->end()) {
          if (it->second != tuple[i]) {
            ok = false;
            break;
          }
        } else {
          (*env)[t.var_name()] = tuple[i];
          newly.push_back(t.var_name());
        }
      }
    }
    if (ok && k()) return true;
    for (const std::string& v : newly) env->erase(v);
  }
  return false;
}

/// Evaluates a rule body where body atom `delta_pos` (if >= 0) reads
/// from `delta` instead of `full`; emits head facts via `emit`.
void FireRule(const DlRule& rule, const DlDatabase& full,
              const DlDatabase* delta, int delta_pos, EvalStats* stats,
              const std::function<void(Tuple)>& emit) {
  Env env;
  std::function<bool(size_t)> rec = [&](size_t i) -> bool {
    if (i == rule.body.size()) {
      Tuple head;
      head.reserve(rule.head.terms.size());
      for (const logic::Term& t : rule.head.terms) {
        if (t.is_const()) {
          head.push_back(t.value());
        } else {
          auto it = env.find(t.var_name());
          assert(it != env.end() && "unsafe rule slipped past Validate");
          head.push_back(it->second);
        }
      }
      if (stats != nullptr) ++stats->rule_firings;
      emit(std::move(head));
      return false;  // enumerate all matches
    }
    const DlAtom& atom = rule.body[i];
    const std::set<Tuple>* source =
        (static_cast<int>(i) == delta_pos && delta != nullptr)
            ? delta->GetTuples(atom.pred)
            : full.GetTuples(atom.pred);
    return MatchAtom(atom, source, &env, [&] { return rec(i + 1); });
  };
  rec(0);
}

}  // namespace

DlDatabase Evaluate(const Program& program, const DlDatabase& edb,
                    EvalStats* stats) {
  DlDatabase full = edb;
  // Round 0: rules as if all their IDB body atoms were deltas — i.e.
  // plain evaluation once (covers EDB-only rules and facts).
  DlDatabase delta;
  for (const DlRule& r : program.rules()) {
    FireRule(r, full, nullptr, -1, stats, [&](Tuple t) {
      if (!full.Contains(r.head.pred, t)) {
        delta.AddFact(r.head.pred, t);
      }
    });
  }
  while (delta.TotalFacts() > 0) {
    if (stats != nullptr) {
      ++stats->iterations;
      stats->facts_derived += delta.TotalFacts();
    }
    full.UnionWith(delta);
    DlDatabase next_delta;
    for (const DlRule& r : program.rules()) {
      for (size_t i = 0; i < r.body.size(); ++i) {
        if (!program.IsIdb(r.body[i].pred)) continue;
        // Semi-naive: position i reads the delta; positions < i that are
        // IDB read the full relation (new ∪ old), which over-counts
        // derivations but never misses or duplicates facts.
        FireRule(r, full, &delta, static_cast<int>(i), stats, [&](Tuple t) {
          if (!full.Contains(r.head.pred, t) &&
              !next_delta.Contains(r.head.pred, t)) {
            next_delta.AddFact(r.head.pred, t);
          }
        });
      }
    }
    delta = std::move(next_delta);
  }
  return full;
}

DlDatabase EvaluateNaive(const Program& program, const DlDatabase& edb,
                         EvalStats* stats) {
  DlDatabase full = edb;
  bool changed = true;
  while (changed) {
    changed = false;
    if (stats != nullptr) ++stats->iterations;
    for (const DlRule& r : program.rules()) {
      FireRule(r, full, nullptr, -1, stats, [&](Tuple t) {
        if (full.AddFact(r.head.pred, std::move(t))) {
          changed = true;
          if (stats != nullptr) ++stats->facts_derived;
        }
      });
    }
  }
  return full;
}

bool Accepts(const Program& program, const DlDatabase& edb) {
  DlDatabase result = Evaluate(program, edb);
  const std::set<Tuple>* goal = result.GetTuples(program.goal());
  return goal != nullptr && !goal->empty();
}

}  // namespace datalog
}  // namespace accltl
