#ifndef ACCLTL_DATALOG_PROGRAM_H_
#define ACCLTL_DATALOG_PROGRAM_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/logic/term.h"

namespace accltl {
namespace datalog {

/// An atom of a Datalog rule: predicate name plus terms (variables or
/// constants). Predicates are identified by name; the split into
/// extensional (EDB) and intensional (IDB) predicates is derived from
/// rule heads (§4.1).
struct DlAtom {
  std::string pred;
  std::vector<logic::Term> terms;

  std::string ToString() const;

  friend bool operator==(const DlAtom& a, const DlAtom& b) {
    return a.pred == b.pred && a.terms == b.terms;
  }
  friend bool operator<(const DlAtom& a, const DlAtom& b) {
    if (a.pred != b.pred) return a.pred < b.pred;
    return a.terms < b.terms;
  }
};

/// A rule head :- body (body conjunctive, possibly empty for facts).
struct DlRule {
  DlAtom head;
  std::vector<DlAtom> body;

  std::string ToString() const;
};

/// A database over string-named predicates.
class DlDatabase {
 public:
  bool AddFact(const std::string& pred, Tuple t) {
    return rels_[pred].insert(std::move(t)).second;
  }

  const std::set<Tuple>* GetTuples(const std::string& pred) const {
    auto it = rels_.find(pred);
    return it == rels_.end() ? nullptr : &it->second;
  }

  bool Contains(const std::string& pred, const Tuple& t) const {
    auto it = rels_.find(pred);
    return it != rels_.end() && it->second.count(t) > 0;
  }

  size_t TotalFacts() const {
    size_t n = 0;
    for (const auto& [p, ts] : rels_) n += ts.size();
    return n;
  }

  const std::map<std::string, std::set<Tuple>>& relations() const {
    return rels_;
  }

  void UnionWith(const DlDatabase& other) {
    for (const auto& [p, ts] : other.rels_) {
      rels_[p].insert(ts.begin(), ts.end());
    }
  }

  friend bool operator==(const DlDatabase& a, const DlDatabase& b) {
    return a.rels_ == b.rels_;
  }

  std::string ToString() const;

 private:
  std::map<std::string, std::set<Tuple>> rels_;
};

/// A Datalog program (§4.1): rules plus a distinguished goal predicate.
/// The program "accepts" a database when the goal predicate is non-empty
/// in the least fixpoint.
class Program {
 public:
  Program() = default;

  void AddRule(DlRule rule) { rules_.push_back(std::move(rule)); }
  void SetGoal(std::string goal) { goal_ = std::move(goal); }

  const std::vector<DlRule>& rules() const { return rules_; }
  const std::string& goal() const { return goal_; }

  /// Predicates appearing in some rule head.
  std::set<std::string> IdbPredicates() const;

  /// Predicates appearing only in bodies.
  std::set<std::string> EdbPredicates() const;

  bool IsIdb(const std::string& pred) const;

  /// Rules whose head predicate is `pred`.
  std::vector<const DlRule*> RulesFor(const std::string& pred) const;

  /// True iff some IDB predicate depends (transitively) on itself.
  bool IsRecursive() const;

  /// Checks safety (every head variable occurs in the body) and arity
  /// consistency per predicate.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::vector<DlRule> rules_;
  std::string goal_;
};

}  // namespace datalog
}  // namespace accltl

#endif  // ACCLTL_DATALOG_PROGRAM_H_
