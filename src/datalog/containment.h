#ifndef ACCLTL_DATALOG_CONTAINMENT_H_
#define ACCLTL_DATALOG_CONTAINMENT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/datalog/program.h"

namespace accltl {
namespace datalog {

/// A boolean conjunctive query over EDB predicates (all variables
/// existentially quantified); a positive FO sentence is a union of
/// these.
struct DlCq {
  std::vector<DlAtom> atoms;

  std::string ToString() const;
};

/// A positive existential FO sentence in UCQ normal form.
using DlUcq = std::vector<DlCq>;

struct ContainmentStats {
  /// Distinct (predicate, type-entry) pairs discovered.
  size_t type_entries = 0;
  /// Rule/child-entry combinations composed.
  size_t compositions = 0;
  /// Fixpoint rounds.
  size_t iterations = 0;
};

struct ContainmentOptions {
  /// Cap on surviving type entries per predicate.
  size_t max_entries_per_pred = 1u << 14;
  /// Cap on total compositions before giving up.
  size_t max_compositions = 1u << 24;
};

/// Prop. 4.11: is the Datalog program `p` contained in the positive FO
/// sentence `query` — i.e. does every database accepted by `p` satisfy
/// `query`? Decidable (2EXPTIME); both sides may use constants.
///
/// Implementation: a least fixpoint over *types* of proof-tree
/// expansions. A type is a pair (interface profile, set of partial
/// embeddings): the profile records which head positions of the
/// expansion are forced equal / forced to constants, and each partial
/// embedding records how a subset of a query disjunct's atoms can map
/// into the expansion, with its residual requirements on the interface.
/// An expansion whose type contains an unconditional full embedding can
/// never witness non-containment and is pruned; the program is
/// contained iff no type at all survives for the (0-ary) goal.
Result<bool> ContainedInPositive(const Program& p, const DlUcq& query,
                                 const ContainmentOptions& options = {},
                                 ContainmentStats* stats = nullptr);

/// Unfolds a non-recursive program's goal into a UCQ over EDB
/// predicates (used as an exact cross-check of ContainedInPositive and
/// as the nonrecursive fast path). Fails on recursive programs or when
/// the expansion exceeds `max_disjuncts`.
Result<DlUcq> UnfoldToUcq(const Program& p, size_t max_disjuncts = 10000);

/// Does `db`, viewed as a concrete database, satisfy the sentence
/// (some disjunct maps homomorphically into it)?
bool UcqHoldsOnDb(const DlUcq& query, const DlDatabase& db);

/// Containment of UCQ sentences over the same EDB vocabulary:
/// lhs ⊆ rhs iff each disjunct's canonical database satisfies rhs.
bool DlUcqContained(const DlUcq& lhs, const DlUcq& rhs);

/// Is `b` exactly `a` with variables renamed bijectively? Atoms are
/// matched as multisets (conjunct order is immaterial). Returns the
/// witness renaming (a-variable -> b-variable) when one exists,
/// nullopt otherwise — which is strictly finer than semantic
/// equivalence (DlUcqContained both ways), never coarser. Queries
/// beyond `max_atoms` atoms answer nullopt (don't know) instead of
/// risking factorial backtracking.
std::optional<std::map<std::string, std::string>> DlCqEquivalentUpToRenaming(
    const DlCq& a, const DlCq& b, size_t max_atoms = 16);

/// Renaming-witness equivalence at the UCQ level: disjunct sets are
/// matched one-to-one, each pair related by a bijective per-disjunct
/// variable renaming. `witness`, when non-null, receives one renaming
/// per lhs disjunct in lhs order. False means "no such matching
/// found", not a semantic refutation.
bool DlUcqEquivalentUpToRenaming(
    const DlUcq& lhs, const DlUcq& rhs,
    std::vector<std::map<std::string, std::string>>* witness = nullptr);

}  // namespace datalog
}  // namespace accltl

#endif  // ACCLTL_DATALOG_CONTAINMENT_H_
