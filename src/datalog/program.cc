#include "src/datalog/program.h"

#include <functional>

#include "src/common/strings.h"

namespace accltl {
namespace datalog {

std::string DlAtom::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(terms.size());
  for (const logic::Term& t : terms) parts.push_back(t.ToString());
  return pred + "(" + Join(parts, ", ") + ")";
}

std::string DlRule::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(body.size());
  for (const DlAtom& a : body) parts.push_back(a.ToString());
  return head.ToString() + " :- " + Join(parts, ", ") + ".";
}

std::string DlDatabase::ToString() const {
  std::string out;
  for (const auto& [p, ts] : rels_) {
    for (const Tuple& t : ts) out += p + TupleToString(t) + "\n";
  }
  return out;
}

std::set<std::string> Program::IdbPredicates() const {
  std::set<std::string> out;
  for (const DlRule& r : rules_) out.insert(r.head.pred);
  return out;
}

std::set<std::string> Program::EdbPredicates() const {
  std::set<std::string> idb = IdbPredicates();
  std::set<std::string> out;
  for (const DlRule& r : rules_) {
    for (const DlAtom& a : r.body) {
      if (idb.count(a.pred) == 0) out.insert(a.pred);
    }
  }
  return out;
}

bool Program::IsIdb(const std::string& pred) const {
  for (const DlRule& r : rules_) {
    if (r.head.pred == pred) return true;
  }
  return false;
}

std::vector<const DlRule*> Program::RulesFor(const std::string& pred) const {
  std::vector<const DlRule*> out;
  for (const DlRule& r : rules_) {
    if (r.head.pred == pred) out.push_back(&r);
  }
  return out;
}

bool Program::IsRecursive() const {
  // Dependency edges: head -> IDB body predicates; detect a cycle.
  std::set<std::string> idb = IdbPredicates();
  std::map<std::string, std::set<std::string>> deps;
  for (const DlRule& r : rules_) {
    for (const DlAtom& a : r.body) {
      if (idb.count(a.pred)) deps[r.head.pred].insert(a.pred);
    }
  }
  std::map<std::string, int> state;  // 0 unvisited, 1 in-stack, 2 done
  std::function<bool(const std::string&)> has_cycle =
      [&](const std::string& p) -> bool {
    int& s = state[p];
    if (s == 1) return true;
    if (s == 2) return false;
    s = 1;
    for (const std::string& d : deps[p]) {
      if (has_cycle(d)) return true;
    }
    s = 2;
    return false;
  };
  for (const std::string& p : idb) {
    if (has_cycle(p)) return true;
  }
  return false;
}

Status Program::Validate() const {
  if (goal_.empty()) {
    return Status::InvalidArgument("program has no goal predicate");
  }
  std::map<std::string, size_t> arity;
  auto check_arity = [&](const DlAtom& a) -> Status {
    auto [it, inserted] = arity.emplace(a.pred, a.terms.size());
    if (!inserted && it->second != a.terms.size()) {
      return Status::InvalidArgument("inconsistent arity for predicate " +
                                     a.pred);
    }
    return Status::OK();
  };
  for (const DlRule& r : rules_) {
    ACCLTL_RETURN_IF_ERROR(check_arity(r.head));
    std::set<std::string> body_vars;
    for (const DlAtom& a : r.body) {
      ACCLTL_RETURN_IF_ERROR(check_arity(a));
      for (const logic::Term& t : a.terms) {
        if (t.is_var()) body_vars.insert(t.var_name());
      }
    }
    for (const logic::Term& t : r.head.terms) {
      if (t.is_var() && body_vars.count(t.var_name()) == 0) {
        return Status::InvalidArgument(
            "unsafe rule (head variable not in body): " + r.ToString());
      }
    }
  }
  return Status::OK();
}

std::string Program::ToString() const {
  std::string out = "goal: " + goal_ + "\n";
  for (const DlRule& r : rules_) out += r.ToString() + "\n";
  return out;
}

}  // namespace datalog
}  // namespace accltl
