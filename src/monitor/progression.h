#ifndef ACCLTL_MONITOR_PROGRESSION_H_
#define ACCLTL_MONITOR_PROGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/accltl/formula.h"
#include "src/engine/cancel.h"
#include "src/schema/access.h"
#include "src/schema/lts.h"

namespace accltl {
namespace monitor {

/// Four-valued runtime verdict for a policy over the access prefix
/// consumed so far (RV-LTL style):
///  - kSatisfied:       φ holds on the prefix and on every extension;
///  - kViolated:        φ fails on the prefix and on every extension;
///  - kCurrentlyTrue:   φ holds if the session stops now, but some
///                      extension could violate it;
///  - kCurrentlyFalse:  φ fails if the session stops now, but some
///                      extension could still satisfy it.
enum class Verdict {
  kSatisfied,
  kViolated,
  kCurrentlyTrue,
  kCurrentlyFalse,
};

const char* VerdictName(Verdict v);

/// True for the two irrevocable verdicts.
inline bool IsFinal(Verdict v) {
  return v == Verdict::kSatisfied || v == Verdict::kViolated;
}

/// Online AccLTL monitor by formula progression.
///
/// The monitor consumes one transition at a time and rewrites the
/// formula into the residual obligation on the remaining suffix:
///   prog(atom, t)  = M(t) ⊨ atom        (a constant)
///   prog(X φ, t)   = φ                  (deferred to the next letter)
///   prog(φ U ψ, t) = prog(ψ,t) ∨ (prog(φ,t) ∧ φ U ψ)
/// with ¬/∧/∨ progressed pointwise and constant-folded.
///
/// The verdict matches the reference semantics (acc::EvalOnPath) on the
/// consumed prefix exactly: deferred obligations are *strong* — X and U
/// fail past the end of the path, as in Def. 2.1 over finite paths.
/// Irrevocable verdicts are detected by constant folding; this is sound
/// (a kSatisfied/kViolated verdict is correct for every extension) but
/// not complete — a residual that is unsatisfiable for deeper reasons
/// keeps reporting a kCurrently* verdict.
///
/// Works on *any* AccLTL(FO∃+,≠Acc) formula — monitoring evaluates
/// concrete transitions, so the fragment restrictions that matter for
/// satisfiability (Table 1) play no role here.
class ProgressionMonitor {
 public:
  /// The monitor starts before any access: `initial` is I0.
  ProgressionMonitor(acc::AccPtr formula, const schema::Schema& schema,
                     schema::Instance initial);

  /// Consumes one access/response step, advancing I_i to I_{i+1}.
  void Step(const schema::Access& access, const schema::Response& response);

  /// Consumes a pre-materialized transition. The transition's `pre`
  /// must equal the monitor's current configuration.
  void StepTransition(const schema::Transition& t);

  /// Cancellable variants. A progression step is all-or-nothing —
  /// `cancel` is polled on entry (the rewrite itself is bounded by the
  /// residual, not the configuration); a fired token returns false and
  /// leaves the monitor untouched so the caller may retry the same
  /// step, and an unfired token never changes any result (the PR-4
  /// cancellation contract). nullptr means uncancellable.
  bool TryStep(const schema::Access& access, const schema::Response& response,
               const engine::CancelToken* cancel);
  bool TryStepTransition(const schema::Transition& t,
                         const engine::CancelToken* cancel);

  /// Verdict for the prefix consumed so far. Before the first step the
  /// verdict is kCurrentlyFalse (the paper's paths are non-empty).
  Verdict verdict() const { return verdict_; }

  /// Does the consumed prefix satisfy the formula if the session ends
  /// here? (Equals acc::EvalOnPath on the consumed path.)
  bool CurrentlyHolds() const {
    return verdict_ == Verdict::kSatisfied ||
           verdict_ == Verdict::kCurrentlyTrue;
  }

  /// Number of steps consumed.
  size_t num_steps() const { return num_steps_; }

  /// Configuration after the consumed prefix (Conf(p, I0)).
  const schema::Instance& configuration() const { return current_; }

  /// Size of the residual obligation (nodes); grows at most linearly
  /// per step and shrinks under folding. Exposed for the ablation bench.
  size_t ResidualSize() const;

  std::string ResidualToString() const;

 private:
  struct Prog;
  using ProgPtr = std::shared_ptr<const Prog>;

  ProgPtr ProgressFormula(const acc::AccFormula* f,
                          const schema::Transition& t) const;
  ProgPtr ProgressResidual(const ProgPtr& s, const schema::Transition& t) const;
  void RecomputeVerdict();

  const schema::Schema& schema_;
  schema::Instance current_;
  ProgPtr residual_;
  Verdict verdict_ = Verdict::kCurrentlyFalse;
  size_t num_steps_ = 0;
};

/// Convenience: verdict trace of a whole path (one verdict per step).
std::vector<Verdict> MonitorPath(const acc::AccPtr& formula,
                                 const schema::Schema& schema,
                                 const schema::AccessPath& path,
                                 const schema::Instance& initial);

}  // namespace monitor
}  // namespace accltl

#endif  // ACCLTL_MONITOR_PROGRESSION_H_
