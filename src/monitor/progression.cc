#include "src/monitor/progression.h"

#include <cassert>

#include "src/logic/eval.h"

namespace accltl {
namespace monitor {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kSatisfied:
      return "satisfied";
    case Verdict::kViolated:
      return "violated";
    case Verdict::kCurrentlyTrue:
      return "currently-true";
    case Verdict::kCurrentlyFalse:
      return "currently-false";
  }
  return "?";
}

/// Residual-obligation nodes. `kDefer` wraps an original subformula
/// whose evaluation starts at the *next* position; it is the only leaf
/// that survives a step, so the residual never mentions past letters.
struct ProgressionMonitor::Prog {
  enum class Kind { kConst, kDefer, kNot, kAnd, kOr };

  Kind kind = Kind::kConst;
  bool const_value = false;
  acc::AccPtr deferred;            // kDefer
  std::vector<ProgPtr> children;   // kNot (1), kAnd, kOr

  static ProgPtr Const(bool b) {
    auto n = std::make_shared<Prog>();
    n->kind = Kind::kConst;
    n->const_value = b;
    return n;
  }

  static ProgPtr Defer(acc::AccPtr f) {
    auto n = std::make_shared<Prog>();
    n->kind = Kind::kDefer;
    n->deferred = std::move(f);
    return n;
  }

  static ProgPtr Not(ProgPtr c) {
    if (c->kind == Kind::kConst) return Const(!c->const_value);
    if (c->kind == Kind::kNot) return c->children[0];  // ¬¬φ = φ
    auto n = std::make_shared<Prog>();
    n->kind = Kind::kNot;
    n->children = {std::move(c)};
    return n;
  }

  static ProgPtr And(std::vector<ProgPtr> cs) {
    std::vector<ProgPtr> kept;
    for (ProgPtr& c : cs) {
      if (c->kind == Kind::kConst) {
        if (!c->const_value) return Const(false);
        continue;  // drop neutral true
      }
      kept.push_back(std::move(c));
    }
    if (kept.empty()) return Const(true);
    if (kept.size() == 1) return kept[0];
    auto n = std::make_shared<Prog>();
    n->kind = Kind::kAnd;
    n->children = std::move(kept);
    return n;
  }

  static ProgPtr Or(std::vector<ProgPtr> cs) {
    std::vector<ProgPtr> kept;
    for (ProgPtr& c : cs) {
      if (c->kind == Kind::kConst) {
        if (c->const_value) return Const(true);
        continue;  // drop neutral false
      }
      kept.push_back(std::move(c));
    }
    if (kept.empty()) return Const(false);
    if (kept.size() == 1) return kept[0];
    auto n = std::make_shared<Prog>();
    n->kind = Kind::kOr;
    n->children = std::move(kept);
    return n;
  }

  /// Value when the path ends here: deferred obligations are strong
  /// (X/U past the end fail), matching acc::EvalOnTransitions.
  bool EndValue() const {
    switch (kind) {
      case Kind::kConst:
        return const_value;
      case Kind::kDefer:
        return false;
      case Kind::kNot:
        return !children[0]->EndValue();
      case Kind::kAnd:
        for (const ProgPtr& c : children) {
          if (!c->EndValue()) return false;
        }
        return true;
      case Kind::kOr:
        for (const ProgPtr& c : children) {
          if (c->EndValue()) return true;
        }
        return false;
    }
    return false;
  }

  size_t Size() const {
    size_t n = 1;
    for (const ProgPtr& c : children) n += c->Size();
    return n;
  }

  std::string ToString() const {
    switch (kind) {
      case Kind::kConst:
        return const_value ? "true" : "false";
      case Kind::kDefer:
        return "<defer>";
      case Kind::kNot:
        return "!" + children[0]->ToString();
      case Kind::kAnd:
      case Kind::kOr: {
        std::string sep = kind == Kind::kAnd ? " & " : " | ";
        std::string out = "(";
        for (size_t i = 0; i < children.size(); ++i) {
          if (i > 0) out += sep;
          out += children[i]->ToString();
        }
        return out + ")";
      }
    }
    return "?";
  }
};

ProgressionMonitor::ProgressionMonitor(acc::AccPtr formula,
                                       const schema::Schema& schema,
                                       schema::Instance initial)
    : schema_(schema), current_(std::move(initial)) {
  residual_ = Prog::Defer(std::move(formula));
  RecomputeVerdict();
}

ProgressionMonitor::ProgPtr ProgressionMonitor::ProgressFormula(
    const acc::AccFormula* f, const schema::Transition& t) const {
  switch (f->kind()) {
    case acc::AccKind::kAtom:
      return Prog::Const(logic::EvalOnTransition(f->sentence(), t));
    case acc::AccKind::kNot:
      return Prog::Not(ProgressFormula(f->child().get(), t));
    case acc::AccKind::kAnd: {
      std::vector<ProgPtr> cs;
      cs.reserve(f->children().size());
      for (const acc::AccPtr& c : f->children()) {
        cs.push_back(ProgressFormula(c.get(), t));
      }
      return Prog::And(std::move(cs));
    }
    case acc::AccKind::kOr: {
      std::vector<ProgPtr> cs;
      cs.reserve(f->children().size());
      for (const acc::AccPtr& c : f->children()) {
        cs.push_back(ProgressFormula(c.get(), t));
      }
      return Prog::Or(std::move(cs));
    }
    case acc::AccKind::kNext:
      return Prog::Defer(f->child());
    case acc::AccKind::kUntil: {
      // φ U ψ = ψ ∨ (φ ∧ X(φ U ψ)), with a strong X.
      ProgPtr now = ProgressFormula(f->rhs().get(), t);
      ProgPtr keep = ProgressFormula(f->lhs().get(), t);
      // Defer the *same node* so the residual shares structure.
      ProgPtr later = Prog::Defer(
          acc::AccFormula::Until(f->lhs(), f->rhs()));
      return Prog::Or({std::move(now),
                       Prog::And({std::move(keep), std::move(later)})});
    }
  }
  return Prog::Const(false);
}

ProgressionMonitor::ProgPtr ProgressionMonitor::ProgressResidual(
    const ProgPtr& s, const schema::Transition& t) const {
  switch (s->kind) {
    case Prog::Kind::kConst:
      return s;
    case Prog::Kind::kDefer:
      return ProgressFormula(s->deferred.get(), t);
    case Prog::Kind::kNot:
      return Prog::Not(ProgressResidual(s->children[0], t));
    case Prog::Kind::kAnd: {
      std::vector<ProgPtr> cs;
      cs.reserve(s->children.size());
      for (const ProgPtr& c : s->children) {
        cs.push_back(ProgressResidual(c, t));
      }
      return Prog::And(std::move(cs));
    }
    case Prog::Kind::kOr: {
      std::vector<ProgPtr> cs;
      cs.reserve(s->children.size());
      for (const ProgPtr& c : s->children) {
        cs.push_back(ProgressResidual(c, t));
      }
      return Prog::Or(std::move(cs));
    }
  }
  return s;
}

void ProgressionMonitor::Step(const schema::Access& access,
                              const schema::Response& response) {
  schema::Transition t =
      schema::MakeTransition(schema_, current_, access, response);
  StepTransition(t);
}

void ProgressionMonitor::StepTransition(const schema::Transition& t) {
  residual_ = ProgressResidual(residual_, t);
  current_ = t.post;
  ++num_steps_;
  RecomputeVerdict();
}

bool ProgressionMonitor::TryStep(const schema::Access& access,
                                 const schema::Response& response,
                                 const engine::CancelToken* cancel) {
  if (cancel != nullptr && cancel->ShouldStop()) return false;
  schema::Transition t =
      schema::MakeTransition(schema_, current_, access, response);
  return TryStepTransition(t, cancel);
}

bool ProgressionMonitor::TryStepTransition(const schema::Transition& t,
                                           const engine::CancelToken* cancel) {
  if (cancel != nullptr && cancel->ShouldStop()) return false;
  StepTransition(t);
  return true;
}

void ProgressionMonitor::RecomputeVerdict() {
  if (residual_->kind == Prog::Kind::kConst) {
    verdict_ =
        residual_->const_value ? Verdict::kSatisfied : Verdict::kViolated;
    return;
  }
  verdict_ = residual_->EndValue() ? Verdict::kCurrentlyTrue
                                   : Verdict::kCurrentlyFalse;
}

size_t ProgressionMonitor::ResidualSize() const { return residual_->Size(); }

std::string ProgressionMonitor::ResidualToString() const {
  return residual_->ToString();
}

std::vector<Verdict> MonitorPath(const acc::AccPtr& formula,
                                 const schema::Schema& schema,
                                 const schema::AccessPath& path,
                                 const schema::Instance& initial) {
  ProgressionMonitor m(formula, schema, initial);
  std::vector<Verdict> out;
  out.reserve(path.size());
  for (const schema::AccessStep& step : path.steps()) {
    m.Step(step.access, step.response);
    out.push_back(m.verdict());
  }
  return out;
}

}  // namespace monitor
}  // namespace accltl
