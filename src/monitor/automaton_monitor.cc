#include "src/monitor/automaton_monitor.h"

#include <utility>

namespace accltl {
namespace monitor {

AutomatonMonitor::AutomatonMonitor(automata::AAutomaton automaton,
                                   const schema::Schema& schema,
                                   schema::Instance initial)
    : automaton_(std::move(automaton)),
      schema_(schema),
      current_(std::move(initial)) {
  states_ = {automaton_.initial()};
  // Backward reachability from the accepting states over the
  // transition graph.
  can_reach_accepting_.assign(
      static_cast<size_t>(automaton_.num_states()), false);
  for (int s : automaton_.accepting()) {
    can_reach_accepting_[static_cast<size_t>(s)] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const automata::ATransition& tr : automaton_.transitions()) {
      if (!can_reach_accepting_[static_cast<size_t>(tr.from)] &&
          can_reach_accepting_[static_cast<size_t>(tr.to)]) {
        can_reach_accepting_[static_cast<size_t>(tr.from)] = true;
        changed = true;
      }
    }
  }
}

void AutomatonMonitor::Step(const schema::Access& access,
                            const schema::Response& response) {
  schema::Transition t =
      schema::MakeTransition(schema_, current_, access, response);
  StepTransition(t);
}

void AutomatonMonitor::StepTransition(const schema::Transition& t) {
  std::set<int> next;
  for (const automata::ATransition& tr : automaton_.transitions()) {
    if (states_.count(tr.from) == 0) continue;
    if (next.count(tr.to) > 0) continue;  // guard eval is the costly part
    if (tr.guard.Eval(t)) next.insert(tr.to);
  }
  states_ = std::move(next);
  current_ = t.post;
  ++num_steps_;
}

bool AutomatonMonitor::CurrentlyAccepted() const {
  // The empty prefix is not an access path (paths have ≥1 access), so
  // the initial state being accepting does not count before step 1.
  if (num_steps_ == 0) return false;
  for (int s : states_) {
    if (automaton_.IsAccepting(s)) return true;
  }
  return false;
}

bool AutomatonMonitor::AcceptancePossible() const {
  for (int s : states_) {
    if (can_reach_accepting_[static_cast<size_t>(s)]) return true;
  }
  return false;
}

Verdict AutomatonMonitor::verdict() const {
  if (CurrentlyAccepted()) return Verdict::kCurrentlyTrue;
  if (!AcceptancePossible()) return Verdict::kViolated;
  return Verdict::kCurrentlyFalse;
}

}  // namespace monitor
}  // namespace accltl
