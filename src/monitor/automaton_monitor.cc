#include "src/monitor/automaton_monitor.h"

#include <utility>

namespace accltl {
namespace monitor {

AutomatonMonitor::AutomatonMonitor(automata::AAutomaton automaton,
                                   const schema::Schema& schema,
                                   schema::Instance initial)
    : automaton_(std::move(automaton)),
      schema_(schema),
      current_(std::move(initial)) {
  states_ = {automaton_.initial()};
  // Backward reachability from the accepting states over the
  // transition graph.
  can_reach_accepting_.assign(
      static_cast<size_t>(automaton_.num_states()), false);
  for (int s : automaton_.accepting()) {
    can_reach_accepting_[static_cast<size_t>(s)] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const automata::ATransition& tr : automaton_.transitions()) {
      if (!can_reach_accepting_[static_cast<size_t>(tr.from)] &&
          can_reach_accepting_[static_cast<size_t>(tr.to)]) {
        can_reach_accepting_[static_cast<size_t>(tr.from)] = true;
        changed = true;
      }
    }
  }
}

void AutomatonMonitor::Step(const schema::Access& access,
                            const schema::Response& response) {
  schema::Transition t =
      schema::MakeTransition(schema_, current_, access, response);
  StepTransition(t);
}

void AutomatonMonitor::StepTransition(const schema::Transition& t) {
  TryStepTransition(t, nullptr);
}

bool AutomatonMonitor::TryStep(const schema::Access& access,
                               const schema::Response& response,
                               const engine::CancelToken* cancel) {
  if (cancel != nullptr && cancel->ShouldStop()) return false;
  schema::Transition t =
      schema::MakeTransition(schema_, current_, access, response);
  return TryStepTransition(t, cancel);
}

bool AutomatonMonitor::TryStepTransition(const schema::Transition& t,
                                         const engine::CancelToken* cancel) {
  if (cancel != nullptr && cancel->ShouldStop()) return false;
  // The COW store shares unchanged relations across steps, but the
  // cache pins every set it has indexed; over a long session drop it
  // wholesale once it holds too many dead generations. The memo's raw
  // pointers must go first.
  if (index_cache_.num_indexed_sets() > kMaxIndexedSets) {
    index_view_.Reset();
    index_cache_.Clear();
  }
  logic::IndexedTransitionView view(t, &index_view_);
  // Compute the successor state set off to the side and commit only
  // once the whole step survived cancellation: a fired token must
  // leave the monitor exactly as it was.
  std::set<int> next;
  for (const automata::ATransition& tr : automaton_.transitions()) {
    if (cancel != nullptr && cancel->ShouldStop()) return false;
    if (states_.count(tr.from) == 0) continue;
    if (next.count(tr.to) > 0) continue;  // guard eval is the costly part
    if (tr.guard.Eval(view)) next.insert(tr.to);
  }
  states_ = std::move(next);
  current_ = t.post;
  ++num_steps_;
  return true;
}

bool AutomatonMonitor::CurrentlyAccepted() const {
  // The empty prefix is not an access path (paths have ≥1 access), so
  // the initial state being accepting does not count before step 1.
  if (num_steps_ == 0) return false;
  for (int s : states_) {
    if (automaton_.IsAccepting(s)) return true;
  }
  return false;
}

bool AutomatonMonitor::AcceptancePossible() const {
  for (int s : states_) {
    if (can_reach_accepting_[static_cast<size_t>(s)]) return true;
  }
  return false;
}

Verdict AutomatonMonitor::verdict() const {
  if (CurrentlyAccepted()) return Verdict::kCurrentlyTrue;
  if (!AcceptancePossible()) return Verdict::kViolated;
  return Verdict::kCurrentlyFalse;
}

}  // namespace monitor
}  // namespace accltl
