#ifndef ACCLTL_MONITOR_AUTOMATON_MONITOR_H_
#define ACCLTL_MONITOR_AUTOMATON_MONITOR_H_

#include <set>
#include <vector>

#include "src/automata/a_automaton.h"
#include "src/engine/cancel.h"
#include "src/monitor/progression.h"
#include "src/schema/access.h"
#include "src/schema/lts.h"
#include "src/store/match_index.h"

namespace accltl {
namespace monitor {

/// Online monitor that runs an A-automaton (Def. 4.3) as an NFA over
/// the access stream: the monitor keeps the set of control states
/// reachable over the consumed prefix and evaluates guards on each
/// concrete transition structure M(t).
///
/// Verdicts:
///  - kCurrentlyTrue:  some reachable state is accepting (the prefix is
///    in L(A)); an extension may still leave the language.
///  - kCurrentlyFalse: no reachable state is accepting but an accepting
///    state is graph-reachable, so some extension may be accepted.
///  - kViolated: the state set is empty, or no accepting state is
///    graph-reachable from it — no extension is in L(A). Irrevocable.
///  - kSatisfied is never reported: deciding that *every* extension
///    stays in L(A) is NFA universality (PSPACE-hard) and is not a
///    monitoring-time operation. Use ProgressionMonitor when the
///    distinction matters.
class AutomatonMonitor {
 public:
  AutomatonMonitor(automata::AAutomaton automaton,
                   const schema::Schema& schema, schema::Instance initial);

  /// Consumes one access/response step.
  void Step(const schema::Access& access, const schema::Response& response);

  /// Consumes a pre-materialized transition (pre must match the current
  /// configuration).
  void StepTransition(const schema::Transition& t);

  /// Cancellable variants: `cancel` is polled between guard
  /// evaluations. A step is all-or-nothing — if the token fires the
  /// method returns false and the monitor is untouched (state set,
  /// configuration and step count unchanged), so the caller may retry
  /// the same step; an unfired token never changes any result (the
  /// PR-4 cancellation contract). nullptr means uncancellable.
  bool TryStep(const schema::Access& access, const schema::Response& response,
               const engine::CancelToken* cancel);
  bool TryStepTransition(const schema::Transition& t,
                         const engine::CancelToken* cancel);

  Verdict verdict() const;

  /// The prefix consumed so far is in L(A).
  bool CurrentlyAccepted() const;

  /// Some extension of the prefix can be in L(A) (graph
  /// over-approximation: guard satisfiability is not consulted).
  bool AcceptancePossible() const;

  const std::set<int>& states() const { return states_; }
  size_t num_steps() const { return num_steps_; }
  const schema::Instance& configuration() const { return current_; }

 private:
  automata::AAutomaton automaton_;
  const schema::Schema& schema_;
  schema::Instance current_;
  std::set<int> states_;
  /// can_reach_accepting_[s]: an accepting state is reachable from s in
  /// the transition graph (guards ignored). Precomputed once.
  std::vector<bool> can_reach_accepting_;
  size_t num_steps_ = 0;
  /// Per-monitor match indexes for guard evaluation: COW configurations
  /// share unchanged FactSets across steps, so an index built at step i
  /// serves every later step touching the same relation — per-step
  /// guard cost follows the matching tuples, not the configuration
  /// size. Bounded: once the cache pins more than kMaxIndexedSets
  /// distinct sets it is dropped wholesale and rebuilt on demand.
  static constexpr size_t kMaxIndexedSets = 1024;
  store::MatchIndexCache index_cache_;
  store::MatchIndexCache::LocalView index_view_{&index_cache_};
};

}  // namespace monitor
}  // namespace accltl

#endif  // ACCLTL_MONITOR_AUTOMATON_MONITOR_H_
