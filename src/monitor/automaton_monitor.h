#ifndef ACCLTL_MONITOR_AUTOMATON_MONITOR_H_
#define ACCLTL_MONITOR_AUTOMATON_MONITOR_H_

#include <set>
#include <vector>

#include "src/automata/a_automaton.h"
#include "src/monitor/progression.h"
#include "src/schema/access.h"
#include "src/schema/lts.h"

namespace accltl {
namespace monitor {

/// Online monitor that runs an A-automaton (Def. 4.3) as an NFA over
/// the access stream: the monitor keeps the set of control states
/// reachable over the consumed prefix and evaluates guards on each
/// concrete transition structure M(t).
///
/// Verdicts:
///  - kCurrentlyTrue:  some reachable state is accepting (the prefix is
///    in L(A)); an extension may still leave the language.
///  - kCurrentlyFalse: no reachable state is accepting but an accepting
///    state is graph-reachable, so some extension may be accepted.
///  - kViolated: the state set is empty, or no accepting state is
///    graph-reachable from it — no extension is in L(A). Irrevocable.
///  - kSatisfied is never reported: deciding that *every* extension
///    stays in L(A) is NFA universality (PSPACE-hard) and is not a
///    monitoring-time operation. Use ProgressionMonitor when the
///    distinction matters.
class AutomatonMonitor {
 public:
  AutomatonMonitor(automata::AAutomaton automaton,
                   const schema::Schema& schema, schema::Instance initial);

  /// Consumes one access/response step.
  void Step(const schema::Access& access, const schema::Response& response);

  /// Consumes a pre-materialized transition (pre must match the current
  /// configuration).
  void StepTransition(const schema::Transition& t);

  Verdict verdict() const;

  /// The prefix consumed so far is in L(A).
  bool CurrentlyAccepted() const;

  /// Some extension of the prefix can be in L(A) (graph
  /// over-approximation: guard satisfiability is not consulted).
  bool AcceptancePossible() const;

  const std::set<int>& states() const { return states_; }
  size_t num_steps() const { return num_steps_; }
  const schema::Instance& configuration() const { return current_; }

 private:
  automata::AAutomaton automaton_;
  const schema::Schema& schema_;
  schema::Instance current_;
  std::set<int> states_;
  /// can_reach_accepting_[s]: an accepting state is reachable from s in
  /// the transition graph (guards ignored). Precomputed once.
  std::vector<bool> can_reach_accepting_;
  size_t num_steps_ = 0;
};

}  // namespace monitor
}  // namespace accltl

#endif  // ACCLTL_MONITOR_AUTOMATON_MONITOR_H_
