#ifndef ACCLTL_ANALYSIS_ACCESSIBLE_H_
#define ACCLTL_ANALYSIS_ACCESSIBLE_H_

#include "src/datalog/program.h"
#include "src/schema/instance.h"
#include "src/schema/schema.h"

namespace accltl {
namespace analysis {

/// The accessible part of an instance (§1, [15]): the tuples obtainable
/// by iterating all grounded exact accesses to a fixpoint, starting
/// from the values of `initial` (plus `seed_values`). This is the
/// brute-force strategy of the paper's introduction.
schema::Instance AccessiblePart(const schema::Schema& schema,
                                const schema::Instance& universe,
                                const schema::Instance& initial,
                                const std::vector<Value>& seed_values = {});

/// [15]: builds, in linear time, a Datalog program computing the same
/// accessible part: predicates accval (known values), acc_R (accessible
/// tuples of R), with one rule per access method. Evaluating the
/// program on `universe` (encoded as EDB relations named after the
/// schema) reproduces AccessiblePart.
datalog::Program AccessibleDatalogProgram(const schema::Schema& schema);

/// Encodes an instance as the EDB of AccessibleDatalogProgram (relation
/// names, plus seed values as "seedval" facts).
datalog::DlDatabase EncodeForDatalog(const schema::Schema& schema,
                                     const schema::Instance& universe,
                                     const std::vector<Value>& seed_values);

/// Decodes the acc_R relations of an evaluation result back into an
/// instance.
schema::Instance DecodeAccessible(const schema::Schema& schema,
                                  const datalog::DlDatabase& result);

}  // namespace analysis
}  // namespace accltl

#endif  // ACCLTL_ANALYSIS_ACCESSIBLE_H_
