#ifndef ACCLTL_ANALYSIS_ZERO_SOLVER_H_
#define ACCLTL_ANALYSIS_ZERO_SOLVER_H_

#include <cstddef>

#include "src/accltl/formula.h"
#include "src/common/status.h"
#include "src/schema/access.h"

namespace accltl {
namespace acc {
class AccFormula;
}

namespace analysis {

struct ZeroSolverOptions {
  /// Restrict to grounded access paths. The paper leaves tight bounds
  /// for the grounded 0-ary case open (§6); this solver supports it as
  /// a bounded-complete procedure over the witness pool.
  bool grounded = false;
  /// Require idempotent witnesses (repeated access => same response).
  bool require_idempotent = false;
  /// Search budget.
  size_t max_nodes = 500000;
  /// Cap on the number of facts injected per access (response size).
  size_t max_facts_per_step = 6;
  /// Hard cap on path length (0 = derived from the state space).
  size_t max_path_length = 64;
  /// Cap on the number of response subsets enumerated per (node,
  /// method). Subsets of up to `max_facts_per_step` facts are
  /// enumerated over *all* candidate pool facts (grouped by shared
  /// binding); when this cap truncates the enumeration the result is
  /// flagged `exhausted_budget` — never a silent "unsatisfiable".
  size_t max_subsets_per_access = 4096;
  /// Worker count, threaded through from analysis::DecideOptions so
  /// one knob drives every engine. The solver runs on the shared
  /// parallel exploration engine (src/engine/) with the same
  /// schedule-independence guarantee as the automata search: verdict,
  /// witness and exhausted_budget are identical at every worker
  /// count, provided `max_nodes` is not the binding constraint (the
  /// serial DFS and the parallel level sweep spend the same budget in
  /// different orders; see DESIGN.md §3).
  size_t num_threads = 1;
};

struct ZeroSolverResult {
  bool satisfiable = false;
  schema::AccessPath witness;
  size_t nodes_explored = 0;
  bool exhausted_budget = false;
};

/// Decision procedure for AccLTL(FO∃+(,≠)0−Acc) satisfiability
/// (Thms 4.12 / 4.14 / 5.1) from the empty initial instance.
///
/// Realizes the proof constructively: Lemma 4.13 bounds witnesses by a
/// pool of *canonical witnesses* — the frozen canonical databases of the
/// UCQ disjuncts of the formula's positive sentences, with fresh values
/// per witness. The search schedules pool facts over accesses (one
/// method per step, response ⊆ pool facts of its relation), evaluates
/// every atomic sentence concretely on each transition, and drives the
/// propositional skeleton through the finite-word LTL tableau. States
/// (injected-facts set × tableau-state set) are memoized, so the search
/// is a complete decision procedure over the pool.
///
/// Completeness: the disjoint-block argument (see DESIGN.md) shows the
/// fresh-value pool is complete for ≠-free formulas; formulas with ≠
/// and grounded mode are complete up to the pool (value fusion across
/// witnesses is not enumerated).
///
/// Atoms may use 0-ary IsBind propositions and IsBind atoms whose terms
/// are all constants; variable binding terms require the AccLTL+
/// engines (automata/) and are rejected with kUnsupported.
Result<ZeroSolverResult> CheckZeroArySatisfiable(
    const acc::AccPtr& formula, const schema::Schema& schema,
    const ZeroSolverOptions& options = {});

}  // namespace analysis
}  // namespace accltl

#endif  // ACCLTL_ANALYSIS_ZERO_SOLVER_H_
