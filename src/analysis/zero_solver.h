#ifndef ACCLTL_ANALYSIS_ZERO_SOLVER_H_
#define ACCLTL_ANALYSIS_ZERO_SOLVER_H_

#include <cstddef>
#include <memory>

#include "src/accltl/formula.h"
#include "src/common/status.h"
#include "src/engine/cancel.h"
#include "src/schema/access.h"

namespace accltl {
namespace acc {
class AccFormula;
}

namespace analysis {

struct ZeroSolverOptions {
  /// Restrict to grounded access paths. The paper leaves tight bounds
  /// for the grounded 0-ary case open (§6); this solver supports it as
  /// a bounded-complete procedure over the witness pool.
  bool grounded = false;
  /// Require idempotent witnesses (repeated access => same response).
  bool require_idempotent = false;
  /// Search budget.
  size_t max_nodes = 500000;
  /// Cap on the number of facts injected per access (response size).
  size_t max_facts_per_step = 6;
  /// Hard cap on path length (0 = derived from the state space).
  size_t max_path_length = 64;
  /// Cap on the number of response subsets enumerated per (node,
  /// method). Subsets of up to `max_facts_per_step` facts are
  /// enumerated over *all* candidate pool facts (grouped by shared
  /// binding); when this cap truncates the enumeration the result is
  /// flagged `exhausted_budget` — never a silent "unsatisfiable".
  size_t max_subsets_per_access = 4096;
};

struct ZeroSolverResult {
  bool satisfiable = false;
  schema::AccessPath witness;
  size_t nodes_explored = 0;
  bool exhausted_budget = false;
  /// True when `exec.cancel` fired and stopped the search;
  /// `satisfiable == false` then means "unknown", not "no". A witness
  /// found before the cut is still returned (it is sound).
  bool cancelled = false;
  /// Logical bytes held live by the visited set at the end of the
  /// search (plus the treedb arena under VisitedMode::kCompact).
  /// Deterministic whenever the search result is.
  size_t visited_bytes = 0;
  /// Interned tree nodes (kCompact only; 0 under kExact).
  size_t treedb_nodes = 0;
};

/// The prepared, options-independent state of the zero-ary engine:
/// the Sch0−Acc abstraction, the Lemma 4.13 canonical-witness pool,
/// and the finite-word LTL tableau of the propositional skeleton —
/// everything that used to be rebuilt per call. Immutable once built;
/// share one instance across any number of concurrent checks (with
/// any grounded/idempotent/budget variation — those are search-time
/// options). Opaque: defined in zero_solver.cc.
class ZeroPlan;

/// Builds the prepared state. Rejects formulas outside the
/// (constant-extended) 0-ary fragment with kUnsupported, oversized
/// witness pools and tableaux with kResourceExhausted — the same
/// errors the one-shot entry point reported from its setup phase.
Result<std::shared_ptr<const ZeroPlan>> PrepareZeroAry(
    const acc::AccPtr& formula, const schema::Schema& schema);

/// Runs the search against a prepared plan. `exec` is the single
/// execution-context source (engine/cancel.h): worker count and
/// cancellation. The solver runs on the shared parallel exploration
/// engine (src/engine/) with the same schedule-independence guarantee
/// as the automata search: verdict, witness and exhausted_budget are
/// identical at every worker count, provided `max_nodes` is not the
/// binding constraint (the serial DFS and the parallel level sweep
/// spend the same budget in different orders; see DESIGN.md §3), and
/// a cancel token that never fires never changes any result.
Result<ZeroSolverResult> CheckZeroAryPrepared(
    const ZeroPlan& plan, const schema::Schema& schema,
    const ZeroSolverOptions& options = {},
    const engine::ExecOptions& exec = {});

/// Decision procedure for AccLTL(FO∃+(,≠)0−Acc) satisfiability
/// (Thms 4.12 / 4.14 / 5.1) from the empty initial instance.
///
/// Realizes the proof constructively: Lemma 4.13 bounds witnesses by a
/// pool of *canonical witnesses* — the frozen canonical databases of the
/// UCQ disjuncts of the formula's positive sentences, with fresh values
/// per witness. The search schedules pool facts over accesses (one
/// method per step, response ⊆ pool facts of its relation), evaluates
/// every atomic sentence concretely on each transition, and drives the
/// propositional skeleton through the finite-word LTL tableau. States
/// (injected-facts set × tableau-state set) are memoized, so the search
/// is a complete decision procedure over the pool.
///
/// Completeness: the disjoint-block argument (see DESIGN.md) shows the
/// fresh-value pool is complete for ≠-free formulas; formulas with ≠
/// and grounded mode are complete up to the pool (value fusion across
/// witnesses is not enumerated).
///
/// Atoms may use 0-ary IsBind propositions and IsBind atoms whose terms
/// are all constants; variable binding terms require the AccLTL+
/// engines (automata/) and are rejected with kUnsupported.
///
/// One-shot adapter over PrepareZeroAry + CheckZeroAryPrepared: the
/// plan is built, used once and discarded. Long-lived callers (the
/// service layer) prepare once and submit many.
Result<ZeroSolverResult> CheckZeroArySatisfiable(
    const acc::AccPtr& formula, const schema::Schema& schema,
    const ZeroSolverOptions& options = {},
    const engine::ExecOptions& exec = {});

}  // namespace analysis
}  // namespace accltl

#endif  // ACCLTL_ANALYSIS_ZERO_SOLVER_H_
