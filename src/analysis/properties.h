#ifndef ACCLTL_ANALYSIS_PROPERTIES_H_
#define ACCLTL_ANALYSIS_PROPERTIES_H_

#include <vector>

#include "src/accltl/formula.h"
#include "src/automata/a_automaton.h"
#include "src/schema/access.h"
#include "src/schema/dependencies.h"

namespace accltl {
namespace analysis {

/// Example 2.2: "Q1 contained in Q2 under (grounded) access patterns"
/// as an AccLTL validity: G ¬(Q1pre ∧ ¬Q2pre). This returns the
/// *negation* — the satisfiability target F (Q1post ∧ ¬Q2post): a path
/// whose configuration reveals Q1 but not Q2 witnesses non-containment.
/// Q1, Q2 are boolean queries over the plain schema vocabulary.
acc::AccPtr NonContainmentFormula(const logic::PosFormulaPtr& q1,
                                  const logic::PosFormulaPtr& q2);

/// Example 2.3: long-term relevance of the boolean access
/// (method, binding) to query Q from the empty instance:
/// F (¬Qpre ∧ IsBind_AcM(b̄) ∧ Qpost).
acc::AccPtr LongTermRelevanceFormula(const schema::Schema& schema,
                                     schema::AccessMethodId method,
                                     const Tuple& binding,
                                     const logic::PosFormulaPtr& q);

/// §1/Example 2.3: data-integrity restriction "positions are disjoint":
/// the G ¬(violation) constraint for one disjointness constraint.
acc::AccPtr DisjointnessRestriction(const schema::Schema& schema,
                                    const schema::DisjointnessConstraint& c);

/// Example 2.4: the functional-dependency path restriction
/// ¬F ∃ȳȳ′ (Rpre(ȳ) ∧ Rpre(ȳ′) ∧ ⋀lhs y=y′ ∧ y_rhs ≠ y′_rhs).
/// Uses inequalities (the FO∃+,≠ extension of §5.1).
acc::AccPtr FdRestriction(const schema::Schema& schema,
                          const schema::FunctionalDependency& fd);

/// §1: access-order restriction "before any access with `later`, an
/// access with `earlier` must have occurred", kept binding-positive via
/// the §6 rewriting of negated 0-ary IsBind atoms:
/// (¬later U earlier) ∨ G ¬later.
acc::AccPtr AccessOrderRestriction(const schema::Schema& schema,
                                   schema::AccessMethodId earlier,
                                   schema::AccessMethodId later);

/// §4: the groundedness formula of AccLTL+ — every binding value occurs
/// in some relation before the access (expressible because IsBind
/// occurs positively).
acc::AccPtr GroundednessFormula(const schema::Schema& schema);

/// Example 2.3's dataflow restriction: names entered into `method` must
/// occur at position `source_position` of `source` beforehand.
acc::AccPtr DataflowRestriction(const schema::Schema& schema,
                                schema::AccessMethodId method,
                                schema::RelationId source,
                                schema::Position source_position);

/// Prop. 4.4: the A-automaton whose language is empty iff Q1 ⊆ Q2 under
/// access patterns with the given disjointness constraints.
automata::AAutomaton NonContainmentAutomaton(
    const schema::Schema& schema, const logic::PosFormulaPtr& q1,
    const logic::PosFormulaPtr& q2,
    const std::vector<schema::DisjointnessConstraint>& disjointness);

/// Prop. 4.4 (second part): the A-automaton for long-term relevance of
/// a boolean access under disjointness constraints.
automata::AAutomaton RelevanceAutomaton(
    const schema::Schema& schema, schema::AccessMethodId method,
    const Tuple& binding, const logic::PosFormulaPtr& q,
    const std::vector<schema::DisjointnessConstraint>& disjointness);

/// The violation query of a disjointness constraint (a positive
/// sentence over the *_pre vocabulary, per the paper's example in §2).
logic::PosFormulaPtr DisjointnessViolation(
    const schema::Schema& schema, const schema::DisjointnessConstraint& c,
    logic::PredSpace space);

}  // namespace analysis
}  // namespace accltl

#endif  // ACCLTL_ANALYSIS_PROPERTIES_H_
