#include "src/analysis/decide.h"

#include "src/analysis/minimize.h"
#include "src/analysis/properties.h"
#include "src/automata/compile.h"

namespace accltl {
namespace analysis {

const char* AnswerName(Answer a) {
  switch (a) {
    case Answer::kYes:
      return "yes";
    case Answer::kNo:
      return "no";
    case Answer::kUnknown:
      return "unknown";
  }
  return "?";
}

Result<Decision> DecideSatisfiability(const acc::AccPtr& formula,
                                      const schema::Schema& schema,
                                      const DecideOptions& options) {
  Decision d;
  acc::FragmentInfo info = acc::Analyze(formula);
  d.fragment = info.Classify();
  d.uses_inequality = info.uses_inequality;

  // Engine 1: the zero-ary solver (complete when it applies — it
  // rejects variable-term IsBind atoms itself).
  {
    ZeroSolverOptions zopts = options.zero;
    zopts.grounded = options.grounded;
    if (options.num_threads > 1) zopts.num_threads = options.num_threads;
    Result<ZeroSolverResult> r =
        CheckZeroArySatisfiable(formula, schema, zopts);
    if (r.ok()) {
      d.engine = "zero-ary";
      if (r.value().satisfiable) {
        d.satisfiable = Answer::kYes;
        d.has_witness = true;
        d.witness = r.value().witness;
        if (options.shrink_witness) {
          d.witness = ShrinkWitness(formula, schema,
                                    schema::Instance(schema), d.witness,
                                    options.grounded);
        }
      } else {
        d.satisfiable =
            r.value().exhausted_budget ? Answer::kUnknown : Answer::kNo;
      }
      return d;
    }
    if (r.status().code() != StatusCode::kUnsupported) return r.status();
  }

  // Engine 2: AccLTL+ — compile to an A-automaton, bounded witness
  // search, optional Datalog certification of emptiness.
  Result<automata::AAutomaton> compiled =
      automata::CompileToAutomaton(formula, schema);
  if (compiled.ok()) {
    automata::WitnessSearchOptions wopts = options.bounded;
    wopts.grounded = options.grounded;
    if (options.num_threads > 1) wopts.num_threads = options.num_threads;
    automata::WitnessSearchResult r = automata::BoundedWitnessSearch(
        compiled.value(), schema, schema::Instance(schema), wopts);
    d.engine = "automata-bounded";
    if (r.found) {
      d.satisfiable = Answer::kYes;
      d.has_witness = true;
      d.witness = r.witness;
      if (options.shrink_witness) {
        d.witness = ShrinkWitness(formula, schema, schema::Instance(schema),
                                  d.witness, options.grounded);
      }
      return d;
    }
    if (options.use_datalog_pipeline && !options.grounded) {
      Result<bool> empty = automata::EmptinessViaDatalog(
          compiled.value(), schema, options.decompose);
      if (empty.ok()) {
        d.engine = "automata-datalog";
        d.satisfiable = empty.value() ? Answer::kNo : Answer::kYes;
        return d;
      }
      // Fall through to "unknown" when the pipeline hits a cap.
      if (empty.status().code() != StatusCode::kResourceExhausted &&
          empty.status().code() != StatusCode::kUnsupported) {
        return empty.status();
      }
    }
    d.satisfiable = Answer::kUnknown;
    return d;
  }
  if (compiled.status().code() != StatusCode::kUnsupported) {
    return compiled.status();
  }

  // Engine 3: undecidable fragments (Thm 3.1 / Thm 5.2): bounded
  // semi-decision is not implemented for non-binding-positive formulas
  // (their negated IsBind atoms fall outside Def. 4.3 guards).
  d.engine = "none";
  d.satisfiable = Answer::kUnknown;
  return d;
}

Result<Decision> DecideValidity(const acc::AccPtr& formula,
                                const schema::Schema& schema,
                                const DecideOptions& options) {
  Result<Decision> neg = DecideSatisfiability(
      acc::AccFormula::Not(formula), schema, options);
  if (!neg.ok()) return neg.status();
  Decision d = neg.value();
  d.fragment = acc::Analyze(formula).Classify();
  switch (neg.value().satisfiable) {
    case Answer::kYes:
      d.satisfiable = Answer::kNo;  // counterexample path in d.witness
      break;
    case Answer::kNo:
      d.satisfiable = Answer::kYes;
      d.has_witness = false;
      break;
    case Answer::kUnknown:
      d.satisfiable = Answer::kUnknown;
      break;
  }
  return d;
}

Result<Decision> ContainedUnderAccessPatterns(
    const logic::PosFormulaPtr& q1, const logic::PosFormulaPtr& q2,
    const schema::Schema& schema,
    const std::vector<schema::DisjointnessConstraint>& disjointness,
    const DecideOptions& options) {
  // Build the Prop. 4.4 automaton directly and search for a
  // non-containment witness over grounded paths.
  automata::AAutomaton a =
      NonContainmentAutomaton(schema, q1, q2, disjointness);
  automata::WitnessSearchOptions wopts = options.bounded;
  wopts.grounded = options.grounded;
  if (options.num_threads > 1) wopts.num_threads = options.num_threads;
  automata::WitnessSearchResult r = automata::BoundedWitnessSearch(
      a, schema, schema::Instance(schema), wopts);
  Decision d;
  d.engine = "automata-bounded";
  d.fragment = acc::Fragment::kBindingPositive;
  if (r.found) {
    d.satisfiable = Answer::kNo;  // counterexample path: NOT contained
    d.has_witness = true;
    d.witness = r.witness;
    if (options.shrink_witness) {
      d.witness = ShrinkAutomatonWitness(a, schema, schema::Instance(schema),
                                         d.witness, options.grounded);
    }
    return d;
  }
  if (options.use_datalog_pipeline && !options.grounded) {
    Result<bool> empty =
        automata::EmptinessViaDatalog(a, schema, options.decompose);
    if (empty.ok()) {
      d.engine = "automata-datalog";
      d.satisfiable = empty.value() ? Answer::kYes : Answer::kNo;
      return d;
    }
  }
  d.satisfiable = r.exhausted_budget ? Answer::kUnknown : Answer::kYes;
  return d;
}

Result<Decision> IsLongTermRelevant(
    const schema::Schema& schema, schema::AccessMethodId method,
    const Tuple& binding, const logic::PosFormulaPtr& q,
    const std::vector<schema::DisjointnessConstraint>& disjointness,
    const DecideOptions& options) {
  ACCLTL_RETURN_IF_ERROR(schema.ValidateBinding(method, binding));
  automata::AAutomaton a =
      RelevanceAutomaton(schema, method, binding, q, disjointness);
  automata::WitnessSearchOptions wopts = options.bounded;
  wopts.grounded = options.grounded;
  if (options.num_threads > 1) wopts.num_threads = options.num_threads;
  automata::WitnessSearchResult r = automata::BoundedWitnessSearch(
      a, schema, schema::Instance(schema), wopts);
  Decision d;
  d.engine = "automata-bounded";
  d.fragment = acc::Fragment::kBindingPositive;
  if (r.found) {
    d.satisfiable = Answer::kYes;
    d.has_witness = true;
    d.witness = r.witness;
    if (options.shrink_witness) {
      d.witness = ShrinkAutomatonWitness(a, schema, schema::Instance(schema),
                                         d.witness, options.grounded);
    }
    return d;
  }
  d.satisfiable = r.exhausted_budget ? Answer::kUnknown : Answer::kNo;
  return d;
}

}  // namespace analysis
}  // namespace accltl
