#include "src/analysis/decide.h"

#include <utility>

#include "src/analysis/minimize.h"
#include "src/analysis/properties.h"
#include "src/automata/compile.h"

namespace accltl {
namespace analysis {

const char* AnswerName(Answer a) {
  switch (a) {
    case Answer::kYes:
      return "yes";
    case Answer::kNo:
      return "no";
    case Answer::kUnknown:
      return "unknown";
  }
  return "?";
}

Result<PreparedFormula> PrepareSatisfiability(const acc::AccPtr& formula,
                                              const schema::Schema& schema) {
  PreparedFormula prepared;
  prepared.formula = formula;
  acc::FragmentInfo info = acc::Analyze(formula);
  prepared.fragment = info.Classify();
  prepared.uses_inequality = info.uses_inequality;

  // Table 1 routing, resolved once. The zero solver rejects formulas
  // outside its fragment itself; only a kUnsupported rejection falls
  // through to the automata compilation (any other setup error is
  // latched and surfaced by DecidePrepared, exactly as the one-shot
  // path surfaced it).
  Result<std::shared_ptr<const ZeroPlan>> zero =
      PrepareZeroAry(formula, schema);
  if (zero.ok()) {
    prepared.zero_plan = zero.value();
    return prepared;
  }
  prepared.zero_status = zero.status();
  if (zero.status().code() != StatusCode::kUnsupported) return prepared;

  Result<automata::AAutomaton> compiled =
      automata::CompileToAutomaton(formula, schema);
  if (compiled.ok()) {
    prepared.automaton = std::make_shared<const automata::AAutomaton>(
        std::move(compiled.value()));
  } else {
    prepared.compile_status = compiled.status();
  }
  return prepared;
}

Result<Decision> DecidePrepared(const PreparedFormula& prepared,
                                const schema::Schema& schema,
                                const DecideOptions& options) {
  Decision d;
  d.fragment = prepared.fragment;
  d.uses_inequality = prepared.uses_inequality;

  // Engine 1: the zero-ary solver (complete when it applies).
  if (prepared.zero_plan != nullptr) {
    ZeroSolverOptions zopts = options.zero;
    zopts.grounded = options.grounded;
    Result<ZeroSolverResult> r = CheckZeroAryPrepared(
        *prepared.zero_plan, schema, zopts, options.exec);
    if (!r.ok()) return r.status();
    d.engine = "zero-ary";
    d.nodes_explored = r.value().nodes_explored;
    d.exhausted_budget = r.value().exhausted_budget;
    d.cancelled = r.value().cancelled;
    d.visited_bytes = r.value().visited_bytes;
    d.treedb_nodes = r.value().treedb_nodes;
    if (r.value().satisfiable) {
      d.satisfiable = Answer::kYes;
      d.has_witness = true;
      d.witness = r.value().witness;
      if (options.shrink_witness) {
        d.witness = ShrinkWitness(prepared.formula, schema,
                                  schema::Instance(schema), d.witness,
                                  options.grounded);
      }
    } else {
      // A cancelled or budget-cut sweep is "unknown", never a
      // definitive "no".
      d.satisfiable =
          r.value().exhausted_budget || r.value().cancelled
              ? Answer::kUnknown
              : Answer::kNo;
    }
    return d;
  }
  if (prepared.zero_status.code() != StatusCode::kUnsupported) {
    return prepared.zero_status;
  }

  // Engine 2: AccLTL+ — the precompiled A-automaton, bounded witness
  // search, optional Datalog certification of emptiness.
  if (prepared.automaton != nullptr) {
    automata::WitnessSearchOptions wopts = options.bounded;
    wopts.grounded = options.grounded;
    automata::WitnessSearchResult r = automata::BoundedWitnessSearch(
        *prepared.automaton, schema, schema::Instance(schema), wopts,
        options.exec);
    d.engine = "automata-bounded";
    d.nodes_explored = r.nodes_explored;
    d.exhausted_budget = r.exhausted_budget;
    d.cancelled = r.cancelled;
    d.visited_bytes = r.visited_bytes;
    d.treedb_nodes = r.treedb_nodes;
    if (r.found) {
      d.satisfiable = Answer::kYes;
      d.has_witness = true;
      d.witness = r.witness;
      if (options.shrink_witness) {
        d.witness = ShrinkWitness(prepared.formula, schema,
                                  schema::Instance(schema), d.witness,
                                  options.grounded);
      }
      return d;
    }
    // The Datalog pipeline is not cancellable: once started it runs to
    // completion, so a deadline can only be honored at this boundary.
    // Poll the token here (not just the search's verdict) so a token
    // that fired after the search returned still skips the pipeline.
    if (options.use_datalog_pipeline && !options.grounded && !r.cancelled &&
        (options.exec.cancel == nullptr ||
         !options.exec.cancel->ShouldStop())) {
      Result<bool> empty = automata::EmptinessViaDatalog(
          *prepared.automaton, schema, options.decompose);
      if (empty.ok()) {
        d.engine = "automata-datalog";
        d.satisfiable = empty.value() ? Answer::kNo : Answer::kYes;
        return d;
      }
      // Fall through to "unknown" when the pipeline hits a cap.
      if (empty.status().code() != StatusCode::kResourceExhausted &&
          empty.status().code() != StatusCode::kUnsupported) {
        return empty.status();
      }
    }
    d.satisfiable = Answer::kUnknown;
    return d;
  }
  if (prepared.compile_status.code() != StatusCode::kUnsupported) {
    return prepared.compile_status;
  }

  // Engine 3: undecidable fragments (Thm 3.1 / Thm 5.2): bounded
  // semi-decision is not implemented for non-binding-positive formulas
  // (their negated IsBind atoms fall outside Def. 4.3 guards).
  d.engine = "none";
  d.satisfiable = Answer::kUnknown;
  return d;
}

Result<Decision> DecideSatisfiability(const acc::AccPtr& formula,
                                      const schema::Schema& schema,
                                      const DecideOptions& options) {
  Result<PreparedFormula> prepared = PrepareSatisfiability(formula, schema);
  if (!prepared.ok()) return prepared.status();
  return DecidePrepared(prepared.value(), schema, options);
}

Result<Decision> DecideValidity(const acc::AccPtr& formula,
                                const schema::Schema& schema,
                                const DecideOptions& options) {
  Result<Decision> neg = DecideSatisfiability(
      acc::AccFormula::Not(formula), schema, options);
  if (!neg.ok()) return neg.status();
  Decision d = neg.value();
  d.fragment = acc::Analyze(formula).Classify();
  switch (neg.value().satisfiable) {
    case Answer::kYes:
      d.satisfiable = Answer::kNo;  // counterexample path in d.witness
      break;
    case Answer::kNo:
      d.satisfiable = Answer::kYes;
      d.has_witness = false;
      break;
    case Answer::kUnknown:
      d.satisfiable = Answer::kUnknown;
      break;
  }
  return d;
}

Result<Decision> ContainedUnderAccessPatterns(
    const logic::PosFormulaPtr& q1, const logic::PosFormulaPtr& q2,
    const schema::Schema& schema,
    const std::vector<schema::DisjointnessConstraint>& disjointness,
    const DecideOptions& options) {
  // Build the Prop. 4.4 automaton directly and search for a
  // non-containment witness over grounded paths.
  automata::AAutomaton a =
      NonContainmentAutomaton(schema, q1, q2, disjointness);
  automata::WitnessSearchOptions wopts = options.bounded;
  wopts.grounded = options.grounded;
  automata::WitnessSearchResult r = automata::BoundedWitnessSearch(
      a, schema, schema::Instance(schema), wopts, options.exec);
  Decision d;
  d.engine = "automata-bounded";
  d.fragment = acc::Fragment::kBindingPositive;
  d.nodes_explored = r.nodes_explored;
  d.exhausted_budget = r.exhausted_budget;
  d.cancelled = r.cancelled;
  d.visited_bytes = r.visited_bytes;
  d.treedb_nodes = r.treedb_nodes;
  if (r.found) {
    d.satisfiable = Answer::kNo;  // counterexample path: NOT contained
    d.has_witness = true;
    d.witness = r.witness;
    if (options.shrink_witness) {
      d.witness = ShrinkAutomatonWitness(a, schema, schema::Instance(schema),
                                         d.witness, options.grounded);
    }
    return d;
  }
  if (options.use_datalog_pipeline && !options.grounded && !r.cancelled &&
      (options.exec.cancel == nullptr ||
       !options.exec.cancel->ShouldStop())) {
    Result<bool> empty =
        automata::EmptinessViaDatalog(a, schema, options.decompose);
    if (empty.ok()) {
      d.engine = "automata-datalog";
      d.satisfiable = empty.value() ? Answer::kYes : Answer::kNo;
      return d;
    }
  }
  d.satisfiable =
      r.exhausted_budget || r.cancelled ? Answer::kUnknown : Answer::kYes;
  return d;
}

Result<Decision> IsLongTermRelevant(
    const schema::Schema& schema, schema::AccessMethodId method,
    const Tuple& binding, const logic::PosFormulaPtr& q,
    const std::vector<schema::DisjointnessConstraint>& disjointness,
    const DecideOptions& options) {
  ACCLTL_RETURN_IF_ERROR(schema.ValidateBinding(method, binding));
  automata::AAutomaton a =
      RelevanceAutomaton(schema, method, binding, q, disjointness);
  automata::WitnessSearchOptions wopts = options.bounded;
  wopts.grounded = options.grounded;
  automata::WitnessSearchResult r = automata::BoundedWitnessSearch(
      a, schema, schema::Instance(schema), wopts, options.exec);
  Decision d;
  d.engine = "automata-bounded";
  d.fragment = acc::Fragment::kBindingPositive;
  d.nodes_explored = r.nodes_explored;
  d.exhausted_budget = r.exhausted_budget;
  d.cancelled = r.cancelled;
  d.visited_bytes = r.visited_bytes;
  d.treedb_nodes = r.treedb_nodes;
  if (r.found) {
    d.satisfiable = Answer::kYes;
    d.has_witness = true;
    d.witness = r.witness;
    if (options.shrink_witness) {
      d.witness = ShrinkAutomatonWitness(a, schema, schema::Instance(schema),
                                         d.witness, options.grounded);
    }
    return d;
  }
  d.satisfiable =
      r.exhausted_budget || r.cancelled ? Answer::kUnknown : Answer::kNo;
  return d;
}

}  // namespace analysis
}  // namespace accltl
