#include "src/analysis/zero_solver.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/accltl/abstraction.h"
#include "src/accltl/semantics.h"
#include "src/logic/cq.h"
#include "src/logic/eval.h"
#include "src/ltl/tableau.h"
#include "src/store/fact_store.h"

namespace accltl {
namespace analysis {

namespace {

using logic::PredSpace;
using schema::AccessMethodId;
using schema::RelationId;

/// One pool fact: a concrete tuple for a relation, plus (when the
/// witness disjunct constrains the access) the method/binding that must
/// reveal it.
struct PoolFact {
  RelationId relation = 0;
  Tuple tuple;
  /// Method forced by a constant-only IsBind atom of the disjunct
  /// (-1: any method on the relation).
  int forced_method = -1;
};

struct SearchState {
  /// Bitmask over pool facts injected so far.
  uint64_t facts = 0;
  /// Active tableau states (NFA subset).
  std::set<int> tableau;

  friend bool operator==(const SearchState& a, const SearchState& b) {
    return a.facts == b.facts && a.tableau == b.tableau;
  }
};

struct SearchStateHash {
  size_t operator()(const SearchState& s) const {
    uint64_t h = store::Mix64(s.facts);
    for (int t : s.tableau) {
      h = store::Mix64(h ^ static_cast<uint64_t>(static_cast<unsigned>(t)));
    }
    return static_cast<size_t>(h);
  }
};

class ZeroSolver {
 public:
  ZeroSolver(const acc::AccPtr& formula, const schema::Schema& schema,
             const ZeroSolverOptions& options)
      : schema_(schema), options_(options) {
    abstraction_ = acc::Abstract(formula);
  }

  Result<ZeroSolverResult> Run() {
    // 1. Reject formulas outside the (constant-extended) 0-ary fragment.
    for (const logic::PosFormulaPtr& atom : abstraction_.atoms) {
      Status s = CheckZeroAry(atom);
      if (!s.ok()) return s;
    }
    // 2. Build the canonical-witness pool.
    ACCLTL_RETURN_IF_ERROR(BuildPool());
    if (pool_.size() > 63) {
      return Status::ResourceExhausted(
          "witness pool exceeds 63 facts; split the formula");
    }
    // 3. Build the LTL tableau for the skeleton.
    Result<ltl::TableauAutomaton> tableau =
        ltl::BuildTableau(abstraction_.skeleton, 1u << 18);
    if (!tableau.ok()) return tableau.status();
    tableau_ = std::move(tableau.value());
    edges_by_state_.assign(static_cast<size_t>(tableau_.num_states), {});
    for (size_t i = 0; i < tableau_.edges.size(); ++i) {
      edges_by_state_[static_cast<size_t>(tableau_.edges[i].from)].push_back(
          static_cast<int>(i));
    }
    // 4. Search.
    ZeroSolverResult result;
    SearchState init;
    init.facts = 0;
    init.tableau = {tableau_.initial};
    std::vector<schema::AccessStep> path;
    result.satisfiable = Dfs(init, schema::Instance(schema_), 0, &path,
                             &result);
    if (result.satisfiable) {
      result.witness = schema::AccessPath(path);
    }
    return result;
  }

 private:
  Status CheckZeroAry(const logic::PosFormulaPtr& f) {
    switch (f->kind()) {
      case logic::NodeKind::kAtom:
        if (f->pred().space == PredSpace::kBind) {
          for (const logic::Term& t : f->terms()) {
            if (t.is_var()) {
              return Status::Unsupported(
                  "IsBind atom with variable terms: formula is outside "
                  "AccLTL(FO^E+_0-Acc); use the AccLTL+ automata engine");
            }
          }
        }
        if (f->pred().space == PredSpace::kPlain) {
          return Status::InvalidArgument(
              "plain-schema atom in a transition formula (use _pre/_post)");
        }
        return Status::OK();
      case logic::NodeKind::kAnd:
      case logic::NodeKind::kOr: {
        for (const logic::PosFormulaPtr& c : f->children()) {
          ACCLTL_RETURN_IF_ERROR(CheckZeroAry(c));
        }
        return Status::OK();
      }
      case logic::NodeKind::kExists:
        return CheckZeroAry(f->body());
      default:
        return Status::OK();
    }
  }

  /// Freezes every UCQ disjunct of every atom into pool facts.
  Status BuildPool() {
    logic::FreshValueFactory factory;
    for (const logic::PosFormulaPtr& atom : abstraction_.atoms) {
      Result<logic::Ucq> ucq = logic::NormalizeToUcq(atom, {}, schema_);
      if (!ucq.ok()) return ucq.status();
      for (const logic::Cq& d : ucq.value().disjuncts) {
        // Method forced by constant-only bind atoms (at most one per
        // disjunct is satisfiable on a transition, but facts of the
        // disjunct may span several transitions; the forced method
        // applies to facts of that method's relation).
        std::map<RelationId, int> forced;
        for (const logic::CqAtom& a : d.atoms) {
          if (a.pred.space == PredSpace::kBind) {
            forced[schema_.method(a.pred.id).relation] = a.pred.id;
          }
        }
        Result<logic::FrozenCq> frozen =
            logic::FreezeCq(d, schema_, &factory);
        if (!frozen.ok()) return frozen.status();
        for (const auto& [pred, tuples] : frozen.value().db.relations()) {
          if (pred.space == PredSpace::kBind) continue;
          for (const Tuple& t : tuples) {
            PoolFact f;
            f.relation = pred.id;
            f.tuple = t;
            auto it = forced.find(pred.id);
            f.forced_method = it == forced.end() ? -1 : it->second;
            // Dedupe identical facts.
            bool dup = false;
            for (const PoolFact& existing : pool_) {
              if (existing.relation == f.relation &&
                  existing.tuple == f.tuple) {
                dup = true;
                break;
              }
            }
            if (!dup) pool_.push_back(std::move(f));
          }
        }
      }
    }
    return Status::OK();
  }

  /// Evaluates all atoms on a transition; returns the set of true
  /// proposition ids.
  std::set<int> TrueAtoms(const schema::Transition& t) {
    std::set<int> out;
    logic::TransitionView view(t);
    for (size_t i = 0; i < abstraction_.atoms.size(); ++i) {
      if (logic::EvalSentence(abstraction_.atoms[i], view)) {
        out.insert(static_cast<int>(i));
      }
    }
    return out;
  }

  bool Dfs(const SearchState& state, const schema::Instance& current,
           size_t depth, std::vector<schema::AccessStep>* path,
           ZeroSolverResult* result) {
    if (++result->nodes_explored > options_.max_nodes) {
      result->exhausted_budget = true;
      return false;
    }
    if (depth >= options_.max_path_length) return false;
    if (!options_.require_idempotent) {
      // Memo on the first (shallowest) visit: a failure at depth d only
      // transfers to depths >= d because of the path-length cap.
      auto it = visited_.find(state);
      if (it != visited_.end() && it->second <= depth) return false;
      visited_[state] = depth;
    }

    // The active domain is stable across this node's enumeration;
    // compute it once, on first need (it is only consulted for
    // synthesized bindings and grounded checks).
    std::optional<std::set<Value>> dom;
    auto domain = [&]() -> const std::set<Value>& {
      if (!dom.has_value()) dom = current.ActiveDomain();
      return *dom;
    };

    // Enumerate one access: a method plus a subset of not-yet-injected
    // pool facts of its relation (possibly empty), agreeing on input
    // positions (they share the binding).
    for (AccessMethodId m = 0; m < schema_.num_access_methods(); ++m) {
      const schema::AccessMethod& am = schema_.method(m);
      std::vector<size_t> candidates;
      for (size_t i = 0; i < pool_.size(); ++i) {
        if (state.facts & (uint64_t{1} << i)) continue;
        if (pool_[i].relation != am.relation) continue;
        if (pool_[i].forced_method >= 0 &&
            pool_[i].forced_method != static_cast<int>(m)) {
          continue;
        }
        candidates.push_back(i);
      }
      size_t limit = std::min(candidates.size(), size_t{12});
      size_t subsets = size_t{1} << limit;
      for (size_t mask = 0; mask < subsets; ++mask) {
        if (static_cast<size_t>(__builtin_popcountll(mask)) >
            options_.max_facts_per_step) {
          continue;
        }
        std::vector<const PoolFact*> chosen;
        for (size_t b = 0; b < limit; ++b) {
          if (mask & (size_t{1} << b)) chosen.push_back(&pool_[candidates[b]]);
        }
        // All chosen facts must agree on input positions (one binding).
        std::optional<Tuple> binding;
        bool ok = true;
        for (const PoolFact* f : chosen) {
          Tuple b;
          for (schema::Position p : am.input_positions) {
            b.push_back(f->tuple[static_cast<size_t>(p)]);
          }
          if (!binding.has_value()) {
            binding = std::move(b);
          } else if (*binding != b) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        if (!binding.has_value()) {
          // Empty response: synthesize a binding (grounded mode draws
          // from the revealed domain).
          Tuple b;
          bool bind_ok = true;
          const schema::Relation& rel = schema_.relation(am.relation);
          for (schema::Position p : am.input_positions) {
            ValueType type = rel.position_types[static_cast<size_t>(p)];
            std::optional<Value> v;
            for (const Value& cand : domain()) {
              if (cand.type() == type) {
                v = cand;
                break;
              }
            }
            if (!v.has_value()) {
              if (options_.grounded) {
                bind_ok = false;
                break;
              }
              v = Value::Int(-3000000 - static_cast<int64_t>(depth));
              if (type == ValueType::kString) {
                v = Value::Str("~b" + std::to_string(depth));
              } else if (type == ValueType::kBool) {
                v = Value::Bool(false);
              }
            }
            b.push_back(*v);
          }
          if (!bind_ok) continue;
          binding = std::move(b);
        } else if (options_.grounded) {
          for (const Value& v : *binding) {
            if (domain().count(v) == 0) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
        }

        schema::Response response;
        uint64_t new_facts = state.facts;
        for (const PoolFact* f : chosen) {
          response.insert(f->tuple);
          new_facts |= uint64_t{1}
                       << static_cast<size_t>(f - pool_.data());
        }
        schema::Transition t = schema::MakeTransition(
            schema_, current, schema::Access{m, *binding}, response);

        if (options_.require_idempotent) {
          bool violates = false;
          for (const schema::AccessStep& prev : *path) {
            if (prev.access == t.access && prev.response != t.response) {
              violates = true;
              break;
            }
          }
          if (violates) continue;
        }

        // Advance the tableau over this letter.
        std::set<int> letter = TrueAtoms(t);
        std::set<int> next_states;
        bool may_end = false;
        for (int s : state.tableau) {
          for (int ei : edges_by_state_[static_cast<size_t>(s)]) {
            const ltl::TableauEdge& e = tableau_.edges[static_cast<size_t>(
                ei)];
            bool match = true;
            for (int p : e.pos_lits) {
              if (letter.count(p) == 0) {
                match = false;
                break;
              }
            }
            if (match) {
              for (int p : e.neg_lits) {
                if (letter.count(p) > 0) {
                  match = false;
                  break;
                }
              }
            }
            if (!match) continue;
            next_states.insert(e.to);
            may_end = may_end || e.may_end;
          }
        }
        if (next_states.empty() && !may_end) continue;
        path->push_back(schema::AccessStep{t.access, t.response});
        if (may_end) return true;  // the path may stop here: satisfied
        SearchState next{new_facts, next_states};
        if (Dfs(next, t.post, depth + 1, path, result)) return true;
        path->pop_back();
        if (result->exhausted_budget) return false;
      }
    }
    return false;
  }

  const schema::Schema& schema_;
  const ZeroSolverOptions& options_;
  acc::Abstraction abstraction_;
  std::vector<PoolFact> pool_;
  ltl::TableauAutomaton tableau_;
  std::vector<std::vector<int>> edges_by_state_;
  std::unordered_map<SearchState, size_t, SearchStateHash> visited_;
};

}  // namespace

Result<ZeroSolverResult> CheckZeroArySatisfiable(
    const acc::AccPtr& formula, const schema::Schema& schema,
    const ZeroSolverOptions& options) {
  ZeroSolver solver(formula, schema, options);
  return solver.Run();
}

}  // namespace analysis
}  // namespace accltl
