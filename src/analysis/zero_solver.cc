#include "src/analysis/zero_solver.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "src/accltl/abstraction.h"
#include "src/accltl/semantics.h"
#include "src/engine/compact_table.h"
#include "src/engine/explorer.h"
#include "src/engine/path_link.h"
#include "src/engine/two_phase.h"
#include "src/engine/visited_table.h"
#include "src/logic/cq.h"
#include "src/logic/eval.h"
#include "src/ltl/tableau.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/fact_store.h"

namespace accltl {
namespace analysis {

namespace {
/// Zero-solver instruments (write-only; DESIGN.md §8).
struct ZeroMetrics {
  obs::Counter* expansions;
  obs::Counter* children;
  obs::Counter* plan_builds;
  static const ZeroMetrics& Get() {
    static const ZeroMetrics m{
        obs::Registry::Get().counter("analysis.zero.expansions"),
        obs::Registry::Get().counter("analysis.zero.children"),
        obs::Registry::Get().counter("analysis.zero.plan_builds"),
    };
    return m;
  }
};
}  // namespace

/// One pool fact: a concrete tuple for a relation, plus (when the
/// witness disjunct constrains the access) the method/binding that must
/// reveal it. External linkage (it is a member of ZeroPlan, which the
/// header exposes by forward declaration), defined only in this TU.
struct ZeroPoolFact {
  schema::RelationId relation = 0;
  Tuple tuple;
  /// Method forced by a constant-only IsBind atom of the disjunct
  /// (-1: any method on the relation).
  int forced_method = -1;
};

/// The prepared, options-independent state (see zero_solver.h). The
/// header only forward-declares the class; callers hold it through
/// shared_ptr<const ZeroPlan> and never see the members.
class ZeroPlan {
 public:
  acc::Abstraction abstraction;
  std::vector<ZeroPoolFact> pool;
  ltl::TableauAutomaton tableau;
  std::vector<std::vector<int>> edges_by_state;
  /// True when the fusion-quotient enumeration (see BuildPool) was cut
  /// by a cap: the pool may be missing fused witnesses, so an
  /// unsatisfiable sweep must report exhausted_budget (kUnknown), never
  /// a definitive "no".
  bool pool_fusion_truncated = false;
};

namespace {

using logic::PredSpace;
using schema::AccessMethodId;
using schema::RelationId;

using PathLink = engine::PathLink<schema::AccessStep>;
using engine::CmpPathKeys;

using PoolFact = ZeroPoolFact;

/// One frontier node of the engine-based search. The node's
/// configuration is a pure function of `facts` (the empty initial
/// instance plus the injected pool facts), so the (facts, tableau)
/// pair is the full search state of the original recursive solver.
struct ZeroNode {
  /// Bitmask over pool facts injected so far.
  uint64_t facts = 0;
  /// Active tableau states (sorted, duplicate-free NFA subset).
  std::vector<int> tableau;
  schema::Instance config;
  uint32_t depth = 0;
  /// True when the incoming edge had `may_end`: the path ending here
  /// is accepting (finite-word tableau acceptance is edge-local).
  bool accepting = false;
  std::shared_ptr<const PathLink> path;
  /// Root-to-node materialization of `path` (pointers into the chain,
  /// kept alive by it).
  std::vector<const PathLink*> links;
  /// Compact mode only: tree-compressed identity
  /// pair(pair(facts_lo, facts_hi), set(tableau)).
  store::TreeRef ref = store::kNilTreeRef;
};

/// Root-to-node materialization of a bare chain (compact visited
/// entries keep only the chain head).
void MaterializeChain(const PathLink* head,
                      std::vector<const PathLink*>* out) {
  for (const PathLink* link = head; link != nullptr;
       link = link->parent.get()) {
    out->push_back(link);
  }
  std::reverse(out->begin(), out->end());
}

int CmpChains(const PathLink* a, const PathLink* b) {
  std::vector<const PathLink*> va, vb;
  MaterializeChain(a, &va);
  MaterializeChain(b, &vb);
  return CmpPathKeys(va, vb);
}

/// Rejects formulas outside the (constant-extended) 0-ary fragment.
Status CheckZeroAry(const logic::PosFormulaPtr& f) {
  switch (f->kind()) {
    case logic::NodeKind::kAtom:
      if (f->pred().space == PredSpace::kBind) {
        for (const logic::Term& t : f->terms()) {
          if (t.is_var()) {
            return Status::Unsupported(
                "IsBind atom with variable terms: formula is outside "
                "AccLTL(FO^E+_0-Acc); use the AccLTL+ automata engine");
          }
        }
      }
      if (f->pred().space == PredSpace::kPlain) {
        return Status::InvalidArgument(
            "plain-schema atom in a transition formula (use _pre/_post)");
      }
      return Status::OK();
    case logic::NodeKind::kAnd:
    case logic::NodeKind::kOr: {
      for (const logic::PosFormulaPtr& c : f->children()) {
        ACCLTL_RETURN_IF_ERROR(CheckZeroAry(c));
      }
      return Status::OK();
    }
    case logic::NodeKind::kExists:
      return CheckZeroAry(f->body());
    default:
      return Status::OK();
  }
}

/// Freezes one (possibly quotiented) disjunct into the pool.
Status FreezeDisjunctIntoPool(const logic::Cq& d,
                              const schema::Schema& schema,
                              logic::FreshValueFactory* factory,
                              std::vector<PoolFact>* pool) {
  // Method forced by constant-only bind atoms (at most one per
  // disjunct is satisfiable on a transition, but facts of the
  // disjunct may span several transitions; the forced method
  // applies to facts of that method's relation).
  std::map<RelationId, int> forced;
  for (const logic::CqAtom& a : d.atoms) {
    if (a.pred.space == PredSpace::kBind) {
      forced[schema.method(a.pred.id).relation] = a.pred.id;
    }
  }
  Result<logic::FrozenCq> frozen = logic::FreezeCq(d, schema, factory);
  if (!frozen.ok()) return frozen.status();
  for (const auto& [pred, tuples] : frozen.value().db.relations()) {
    if (pred.space == PredSpace::kBind) continue;
    for (const Tuple& t : tuples) {
      PoolFact f;
      f.relation = pred.id;
      f.tuple = t;
      auto it = forced.find(pred.id);
      f.forced_method = it == forced.end() ? -1 : it->second;
      // Dedupe identical facts.
      bool dup = false;
      for (const PoolFact& existing : *pool) {
        if (existing.relation == f.relation && existing.tuple == f.tuple) {
          dup = true;
          break;
        }
      }
      if (!dup) pool->push_back(std::move(f));
    }
  }
  return Status::OK();
}

/// Fusion quotients of a disjunct: every substitution mapping each
/// variable to an earlier same-type representative variable, a
/// same-type constant of the disjunct, or itself (restricted-growth
/// enumeration of typed set partitions, extended by constants). The
/// identity substitution is enumerated first.
///
/// Why quotients at all: the canonical database freezes every variable
/// to a DISTINCT fresh value, but a real witness may be a homomorphic
/// image that fuses values — and the fused variant can be realizable
/// where the all-fresh one is not. Concretely, an all-input access
/// method returns at most the binding tuple itself, so a first-step
/// sentence with two same-relation post atoms is satisfiable only via
/// the quotient that unifies them; the all-fresh pool made the solver
/// report a *definitive* "no" for that satisfiable formula (found by
/// differential fuzzing against the oracle and the Datalog certifier;
/// see tests/corpus/zero_fusion_single_response.repro).
///
/// `max_variants` caps the enumeration; `*truncated` is set when the
/// cap cuts it (the caller then degrades unsatisfiable sweeps to
/// kUnknown — incompleteness must never be silent).
std::vector<logic::Cq> FusionQuotients(
    const logic::Cq& d, const std::map<std::string, ValueType>& var_types,
    size_t max_variants, bool* truncated) {
  // Deterministic variable order: sorted names.
  std::vector<std::string> vars;
  for (const auto& [v, t] : var_types) {
    (void)t;
    vars.push_back(v);
  }
  std::sort(vars.begin(), vars.end());
  // Same-type constants of the disjunct (targets for variable fusion).
  std::vector<Value> consts;
  for (const logic::CqAtom& a : d.atoms) {
    for (const logic::Term& t : a.terms) {
      if (!t.is_const()) continue;
      if (std::find(consts.begin(), consts.end(), t.value()) == consts.end()) {
        consts.push_back(t.value());
      }
    }
  }

  std::vector<logic::Cq> out;
  // subst[i]: -1 self (class representative), j >= 0 fuse onto
  // vars[j], or -(k + 2) fuse onto consts[k] (NOT ~k: ~0 == -1 would
  // collide with the self sentinel and silently skip the first
  // constant).
  std::vector<int> subst(vars.size(), -1);
  std::function<void(size_t)> rec = [&](size_t i) {
    if (*truncated) return;
    if (i == vars.size()) {
      if (out.size() >= max_variants) {
        *truncated = true;
        return;
      }
      logic::Cq q = d;
      auto apply = [&](logic::Term& term) {
        if (!term.is_var()) return;
        auto it = std::lower_bound(vars.begin(), vars.end(),
                                   term.var_name());
        if (it == vars.end() || *it != term.var_name()) return;
        int choice = subst[static_cast<size_t>(it - vars.begin())];
        if (choice == -1) return;
        term = choice >= 0
                   ? logic::Term::Var(vars[static_cast<size_t>(choice)])
                   : logic::Term::Const(
                         consts[static_cast<size_t>(-choice - 2)]);
      };
      for (logic::CqAtom& a : q.atoms) {
        for (logic::Term& term : a.terms) apply(term);
      }
      for (auto& [l, r] : q.neqs) {
        apply(l);
        apply(r);
      }
      out.push_back(std::move(q));
      return;
    }
    ValueType my_type = var_types.at(vars[i]);
    // Self first: the identity substitution leads the enumeration, so
    // the historical all-fresh pool facts always survive a cap.
    subst[i] = -1;
    rec(i + 1);
    for (size_t j = 0; j < i && !*truncated; ++j) {
      if (subst[j] != -1) continue;  // fuse onto representatives only
      if (var_types.at(vars[j]) != my_type) continue;
      subst[i] = static_cast<int>(j);
      rec(i + 1);
    }
    for (size_t k = 0; k < consts.size() && !*truncated; ++k) {
      if (consts[k].type() != my_type) continue;
      subst[i] = -static_cast<int>(k) - 2;
      rec(i + 1);
    }
    subst[i] = -1;
  };
  rec(0);
  return out;
}

/// Freezes every UCQ disjunct of every atom into pool facts: first the
/// all-fresh canonical databases (the historical pool), then their
/// fusion quotients until the caps bite. Pool facts beyond 63 cannot
/// be represented in the search's fact bitmask, so quotients stop
/// there (flagged), while a base pool beyond 63 is still a hard error.
Status BuildPool(const acc::Abstraction& abstraction,
                 const schema::Schema& schema,
                 std::vector<PoolFact>* pool, bool* fusion_truncated) {
  constexpr size_t kMaxQuotientsPerDisjunct = 64;
  constexpr size_t kMaxPoolFacts = 63;
  logic::FreshValueFactory factory;
  std::vector<std::pair<logic::Cq, std::map<std::string, ValueType>>>
      disjuncts;
  for (const logic::PosFormulaPtr& atom : abstraction.atoms) {
    Result<logic::Ucq> ucq = logic::NormalizeToUcq(atom, {}, schema);
    if (!ucq.ok()) return ucq.status();
    for (const logic::Cq& d : ucq.value().disjuncts) {
      Result<std::map<std::string, ValueType>> types =
          logic::InferVarTypes(d, schema);
      if (!types.ok()) return types.status();
      disjuncts.emplace_back(d, types.value());
      ACCLTL_RETURN_IF_ERROR(
          FreezeDisjunctIntoPool(d, schema, &factory, pool));
    }
  }
  for (const auto& [d, types] : disjuncts) {
    bool variant_cap = false;
    std::vector<logic::Cq> quotients =
        FusionQuotients(d, types, kMaxQuotientsPerDisjunct, &variant_cap);
    if (variant_cap) *fusion_truncated = true;
    for (size_t qi = 1; qi < quotients.size(); ++qi) {  // 0 = identity
      size_t before = pool->size();
      ACCLTL_RETURN_IF_ERROR(
          FreezeDisjunctIntoPool(quotients[qi], schema, &factory, pool));
      if (pool->size() > kMaxPoolFacts) {
        // A variant that does not fit whole is rolled back — the fact
        // bitmask is 64 bits wide and partial variants are useless.
        pool->resize(before);
        *fusion_truncated = true;
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

/// The per-run search state over a shared, immutable plan.
class ZeroSolver {
 public:
  ZeroSolver(const ZeroPlan& plan, const schema::Schema& schema,
             const ZeroSolverOptions& options,
             const engine::ExecOptions& exec)
      : plan_(plan),
        schema_(schema),
        options_(options),
        exec_(exec),
        workers_(std::max<size_t>(1, exec.num_threads)),
        compact_(exec.visited_mode == engine::VisitedMode::kCompact) {}

  Result<ZeroSolverResult> Run() {
    // Search on the shared engine: serial pf-DFS at one worker,
    // pilot + level-synchronous sweep otherwise — the same
    // schedule-independent reduction as BoundedWitnessSearch. All
    // formula-dependent setup lives in the plan (PrepareZeroAry).
    return Search();
  }

 private:
  /// Evaluates all atoms on a transition; returns the set of true
  /// proposition ids.
  std::set<int> TrueAtoms(const schema::Transition& t) const {
    std::set<int> out;
    logic::TransitionView view(t);
    for (size_t i = 0; i < plan_.abstraction.atoms.size(); ++i) {
      if (logic::EvalSentence(plan_.abstraction.atoms[i], view)) {
        out.insert(static_cast<int>(i));
      }
    }
    return out;
  }

  // --- Engine plumbing (mirrors automata::BoundedWitnessSearch) -------------

  static uint64_t NodeHash(const ZeroNode& node) {
    uint64_t h = store::Mix64(node.facts);
    for (int t : node.tableau) {
      h = store::Mix64(h ^ static_cast<uint64_t>(static_cast<unsigned>(t)));
    }
    return h;
  }

  /// Dedup entry: exact data for confirmation plus the dominance
  /// tie-breakers (depth, path content).
  struct VisitedEntry {
    uint64_t facts;
    std::vector<int> tableau;
    uint32_t depth;
    std::shared_ptr<const PathLink> path;
    std::vector<const PathLink*> links;
  };

  /// "existing makes candidate redundant": same exact (facts, tableau)
  /// state, no deeper, and no later in path-content order — the
  /// original solver's (state, shallowest-depth) memo, refined by the
  /// content order so same-depth twins keep the pf-smaller path. Equal
  /// states reach the same configurations and letters (the
  /// configuration is a function of `facts`; synthesized placeholder
  /// bindings never affect atom truth), so the dominated subtree can
  /// only rediscover paths the retained one also reaches.
  static bool Dominates(const VisitedEntry& existing,
                        const VisitedEntry& candidate) {
    if (existing.facts != candidate.facts) return false;
    if (existing.depth > candidate.depth) return false;
    if (existing.tableau != candidate.tableau) return false;
    return CmpPathKeys(existing.links, candidate.links) <= 0;
  }

  /// Candidate child during expansion, before sorting.
  struct Child {
    uint64_t facts;
    std::vector<int> tableau;
    schema::Instance post;
    schema::AccessStep step;
    std::string key;
    bool accepting;
  };

  /// Tree-compressed identity of a (facts, tableau) state: the 64-bit
  /// fact mask folds into a pair of leaves, the tableau subset into a
  /// canonical set trie — ref equality ⇔ equal state (treedb.h).
  store::TreeRef NodeRef(uint64_t facts, const std::vector<int>& tableau) {
    store::TreeRef tab = store::kNilTreeRef;
    for (int t : tableau) {
      tab = treedb_.InsertSet(tab, static_cast<uint32_t>(t));
    }
    store::TreeRef facts_ref = treedb_.InternPair(
        treedb_.InternLeaf(static_cast<uint32_t>(facts & 0xffffffffu)),
        treedb_.InternLeaf(static_cast<uint32_t>(facts >> 32)));
    return treedb_.InternPair(facts_ref, tab);
  }

  std::vector<std::unique_ptr<ZeroNode>> MakeRoots() {
    auto root = std::make_unique<ZeroNode>();
    root->facts = 0;
    root->tableau = {plan_.tableau.initial};
    root->config = schema::Instance(schema_);
    root->depth = 0;
    if (compact_) root->ref = NodeRef(root->facts, root->tableau);
    if (!options_.require_idempotent) {
      // Seeding the table with the root (depth 0, empty path) makes it
      // dominate every do-nothing loop back to the initial state.
      RegisterNode(*root);
    }
    std::vector<std::unique_ptr<ZeroNode>> roots;
    roots.push_back(std::move(root));
    return roots;
  }

  Result<ZeroSolverResult> Search() {
    // One worker: serial pf-DFS whose first accept is the reduced
    // answer. More: pf-DFS pilot, then a level-synchronous sweep with
    // the deterministic barrier reduction (see engine/two_phase.h).
    engine::ExecOptions run_exec = exec_;
    run_exec.num_threads = workers_;
    engine::Explorer<ZeroNode>::Stats stats =
        engine::TwoPhaseExplore<ZeroNode>(
            run_exec, options_.max_nodes, [this] { return MakeRoots(); },
            [this](std::unique_ptr<ZeroNode> node,
                   engine::Explorer<ZeroNode>::Context& ctx) {
              VisitDfs(std::move(node), ctx);
            },
            [this](std::unique_ptr<ZeroNode> node,
                   engine::Explorer<ZeroNode>::Context& ctx) {
              VisitLevel(std::move(node), ctx);
            },
            [this](std::vector<std::vector<ZeroNode*>> batches) {
              auto frontier = ReduceLevel(std::move(batches));
              // The byte budget's level-mode cut point: decided at the
              // barrier over the complete reduced frontier, so the cut
              // level is schedule-independent.
              if (OverMemoryBudget()) {
                memory_truncated_.store(true, std::memory_order_relaxed);
                frontier.clear();
              }
              return frontier;
            },
            [this] { return best_.Snapshot() != nullptr; },
            [this] {
              // The sweep must see a deterministic table and
              // truncation state: the pilot's partial state is
              // discarded. In compact mode the treedb resets with it —
              // the sweep re-interns from its roots, so the final node
              // count never depends on what the pilot touched.
              visited_.Clear();
              compact_visited_.Clear();
              treedb_.Clear();
              visited_bytes_.store(0, std::memory_order_relaxed);
              truncated_.store(false, std::memory_order_relaxed);
              memory_truncated_.store(false, std::memory_order_relaxed);
            });
    stats.visited_bytes = visited_bytes_.load(std::memory_order_relaxed) +
                          (compact_ ? treedb_.bytes() : 0);
    stats.treedb_nodes = compact_ ? treedb_.num_nodes() : 0;
    return Finalize(stats);
  }

  Result<ZeroSolverResult> Finalize(
      const engine::Explorer<ZeroNode>::Stats& stats) {
    ZeroSolverResult result;
    result.nodes_explored = stats.nodes_explored;
    result.exhausted_budget =
        stats.budget_exhausted ||
        truncated_.load(std::memory_order_relaxed) ||
        memory_truncated_.load(std::memory_order_relaxed);
    result.cancelled = stats.cancelled;
    result.visited_bytes = stats.visited_bytes;
    result.treedb_nodes = stats.treedb_nodes;
    std::shared_ptr<const engine::BestPathTracker<schema::AccessStep>::Path>
        best = best_.Snapshot();
    result.satisfiable = best != nullptr;
    if (best != nullptr) result.witness = schema::AccessPath(best->steps);
    // A capped fusion-quotient pool may be missing the only realizable
    // witnesses: an unsatisfiable sweep over it is "unknown", never a
    // definitive "no". (Plan-level and deterministic, so the
    // schedule-independence guarantee is untouched.)
    if (!result.satisfiable && plan_.pool_fusion_truncated) {
      result.exhausted_budget = true;
    }
    return result;
  }

  /// Logical footprint of an exact entry: struct plus the owned
  /// vectors' live elements (sizes, never capacities — visited_bytes
  /// must be deterministic whenever the search is).
  static size_t EntryBytes(const VisitedEntry& entry) {
    return sizeof(VisitedEntry) + entry.tableau.size() * sizeof(int) +
           entry.links.size() * sizeof(const PathLink*);
  }

  /// Enters a node into the visited table. Returns false when it is
  /// dominated (redundant — do not explore). Both modes maintain
  /// visited_bytes_ as the live entries' logical footprint.
  bool RegisterNode(const ZeroNode& node) {
    if (compact_) {
      engine::CompactEntry entry;
      entry.ref = node.ref;
      entry.depth = node.depth;
      entry.path = std::shared_ptr<const void>(node.path, node.path.get());
      bool dominated = compact_visited_.CheckAndInsert(
          std::move(entry),
          [](const engine::CompactEntry& existing,
             const engine::CompactEntry& candidate) {
            // Ref equality (checked by the table) *is* the exact
            // (facts, tableau) identity; only the tie-breakers remain.
            if (existing.depth > candidate.depth) return false;
            return CmpChains(
                       static_cast<const PathLink*>(existing.path.get()),
                       static_cast<const PathLink*>(candidate.path.get())) <=
                   0;
          },
          [this](const engine::CompactEntry&) {
            visited_bytes_.fetch_sub(sizeof(engine::CompactEntry),
                                     std::memory_order_relaxed);
          });
      if (!dominated) {
        visited_bytes_.fetch_add(sizeof(engine::CompactEntry),
                                 std::memory_order_relaxed);
      }
      return !dominated;
    }
    VisitedEntry entry;
    entry.facts = node.facts;
    entry.tableau = node.tableau;
    entry.depth = node.depth;
    entry.path = node.path;
    entry.links = node.links;
    size_t entry_bytes = EntryBytes(entry);
    bool dominated = visited_.CheckAndInsert(
        NodeHash(node), std::move(entry), Dominates,
        [this](const VisitedEntry& evicted) {
          visited_bytes_.fetch_sub(EntryBytes(evicted),
                                   std::memory_order_relaxed);
        });
    if (!dominated) {
      visited_bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
    }
    return !dominated;
  }

  /// True once the accounted footprint (table entries plus the treedb
  /// arena in compact mode) exceeds a nonzero max_visited_bytes.
  bool OverMemoryBudget() const {
    size_t cap = exec_.max_visited_bytes;
    if (cap == 0) return false;
    size_t used = visited_bytes_.load(std::memory_order_relaxed) +
                  (compact_ ? treedb_.bytes() : 0);
    return used > cap;
  }

  std::unique_ptr<ZeroNode> MakeNode(const ZeroNode& parent, Child& child) {
    auto next = std::make_unique<ZeroNode>();
    next->facts = child.facts;
    next->tableau = std::move(child.tableau);
    next->config = std::move(child.post);
    next->depth = parent.depth + 1;
    next->accepting = child.accepting;
    next->links.reserve(parent.links.size() + 1);
    next->links = parent.links;
    next->path = engine::ExtendPath(parent.path, std::move(child.step),
                                    std::move(child.key), &next->links);
    if (compact_) next->ref = NodeRef(next->facts, next->tableau);
    return next;
  }

  /// Serial visitor: pf-ordered depth-first with push-time dedup.
  void VisitDfs(std::unique_ptr<ZeroNode> node,
                engine::Explorer<ZeroNode>::Context& ctx) {
    // The byte budget's serial cut point: checked per pop on the one
    // worker, so the cut node is deterministic.
    if (OverMemoryBudget()) {
      memory_truncated_.store(true, std::memory_order_relaxed);
      ctx.Abort();
      return;
    }
    if (best_.Prunes(node->links)) return;
    if (node->accepting) {
      // A single worker pops in exactly the reduction order, so the
      // first accepting node is the final answer — stop the drain.
      best_.Offer(node->links);
      ctx.Abort();
      return;
    }
    if (node->depth >= options_.max_path_length) return;
    std::vector<Child> children = Expand(*node);
    ZeroMetrics::Get().expansions->Inc();
    ZeroMetrics::Get().children->Inc(children.size());
    // pf order: smallest child pops first. Equal keys cannot occur
    // within one node (each enumerated subset yields a distinct step).
    std::sort(children.begin(), children.end(),
              [](const Child& a, const Child& b) {
                return a.key.compare(b.key) < 0;
              });
    // Register in ascending key order, push in descending order so the
    // owner's LIFO pops the smallest survivor first.
    std::vector<std::unique_ptr<ZeroNode>> survivors;
    survivors.reserve(children.size());
    for (Child& child : children) {
      std::unique_ptr<ZeroNode> next = MakeNode(*node, child);
      if (best_.Prunes(next->links)) continue;
      // Accepting nodes have no subtree and are never registered:
      // acceptance is edge-local, so a non-accepting twin must not
      // shadow them (nor vice versa).
      if (!next->accepting && !options_.require_idempotent &&
          !RegisterNode(*next)) {
        continue;
      }
      survivors.push_back(std::move(next));
    }
    for (size_t i = survivors.size(); i-- > 0;) {
      ctx.Push(std::move(survivors[i]));
    }
  }

  /// Level-mode visitor: emit every child; the barrier reduction does
  /// the deduplication and pruning over the complete batch. No
  /// best-path work-saver prune here: whether a node expands decides
  /// whether its subset-cap truncation is recorded, and a mid-level
  /// prune races the accept that published the bound — the barrier
  /// reduction prunes the same nodes deterministically one level
  /// later, keeping `exhausted_budget` schedule-independent.
  void VisitLevel(std::unique_ptr<ZeroNode> node,
                  engine::Explorer<ZeroNode>::Context& ctx) {
    if (node->accepting) {
      best_.Offer(node->links);
      return;
    }
    if (node->depth >= options_.max_path_length) return;
    std::vector<Child> children = Expand(*node);
    ZeroMetrics::Get().expansions->Inc();
    ZeroMetrics::Get().children->Inc(children.size());
    for (Child& child : children) {
      ctx.Emit(MakeNode(*node, child));
    }
  }

  /// Barrier reduction via the shared striped reducer: dominance only
  /// relates nodes of equal (facts, tableau), which always share a
  /// stripe; each stripe is content-sorted and reduced
  /// deterministically, and children that cannot beat the best witness
  /// known at the end of the level are dropped.
  std::vector<std::unique_ptr<ZeroNode>> ReduceLevel(
      std::vector<std::vector<ZeroNode*>> batches) {
    return engine::ReduceLevelByContent<ZeroNode>(
        std::move(batches),
        [](const ZeroNode& node) { return NodeHash(node); },
        [](const ZeroNode& a, const ZeroNode& b) {
          int c = CmpPathKeys(a.links, b.links);
          if (c != 0) return c < 0;
          // Equal full paths imply identical nodes (the path
          // determines facts, letters, hence the tableau subset);
          // accepting-first keeps the order total.
          return a.accepting && !b.accepting;
        },
        [this](const ZeroNode& node) {
          if (best_.Prunes(node.links)) return false;
          if (!node.accepting && !options_.require_idempotent &&
              !RegisterNode(node)) {
            return false;
          }
          return true;
        });
  }

  // --- Child enumeration (the original solver's access step rule) -----------

  /// Enumerates one access per child: a method plus a subset of
  /// not-yet-injected pool facts of its relation (possibly empty),
  /// agreeing on input positions (they share the binding). Subsets of
  /// up to max_facts_per_step facts are enumerated over *all*
  /// candidates, grouped by their shared binding; the per-(node,
  /// method) cap max_subsets_per_access marks the search truncated
  /// instead of silently dropping witnesses (the pre-engine solver
  /// silently capped at the first 12 candidates).
  std::vector<Child> Expand(const ZeroNode& node) {
    std::vector<Child> children;
    // The active domain is stable across this node's enumeration;
    // compute it once, on first need (it is only consulted for
    // synthesized bindings and grounded checks).
    std::optional<std::set<Value>> dom;
    auto domain = [&]() -> const std::set<Value>& {
      if (!dom.has_value()) dom = node.config.ActiveDomain();
      return *dom;
    };

    for (AccessMethodId m = 0; m < schema_.num_access_methods(); ++m) {
      const schema::AccessMethod& am = schema_.method(m);
      std::vector<size_t> candidates;
      for (size_t i = 0; i < plan_.pool.size(); ++i) {
        if (node.facts & (uint64_t{1} << i)) continue;
        if (plan_.pool[i].relation != am.relation) continue;
        if (plan_.pool[i].forced_method >= 0 &&
            plan_.pool[i].forced_method != static_cast<int>(m)) {
          continue;
        }
        candidates.push_back(i);
      }
      // Group candidates by their binding (the input-position
      // projection): only facts sharing a binding can form one
      // response. std::map keys give a deterministic, value-sorted
      // group order.
      std::map<Tuple, std::vector<size_t>> groups;
      for (size_t i : candidates) {
        Tuple b;
        for (schema::Position p : am.input_positions) {
          b.push_back(plan_.pool[i].tuple[static_cast<size_t>(p)]);
        }
        groups[std::move(b)].push_back(i);
      }

      size_t enumerated = 0;
      bool capped = false;
      // The empty response first: synthesize a binding (grounded mode
      // draws from the revealed domain).
      ++enumerated;
      {
        Tuple b;
        bool bind_ok = true;
        const schema::Relation& rel = schema_.relation(am.relation);
        for (schema::Position p : am.input_positions) {
          ValueType type = rel.position_types[static_cast<size_t>(p)];
          std::optional<Value> v;
          for (const Value& cand : domain()) {
            if (cand.type() == type) {
              v = cand;
              break;
            }
          }
          if (!v.has_value()) {
            if (options_.grounded) {
              bind_ok = false;
              break;
            }
            v = Value::Int(-3000000 - static_cast<int64_t>(node.depth));
            if (type == ValueType::kString) {
              v = Value::Str("~b" + std::to_string(node.depth));
            } else if (type == ValueType::kBool) {
              v = Value::Bool(false);
            }
          }
          b.push_back(*v);
        }
        if (bind_ok) TryChild(node, m, std::move(b), {}, &children);
      }
      // Non-empty responses: combinations of 1..max_facts_per_step
      // facts within each binding group, counted against the cap (the
      // subset that exceeds the cap is counted, not enumerated). A
      // result-bounded method further caps the response size at its
      // bound (bound 0: only the empty response above) — the
      // combination sweep is monotone in k, so enlarging a bound only
      // ever adds children.
      size_t max_k = options_.max_facts_per_step;
      if (am.bounded()) {
        max_k = std::min(max_k, static_cast<size_t>(am.result_bound));
      }
      for (const auto& [binding, members] : groups) {
        if (capped) break;
        if (options_.grounded) {
          bool ok = true;
          for (const Value& v : binding) {
            if (domain().count(v) == 0) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
        }
        size_t n = members.size();
        for (size_t k = 1; k <= std::min(max_k, n) && !capped; ++k) {
          // Lexicographic index combinations of size k.
          std::vector<size_t> idx(k);
          for (size_t i = 0; i < k; ++i) idx[i] = i;
          for (;;) {
            if (++enumerated > options_.max_subsets_per_access) {
              capped = true;
              break;
            }
            std::vector<size_t> chosen;
            chosen.reserve(k);
            for (size_t i : idx) chosen.push_back(members[i]);
            TryChild(node, m, binding, chosen, &children);
            // Advance the combination.
            size_t pos = k;
            while (pos > 0 && idx[pos - 1] == n - (k - pos) - 1) --pos;
            if (pos == 0) break;
            ++idx[pos - 1];
            for (size_t i = pos; i < k; ++i) idx[i] = idx[i - 1] + 1;
          }
        }
      }
      if (capped) truncated_.store(true, std::memory_order_relaxed);
    }
    return children;
  }

  /// Builds the transition for one (method, binding, pool-fact subset)
  /// candidate, applies the idempotence filter, advances the tableau,
  /// and collects a child when some run survives.
  void TryChild(const ZeroNode& node, AccessMethodId m, Tuple binding,
                const std::vector<size_t>& chosen,
                std::vector<Child>* children) {
    schema::Response response;
    uint64_t new_facts = node.facts;
    for (size_t i : chosen) {
      response.insert(plan_.pool[i].tuple);
      new_facts |= uint64_t{1} << i;
    }
    if (options_.require_idempotent) {
      schema::Access access{m, binding};
      for (const PathLink* link : node.links) {
        if (link->step.access == access &&
            link->step.response != response) {
          return;
        }
      }
    }
    schema::Transition t = schema::MakeTransition(
        schema_, node.config, schema::Access{m, std::move(binding)},
        response);

    // Advance the tableau over this letter.
    std::set<int> letter = TrueAtoms(t);
    std::set<int> next_states;
    bool may_end = false;
    for (int s : node.tableau) {
      for (int ei : plan_.edges_by_state[static_cast<size_t>(s)]) {
        const ltl::TableauEdge& e =
            plan_.tableau.edges[static_cast<size_t>(ei)];
        bool match = true;
        for (int p : e.pos_lits) {
          if (letter.count(p) == 0) {
            match = false;
            break;
          }
        }
        if (match) {
          for (int p : e.neg_lits) {
            if (letter.count(p) > 0) {
              match = false;
              break;
            }
          }
        }
        if (!match) continue;
        next_states.insert(e.to);
        may_end = may_end || e.may_end;
      }
    }
    if (next_states.empty() && !may_end) return;
    Child child;
    child.facts = new_facts;
    child.tableau.assign(next_states.begin(), next_states.end());
    child.post = std::move(t.post);
    child.step = schema::AccessStep{std::move(t.access),
                                    std::move(t.response)};
    child.key = schema::StepOrderKey(child.step);
    child.accepting = may_end;
    children->push_back(std::move(child));
  }

  const ZeroPlan& plan_;
  const schema::Schema& schema_;
  const ZeroSolverOptions& options_;
  engine::ExecOptions exec_;
  size_t workers_;
  engine::ShardedVisitedTable<VisitedEntry> visited_{64};
  engine::BestPathTracker<schema::AccessStep> best_;
  std::atomic<bool> truncated_{false};

  /// Compact-mode storage (see engine/cancel.h VisitedMode) and the
  /// byte accounting shared by both modes.
  bool compact_;
  store::TreeDb treedb_;
  engine::CompactVisitedTable compact_visited_{64};
  std::atomic<size_t> visited_bytes_{0};
  std::atomic<bool> memory_truncated_{false};
};

}  // namespace

Result<std::shared_ptr<const ZeroPlan>> PrepareZeroAry(
    const acc::AccPtr& formula, const schema::Schema& schema) {
  obs::Span span("prepare-zero");
  ZeroMetrics::Get().plan_builds->Inc();
  auto plan = std::make_shared<ZeroPlan>();
  plan->abstraction = acc::Abstract(formula);
  // 1. Reject formulas outside the (constant-extended) 0-ary fragment.
  for (const logic::PosFormulaPtr& atom : plan->abstraction.atoms) {
    Status s = CheckZeroAry(atom);
    if (!s.ok()) return s;
  }
  // 2. Build the canonical-witness pool (all-fresh canonical databases
  // plus capped fusion quotients).
  ACCLTL_RETURN_IF_ERROR(BuildPool(plan->abstraction, schema, &plan->pool,
                                   &plan->pool_fusion_truncated));
  if (plan->pool.size() > 63) {
    return Status::ResourceExhausted(
        "witness pool exceeds 63 facts; split the formula");
  }
  // 3. Build the LTL tableau for the skeleton.
  Result<ltl::TableauAutomaton> tableau =
      ltl::BuildTableau(plan->abstraction.skeleton, 1u << 18);
  if (!tableau.ok()) return tableau.status();
  plan->tableau = std::move(tableau.value());
  plan->edges_by_state.assign(
      static_cast<size_t>(plan->tableau.num_states), {});
  for (size_t i = 0; i < plan->tableau.edges.size(); ++i) {
    plan->edges_by_state[static_cast<size_t>(plan->tableau.edges[i].from)]
        .push_back(static_cast<int>(i));
  }
  return std::shared_ptr<const ZeroPlan>(std::move(plan));
}

Result<ZeroSolverResult> CheckZeroAryPrepared(
    const ZeroPlan& plan, const schema::Schema& schema,
    const ZeroSolverOptions& options, const engine::ExecOptions& exec) {
  ZeroSolver solver(plan, schema, options, exec);
  return solver.Run();
}

Result<ZeroSolverResult> CheckZeroArySatisfiable(
    const acc::AccPtr& formula, const schema::Schema& schema,
    const ZeroSolverOptions& options, const engine::ExecOptions& exec) {
  Result<std::shared_ptr<const ZeroPlan>> plan =
      PrepareZeroAry(formula, schema);
  if (!plan.ok()) return plan.status();
  return CheckZeroAryPrepared(*plan.value(), schema, options, exec);
}

}  // namespace analysis
}  // namespace accltl
