#ifndef ACCLTL_ANALYSIS_MINIMIZE_H_
#define ACCLTL_ANALYSIS_MINIMIZE_H_

#include <functional>

#include "src/accltl/formula.h"
#include "src/automata/a_automaton.h"
#include "src/schema/access.h"

namespace accltl {
namespace analysis {

/// Keep-predicate over candidate paths; ShrinkPath only returns paths
/// the predicate accepts.
using PathPredicate = std::function<bool(const schema::AccessPath&)>;

/// Greedily shrinks `path` while `keep` stays true: whole steps are
/// dropped (back to front), then individual response tuples, to a
/// fixpoint. The result is 1-minimal — no single step or response
/// tuple can be removed — but not necessarily globally minimal
/// (delta-debugging style). If `keep(path)` is false, returns `path`
/// unchanged.
///
/// Deterministic; cost is O(rounds · path length · cost(keep)).
schema::AccessPath ShrinkPath(const schema::AccessPath& path,
                              const PathPredicate& keep);

/// Shrinks a satisfying path of an AccLTL formula; the result still
/// satisfies the formula from `initial` (and stays grounded when
/// `grounded` is set).
schema::AccessPath ShrinkWitness(const acc::AccPtr& formula,
                                 const schema::Schema& schema,
                                 const schema::Instance& initial,
                                 const schema::AccessPath& witness,
                                 bool grounded = false);

/// Shrinks an accepting path of an A-automaton.
schema::AccessPath ShrinkAutomatonWitness(const automata::AAutomaton& a,
                                          const schema::Schema& schema,
                                          const schema::Instance& initial,
                                          const schema::AccessPath& witness,
                                          bool grounded = false);

}  // namespace analysis
}  // namespace accltl

#endif  // ACCLTL_ANALYSIS_MINIMIZE_H_
