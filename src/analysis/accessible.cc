#include "src/analysis/accessible.h"

#include <set>
#include <unordered_set>

#include "src/store/fact_store.h"

namespace accltl {
namespace analysis {

schema::Instance AccessiblePart(const schema::Schema& schema,
                                const schema::Instance& universe,
                                const schema::Instance& initial,
                                const std::vector<Value>& seed_values) {
  const store::Store& store = store::Store::Get();
  schema::Instance known = initial;
  // The fixpoint runs entirely on interned ids: grounded-ness checks
  // are integer set probes, and revealed facts transfer by id.
  std::unordered_set<store::ValueId> values;
  for (store::ValueId v : initial.ActiveDomainIds()) values.insert(v);
  for (const Value& v : seed_values) {
    values.insert(store::Store::Get().InternValue(v));
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (schema::AccessMethodId m = 0; m < schema.num_access_methods(); ++m) {
      const schema::AccessMethod& am = schema.method(m);
      // Try every grounded binding: tuples over known values with the
      // right types. Rather than enumerating the full product, scan the
      // universe's tuples and check their input projections are known —
      // equivalent and linear in the universe.
      for (store::FactId fact : universe.facts(am.relation)->ids()) {
        const std::vector<store::ValueId>& vals = store.fact_values(fact);
        bool grounded = true;
        for (schema::Position p : am.input_positions) {
          if (values.count(vals[static_cast<size_t>(p)]) == 0) {
            grounded = false;
            break;
          }
        }
        if (!grounded) continue;
        if (known.AddFactId(am.relation, fact)) {
          changed = true;
          for (store::ValueId v : vals) values.insert(v);
        }
      }
    }
  }
  return known;
}

datalog::Program AccessibleDatalogProgram(const schema::Schema& schema) {
  datalog::Program prog;
  auto var = [](int i) { return logic::Term::Var("x" + std::to_string(i)); };

  // Seed values are accessible.
  prog.AddRule(datalog::DlRule{datalog::DlAtom{"accval", {var(0)}},
                               {datalog::DlAtom{"seedval", {var(0)}}}});

  for (schema::AccessMethodId m = 0; m < schema.num_access_methods(); ++m) {
    const schema::AccessMethod& am = schema.method(m);
    const schema::Relation& rel = schema.relation(am.relation);
    // acc_R(x1..xn) :- R(x1..xn), accval(x_p) for each input position p.
    datalog::DlRule rule;
    std::vector<logic::Term> xs;
    for (int i = 0; i < rel.arity(); ++i) xs.push_back(var(i));
    rule.head = datalog::DlAtom{"acc_" + rel.name, xs};
    rule.body.push_back(datalog::DlAtom{rel.name, xs});
    for (schema::Position p : am.input_positions) {
      rule.body.push_back(datalog::DlAtom{"accval", {var(p)}});
    }
    prog.AddRule(std::move(rule));
    // Every value of an accessible tuple becomes accessible.
    for (int i = 0; i < rel.arity(); ++i) {
      prog.AddRule(
          datalog::DlRule{datalog::DlAtom{"accval", {var(i)}},
                          {datalog::DlAtom{"acc_" + rel.name, xs}}});
    }
  }
  prog.SetGoal("accval");
  return prog;
}

datalog::DlDatabase EncodeForDatalog(const schema::Schema& schema,
                                     const schema::Instance& universe,
                                     const std::vector<Value>& seed_values) {
  datalog::DlDatabase db;
  for (schema::RelationId r = 0; r < schema.num_relations(); ++r) {
    for (const Tuple& t : universe.tuples(r)) {
      db.AddFact(schema.relation(r).name, t);
    }
  }
  for (const Value& v : seed_values) db.AddFact("seedval", Tuple{v});
  return db;
}

schema::Instance DecodeAccessible(const schema::Schema& schema,
                                  const datalog::DlDatabase& result) {
  schema::Instance out(schema);
  for (schema::RelationId r = 0; r < schema.num_relations(); ++r) {
    const std::set<Tuple>* tuples =
        result.GetTuples("acc_" + schema.relation(r).name);
    if (tuples == nullptr) continue;
    for (const Tuple& t : *tuples) out.AddFact(r, t);
  }
  return out;
}

}  // namespace analysis
}  // namespace accltl
