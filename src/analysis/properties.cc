#include "src/analysis/properties.h"

#include <cassert>

namespace accltl {
namespace analysis {

using acc::AccFormula;
using acc::AccPtr;
using logic::PosFormula;
using logic::PosFormulaPtr;
using logic::PredSpace;
using logic::Term;

acc::AccPtr NonContainmentFormula(const PosFormulaPtr& q1,
                                  const PosFormulaPtr& q2) {
  PosFormulaPtr q1post = logic::ShiftPlainSpace(q1, PredSpace::kPost);
  PosFormulaPtr q2post = logic::ShiftPlainSpace(q2, PredSpace::kPost);
  return AccFormula::Eventually(
      AccFormula::And({AccFormula::Atom(q1post),
                       AccFormula::Not(AccFormula::Atom(q2post))}));
}

acc::AccPtr LongTermRelevanceFormula(const schema::Schema& schema,
                                     schema::AccessMethodId method,
                                     const Tuple& binding,
                                     const PosFormulaPtr& q) {
  (void)schema;
  PosFormulaPtr qpre = logic::ShiftPlainSpace(q, PredSpace::kPre);
  PosFormulaPtr qpost = logic::ShiftPlainSpace(q, PredSpace::kPost);
  std::vector<Term> terms;
  terms.reserve(binding.size());
  for (const Value& v : binding) terms.push_back(Term::Const(v));
  PosFormulaPtr bind_atom =
      PosFormula::MakeAtom(logic::Bind(method), std::move(terms));
  return AccFormula::Eventually(AccFormula::And(
      {AccFormula::Not(AccFormula::Atom(qpre)),
       AccFormula::Atom(PosFormula::And({bind_atom, qpost}))}));
}

logic::PosFormulaPtr DisjointnessViolation(
    const schema::Schema& schema, const schema::DisjointnessConstraint& c,
    PredSpace space) {
  // EXISTS shared, ... R(..shared..) AND S(..shared..)
  std::vector<Term> r_terms, s_terms;
  std::vector<std::string> vars;
  for (int i = 0; i < schema.relation(c.r).arity(); ++i) {
    std::string v = "dr" + std::to_string(i);
    r_terms.push_back(Term::Var(v));
    vars.push_back(v);
  }
  for (int i = 0; i < schema.relation(c.s).arity(); ++i) {
    if (i == c.s_position) {
      s_terms.push_back(Term::Var("dr" + std::to_string(c.r_position)));
      continue;
    }
    std::string v = "ds" + std::to_string(i);
    s_terms.push_back(Term::Var(v));
    vars.push_back(v);
  }
  PosFormulaPtr body = PosFormula::And(
      {PosFormula::MakeAtom(logic::PredicateRef{space, c.r},
                            std::move(r_terms)),
       PosFormula::MakeAtom(logic::PredicateRef{space, c.s},
                            std::move(s_terms))});
  return PosFormula::Exists(std::move(vars), std::move(body));
}

acc::AccPtr DisjointnessRestriction(const schema::Schema& schema,
                                    const schema::DisjointnessConstraint& c) {
  return AccFormula::Globally(AccFormula::Not(
      AccFormula::Atom(DisjointnessViolation(schema, c, PredSpace::kPost))));
}

acc::AccPtr FdRestriction(const schema::Schema& schema,
                          const schema::FunctionalDependency& fd) {
  int arity = schema.relation(fd.relation).arity();
  std::vector<Term> y, yp;
  std::vector<std::string> vars;
  for (int i = 0; i < arity; ++i) {
    y.push_back(Term::Var("fy" + std::to_string(i)));
    yp.push_back(Term::Var("fz" + std::to_string(i)));
    vars.push_back("fy" + std::to_string(i));
    vars.push_back("fz" + std::to_string(i));
  }
  std::vector<PosFormulaPtr> conjuncts = {
      PosFormula::MakeAtom(logic::Pre(fd.relation), y),
      PosFormula::MakeAtom(logic::Pre(fd.relation), yp)};
  for (schema::Position p : fd.lhs) {
    conjuncts.push_back(
        PosFormula::Eq(y[static_cast<size_t>(p)], yp[static_cast<size_t>(p)]));
  }
  conjuncts.push_back(PosFormula::Neq(y[static_cast<size_t>(fd.rhs)],
                                      yp[static_cast<size_t>(fd.rhs)]));
  PosFormulaPtr violation =
      PosFormula::Exists(std::move(vars), PosFormula::And(conjuncts));
  return AccFormula::Not(
      AccFormula::Eventually(AccFormula::Atom(std::move(violation))));
}

namespace {

/// ¬IsBind_m() rewritten positively (§6): every transition uses exactly
/// one method, so "not m" is the disjunction of all other methods.
PosFormulaPtr OtherMethodUsed(const schema::Schema& schema,
                              schema::AccessMethodId m) {
  std::vector<PosFormulaPtr> options;
  for (schema::AccessMethodId other = 0;
       other < schema.num_access_methods(); ++other) {
    if (other == m) continue;
    options.push_back(PosFormula::MakeAtom(logic::Bind(other), {}));
  }
  return options.empty() ? PosFormula::False()
                         : PosFormula::Or(std::move(options));
}

}  // namespace

acc::AccPtr AccessOrderRestriction(const schema::Schema& schema,
                                   schema::AccessMethodId earlier,
                                   schema::AccessMethodId later) {
  // "No access with `later` before one with `earlier`", kept
  // binding-positive: (¬later U earlier) ∨ G ¬later, with ¬later
  // rewritten via OtherMethodUsed. (Atoms under G's double negation
  // stay positive.)
  PosFormulaPtr not_later = OtherMethodUsed(schema, later);
  PosFormulaPtr earlier_used =
      PosFormula::MakeAtom(logic::Bind(earlier), {});
  return AccFormula::Or(
      {AccFormula::Until(AccFormula::Atom(not_later),
                         AccFormula::Atom(earlier_used)),
       AccFormula::Globally(AccFormula::Atom(not_later))});
}

acc::AccPtr GroundednessFormula(const schema::Schema& schema) {
  // G ⋀_AcM ( IsBind_AcM(x̄) → each x_i occurs in some Rpre )  — encoded
  // positively per §4: ∃x̄ IsBind(x̄) ∧ ⋀_i ⋁_R ∃ȳ R_pre(ȳ) ∧ ⋁_j y_j = x_i,
  // disjoined over methods (every transition uses exactly one method).
  std::vector<AccPtr> per_method;
  for (schema::AccessMethodId m = 0; m < schema.num_access_methods(); ++m) {
    const schema::AccessMethod& am = schema.method(m);
    const schema::Relation& mrel = schema.relation(am.relation);
    std::vector<std::string> xs;
    std::vector<Term> x_terms;
    for (int i = 0; i < am.num_inputs(); ++i) {
      xs.push_back("gx" + std::to_string(i));
      x_terms.push_back(Term::Var(xs.back()));
    }
    std::vector<PosFormulaPtr> conjuncts = {
        PosFormula::MakeAtom(logic::Bind(m), x_terms)};
    for (int i = 0; i < am.num_inputs(); ++i) {
      ValueType want = mrel.position_types[static_cast<size_t>(
          am.input_positions[i])];
      std::vector<PosFormulaPtr> options;
      for (schema::RelationId r = 0; r < schema.num_relations(); ++r) {
        const schema::Relation& rel = schema.relation(r);
        std::vector<Term> ys;
        std::vector<std::string> yvars;
        std::vector<PosFormulaPtr> eq_options;
        for (int j = 0; j < rel.arity(); ++j) {
          std::string yv =
              "gy" + std::to_string(r) + "_" + std::to_string(j);
          ys.push_back(Term::Var(yv));
          yvars.push_back(yv);
          if (rel.position_types[static_cast<size_t>(j)] == want) {
            eq_options.push_back(
                PosFormula::Eq(Term::Var(yv), Term::Var(xs[i])));
          }
        }
        if (eq_options.empty()) continue;
        options.push_back(PosFormula::Exists(
            std::move(yvars),
            PosFormula::And({PosFormula::MakeAtom(logic::Pre(r), ys),
                             PosFormula::Or(std::move(eq_options))})));
      }
      conjuncts.push_back(options.empty() ? PosFormula::False()
                                          : PosFormula::Or(options));
    }
    PosFormulaPtr sentence = PosFormula::Exists(
        std::move(xs), PosFormula::And(std::move(conjuncts)));
    if (am.num_inputs() == 0) {
      // A no-input access is always grounded.
      sentence = PosFormula::MakeAtom(logic::Bind(m), {});
    }
    per_method.push_back(AccFormula::Atom(std::move(sentence)));
  }
  assert(!per_method.empty());
  return AccFormula::Globally(AccFormula::Or(std::move(per_method)));
}

acc::AccPtr DataflowRestriction(const schema::Schema& schema,
                                schema::AccessMethodId method,
                                schema::RelationId source,
                                schema::Position source_position) {
  const schema::Relation& rel = schema.relation(source);
  // G ( IsBind_m() → ∃n IsBind_m(n) ∧ ∃ȳ R_pre(... n at position ...) )
  // encoded positively as the Example 2.3 restriction.
  std::vector<Term> ys;
  std::vector<std::string> yvars;
  for (int j = 0; j < rel.arity(); ++j) {
    if (j == source_position) {
      ys.push_back(Term::Var("dfn"));
      continue;
    }
    std::string v = "dfy" + std::to_string(j);
    ys.push_back(Term::Var(v));
    yvars.push_back(v);
  }
  PosFormulaPtr flow = PosFormula::Exists(
      {"dfn"},
      PosFormula::And(
          {PosFormula::MakeAtom(logic::Bind(method), {Term::Var("dfn")}),
           PosFormula::Exists(std::move(yvars),
                              PosFormula::MakeAtom(logic::Pre(source), ys))}));
  // G ( used → flow ) = G ( other-method-used ∨ flow ), binding-positive
  // via the §6 rewriting of ¬IsBind.
  return AccFormula::Globally(AccFormula::Or(
      {AccFormula::Atom(OtherMethodUsed(schema, method)),
       AccFormula::Atom(std::move(flow))}));
}

namespace {

automata::Guard SigmaGuard(
    const schema::Schema& schema,
    const std::vector<schema::DisjointnessConstraint>& disjointness) {
  automata::Guard g;
  g.positive = PosFormula::True();
  for (const schema::DisjointnessConstraint& c : disjointness) {
    g.negated.push_back(
        DisjointnessViolation(schema, c, PredSpace::kPost));
  }
  return g;
}

}  // namespace

automata::AAutomaton NonContainmentAutomaton(
    const schema::Schema& schema, const PosFormulaPtr& q1,
    const PosFormulaPtr& q2,
    const std::vector<schema::DisjointnessConstraint>& disjointness) {
  automata::AAutomaton a;
  int s0 = a.AddState();
  int s1 = a.AddState();
  a.SetInitial(s0);
  a.AddAccepting(s1);
  a.AddTransition(s0, SigmaGuard(schema, disjointness), s0);
  automata::Guard final_guard = SigmaGuard(schema, disjointness);
  final_guard.positive = logic::ShiftPlainSpace(q1, PredSpace::kPost);
  final_guard.negated.push_back(
      logic::ShiftPlainSpace(q2, PredSpace::kPost));
  a.AddTransition(s0, std::move(final_guard), s1);
  return a;
}

automata::AAutomaton RelevanceAutomaton(
    const schema::Schema& schema, schema::AccessMethodId method,
    const Tuple& binding, const PosFormulaPtr& q,
    const std::vector<schema::DisjointnessConstraint>& disjointness) {
  automata::AAutomaton a;
  int s0 = a.AddState();
  int s1 = a.AddState();
  a.SetInitial(s0);
  a.AddAccepting(s1);
  a.AddTransition(s0, SigmaGuard(schema, disjointness), s0);
  automata::Guard flip = SigmaGuard(schema, disjointness);
  std::vector<Term> terms;
  for (const Value& v : binding) terms.push_back(Term::Const(v));
  flip.positive = PosFormula::And(
      {PosFormula::MakeAtom(logic::Bind(method), std::move(terms)),
       logic::ShiftPlainSpace(q, PredSpace::kPost)});
  flip.negated.push_back(logic::ShiftPlainSpace(q, PredSpace::kPre));
  a.AddTransition(s0, std::move(flip), s1);
  a.AddTransition(s1, SigmaGuard(schema, disjointness), s1);
  return a;
}

}  // namespace analysis
}  // namespace accltl
