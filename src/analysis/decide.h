#ifndef ACCLTL_ANALYSIS_DECIDE_H_
#define ACCLTL_ANALYSIS_DECIDE_H_

#include <string>
#include <vector>

#include "src/accltl/formula.h"
#include "src/accltl/fragments.h"
#include "src/analysis/zero_solver.h"
#include "src/automata/emptiness.h"
#include "src/automata/progressive.h"
#include "src/schema/dependencies.h"

namespace accltl {
namespace analysis {

/// Three-valued outcome: bounded engines may be unable to conclude.
enum class Answer {
  kYes,
  kNo,
  kUnknown,
};

const char* AnswerName(Answer a);

struct Decision {
  Answer satisfiable = Answer::kUnknown;
  /// Fragment the formula was classified into (Figure 2).
  acc::Fragment fragment = acc::Fragment::kFull;
  bool uses_inequality = false;
  /// Engine that produced the answer: "zero-ary", "automata-bounded",
  /// "automata-datalog".
  std::string engine;
  /// Witness path when satisfiable.
  bool has_witness = false;
  schema::AccessPath witness;
};

struct DecideOptions {
  /// Restrict to grounded access paths.
  bool grounded = false;
  /// Search workers for the witness engines (engine::Explorer). Copied
  /// into both `zero.num_threads` and `bounded.num_threads`; both
  /// engines run on the shared parallel substrate and their results
  /// are deterministic in the worker count (see emptiness.h and
  /// zero_solver.h).
  size_t num_threads = 1;
  /// Run the Lemma 4.9/4.10 Datalog pipeline to certify emptiness when
  /// the bounded search finds no witness (AccLTL+ only).
  bool use_datalog_pipeline = false;
  /// Shrink returned witnesses to 1-minimal paths (analysis/minimize.h).
  bool shrink_witness = false;
  ZeroSolverOptions zero;
  automata::WitnessSearchOptions bounded;
  automata::DecomposeOptions decompose;
};

/// Routes a satisfiability question to the right engine per Table 1:
///  - no variable-term IsBind atoms → the ZeroSolver (complete;
///    Thms 4.12/4.14/5.1),
///  - binding-positive, ≠-free → compile (Lemma 4.5) + bounded witness
///    search, optionally certified empty via the Datalog pipeline
///    (Thms 4.2/4.6),
///  - otherwise (undecidable fragments, Thms 3.1/5.2) → bounded
///    semi-decision: kYes with witness, else kUnknown.
Result<Decision> DecideSatisfiability(const acc::AccPtr& formula,
                                      const schema::Schema& schema,
                                      const DecideOptions& options = {});

/// The validity problem (§2, "Basic Computational Problems"): does
/// *every* access path satisfy `formula`? Decided through the
/// negation's satisfiability, as the paper prescribes ("bounds for
/// validity will follow from our results on satisfiability"). A
/// negation witness is returned as the counterexample path. Note the
/// routing consequence: the negation of an AccLTL+ formula is
/// generally not binding-positive, so validity is decided exactly for
/// the 0-ary fragments and semi-decided (counterexample search)
/// elsewhere. In the returned Decision, `satisfiable` reads as *valid*:
/// kYes = every path satisfies the formula; kNo = the witness is a
/// counterexample path.
Result<Decision> DecideValidity(const acc::AccPtr& formula,
                                const schema::Schema& schema,
                                const DecideOptions& options = {});

/// Example 2.2 / Prop. 4.4: is q1 contained in q2 under grounded access
/// patterns (with optional disjointness constraints)? Decided through
/// the negation's satisfiability; kYes means *contained*.
Result<Decision> ContainedUnderAccessPatterns(
    const logic::PosFormulaPtr& q1, const logic::PosFormulaPtr& q2,
    const schema::Schema& schema,
    const std::vector<schema::DisjointnessConstraint>& disjointness = {},
    const DecideOptions& options = {});

/// Example 2.3 / Prop. 4.4: is the boolean access (method, binding)
/// long-term relevant for q? kYes means relevant, with a witness path.
Result<Decision> IsLongTermRelevant(
    const schema::Schema& schema, schema::AccessMethodId method,
    const Tuple& binding, const logic::PosFormulaPtr& q,
    const std::vector<schema::DisjointnessConstraint>& disjointness = {},
    const DecideOptions& options = {});

}  // namespace analysis
}  // namespace accltl

#endif  // ACCLTL_ANALYSIS_DECIDE_H_
