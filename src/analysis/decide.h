#ifndef ACCLTL_ANALYSIS_DECIDE_H_
#define ACCLTL_ANALYSIS_DECIDE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/accltl/formula.h"
#include "src/accltl/fragments.h"
#include "src/analysis/zero_solver.h"
#include "src/automata/a_automaton.h"
#include "src/automata/emptiness.h"
#include "src/automata/progressive.h"
#include "src/engine/cancel.h"
#include "src/schema/dependencies.h"

namespace accltl {
namespace analysis {

/// Three-valued outcome: bounded engines may be unable to conclude.
enum class Answer {
  kYes,
  kNo,
  kUnknown,
};

const char* AnswerName(Answer a);

struct Decision {
  Answer satisfiable = Answer::kUnknown;
  /// Fragment the formula was classified into (Figure 2).
  acc::Fragment fragment = acc::Fragment::kFull;
  bool uses_inequality = false;
  /// Engine that produced the answer: "zero-ary", "automata-bounded",
  /// "automata-datalog".
  std::string engine;
  /// Witness path when satisfiable.
  bool has_witness = false;
  schema::AccessPath witness;
  /// Search nodes expanded by the answering engine (0 for the pure
  /// Datalog pipeline).
  size_t nodes_explored = 0;
  /// True when a node/realization budget cut the answering engine's
  /// search (the reason a kUnknown is not a kNo).
  bool exhausted_budget = false;
  /// True when `DecideOptions::exec.cancel` fired and cut the search:
  /// `satisfiable` is then kUnknown unless a sound witness was already
  /// in hand.
  bool cancelled = false;
  /// Logical bytes held live by the answering engine's visited set at
  /// the end of its search (plus the treedb arena under
  /// VisitedMode::kCompact; 0 for the pure Datalog pipeline).
  size_t visited_bytes = 0;
  /// Interned tree nodes (kCompact only; 0 under kExact).
  size_t treedb_nodes = 0;
};

struct DecideOptions {
  /// Restrict to grounded access paths.
  bool grounded = false;
  /// The single execution-context source (worker count, cancellation)
  /// for *every* engine a decision touches — the zero-ary solver and
  /// the bounded automata search always observe this exact value, so
  /// their worker counts can never disagree (the engines' option
  /// structs deliberately carry no thread knob of their own). Both
  /// engines run on the shared parallel substrate and their results
  /// are deterministic in the worker count (see emptiness.h and
  /// zero_solver.h).
  engine::ExecOptions exec;
  /// Run the Lemma 4.9/4.10 Datalog pipeline to certify emptiness when
  /// the bounded search finds no witness (AccLTL+ only).
  bool use_datalog_pipeline = false;
  /// Shrink returned witnesses to 1-minimal paths (analysis/minimize.h).
  bool shrink_witness = false;
  ZeroSolverOptions zero;
  automata::WitnessSearchOptions bounded;
  automata::DecomposeOptions decompose;
};

/// The per-formula state DecideSatisfiability rebuilds on every call —
/// fragment classification (Figure 2), the zero-ary engine's plan
/// (pool + tableau), the compiled Lemma 4.5 A-automaton — computed
/// once and immutable thereafter. Share one instance across any
/// number of concurrent DecidePrepared calls; the service layer
/// (src/service/) wraps this in its PreparedQuery.
struct PreparedFormula {
  acc::AccPtr formula;
  acc::Fragment fragment = acc::Fragment::kFull;
  bool uses_inequality = false;
  /// Zero-ary engine plan; null when the formula is outside the 0-ary
  /// fragment (`zero_status` says why — kUnsupported routes to the
  /// automata engines, any other code is a hard error surfaced by
  /// DecidePrepared, matching the one-shot routing).
  std::shared_ptr<const ZeroPlan> zero_plan;
  Status zero_status;
  /// Compiled A-automaton; null when the formula is not compilable
  /// (`compile_status` says why, same convention). Only built when the
  /// zero-ary engine does not apply — the zero solver is complete for
  /// its fragment, so the automaton would never be consulted.
  std::shared_ptr<const automata::AAutomaton> automaton;
  Status compile_status;
};

/// Builds the prepared state (parse-free: the formula is already an
/// AST). Fails only on hard setup errors the one-shot path would also
/// fail on; fragment-routing misses are recorded in the embedded
/// statuses instead.
Result<PreparedFormula> PrepareSatisfiability(const acc::AccPtr& formula,
                                              const schema::Schema& schema);

/// DecideSatisfiability against a prepared formula: identical routing,
/// identical Decision (byte for byte — same engine choice, verdict and
/// witness), no per-call re-classification or re-compilation. The
/// schema must be the one the formula was prepared against.
Result<Decision> DecidePrepared(const PreparedFormula& prepared,
                                const schema::Schema& schema,
                                const DecideOptions& options = {});

/// Routes a satisfiability question to the right engine per Table 1:
///  - no variable-term IsBind atoms → the ZeroSolver (complete;
///    Thms 4.12/4.14/5.1),
///  - binding-positive, ≠-free → compile (Lemma 4.5) + bounded witness
///    search, optionally certified empty via the Datalog pipeline
///    (Thms 4.2/4.6),
///  - otherwise (undecidable fragments, Thms 3.1/5.2) → bounded
///    semi-decision: kYes with witness, else kUnknown.
Result<Decision> DecideSatisfiability(const acc::AccPtr& formula,
                                      const schema::Schema& schema,
                                      const DecideOptions& options = {});

/// The validity problem (§2, "Basic Computational Problems"): does
/// *every* access path satisfy `formula`? Decided through the
/// negation's satisfiability, as the paper prescribes ("bounds for
/// validity will follow from our results on satisfiability"). A
/// negation witness is returned as the counterexample path. Note the
/// routing consequence: the negation of an AccLTL+ formula is
/// generally not binding-positive, so validity is decided exactly for
/// the 0-ary fragments and semi-decided (counterexample search)
/// elsewhere. In the returned Decision, `satisfiable` reads as *valid*:
/// kYes = every path satisfies the formula; kNo = the witness is a
/// counterexample path.
Result<Decision> DecideValidity(const acc::AccPtr& formula,
                                const schema::Schema& schema,
                                const DecideOptions& options = {});

/// Example 2.2 / Prop. 4.4: is q1 contained in q2 under grounded access
/// patterns (with optional disjointness constraints)? Decided through
/// the negation's satisfiability; kYes means *contained*.
Result<Decision> ContainedUnderAccessPatterns(
    const logic::PosFormulaPtr& q1, const logic::PosFormulaPtr& q2,
    const schema::Schema& schema,
    const std::vector<schema::DisjointnessConstraint>& disjointness = {},
    const DecideOptions& options = {});

/// Example 2.3 / Prop. 4.4: is the boolean access (method, binding)
/// long-term relevant for q? kYes means relevant, with a witness path.
Result<Decision> IsLongTermRelevant(
    const schema::Schema& schema, schema::AccessMethodId method,
    const Tuple& binding, const logic::PosFormulaPtr& q,
    const std::vector<schema::DisjointnessConstraint>& disjointness = {},
    const DecideOptions& options = {});

}  // namespace analysis
}  // namespace accltl

#endif  // ACCLTL_ANALYSIS_DECIDE_H_
