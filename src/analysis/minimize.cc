#include "src/analysis/minimize.h"

#include <vector>

#include "src/accltl/semantics.h"

namespace accltl {
namespace analysis {

namespace {

schema::AccessPath WithoutStep(const schema::AccessPath& path, size_t drop) {
  std::vector<schema::AccessStep> steps;
  steps.reserve(path.size() - 1);
  for (size_t i = 0; i < path.size(); ++i) {
    if (i != drop) steps.push_back(path.step(i));
  }
  return schema::AccessPath(std::move(steps));
}

schema::AccessPath WithoutResponseTuple(const schema::AccessPath& path,
                                        size_t step, const Tuple& tuple) {
  std::vector<schema::AccessStep> steps;
  steps.reserve(path.size());
  for (size_t i = 0; i < path.size(); ++i) {
    schema::AccessStep s = path.step(i);
    if (i == step) s.response.erase(tuple);
    steps.push_back(std::move(s));
  }
  return schema::AccessPath(std::move(steps));
}

}  // namespace

schema::AccessPath ShrinkPath(const schema::AccessPath& path,
                              const PathPredicate& keep) {
  if (!keep(path)) return path;
  schema::AccessPath current = path;
  bool changed = true;
  while (changed) {
    changed = false;
    // Drop whole steps, back to front (later steps usually carry the
    // padding the searches introduce).
    for (size_t i = current.size(); i-- > 0;) {
      schema::AccessPath candidate = WithoutStep(current, i);
      if (candidate.empty()) continue;  // paths have at least one access
      if (keep(candidate)) {
        current = std::move(candidate);
        changed = true;
      }
    }
    // Drop individual response tuples.
    for (size_t i = 0; i < current.size(); ++i) {
      // Iterate over a snapshot: the candidate mutates the response.
      std::vector<Tuple> tuples(current.step(i).response.begin(),
                                current.step(i).response.end());
      for (const Tuple& t : tuples) {
        schema::AccessPath candidate = WithoutResponseTuple(current, i, t);
        if (keep(candidate)) {
          current = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  return current;
}

schema::AccessPath ShrinkWitness(const acc::AccPtr& formula,
                                 const schema::Schema& schema,
                                 const schema::Instance& initial,
                                 const schema::AccessPath& witness,
                                 bool grounded) {
  return ShrinkPath(witness, [&](const schema::AccessPath& p) {
    if (grounded && !p.IsGrounded(schema, initial)) return false;
    return acc::EvalOnPath(formula, schema, p, initial);
  });
}

schema::AccessPath ShrinkAutomatonWitness(const automata::AAutomaton& a,
                                          const schema::Schema& schema,
                                          const schema::Instance& initial,
                                          const schema::AccessPath& witness,
                                          bool grounded) {
  return ShrinkPath(witness, [&](const schema::AccessPath& p) {
    if (grounded && !p.IsGrounded(schema, initial)) return false;
    return automata::Accepts(a, schema, p, initial);
  });
}

}  // namespace analysis
}  // namespace accltl
