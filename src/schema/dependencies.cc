#include "src/schema/dependencies.h"

#include <set>

#include "src/common/strings.h"

namespace accltl {
namespace schema {

namespace {

std::string PositionsToString(const std::vector<Position>& ps) {
  std::vector<std::string> parts;
  parts.reserve(ps.size());
  for (Position p : ps) parts.push_back(std::to_string(p));
  return "[" + Join(parts, ",") + "]";
}

}  // namespace

bool FunctionalDependency::SatisfiedBy(const Instance& instance) const {
  const auto& tuples = instance.tuples(relation);
  for (auto it = tuples.begin(); it != tuples.end(); ++it) {
    auto jt = it;
    for (++jt; jt != tuples.end(); ++jt) {
      bool lhs_agree = true;
      for (Position p : lhs) {
        if ((*it)[static_cast<size_t>(p)] != (*jt)[static_cast<size_t>(p)]) {
          lhs_agree = false;
          break;
        }
      }
      if (lhs_agree &&
          (*it)[static_cast<size_t>(rhs)] != (*jt)[static_cast<size_t>(rhs)]) {
        return false;
      }
    }
  }
  return true;
}

std::string FunctionalDependency::ToString(const Schema& schema) const {
  return schema.relation(relation).name + ": " + PositionsToString(lhs) +
         " -> " + std::to_string(rhs);
}

bool InclusionDependency::SatisfiedBy(const Instance& instance) const {
  for (const Tuple& t : instance.tuples(source)) {
    Tuple projected;
    projected.reserve(source_positions.size());
    for (Position p : source_positions) {
      projected.push_back(t[static_cast<size_t>(p)]);
    }
    bool found = false;
    for (const Tuple& u : instance.tuples(target)) {
      bool match = true;
      for (size_t i = 0; i < target_positions.size(); ++i) {
        if (u[static_cast<size_t>(target_positions[i])] != projected[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string InclusionDependency::ToString(const Schema& schema) const {
  return schema.relation(source).name + PositionsToString(source_positions) +
         " subseteq " + schema.relation(target).name +
         PositionsToString(target_positions);
}

bool DisjointnessConstraint::SatisfiedBy(const Instance& instance) const {
  std::set<Value> left;
  for (const Tuple& t : instance.tuples(r)) {
    left.insert(t[static_cast<size_t>(r_position)]);
  }
  for (const Tuple& t : instance.tuples(s)) {
    if (left.count(t[static_cast<size_t>(s_position)]) > 0) return false;
  }
  return true;
}

std::string DisjointnessConstraint::ToString(const Schema& schema) const {
  return "disjoint(" + schema.relation(r).name + "." +
         std::to_string(r_position) + ", " + schema.relation(s).name + "." +
         std::to_string(s_position) + ")";
}

}  // namespace schema
}  // namespace accltl
