#include "src/schema/lts.h"

#include <algorithm>
#include <deque>
#include <map>

namespace accltl {
namespace schema {

std::string Transition::ToString(const Schema& schema) const {
  AccessStep step{access, response};
  return step.ToString(schema);
}

Transition MakeTransition(const Schema& schema, Instance pre, Access access,
                          Response response) {
  Transition t;
  t.post = pre;
  t.pre = std::move(pre);
  RelationId rel = schema.method(access.method).relation;
  for (const Tuple& tuple : response) t.post.AddFact(rel, tuple);
  t.access = std::move(access);
  t.response = std::move(response);
  return t;
}

namespace {

/// Enumerates candidate bindings for `method`: all tuples over the
/// candidate value pool, filtered by position types.
void EnumerateBindings(const Schema& schema, AccessMethodId method,
                       const std::vector<Value>& pool,
                       std::vector<Tuple>* out) {
  const AccessMethod& m = schema.method(method);
  const Relation& rel = schema.relation(m.relation);
  std::vector<std::vector<Value>> candidates(
      static_cast<size_t>(m.num_inputs()));
  for (int i = 0; i < m.num_inputs(); ++i) {
    ValueType want = rel.position_types[m.input_positions[i]];
    for (const Value& v : pool) {
      if (v.type() == want) candidates[static_cast<size_t>(i)].push_back(v);
    }
    if (candidates[static_cast<size_t>(i)].empty()) return;
  }
  Tuple current(static_cast<size_t>(m.num_inputs()));
  std::function<void(size_t)> rec = [&](size_t idx) {
    if (idx == candidates.size()) {
      out->push_back(current);
      return;
    }
    for (const Value& v : candidates[idx]) {
      current[idx] = v;
      rec(idx + 1);
    }
  };
  rec(0);
}

}  // namespace

std::vector<Transition> Successors(const Schema& schema,
                                   const Instance& current,
                                   const LtsOptions& options) {
  std::vector<Transition> out;
  // Candidate binding values: grounded mode restricts to the active
  // domain of the current configuration plus seeds; otherwise we also
  // allow any value of the hidden universe (finitely many candidates
  // standing in for "any value").
  std::set<Value> pool_set(options.seed_values.begin(),
                           options.seed_values.end());
  {
    std::set<Value> dom = current.ActiveDomain();
    pool_set.insert(dom.begin(), dom.end());
  }
  if (!options.grounded) {
    std::set<Value> udom = options.universe.ActiveDomain();
    pool_set.insert(udom.begin(), udom.end());
  }
  std::vector<Value> pool(pool_set.begin(), pool_set.end());

  for (AccessMethodId am = 0; am < schema.num_access_methods(); ++am) {
    const AccessMethod& m = schema.method(am);
    std::vector<Tuple> bindings;
    EnumerateBindings(schema, am, pool, &bindings);
    for (const Tuple& b : bindings) {
      std::vector<Tuple> matching =
          options.universe.Matching(m.relation, m.input_positions, b);
      bool exact = m.exact || options.exact_methods.count(am) > 0;
      std::vector<Response> responses;
      Response full(matching.begin(), matching.end());
      if (exact) {
        responses.push_back(std::move(full));
      } else {
        responses.push_back(Response{});  // empty response
        if (options.enumerate_singleton_responses) {
          for (const Tuple& t : matching) responses.push_back(Response{t});
        }
        if (matching.size() > 1) responses.push_back(std::move(full));
      }
      for (Response& r : responses) {
        out.push_back(MakeTransition(schema, current, Access{am, b},
                                     std::move(r)));
        if (out.size() >= options.max_successors_per_node) return out;
      }
    }
  }
  return out;
}

std::vector<LtsLevelStats> ExploreBreadthFirst(const Schema& schema,
                                               const Instance& initial,
                                               const LtsOptions& options,
                                               size_t max_depth,
                                               size_t max_nodes) {
  std::vector<LtsLevelStats> stats;
  std::set<Instance> seen;
  seen.insert(initial);
  std::vector<Instance> frontier = {initial};
  {
    LtsLevelStats s;
    s.depth = 0;
    s.distinct_configurations = 1;
    s.max_configuration_facts = initial.TotalFacts();
    stats.push_back(s);
  }
  for (size_t depth = 1; depth <= max_depth; ++depth) {
    LtsLevelStats s;
    s.depth = depth;
    std::vector<Instance> next;
    for (const Instance& node : frontier) {
      std::vector<Transition> succ = Successors(schema, node, options);
      s.transitions += succ.size();
      for (Transition& t : succ) {
        if (seen.size() >= max_nodes) break;
        if (seen.insert(t.post).second) {
          s.max_configuration_facts =
              std::max(s.max_configuration_facts, t.post.TotalFacts());
          next.push_back(std::move(t.post));
        }
      }
      if (seen.size() >= max_nodes) break;
    }
    s.distinct_configurations = next.size();
    stats.push_back(s);
    if (next.empty()) break;
    frontier = std::move(next);
  }
  return stats;
}

}  // namespace schema
}  // namespace accltl
