#include "src/schema/lts.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "src/store/match_index.h"

namespace accltl {
namespace schema {

std::string Transition::ToString(const Schema& schema) const {
  AccessStep step{access, response};
  return step.ToString(schema);
}

Transition MakeTransition(const Schema& schema, Instance pre, Access access,
                          Response response) {
  std::vector<store::FactId> ids;
  ids.reserve(response.size());
  for (const Tuple& tuple : response) {
    ids.push_back(store::Store::Get().InternTuple(tuple));
  }
  return MakeTransitionFromIds(schema, std::move(pre), std::move(access),
                               ids);
}

Transition MakeTransitionFromIds(const Schema& schema, Instance pre,
                                 Access access,
                                 const std::vector<store::FactId>& response) {
  const store::Store& store = store::Store::Get();
  Transition t;
  // post shares every relation of pre (COW); only the accessed
  // relation's fact set is derived, once, via the batch builder.
  Instance::Builder post(pre);
  RelationId rel = schema.method(access.method).relation;
  for (store::FactId fact : response) {
    post.Add(rel, fact);
    t.response.insert(store.tuple(fact));
  }
  t.post = std::move(post).Build();
  t.pre = std::move(pre);
  t.access = std::move(access);
  return t;
}

namespace {

/// Enumerates candidate bindings for `method`: all tuples over the
/// candidate value pool, filtered by position types.
void EnumerateBindings(const Schema& schema, AccessMethodId method,
                       const std::vector<Value>& pool,
                       std::vector<Tuple>* out) {
  const AccessMethod& m = schema.method(method);
  const Relation& rel = schema.relation(m.relation);
  std::vector<std::vector<Value>> candidates(
      static_cast<size_t>(m.num_inputs()));
  for (int i = 0; i < m.num_inputs(); ++i) {
    ValueType want = rel.position_types[m.input_positions[i]];
    for (const Value& v : pool) {
      if (v.type() == want) candidates[static_cast<size_t>(i)].push_back(v);
    }
    if (candidates[static_cast<size_t>(i)].empty()) return;
  }
  Tuple current(static_cast<size_t>(m.num_inputs()));
  std::function<void(size_t)> rec = [&](size_t idx) {
    if (idx == candidates.size()) {
      out->push_back(current);
      return;
    }
    for (const Value& v : candidates[idx]) {
      current[idx] = v;
      rec(idx + 1);
    }
  };
  rec(0);
}

}  // namespace

namespace {

/// Matching over the universe through the shared match index: facts
/// are selected by the first input position's index entry, then
/// filtered on the rest — no per-binding relation scans.
std::vector<store::FactId> IndexedMatching(const Instance& universe,
                                           RelationId rel,
                                           const std::vector<Position>& pos,
                                           const Tuple& binding,
                                           store::MatchIndexCache* index) {
  const store::Store& store = store::Store::Get();
  std::vector<store::FactId> out;
  if (pos.empty()) {
    out = universe.facts(rel)->ids();
    return out;
  }
  std::vector<store::ValueId> bound;
  bound.reserve(binding.size());
  for (const Value& v : binding) {
    store::ValueId vid = store.TryFindValue(v);
    if (vid == store::kNoValueId) return out;
    bound.push_back(vid);
  }
  const std::vector<store::FactId>& candidates =
      index->Lookup(universe.facts(rel), pos[0], bound[0]);
  for (store::FactId fact : candidates) {
    const std::vector<store::ValueId>& vals = store.fact_values(fact);
    bool match = true;
    for (size_t i = 1; i < pos.size(); ++i) {
      if (vals[static_cast<size_t>(pos[i])] != bound[i]) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(fact);
  }
  return out;
}

std::vector<Transition> SuccessorsImpl(const Schema& schema,
                                       const Instance& current,
                                       const LtsOptions& options,
                                       store::MatchIndexCache* index) {
  std::vector<Transition> out;
  const store::Store& store = store::Store::Get();
  // Candidate binding values: grounded mode restricts to the active
  // domain of the current configuration plus seeds; otherwise we also
  // allow any value of the hidden universe (finitely many candidates
  // standing in for "any value"). Assembled as interned ids — no
  // Value-set churn per node.
  std::vector<store::ValueId> pool_ids = current.ActiveDomainIds();
  for (const Value& v : options.seed_values) {
    pool_ids.push_back(store::Store::Get().InternValue(v));
  }
  if (!options.grounded) {
    std::vector<store::ValueId> udom = options.universe.ActiveDomainIds();
    pool_ids.insert(pool_ids.end(), udom.begin(), udom.end());
  }
  std::sort(pool_ids.begin(), pool_ids.end());
  pool_ids.erase(std::unique(pool_ids.begin(), pool_ids.end()),
                 pool_ids.end());
  std::vector<Value> pool;
  pool.reserve(pool_ids.size());
  for (store::ValueId v : pool_ids) pool.push_back(store.value(v));

  for (AccessMethodId am = 0; am < schema.num_access_methods(); ++am) {
    const AccessMethod& m = schema.method(am);
    std::vector<Tuple> bindings;
    EnumerateBindings(schema, am, pool, &bindings);
    for (const Tuple& b : bindings) {
      // Responses are enumerated as interned fact-id vectors: the
      // universe's facts are already interned, so building each
      // successor's post instance never re-hashes tuple data.
      std::vector<store::FactId> matching = IndexedMatching(
          options.universe, m.relation, m.input_positions, b, index);
      bool exact = m.exact || options.exact_methods.count(am) > 0;
      std::vector<std::vector<store::FactId>> responses;
      if (exact) {
        responses.push_back(matching);
      } else {
        responses.push_back({});  // empty response
        if (options.enumerate_singleton_responses) {
          for (store::FactId f : matching) responses.push_back({f});
        }
        if (matching.size() > 1) responses.push_back(matching);
      }
      for (const std::vector<store::FactId>& r : responses) {
        out.push_back(
            MakeTransitionFromIds(schema, current, Access{am, b}, r));
        if (out.size() >= options.max_successors_per_node) return out;
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Transition> Successors(const Schema& schema,
                                   const Instance& current,
                                   const LtsOptions& options) {
  store::MatchIndexCache index;
  return SuccessorsImpl(schema, current, options, &index);
}

std::vector<LtsLevelStats> ExploreBreadthFirst(const Schema& schema,
                                               const Instance& initial,
                                               const LtsOptions& options,
                                               size_t max_depth,
                                               size_t max_nodes) {
  std::vector<LtsLevelStats> stats;
  // Visited-configuration dedup keyed by the 64-bit configuration
  // hash; buckets hold the instances for exact confirmation (instances
  // are COW handles, so storing them is cheap).
  std::unordered_map<uint64_t, std::vector<Instance>> seen;
  size_t seen_count = 0;
  auto try_insert = [&](const Instance& inst) {
    std::vector<Instance>& bucket = seen[inst.hash()];
    for (const Instance& existing : bucket) {
      if (existing == inst) return false;
    }
    bucket.push_back(inst);
    ++seen_count;
    return true;
  };
  try_insert(initial);
  std::vector<Instance> frontier = {initial};
  {
    LtsLevelStats s;
    s.depth = 0;
    s.distinct_configurations = 1;
    s.max_configuration_facts = initial.TotalFacts();
    stats.push_back(s);
  }
  // One match index for the whole exploration: the universe's fact
  // sets are stable, so every level reuses the same per-relation index.
  store::MatchIndexCache index;
  for (size_t depth = 1; depth <= max_depth; ++depth) {
    LtsLevelStats s;
    s.depth = depth;
    std::vector<Instance> next;
    for (const Instance& node : frontier) {
      std::vector<Transition> succ = SuccessorsImpl(schema, node, options,
                                                    &index);
      s.transitions += succ.size();
      for (Transition& t : succ) {
        if (seen_count >= max_nodes) break;
        if (try_insert(t.post)) {
          s.max_configuration_facts =
              std::max(s.max_configuration_facts, t.post.TotalFacts());
          next.push_back(std::move(t.post));
        }
      }
      if (seen_count >= max_nodes) break;
    }
    s.distinct_configurations = next.size();
    stats.push_back(s);
    if (next.empty()) break;
    frontier = std::move(next);
  }
  return stats;
}

}  // namespace schema
}  // namespace accltl
