#include "src/schema/lts.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "src/engine/compact_table.h"
#include "src/engine/explorer.h"
#include "src/engine/visited_table.h"
#include "src/obs/metrics.h"
#include "src/store/match_index.h"
#include "src/store/treedb.h"

namespace accltl {
namespace schema {

std::string Transition::ToString(const Schema& schema) const {
  AccessStep step{access, response};
  return step.ToString(schema);
}

Transition MakeTransition(const Schema& schema, Instance pre, Access access,
                          Response response) {
  std::vector<store::FactId> ids;
  ids.reserve(response.size());
  for (const Tuple& tuple : response) {
    ids.push_back(store::Store::Get().InternTuple(tuple));
  }
  return MakeTransitionFromIds(schema, std::move(pre), std::move(access),
                               ids);
}

Transition MakeTransitionFromIds(const Schema& schema, Instance pre,
                                 Access access,
                                 const std::vector<store::FactId>& response) {
  const store::Store& store = store::Store::Get();
  Transition t;
  // post shares every relation of pre (COW); only the accessed
  // relation's fact set is derived, once, via the batch builder.
  Instance::Builder post(pre);
  RelationId rel = schema.method(access.method).relation;
  for (store::FactId fact : response) {
    post.Add(rel, fact);
    t.response.insert(store.tuple(fact));
  }
  t.post = std::move(post).Build();
  t.pre = std::move(pre);
  t.access = std::move(access);
  t.response_ids = response;
  return t;
}

namespace {

/// Enumerates candidate bindings for `method`: all tuples over the
/// candidate value pool, filtered by position types.
void EnumerateBindings(const Schema& schema, AccessMethodId method,
                       const std::vector<Value>& pool,
                       std::vector<Tuple>* out) {
  const AccessMethod& m = schema.method(method);
  const Relation& rel = schema.relation(m.relation);
  std::vector<std::vector<Value>> candidates(
      static_cast<size_t>(m.num_inputs()));
  for (int i = 0; i < m.num_inputs(); ++i) {
    ValueType want = rel.position_types[m.input_positions[i]];
    for (const Value& v : pool) {
      if (v.type() == want) candidates[static_cast<size_t>(i)].push_back(v);
    }
    if (candidates[static_cast<size_t>(i)].empty()) return;
  }
  Tuple current(static_cast<size_t>(m.num_inputs()));
  std::function<void(size_t)> rec = [&](size_t idx) {
    if (idx == candidates.size()) {
      out->push_back(current);
      return;
    }
    for (const Value& v : candidates[idx]) {
      current[idx] = v;
      rec(idx + 1);
    }
  };
  rec(0);
}

}  // namespace

namespace {

/// Appends every subset of `matching` with 1..max_size elements
/// (`exact_size` restricts to exactly max_size) in lexicographic index
/// order, stopping at `cap` total responses. This is the
/// result-bounded response rule; the oracle's NaiveSuccessors carries
/// a verbatim copy over Tuples — the two enumerations must stay in
/// lockstep for stat-for-stat agreement.
template <typename Elem>
void AppendBoundedSubsets(const std::vector<Elem>& matching, size_t max_size,
                          bool exact_size, size_t cap,
                          std::vector<std::vector<Elem>>* responses) {
  if (max_size == 0) return;
  std::vector<Elem> combo;
  std::function<void(size_t)> rec = [&](size_t start) {
    for (size_t i = start; i < matching.size() && responses->size() < cap;
         ++i) {
      combo.push_back(matching[i]);
      if (!exact_size || combo.size() == max_size) responses->push_back(combo);
      if (combo.size() < max_size) rec(i + 1);
      combo.pop_back();
    }
  };
  rec(0);
}

/// Matching over the universe through the shared match index: facts
/// are selected by the first input position's index entry, then
/// filtered on the rest — no per-binding relation scans. `Index` is
/// either the shared store::MatchIndexCache or a per-worker LocalView
/// (both expose the same Lookup).
template <typename Index>
std::vector<store::FactId> IndexedMatching(const Instance& universe,
                                           RelationId rel,
                                           const std::vector<Position>& pos,
                                           const Tuple& binding,
                                           Index* index) {
  const store::Store& store = store::Store::Get();
  std::vector<store::FactId> out;
  if (pos.empty()) {
    out = universe.facts(rel)->ids();
    return out;
  }
  std::vector<store::ValueId> bound;
  bound.reserve(binding.size());
  for (const Value& v : binding) {
    store::ValueId vid = store.TryFindValue(v);
    if (vid == store::kNoValueId) return out;
    bound.push_back(vid);
  }
  const std::vector<store::FactId>& candidates =
      index->Lookup(universe.facts(rel), pos[0], bound[0]);
  for (store::FactId fact : candidates) {
    const std::vector<store::ValueId>& vals = store.fact_values(fact);
    bool match = true;
    for (size_t i = 1; i < pos.size(); ++i) {
      if (vals[static_cast<size_t>(pos[i])] != bound[i]) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(fact);
  }
  return out;
}

template <typename Index>
std::vector<Transition> SuccessorsImpl(const Schema& schema,
                                       const Instance& current,
                                       const LtsOptions& options,
                                       Index* index) {
  std::vector<Transition> out;
  const store::Store& store = store::Store::Get();
  // Candidate binding values: grounded mode restricts to the active
  // domain of the current configuration plus seeds; otherwise we also
  // allow any value of the hidden universe (finitely many candidates
  // standing in for "any value"). Assembled as interned ids — no
  // Value-set churn per node.
  std::vector<store::ValueId> pool_ids = current.ActiveDomainIds();
  for (const Value& v : options.seed_values) {
    pool_ids.push_back(store::Store::Get().InternValue(v));
  }
  if (!options.grounded) {
    std::vector<store::ValueId> udom = options.universe.ActiveDomainIds();
    pool_ids.insert(pool_ids.end(), udom.begin(), udom.end());
  }
  std::sort(pool_ids.begin(), pool_ids.end());
  pool_ids.erase(std::unique(pool_ids.begin(), pool_ids.end()),
                 pool_ids.end());
  std::vector<Value> pool;
  pool.reserve(pool_ids.size());
  for (store::ValueId v : pool_ids) pool.push_back(store.value(v));

  for (AccessMethodId am = 0; am < schema.num_access_methods(); ++am) {
    const AccessMethod& m = schema.method(am);
    std::vector<Tuple> bindings;
    EnumerateBindings(schema, am, pool, &bindings);
    for (const Tuple& b : bindings) {
      // Responses are enumerated as interned fact-id vectors: the
      // universe's facts are already interned, so building each
      // successor's post instance never re-hashes tuple data.
      std::vector<store::FactId> matching = IndexedMatching(
          options.universe, m.relation, m.input_positions, b, index);
      bool exact = m.exact || options.exact_methods.count(am) > 0;
      std::vector<std::vector<store::FactId>> responses;
      if (m.bounded()) {
        // Result-bounded method: every <=k-subset of the matching set
        // is a possible response (the singleton-enumeration flag does
        // not apply — subset enumeration subsumes it). An exact
        // bounded method returns min(k, |matching|) tuples, so only
        // subsets of exactly that size are responses.
        size_t bound = static_cast<size_t>(m.result_bound);
        if (exact) {
          size_t take = std::min(bound, matching.size());
          if (take == 0) {
            responses.push_back({});
          } else {
            AppendBoundedSubsets(matching, take, /*exact_size=*/true,
                                 options.max_successors_per_node, &responses);
          }
        } else {
          responses.push_back({});  // the empty response is always allowed
          AppendBoundedSubsets(matching, bound, /*exact_size=*/false,
                               options.max_successors_per_node, &responses);
        }
      } else if (exact) {
        responses.push_back(matching);
      } else {
        responses.push_back({});  // empty response
        if (options.enumerate_singleton_responses) {
          for (store::FactId f : matching) responses.push_back({f});
          if (matching.size() > 1) responses.push_back(matching);
        } else if (!matching.empty()) {
          // The full matching set is always a well-formed response —
          // including when it is a single fact. (A singleton full
          // response used to be dropped whenever singleton enumeration
          // was off, silently losing reachable configurations.)
          responses.push_back(matching);
        }
      }
      for (const std::vector<store::FactId>& r : responses) {
        out.push_back(
            MakeTransitionFromIds(schema, current, Access{am, b}, r));
        if (out.size() >= options.max_successors_per_node) return out;
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Transition> Successors(const Schema& schema,
                                   const Instance& current,
                                   const LtsOptions& options) {
  store::MatchIndexCache index;
  return SuccessorsImpl(schema, current, options, &index);
}

namespace {

/// Frontier node of the breadth-first exploration: the configuration
/// plus (compact mode only) its tree-compressed identity — the
/// per-relation set refs children delta-extend, and the folded tuple
/// ref the seen-set stores.
struct LtsNode {
  Instance config;
  std::vector<store::TreeRef> rel_refs;
  store::TreeRef config_ref = store::kNilTreeRef;
};

}  // namespace

std::vector<LtsLevelStats> ExploreBreadthFirst(const Schema& schema,
                                               const Instance& initial,
                                               const LtsOptions& options,
                                               size_t max_depth,
                                               size_t max_nodes,
                                               const engine::ExecOptions& exec,
                                               LtsMemoryStats* memory) {
  std::vector<LtsLevelStats> stats;
  {
    LtsLevelStats s;
    s.depth = 0;
    s.distinct_configurations = 1;
    s.max_configuration_facts = initial.TotalFacts();
    stats.push_back(s);
  }
  bool compact = exec.visited_mode == engine::VisitedMode::kCompact;
  store::TreeDb treedb;
  engine::CompactRefSet ref_seen;
  // Logical footprint of one exact seen-entry: the full materialized
  // configuration — handle, per-relation set headers, and every fact
  // id (sizes, never capacities). COW sharing between entries is an
  // allocator courtesy, not a representation guarantee, so exact
  // accounting charges each entry its own state vector; that is
  // precisely the representation the tree database replaces, and the
  // sum over deduplicated configurations is schedule-independent.
  auto config_bytes = [](const Instance& c) {
    size_t b = sizeof(Instance) +
               static_cast<size_t>(c.num_relations()) *
                   (sizeof(store::FactSet::Ptr) + sizeof(store::FactSet));
    for (RelationId r = 0; r < c.num_relations(); ++r) {
      b += c.facts(r)->size() * sizeof(store::FactId);
    }
    return b;
  };
  size_t exact_bytes = config_bytes(initial);
  auto report_memory = [&]() {
    if (memory == nullptr) return;
    memory->visited_bytes =
        compact ? ref_seen.bytes() + treedb.bytes() : exact_bytes;
    memory->treedb_nodes = compact ? treedb.num_nodes() : 0;
  };
  auto root = std::make_unique<LtsNode>();
  root->config = initial;
  if (compact) {
    root->rel_refs.resize(schema.num_relations());
    for (RelationId r = 0; r < schema.num_relations(); ++r) {
      const std::vector<store::FactId>& ids = initial.facts(r)->ids();
      root->rel_refs[r] = treedb.SetFromKeys(ids.data(), ids.size());
    }
    root->config_ref =
        treedb.InternTuple(root->rel_refs.data(), root->rel_refs.size());
  }
  if (max_depth == 0) {
    report_memory();
    return stats;
  }

  size_t workers = std::max<size_t>(1, exec.num_threads);
  // Visited-configuration dedup. Exact mode keys the 64-bit
  // configuration hash; buckets hold the instances for exact
  // confirmation (instances are COW handles, so storing them is
  // cheap). Compact mode stores only the 4-byte tree ref — ref
  // equality is exact configuration equality (store/treedb.h), so the
  // two modes dedup identically. Either set is consulted only in the
  // serial barrier reduction.
  engine::ShardedVisitedTable<Instance> seen(64);
  auto equal = [](const Instance& a, const Instance& b) { return a == b; };
  size_t seen_count = 1;
  if (compact) {
    ref_seen.Insert(root->config_ref);
  } else {
    seen.CheckAndInsert(initial.hash(), initial, equal);
  }

  // One match index for the whole exploration: the universe's fact
  // sets are stable, so every level reuses the same per-relation
  // index; each worker replays resolved indexes through a lock-free
  // LocalView.
  store::MatchIndexCache index;
  std::vector<store::MatchIndexCache::LocalView> views;
  views.reserve(workers);
  for (size_t w = 0; w < workers; ++w) views.emplace_back(&index);

  std::atomic<size_t> level_transitions{0};
  bool stop = false;

  engine::Explorer<LtsNode> explorer;
  engine::Explorer<LtsNode>::Options eopts;
  eopts.num_threads = workers;
  eopts.cancel = exec.cancel;

  std::vector<std::unique_ptr<LtsNode>> roots;
  roots.push_back(std::move(root));
  engine::Explorer<LtsNode>::Stats run_stats = explorer.RunLevels(
      std::move(roots), eopts,
      [&](std::unique_ptr<LtsNode> node,
          engine::Explorer<LtsNode>::Context& ctx) {
        std::vector<Transition> succ = SuccessorsImpl(
            schema, node->config, options, &views[ctx.worker_id()]);
        level_transitions.fetch_add(succ.size(), std::memory_order_relaxed);
        for (Transition& t : succ) {
          auto child = std::make_unique<LtsNode>();
          if (compact) {
            // Delta extension: only the accessed relation's set ref
            // moves, then the O(log R) tuple spine re-interns — the
            // unchanged relations' subtrees are shared with the parent.
            RelationId rel = schema.method(t.access.method).relation;
            child->rel_refs = node->rel_refs;
            store::TreeRef set = child->rel_refs[rel];
            for (store::FactId f : t.response_ids) {
              set = treedb.InsertSet(set, f);
            }
            if (set != node->rel_refs[rel]) {
              child->rel_refs[rel] = set;
              child->config_ref = treedb.UpdateTuple(
                  node->config_ref, child->rel_refs.size(), rel, set);
            } else {
              child->config_ref = node->config_ref;
            }
          }
          child->config = std::move(t.post);
          ctx.Emit(std::move(child));
        }
      },
      [&](size_t level, std::vector<std::vector<LtsNode*>> batches)
          -> std::vector<std::unique_ptr<LtsNode>> {
        // Barrier reduction (runs serially between levels). Every
        // batch set is complete — workers expanded the whole frontier
        // — so after the content sort the surviving configurations,
        // the statistics, and the budget cut are all
        // schedule-independent.
        LtsLevelStats s;
        s.depth = level;
        s.transitions =
            level_transitions.exchange(0, std::memory_order_relaxed);
        std::vector<std::unique_ptr<LtsNode>> children;
        for (auto& batch : batches) {
          for (LtsNode* child : batch) children.emplace_back(child);
        }
        // Deterministic content order: configuration hash first, exact
        // fact-id order on the (almost impossible) hash tie. Fact ids
        // are stable here — exploration reveals only universe facts,
        // which were interned before any worker started. The same
        // order in both storage modes (tree refs are schedule-
        // dependent, so they never participate), so the statistics are
        // mode-independent too.
        std::sort(children.begin(), children.end(),
                  [](const std::unique_ptr<LtsNode>& a,
                     const std::unique_ptr<LtsNode>& b) {
                    if (a->config.hash() != b->config.hash()) {
                      return a->config.hash() < b->config.hash();
                    }
                    return a->config < b->config;
                  });
        std::vector<std::unique_ptr<LtsNode>> next;
        for (std::unique_ptr<LtsNode>& child : children) {
          bool already =
              compact ? !ref_seen.Insert(child->config_ref)
                      : seen.CheckAndInsert(child->config.hash(),
                                            child->config, equal);
          if (already) {
            continue;  // already reached (this level or earlier)
          }
          ++seen_count;
          if (!compact) exact_bytes += config_bytes(child->config);
          if (seen_count > max_nodes) {
            // Count-then-cut, the engine's budget discipline: the
            // overflowing configuration is counted, not kept; the cut
            // is flagged instead of silently dropping the remainder.
            s.truncated = true;
            stop = true;
            break;
          }
          s.max_configuration_facts =
              std::max(s.max_configuration_facts, child->config.TotalFacts());
          next.push_back(std::move(child));
        }
        s.distinct_configurations = next.size();
        obs::Registry::Get().counter("schema.lts.transitions")
            ->Inc(s.transitions);
        obs::Registry::Get().counter("schema.lts.configs")->Inc(next.size());
        // The byte budget's cut point: decided at the barrier over the
        // complete reduced level, so the cut level is schedule-
        // independent. Flagged like the node budget — the recorded
        // tree is a prefix, never silently complete-looking.
        if (exec.max_visited_bytes != 0 && !stop) {
          size_t used =
              compact ? ref_seen.bytes() + treedb.bytes() : exact_bytes;
          if (used > exec.max_visited_bytes) {
            s.truncated = true;
            stop = true;
          }
        }
        stats.push_back(s);
        if (stop || level >= max_depth) next.clear();
        return next;
      });
  report_memory();
  if (run_stats.cancelled && !stats.empty()) {
    // The cut level's reduce never ran, so its statistics are absent;
    // mark the deepest recorded level so the prefix is never mistaken
    // for a completed exploration.
    stats.back().cancelled = true;
  }
  return stats;
}

}  // namespace schema
}  // namespace accltl
