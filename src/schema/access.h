#ifndef ACCLTL_SCHEMA_ACCESS_H_
#define ACCLTL_SCHEMA_ACCESS_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/schema/instance.h"
#include "src/schema/schema.h"

namespace accltl {
namespace schema {

/// An access (§2): an access method plus a binding for its input
/// positions. Example: Mobile("Jones", ?, ?, ?) is Access{AcM1,
/// {Str("Jones")}} when AcM1 has input position 0.
struct Access {
  AccessMethodId method = 0;
  Tuple binding;

  friend bool operator==(const Access& a, const Access& b) {
    return a.method == b.method && a.binding == b.binding;
  }
  friend bool operator<(const Access& a, const Access& b) {
    if (a.method != b.method) return a.method < b.method;
    return a.binding < b.binding;
  }

  std::string ToString(const Schema& schema) const;
};

/// A response: the set of full tuples returned for an access.
using Response = std::set<Tuple>;

/// One step of an access path: an access and its (well-formed) response.
struct AccessStep {
  Access access;
  Response response;

  std::string ToString(const Schema& schema) const;
};

/// Order-preserving byte key of a step: memcmp order over keys equals
/// the content order over steps — (method, binding, response), values
/// compared semantically. The key mentions no interned ids, pointers
/// or interning artifacts, so it is identical across runs and worker
/// counts; it is the per-step unit of the search engines' prefix-first
/// deterministic reduction order (see DESIGN.md §3).
///
/// Key layout:
///   BE64(method) ++ tuple(binding) ++ { 0x01 ++ tuple(t) : t ∈ response }
///   tuple(t) = value(v0) ++ ... ++ 0x00          (prefix-first: 0x00 ends)
///   value(v) = tag ++ payload, tag ∈ {0x01 int, 0x02 bool, 0x03 string}
///     int: BE64(bits ^ sign bit)   — monotone in the signed value
///     bool: 0x00 / 0x01
///     string: bytes ++ 0x00        — assumes no embedded NUL (names,
///                                    postcodes, fresh "~n…" values)
/// Tags and the 0x01 response separator are nonzero, so the 0x00
/// terminators sort every proper prefix first.
std::string StepOrderKey(const AccessStep& step);

/// An access path (§2): a sequence of accesses and responses. Every
/// such sequence is an access path *for some instance* (the instance of
/// all returned tuples); the checks below test the extra sanity
/// properties a schema or analysis may require.
class AccessPath {
 public:
  AccessPath() = default;
  explicit AccessPath(std::vector<AccessStep> steps)
      : steps_(std::move(steps)) {}

  const std::vector<AccessStep>& steps() const { return steps_; }
  size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }
  const AccessStep& step(size_t i) const { return steps_[i]; }

  void Append(AccessStep step) { steps_.push_back(std::move(step)); }

  /// Structural validity: bindings/tuples typed correctly, and every
  /// response tuple agrees with the binding on the method's input
  /// positions ("well-formed output", §2).
  Status Validate(const Schema& schema) const;

  /// Conf(p, I0) (§2): I0 plus every tuple returned by any access.
  Instance Configuration(const Schema& schema, const Instance& initial) const;

  /// The configurations after 0, 1, ..., n steps (n+1 instances).
  /// Configurations grow monotonically along the path.
  std::vector<Instance> ConfigurationSequence(const Schema& schema,
                                              const Instance& initial) const;

  /// Grounded in I0 (§2): every binding value occurs in I0 or in an
  /// earlier response.
  bool IsGrounded(const Schema& schema, const Instance& initial) const;

  /// Idempotent (§2): repeating the same access yields the same
  /// response. `methods` restricts the check to a subset of access
  /// methods (S-idempotence); empty set means all methods.
  bool IsIdempotent(const std::set<AccessMethodId>& methods = {}) const;

  /// S-exact (§2): is there an instance for which every access whose
  /// method is in `methods` returned *exactly* the matching tuples?
  /// (Equivalently: checked against the final configuration, which is
  /// the minimal candidate instance.) Empty set means all methods.
  bool IsExact(const Schema& schema, const Instance& initial,
               const std::set<AccessMethodId>& methods = {}) const;

  std::string ToString(const Schema& schema) const;

 private:
  std::vector<AccessStep> steps_;
};

}  // namespace schema
}  // namespace accltl

#endif  // ACCLTL_SCHEMA_ACCESS_H_
