#ifndef ACCLTL_SCHEMA_SCHEMA_H_
#define ACCLTL_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"

namespace accltl {
namespace schema {

/// Index of a relation within a Schema.
using RelationId = int;
/// Index of an access method within a Schema.
using AccessMethodId = int;
/// A position (column index, 0-based) within a relation. The paper uses
/// 1-based positions; the C++ API is 0-based throughout.
using Position = int;

/// A relation under the unnamed perspective (§2): a name plus a typed
/// arity. Tuples are functions from positions to the position's domain.
struct Relation {
  std::string name;
  std::vector<ValueType> position_types;

  int arity() const { return static_cast<int>(position_types.size()); }
};

/// An access method (§2): a relation plus a set of input positions.
/// Using the method means supplying a binding for the input positions
/// and receiving a set of matching tuples.
///
/// The schema may additionally promise sanity properties for a method
/// (§2): `exact` methods return *all* matching tuples of the underlying
/// instance; `idempotent` methods are deterministic (same access -> same
/// response). Neither is assumed by default.
///
/// A method may further carry a *result bound* (Amarilli & Benedikt,
/// "When Can We Answer Queries Using Result-Bounded Data Interfaces?"):
/// a bounded method returns at most `result_bound` matching tuples,
/// chosen nondeterministically. `result_bound < 0` (the default) means
/// unbounded — the classic §2 method. `result_bound == 0` is legal and
/// means the method only ever answers with the empty response. An
/// `exact` bound-k method returns min(k, |matching|) tuples: all of
/// them when they fit, a nondeterministic size-k subset otherwise.
struct AccessMethod {
  std::string name;
  RelationId relation = 0;
  /// Sorted, duplicate-free input positions. May be empty (a "dump"
  /// access with no required fields) or all positions (a boolean /
  /// membership-test access).
  std::vector<Position> input_positions;
  bool exact = false;
  bool idempotent = false;
  /// Max tuples one access may return; -1 = unbounded.
  int result_bound = -1;

  int num_inputs() const { return static_cast<int>(input_positions.size()); }
  bool bounded() const { return result_bound >= 0; }
};

/// A schema with access restrictions (§2): relations plus access
/// methods. Immutable after construction through the fluent adders;
/// all lookups are by id (dense ints) or name.
///
/// Example (the paper's phone-directory schema, §1):
///   Schema sch;
///   RelationId mob = sch.AddRelation("Mobile", {kString, kString,
///                                               kString, kInt});
///   sch.AddAccessMethod("AcM1", mob, {0});   // name is the input field
class Schema {
 public:
  Schema() = default;

  /// Adds a relation; returns its id. Names must be unique and non-empty.
  RelationId AddRelation(const std::string& name,
                         std::vector<ValueType> position_types);

  /// Adds an access method on `relation`; returns its id. Input
  /// positions are deduplicated and sorted; they must be valid positions
  /// of the relation. `result_bound` < 0 means unbounded.
  AccessMethodId AddAccessMethod(const std::string& name, RelationId relation,
                                 std::vector<Position> input_positions,
                                 bool exact = false, bool idempotent = false,
                                 int result_bound = -1);

  int num_relations() const { return static_cast<int>(relations_.size()); }
  int num_access_methods() const { return static_cast<int>(methods_.size()); }

  const Relation& relation(RelationId id) const { return relations_[id]; }
  const AccessMethod& method(AccessMethodId id) const { return methods_[id]; }

  /// Access methods declared on a given relation.
  const std::vector<AccessMethodId>& methods_on(RelationId id) const {
    return methods_on_[id];
  }

  /// Name lookups; return kNotFound if absent.
  Result<RelationId> FindRelation(const std::string& name) const;
  Result<AccessMethodId> FindMethod(const std::string& name) const;

  /// Validates a whole-relation tuple: arity and per-position types.
  Status ValidateTuple(RelationId id, const Tuple& t) const;

  /// Validates a binding for a method: one value per input position with
  /// matching types.
  Status ValidateBinding(AccessMethodId id, const Tuple& binding) const;

  /// Renders a summary, one relation/method per line.
  std::string ToString() const;

 private:
  std::vector<Relation> relations_;
  std::vector<AccessMethod> methods_;
  std::vector<std::vector<AccessMethodId>> methods_on_;
  std::map<std::string, RelationId> relation_by_name_;
  std::map<std::string, AccessMethodId> method_by_name_;
};

}  // namespace schema
}  // namespace accltl

#endif  // ACCLTL_SCHEMA_SCHEMA_H_
