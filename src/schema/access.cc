#include "src/schema/access.h"

#include <map>

namespace accltl {
namespace schema {

std::string Access::ToString(const Schema& schema) const {
  const AccessMethod& m = schema.method(method);
  const Relation& rel = schema.relation(m.relation);
  std::string out = m.name + ":" + rel.name + "(";
  size_t bi = 0;
  for (int pos = 0; pos < rel.arity(); ++pos) {
    if (pos > 0) out += ", ";
    if (bi < m.input_positions.size() && m.input_positions[bi] == pos) {
      out += binding[bi].ToString();
      ++bi;
    } else {
      out += "?";
    }
  }
  out += ")";
  return out;
}

namespace {

void AppendValueKey(const Value& v, std::string* out) {
  auto be64 = [out](uint64_t bits) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      out->push_back(static_cast<char>((bits >> shift) & 0xff));
    }
  };
  switch (v.type()) {
    case ValueType::kInt:
      out->push_back('\x01');
      be64(static_cast<uint64_t>(v.AsInt()) ^ 0x8000000000000000ULL);
      break;
    case ValueType::kBool:
      out->push_back('\x02');
      out->push_back(v.AsBool() ? '\x01' : '\x00');
      break;
    case ValueType::kString:
      out->push_back('\x03');
      out->append(v.AsString());
      out->push_back('\x00');
      break;
  }
}

void AppendTupleKey(const Tuple& t, std::string* out) {
  for (const Value& v : t) AppendValueKey(v, out);
  out->push_back('\x00');
}

}  // namespace

std::string StepOrderKey(const AccessStep& step) {
  std::string key;
  for (int shift = 56; shift >= 0; shift -= 8) {
    key.push_back(static_cast<char>(
        (static_cast<uint64_t>(step.access.method) >> shift) & 0xff));
  }
  AppendTupleKey(step.access.binding, &key);
  for (const Tuple& t : step.response) {  // std::set: already value-sorted
    key.push_back('\x01');
    AppendTupleKey(t, &key);
  }
  return key;
}

std::string AccessStep::ToString(const Schema& schema) const {
  std::string out = access.ToString(schema) + " -> {";
  bool first = true;
  for (const Tuple& t : response) {
    if (!first) out += ", ";
    first = false;
    out += TupleToString(t);
  }
  out += "}";
  return out;
}

Status AccessPath::Validate(const Schema& schema) const {
  for (size_t i = 0; i < steps_.size(); ++i) {
    const AccessStep& st = steps_[i];
    ACCLTL_RETURN_IF_ERROR(
        schema.ValidateBinding(st.access.method, st.access.binding));
    const AccessMethod& m = schema.method(st.access.method);
    if (m.bounded() &&
        st.response.size() > static_cast<size_t>(m.result_bound)) {
      return Status::InvalidArgument(
          "step " + std::to_string(i) + ": response has " +
          std::to_string(st.response.size()) + " tuples but method " +
          m.name + " is bounded at " + std::to_string(m.result_bound));
    }
    for (const Tuple& t : st.response) {
      ACCLTL_RETURN_IF_ERROR(schema.ValidateTuple(m.relation, t));
      for (int k = 0; k < m.num_inputs(); ++k) {
        if (t[static_cast<size_t>(m.input_positions[k])] !=
            st.access.binding[k]) {
          return Status::InvalidArgument(
              "step " + std::to_string(i) + ": response tuple " +
              TupleToString(t) + " disagrees with binding on input position " +
              std::to_string(m.input_positions[k]));
        }
      }
    }
  }
  return Status::OK();
}

Instance AccessPath::Configuration(const Schema& schema,
                                   const Instance& initial) const {
  Instance::Builder conf(initial);
  for (const AccessStep& st : steps_) {
    RelationId rel = schema.method(st.access.method).relation;
    for (const Tuple& t : st.response) conf.Add(rel, t);
  }
  return std::move(conf).Build();
}

std::vector<Instance> AccessPath::ConfigurationSequence(
    const Schema& schema, const Instance& initial) const {
  std::vector<Instance> confs;
  confs.reserve(steps_.size() + 1);
  confs.push_back(initial);
  for (const AccessStep& st : steps_) {
    // Each configuration shares every untouched relation with its
    // predecessor: the whole sequence is O(total response size) new
    // fact-set data, not O(steps × configuration size).
    Instance::Builder next(confs.back());
    RelationId rel = schema.method(st.access.method).relation;
    for (const Tuple& t : st.response) next.Add(rel, t);
    confs.push_back(std::move(next).Build());
  }
  return confs;
}

bool AccessPath::IsGrounded(const Schema& schema,
                            const Instance& initial) const {
  std::set<Value> known = initial.ActiveDomain();
  for (const AccessStep& st : steps_) {
    for (const Value& v : st.access.binding) {
      if (known.find(v) == known.end()) return false;
    }
    (void)schema;
    for (const Tuple& t : st.response) known.insert(t.begin(), t.end());
  }
  return true;
}

bool AccessPath::IsIdempotent(const std::set<AccessMethodId>& methods) const {
  std::map<Access, const Response*> seen;
  for (const AccessStep& st : steps_) {
    if (!methods.empty() && methods.find(st.access.method) == methods.end()) {
      continue;
    }
    auto [it, inserted] = seen.emplace(st.access, &st.response);
    if (!inserted && *it->second != st.response) return false;
  }
  return true;
}

bool AccessPath::IsExact(const Schema& schema, const Instance& initial,
                         const std::set<AccessMethodId>& methods) const {
  // A path is S-exact iff it is exact for the *final* configuration:
  // any witnessing instance I must contain all revealed tuples, and
  // shrinking I toward the final configuration only shrinks the matching
  // sets, which must still cover each response.
  Instance full = Configuration(schema, initial);
  for (const AccessStep& st : steps_) {
    if (!methods.empty() && methods.find(st.access.method) == methods.end()) {
      continue;
    }
    const AccessMethod& m = schema.method(st.access.method);
    std::vector<Tuple> matching =
        full.Matching(m.relation, m.input_positions, st.access.binding);
    if (matching.size() != st.response.size()) return false;
    for (const Tuple& t : matching) {
      if (st.response.find(t) == st.response.end()) return false;
    }
  }
  return true;
}

std::string AccessPath::ToString(const Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < steps_.size(); ++i) {
    out += std::to_string(i) + ": " + steps_[i].ToString(schema) + "\n";
  }
  return out;
}

}  // namespace schema
}  // namespace accltl
