#include "src/schema/text_format.h"

#include <cctype>
#include <map>
#include <vector>

#include "src/common/strings.h"

namespace accltl {
namespace schema {

namespace {

/// Cursor over the input with shared lexing helpers. Line numbers are
/// tracked for error messages.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  bool AtEnd() {
    SkipWhitespaceAndComments();
    return pos_ >= text_.size();
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    SkipWhitespaceAndComments();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWhitespaceAndComments();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  /// [A-Za-z_][A-Za-z0-9_]*; empty string when none.
  std::string Identifier() {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  /// Reads an identifier without consuming it.
  std::string PeekIdentifier() {
    size_t saved_pos = pos_;
    int saved_line = line_;
    std::string word = Identifier();
    pos_ = saved_pos;
    line_ = saved_line;
    return word;
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("line " + std::to_string(line_) + ": " +
                                   msg);
  }

  /// Parses one value literal: "string", integer, true/false.
  Result<Value> Literal() {
    SkipWhitespaceAndComments();
    if (pos_ >= text_.size()) return Error("expected a value");
    char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
          ++pos_;
          char e = text_[pos_];
          if (e == 'n') {
            out.push_back('\n');
          } else {
            out.push_back(e);  // \" and \\ (and identity for others)
          }
        } else {
          out.push_back(text_[pos_]);
        }
        ++pos_;
      }
      if (pos_ >= text_.size()) return Error("unterminated string literal");
      ++pos_;  // closing quote
      return Value::Str(std::move(out));
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
      if (pos_ == start + (c == '-' ? 1u : 0u)) {
        return Error("expected digits after '-'");
      }
      return Value::Int(std::stoll(text_.substr(start, pos_ - start)));
    }
    std::string word = Identifier();
    if (word == "true") return Value::Bool(true);
    if (word == "false") return Value::Bool(false);
    return Error("expected a value, got '" + word + "'");
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
};

Result<ValueType> TypeFromName(const std::string& name, const Cursor& cur) {
  if (name == "int") return ValueType::kInt;
  if (name == "bool") return ValueType::kBool;
  if (name == "string") return ValueType::kString;
  return cur.Error("unknown type '" + name + "' (int, bool, string)");
}

}  // namespace

Result<Schema> ParseSchema(const std::string& text) {
  Schema schema;
  Cursor cur(text);
  // Position names per relation, for access-method input designators.
  std::map<std::string, std::vector<std::string>> position_names;

  while (!cur.AtEnd()) {
    std::string keyword = cur.Identifier();
    if (keyword == "relation") {
      std::string name = cur.Identifier();
      if (name.empty()) return cur.Error("expected relation name");
      if (position_names.count(name) > 0) {
        return cur.Error("duplicate relation '" + name + "'");
      }
      if (!cur.Consume('(')) return cur.Error("expected '(' after name");
      std::vector<std::string> pos_names;
      std::vector<ValueType> types;
      while (!cur.Consume(')')) {
        std::string pname = cur.Identifier();
        if (pname.empty()) return cur.Error("expected position name");
        if (!cur.Consume(':')) return cur.Error("expected ':' after position");
        Result<ValueType> t = TypeFromName(cur.Identifier(), cur);
        if (!t.ok()) return t.status();
        pos_names.push_back(pname);
        types.push_back(t.value());
        if (cur.Consume(',')) continue;
        if (cur.Consume(')')) break;
        return cur.Error("expected ',' or ')' in relation declaration");
      }
      schema.AddRelation(name, std::move(types));
      position_names[name] = std::move(pos_names);
    } else if (keyword == "access") {
      std::string mname = cur.Identifier();
      if (mname.empty()) return cur.Error("expected access-method name");
      if (schema.FindMethod(mname).ok()) {
        return cur.Error("duplicate access method '" + mname + "'");
      }
      if (cur.Identifier() != "on") return cur.Error("expected 'on'");
      std::string rname = cur.Identifier();
      Result<RelationId> rel = schema.FindRelation(rname);
      if (!rel.ok()) return cur.Error("unknown relation '" + rname + "'");
      if (!cur.Consume('(')) return cur.Error("expected '(' after relation");
      const std::vector<std::string>& pnames = position_names[rname];
      std::vector<Position> inputs;
      if (!cur.Consume(')')) {
        while (true) {
          std::string pname = cur.Identifier();
          Position p = -1;
          for (size_t i = 0; i < pnames.size(); ++i) {
            if (pnames[i] == pname) p = static_cast<Position>(i);
          }
          if (p < 0) {
            return cur.Error("unknown position '" + pname + "' of relation " +
                             rname);
          }
          inputs.push_back(p);
          if (cur.Consume(',')) continue;
          if (cur.Consume(')')) break;
          return cur.Error("expected ',' or ')' in access declaration");
        }
      }
      bool exact = false, idempotent = false;
      int result_bound = -1;
      while (true) {
        std::string q = cur.PeekIdentifier();
        if (q == "exact") {
          exact = true;
        } else if (q == "idempotent") {
          idempotent = true;
        } else if (q == "bound") {
          cur.Identifier();  // consume 'bound'
          Result<Value> k = cur.Literal();
          if (!k.ok() || !k.value().is_int()) {
            return cur.Error("expected a non-negative integer after 'bound'");
          }
          int64_t raw = k.value().AsInt();
          if (raw < 0 || raw > 1000000) {
            return cur.Error("result bound must be in [0, 1000000], got " +
                             std::to_string(raw));
          }
          result_bound = static_cast<int>(raw);
          continue;  // 'bound k' consumed its own tokens
        } else {
          break;  // next declaration (or end / syntax error caught there)
        }
        cur.Identifier();  // consume the qualifier
      }
      // AddAccessMethod asserts these invariants; text input must fail
      // with a parse error, never an abort. Positions resolve by name
      // today (always in range), but the check is the contract.
      for (Position p : inputs) {
        if (p < 0 || p >= schema.relation(rel.value()).arity()) {
          return cur.Error("input position " + std::to_string(p) +
                           " out of range for relation " + rname);
        }
      }
      schema.AddAccessMethod(mname, rel.value(), std::move(inputs), exact,
                             idempotent, result_bound);
    } else {
      return cur.Error("expected 'relation' or 'access', got '" + keyword +
                       "'");
    }
  }
  return schema;
}

std::string SerializeSchema(const Schema& schema) {
  std::string out;
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const Relation& rel = schema.relation(r);
    std::vector<std::string> cols;
    cols.reserve(rel.position_types.size());
    for (size_t i = 0; i < rel.position_types.size(); ++i) {
      cols.push_back("p" + std::to_string(i) + ": " +
                     ValueTypeName(rel.position_types[i]));
    }
    out += "relation " + rel.name + "(" + Join(cols, ", ") + ")\n";
  }
  for (AccessMethodId m = 0; m < schema.num_access_methods(); ++m) {
    const AccessMethod& method = schema.method(m);
    std::vector<std::string> inputs;
    inputs.reserve(method.input_positions.size());
    for (Position p : method.input_positions) {
      inputs.push_back("p" + std::to_string(p));
    }
    out += "access " + method.name + " on " +
           schema.relation(method.relation).name + "(" + Join(inputs, ", ") +
           ")";
    if (method.exact) out += " exact";
    if (method.idempotent) out += " idempotent";
    if (method.bounded()) {
      out += " bound " + std::to_string(method.result_bound);
    }
    out += "\n";
  }
  return out;
}

Result<Instance> ParseInstance(const std::string& text,
                               const Schema& schema) {
  Instance instance(schema);
  Cursor cur(text);
  while (!cur.AtEnd()) {
    std::string rname = cur.Identifier();
    if (rname.empty()) return cur.Error("expected relation name");
    Result<RelationId> rel = schema.FindRelation(rname);
    if (!rel.ok()) return cur.Error("unknown relation '" + rname + "'");
    if (!cur.Consume('(')) return cur.Error("expected '(' after relation");
    Tuple t;
    if (!cur.Consume(')')) {
      while (true) {
        Result<Value> v = cur.Literal();
        if (!v.ok()) return v.status();
        t.push_back(std::move(v).value());
        if (cur.Consume(',')) continue;
        if (cur.Consume(')')) break;
        return cur.Error("expected ',' or ')' in fact");
      }
    }
    Status valid = schema.ValidateTuple(rel.value(), t);
    if (!valid.ok()) {
      return cur.Error("fact for " + rname + ": " + valid.message());
    }
    instance.AddFact(rel.value(), std::move(t));
  }
  return instance;
}

std::string SerializeInstance(const Instance& instance,
                              const Schema& schema) {
  std::string out;
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    for (const Tuple& t : instance.tuples(r)) {
      std::vector<std::string> vals;
      vals.reserve(t.size());
      for (const Value& v : t) vals.push_back(v.ToString());
      out += schema.relation(r).name + "(" + Join(vals, ", ") + ")\n";
    }
  }
  return out;
}

}  // namespace schema
}  // namespace accltl
