#ifndef ACCLTL_SCHEMA_DEPENDENCIES_H_
#define ACCLTL_SCHEMA_DEPENDENCIES_H_

#include <string>
#include <vector>

#include "src/schema/instance.h"
#include "src/schema/schema.h"

namespace accltl {
namespace schema {

/// A functional dependency R : lhs -> rhs (Example 2.4): any two
/// R-tuples agreeing on all `lhs` positions agree on position `rhs`.
struct FunctionalDependency {
  RelationId relation = 0;
  std::vector<Position> lhs;
  Position rhs = 0;

  /// True iff `instance` satisfies the dependency.
  bool SatisfiedBy(const Instance& instance) const;

  std::string ToString(const Schema& schema) const;

  friend bool operator==(const FunctionalDependency& a,
                         const FunctionalDependency& b) {
    return a.relation == b.relation && a.lhs == b.lhs && a.rhs == b.rhs;
  }
};

/// An inclusion dependency R[a1..an] ⊆ S[b1..bn] (§3): for every
/// R-tuple, some S-tuple matches it on the listed positions.
struct InclusionDependency {
  RelationId source = 0;
  std::vector<Position> source_positions;
  RelationId target = 0;
  std::vector<Position> target_positions;

  bool SatisfiedBy(const Instance& instance) const;

  std::string ToString(const Schema& schema) const;
};

/// A disjointness constraint (§1, Example 2.3's data-integrity
/// restriction): the projection of R on `r_position` never intersects
/// the projection of S on `s_position` — e.g. customer names are
/// disjoint from street names.
struct DisjointnessConstraint {
  RelationId r = 0;
  Position r_position = 0;
  RelationId s = 0;
  Position s_position = 0;

  bool SatisfiedBy(const Instance& instance) const;

  std::string ToString(const Schema& schema) const;
};

}  // namespace schema
}  // namespace accltl

#endif  // ACCLTL_SCHEMA_DEPENDENCIES_H_
