#ifndef ACCLTL_SCHEMA_INSTANCE_H_
#define ACCLTL_SCHEMA_INSTANCE_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/schema/schema.h"
#include "src/store/fact_set.h"
#include "src/store/tuple_range.h"

namespace accltl {
namespace schema {

/// A (finite) instance of a schema: a set of facts per relation (§2).
///
/// Facts are interned in the process-global store::Store and each
/// relation is an immutable, shared store::FactSet, so
///  - copying an instance is O(#relations) shared_ptr copies
///    (copy-on-write: derivations share every untouched relation);
///  - `hash()` is an incrementally-maintained 64-bit configuration
///    hash, making visited-configuration dedup a hash lookup;
///  - equality compares hashes and fact-id vectors, never tuple data.
///
/// Iteration (`tuples`, `facts`) is in fact-id order: deterministic
/// within a process run (interning order), but NOT the value-sorted
/// order of older revisions. `ToString` sorts for stable rendering.
///
/// Mutation goes through `AddFact` (single-fact derivation) or
/// `Instance::Builder` (batch derivation; sorts/merges once).
class Instance {
 public:
  Instance() = default;
  /// Creates an empty instance with one (empty) fact-set per relation.
  explicit Instance(const Schema& schema)
      : relations_(static_cast<size_t>(schema.num_relations()),
                   store::FactSet::Empty()) {}

  int num_relations() const { return static_cast<int>(relations_.size()); }

  /// The facts of relation `id` as a decoding tuple range.
  store::TupleRange tuples(RelationId id) const {
    return store::TupleRange(relations_[static_cast<size_t>(id)].get());
  }

  /// The interned fact set of relation `id` (never null).
  const store::FactSet::Ptr& facts(RelationId id) const {
    return relations_[static_cast<size_t>(id)];
  }

  /// Adds a fact; returns true if it was new. Derives a fresh fact set
  /// for the relation (COW: other instances sharing it are unaffected).
  bool AddFact(RelationId id, const Tuple& t) {
    return AddFactId(id, store::Store::Get().InternTuple(t));
  }

  /// Adds an already-interned fact; returns true if it was new.
  bool AddFactId(RelationId id, store::FactId fact) {
    bool added = false;
    store::FactSet::Ptr& rel = relations_[static_cast<size_t>(id)];
    rel = store::FactSet::WithFact(rel, fact, &added);
    return added;
  }

  /// True iff the fact is present.
  bool Contains(RelationId id, const Tuple& t) const {
    store::FactId fact = store::Store::Get().TryFindTuple(t);
    return fact != store::kNoFactId &&
           relations_[static_cast<size_t>(id)]->Contains(fact);
  }

  /// Adds every fact of `other` (schemas must match).
  void UnionWith(const Instance& other);

  /// True iff every fact of this instance is in `other`.
  bool SubinstanceOf(const Instance& other) const;

  /// Total number of facts.
  size_t TotalFacts() const;

  /// All values appearing anywhere in the instance (the active domain).
  std::set<Value> ActiveDomain() const;

  /// Interned-id variant of ActiveDomain: sorted, duplicate-free value
  /// ids. No Value copies or string comparisons.
  std::vector<store::ValueId> ActiveDomainIds() const;

  /// Tuples of `id` that agree with `binding` on `positions`
  /// (pointwise; positions[i] carries binding[i]).
  std::vector<Tuple> Matching(RelationId id,
                              const std::vector<Position>& positions,
                              const Tuple& binding) const;

  /// Fact-id variant of Matching: no tuple decoding or copying.
  std::vector<store::FactId> MatchingIds(RelationId id,
                                         const std::vector<Position>& positions,
                                         const Tuple& binding) const;

  /// 64-bit configuration hash: XOR-folded per-relation fact hashes
  /// mixed with the relation index. Equal instances hash equally;
  /// unequal instances collide with probability ~2^-64.
  uint64_t hash() const;

  friend bool operator==(const Instance& a, const Instance& b);
  friend bool operator!=(const Instance& a, const Instance& b) {
    return !(a == b);
  }
  /// Strict weak order over fact-id vectors (NOT value-lexicographic;
  /// use only for deterministic containers, not for semantic order).
  friend bool operator<(const Instance& a, const Instance& b);

  /// Renders facts grouped by relation, using names from `schema`;
  /// tuples are value-sorted for stable output.
  std::string ToString(const Schema& schema) const;

  /// Batch construction/derivation: collects facts, then sorts and
  /// merges once per touched relation on Build. Defined below.
  class Builder;

 private:
  std::vector<store::FactSet::Ptr> relations_;
};

class Instance::Builder {
 public:
  explicit Builder(const Schema& schema) : base_(schema) {
    pending_.resize(static_cast<size_t>(base_.num_relations()));
  }
  /// Starts from an existing instance (COW derivation).
  explicit Builder(Instance base) : base_(std::move(base)) {
    pending_.resize(static_cast<size_t>(base_.num_relations()));
  }

  Builder& Add(RelationId id, const Tuple& t) {
    return Add(id, store::Store::Get().InternTuple(t));
  }
  Builder& Add(RelationId id, store::FactId fact) {
    pending_[static_cast<size_t>(id)].push_back(fact);
    return *this;
  }

  Instance Build() &&;

 private:
  Instance base_;
  std::vector<std::vector<store::FactId>> pending_;
};

struct InstanceHash {
  size_t operator()(const Instance& i) const {
    return static_cast<size_t>(i.hash());
  }
};

}  // namespace schema
}  // namespace accltl

#endif  // ACCLTL_SCHEMA_INSTANCE_H_
