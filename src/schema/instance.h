#ifndef ACCLTL_SCHEMA_INSTANCE_H_
#define ACCLTL_SCHEMA_INSTANCE_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/schema/schema.h"

namespace accltl {
namespace schema {

/// A (finite) instance of a schema: a set of tuples per relation (§2).
///
/// Tuples are kept in sorted std::sets so that iteration order — and
/// therefore every algorithm built on top — is deterministic.
class Instance {
 public:
  Instance() = default;
  /// Creates an empty instance with one (empty) tuple-set per relation.
  explicit Instance(const Schema& schema)
      : relations_(static_cast<size_t>(schema.num_relations())) {}

  int num_relations() const { return static_cast<int>(relations_.size()); }

  /// The tuples of relation `id`.
  const std::set<Tuple>& tuples(RelationId id) const {
    return relations_[static_cast<size_t>(id)];
  }

  /// Adds a fact; returns true if it was new.
  bool AddFact(RelationId id, Tuple t) {
    return relations_[static_cast<size_t>(id)].insert(std::move(t)).second;
  }

  /// True iff the fact is present.
  bool Contains(RelationId id, const Tuple& t) const {
    const auto& s = relations_[static_cast<size_t>(id)];
    return s.find(t) != s.end();
  }

  /// Adds every fact of `other` (schemas must match).
  void UnionWith(const Instance& other);

  /// True iff every fact of this instance is in `other`.
  bool SubinstanceOf(const Instance& other) const;

  /// Total number of facts.
  size_t TotalFacts() const;

  /// All values appearing anywhere in the instance (the active domain).
  std::set<Value> ActiveDomain() const;

  /// Tuples of `id` that agree with `binding` on `positions`
  /// (pointwise; positions[i] carries binding[i]).
  std::vector<Tuple> Matching(RelationId id,
                              const std::vector<Position>& positions,
                              const Tuple& binding) const;

  friend bool operator==(const Instance& a, const Instance& b) {
    return a.relations_ == b.relations_;
  }
  friend bool operator!=(const Instance& a, const Instance& b) {
    return !(a == b);
  }
  friend bool operator<(const Instance& a, const Instance& b) {
    return a.relations_ < b.relations_;
  }

  /// Renders facts grouped by relation, using names from `schema`.
  std::string ToString(const Schema& schema) const;

 private:
  std::vector<std::set<Tuple>> relations_;
};

}  // namespace schema
}  // namespace accltl

#endif  // ACCLTL_SCHEMA_INSTANCE_H_
