#include "src/schema/instance.h"

#include <cassert>

namespace accltl {
namespace schema {

void Instance::UnionWith(const Instance& other) {
  assert(relations_.size() == other.relations_.size());
  for (size_t i = 0; i < relations_.size(); ++i) {
    relations_[i].insert(other.relations_[i].begin(),
                         other.relations_[i].end());
  }
}

bool Instance::SubinstanceOf(const Instance& other) const {
  assert(relations_.size() == other.relations_.size());
  for (size_t i = 0; i < relations_.size(); ++i) {
    for (const Tuple& t : relations_[i]) {
      if (other.relations_[i].find(t) == other.relations_[i].end()) {
        return false;
      }
    }
  }
  return true;
}

size_t Instance::TotalFacts() const {
  size_t n = 0;
  for (const auto& s : relations_) n += s.size();
  return n;
}

std::set<Value> Instance::ActiveDomain() const {
  std::set<Value> dom;
  for (const auto& s : relations_) {
    for (const Tuple& t : s) dom.insert(t.begin(), t.end());
  }
  return dom;
}

std::vector<Tuple> Instance::Matching(RelationId id,
                                      const std::vector<Position>& positions,
                                      const Tuple& binding) const {
  assert(positions.size() == binding.size());
  std::vector<Tuple> out;
  for (const Tuple& t : tuples(id)) {
    bool match = true;
    for (size_t i = 0; i < positions.size(); ++i) {
      if (t[static_cast<size_t>(positions[i])] != binding[i]) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(t);
  }
  return out;
}

std::string Instance::ToString(const Schema& schema) const {
  std::string out;
  for (int r = 0; r < num_relations(); ++r) {
    for (const Tuple& t : tuples(r)) {
      out += schema.relation(r).name + TupleToString(t) + "\n";
    }
  }
  return out;
}

}  // namespace schema
}  // namespace accltl
