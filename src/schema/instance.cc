#include "src/schema/instance.h"

#include <algorithm>
#include <cassert>

namespace accltl {
namespace schema {

void Instance::UnionWith(const Instance& other) {
  assert(relations_.size() == other.relations_.size());
  for (size_t i = 0; i < relations_.size(); ++i) {
    relations_[i] = store::FactSet::Union(relations_[i], other.relations_[i]);
  }
}

bool Instance::SubinstanceOf(const Instance& other) const {
  assert(relations_.size() == other.relations_.size());
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].get() == other.relations_[i].get()) continue;
    if (!relations_[i]->SubsetOf(*other.relations_[i])) return false;
  }
  return true;
}

size_t Instance::TotalFacts() const {
  size_t n = 0;
  for (const store::FactSet::Ptr& s : relations_) n += s->size();
  return n;
}

std::set<Value> Instance::ActiveDomain() const {
  const store::Store& store = store::Store::Get();
  std::set<Value> dom;
  for (store::ValueId v : ActiveDomainIds()) dom.insert(store.value(v));
  return dom;
}

std::vector<store::ValueId> Instance::ActiveDomainIds() const {
  const store::Store& store = store::Store::Get();
  std::vector<store::ValueId> out;
  for (const store::FactSet::Ptr& s : relations_) {
    for (store::FactId id : s->ids()) {
      const std::vector<store::ValueId>& vals = store.fact_values(id);
      out.insert(out.end(), vals.begin(), vals.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<store::FactId> Instance::MatchingIds(
    RelationId id, const std::vector<Position>& positions,
    const Tuple& binding) const {
  assert(positions.size() == binding.size());
  const store::Store& store = store::Store::Get();
  std::vector<store::FactId> out;
  // Un-interned binding values cannot occur in any interned fact.
  std::vector<store::ValueId> bound;
  bound.reserve(binding.size());
  for (const Value& v : binding) {
    store::ValueId vid = store.TryFindValue(v);
    if (vid == store::kNoValueId) return out;
    bound.push_back(vid);
  }
  for (store::FactId fact : relations_[static_cast<size_t>(id)]->ids()) {
    const std::vector<store::ValueId>& vals = store.fact_values(fact);
    bool match = true;
    for (size_t i = 0; i < positions.size(); ++i) {
      if (vals[static_cast<size_t>(positions[i])] != bound[i]) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(fact);
  }
  return out;
}

std::vector<Tuple> Instance::Matching(RelationId id,
                                      const std::vector<Position>& positions,
                                      const Tuple& binding) const {
  const store::Store& store = store::Store::Get();
  std::vector<Tuple> out;
  for (store::FactId fact : MatchingIds(id, positions, binding)) {
    out.push_back(store.tuple(fact));
  }
  return out;
}

uint64_t Instance::hash() const {
  uint64_t h = store::Mix64(relations_.size());
  for (size_t i = 0; i < relations_.size(); ++i) {
    h = store::Mix64(h ^ relations_[i]->hash() ^ i);
  }
  return h;
}

bool operator==(const Instance& a, const Instance& b) {
  if (a.relations_.size() != b.relations_.size()) return false;
  for (size_t i = 0; i < a.relations_.size(); ++i) {
    if (a.relations_[i].get() == b.relations_[i].get()) continue;
    if (*a.relations_[i] != *b.relations_[i]) return false;
  }
  return true;
}

bool operator<(const Instance& a, const Instance& b) {
  if (a.relations_.size() != b.relations_.size()) {
    return a.relations_.size() < b.relations_.size();
  }
  for (size_t i = 0; i < a.relations_.size(); ++i) {
    if (a.relations_[i].get() == b.relations_[i].get()) continue;
    if (a.relations_[i]->ids() != b.relations_[i]->ids()) {
      return a.relations_[i]->ids() < b.relations_[i]->ids();
    }
  }
  return false;
}

std::string Instance::ToString(const Schema& schema) const {
  std::string out;
  for (int r = 0; r < num_relations(); ++r) {
    std::vector<Tuple> rows;
    for (const Tuple& t : tuples(r)) rows.push_back(t);
    std::sort(rows.begin(), rows.end());
    for (const Tuple& t : rows) {
      out += schema.relation(r).name + TupleToString(t) + "\n";
    }
  }
  return out;
}

Instance Instance::Builder::Build() && {
  for (size_t r = 0; r < pending_.size(); ++r) {
    std::vector<store::FactId>& add = pending_[r];
    if (add.empty()) continue;
    base_.relations_[r] = store::FactSet::Union(
        base_.relations_[r], store::FactSet::FromUnsorted(std::move(add)));
  }
  return std::move(base_);
}

}  // namespace schema
}  // namespace accltl
