#include "src/schema/schema.h"

#include <algorithm>
#include <cassert>

#include "src/common/strings.h"

namespace accltl {
namespace schema {

RelationId Schema::AddRelation(const std::string& name,
                               std::vector<ValueType> position_types) {
  assert(!name.empty() && "relation name must be non-empty");
  assert(relation_by_name_.find(name) == relation_by_name_.end() &&
         "duplicate relation name");
  RelationId id = static_cast<RelationId>(relations_.size());
  relations_.push_back(Relation{name, std::move(position_types)});
  methods_on_.emplace_back();
  relation_by_name_[name] = id;
  return id;
}

AccessMethodId Schema::AddAccessMethod(const std::string& name,
                                       RelationId relation,
                                       std::vector<Position> input_positions,
                                       bool exact, bool idempotent,
                                       int result_bound) {
  assert(!name.empty() && "method name must be non-empty");
  assert(method_by_name_.find(name) == method_by_name_.end() &&
         "duplicate method name");
  assert(relation >= 0 && relation < num_relations());
  std::sort(input_positions.begin(), input_positions.end());
  input_positions.erase(
      std::unique(input_positions.begin(), input_positions.end()),
      input_positions.end());
  for (Position p : input_positions) {
    assert(p >= 0 && p < relations_[relation].arity() &&
           "input position out of range");
    (void)p;
  }
  AccessMethodId id = static_cast<AccessMethodId>(methods_.size());
  if (result_bound < 0) result_bound = -1;  // every "unbounded" is -1
  methods_.push_back(AccessMethod{name, relation, std::move(input_positions),
                                  exact, idempotent, result_bound});
  methods_on_[relation].push_back(id);
  method_by_name_[name] = id;
  return id;
}

Result<RelationId> Schema::FindRelation(const std::string& name) const {
  auto it = relation_by_name_.find(name);
  if (it == relation_by_name_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  return it->second;
}

Result<AccessMethodId> Schema::FindMethod(const std::string& name) const {
  auto it = method_by_name_.find(name);
  if (it == method_by_name_.end()) {
    return Status::NotFound("unknown access method: " + name);
  }
  return it->second;
}

Status Schema::ValidateTuple(RelationId id, const Tuple& t) const {
  if (id < 0 || id >= num_relations()) {
    return Status::InvalidArgument("relation id out of range");
  }
  const Relation& rel = relations_[id];
  if (static_cast<int>(t.size()) != rel.arity()) {
    return Status::InvalidArgument("arity mismatch for " + rel.name +
                                   ": expected " +
                                   std::to_string(rel.arity()) + ", got " +
                                   std::to_string(t.size()));
  }
  for (int i = 0; i < rel.arity(); ++i) {
    if (t[i].type() != rel.position_types[i]) {
      return Status::InvalidArgument(
          "type mismatch for " + rel.name + " position " + std::to_string(i) +
          ": expected " + ValueTypeName(rel.position_types[i]) + ", got " +
          ValueTypeName(t[i].type()));
    }
  }
  return Status::OK();
}

Status Schema::ValidateBinding(AccessMethodId id, const Tuple& binding) const {
  if (id < 0 || id >= num_access_methods()) {
    return Status::InvalidArgument("access method id out of range");
  }
  const AccessMethod& m = methods_[id];
  const Relation& rel = relations_[m.relation];
  if (static_cast<int>(binding.size()) != m.num_inputs()) {
    return Status::InvalidArgument(
        "binding arity mismatch for " + m.name + ": expected " +
        std::to_string(m.num_inputs()) + ", got " +
        std::to_string(binding.size()));
  }
  for (int i = 0; i < m.num_inputs(); ++i) {
    ValueType want = rel.position_types[m.input_positions[i]];
    if (binding[i].type() != want) {
      return Status::InvalidArgument(
          "binding type mismatch for " + m.name + " input " +
          std::to_string(i) + ": expected " + ValueTypeName(want) + ", got " +
          ValueTypeName(binding[i].type()));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::vector<std::string> lines;
  for (const Relation& r : relations_) {
    std::vector<std::string> cols;
    cols.reserve(r.position_types.size());
    for (ValueType t : r.position_types) cols.push_back(ValueTypeName(t));
    lines.push_back(r.name + "(" + Join(cols, ", ") + ")");
  }
  for (const AccessMethod& m : methods_) {
    std::vector<std::string> ins;
    ins.reserve(m.input_positions.size());
    for (Position p : m.input_positions) ins.push_back(std::to_string(p));
    std::string tags;
    if (m.exact) tags += " exact";
    if (m.idempotent) tags += " idempotent";
    if (m.bounded()) tags += " bound=" + std::to_string(m.result_bound);
    lines.push_back("  " + m.name + ": " + relations_[m.relation].name +
                    " inputs={" + Join(ins, ",") + "}" + tags);
  }
  return Join(lines, "\n");
}

}  // namespace schema
}  // namespace accltl
