#ifndef ACCLTL_SCHEMA_TEXT_FORMAT_H_
#define ACCLTL_SCHEMA_TEXT_FORMAT_H_

#include <string>

#include "src/common/status.h"
#include "src/schema/instance.h"
#include "src/schema/schema.h"

namespace accltl {
namespace schema {

/// Text format for schemas with access restrictions. One declaration
/// per line; `#` starts a comment; blank lines are ignored.
///
///   # the paper's phone directory (§1)
///   relation Mobile(name: string, postcode: string,
///                   street: string, phone: int)
///   relation Address(street: string, postcode: string,
///                    name: string, houseno: int)
///   access AcM1 on Mobile(name)
///   access AcM2 on Address(street, postcode) exact
///   access AcM3 on Address(name) bound 3
///
/// Relation positions are named in the declaration (names are used to
/// designate access-method inputs and in diagnostics; storage stays
/// positional, §2's unnamed perspective). Trailing method qualifiers:
/// `exact`, `idempotent`, and `bound k` with k a non-negative integer
/// (a result-bounded method: at most k matching tuples per access,
/// chosen nondeterministically — omitted means unbounded). A
/// declaration may span lines until its closing parenthesis (plus
/// qualifiers). Malformed declarations (duplicate relation or method
/// names, unknown positions, negative/garbage bounds) are parse
/// errors carrying the offending line number — never asserts.
Result<Schema> ParseSchema(const std::string& text);

/// Renders a schema in the format ParseSchema accepts (round-trips:
/// parse(serialize(s)) has the same relations/methods in the same
/// order). Position names are synthesized as p0, p1, ....
std::string SerializeSchema(const Schema& schema);

/// Text format for instances: one fact per line,
///
///   Mobile("Smith", "OX13QD", "Parks Rd", 5551212)
///   Address("Parks Rd", "OX13QD", "Smith", 13)
///
/// Values: double-quoted strings (with \" and \\ escapes), decimal
/// integers (optionally signed), `true` / `false`. Arity and types are
/// validated against the schema.
Result<Instance> ParseInstance(const std::string& text, const Schema& schema);

/// Renders an instance in the format ParseInstance accepts, facts
/// sorted by relation id, then tuple order.
std::string SerializeInstance(const Instance& instance, const Schema& schema);

}  // namespace schema
}  // namespace accltl

#endif  // ACCLTL_SCHEMA_TEXT_FORMAT_H_
