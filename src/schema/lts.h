#ifndef ACCLTL_SCHEMA_LTS_H_
#define ACCLTL_SCHEMA_LTS_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/engine/cancel.h"
#include "src/schema/access.h"
#include "src/schema/instance.h"
#include "src/schema/schema.h"

namespace accltl {
namespace schema {

/// One transition (I, (AcM, b̄), I′) of the labelled transition system a
/// schema induces (§2, Figure 1). `post` always equals `pre` plus the
/// response tuples added to the accessed relation.
struct Transition {
  Instance pre;
  Access access;
  Response response;
  Instance post;
  /// The response as interned fact ids (same set as `response`), kept
  /// from construction: delta-encoded successor generation extends a
  /// parent's tree-compressed relation set by exactly these ids
  /// instead of re-encoding `post` (see store/treedb.h).
  std::vector<store::FactId> response_ids;

  std::string ToString(const Schema& schema) const;
};

/// Builds the transition that performs `access` with `response` from
/// instance `pre`. `post` shares every untouched relation with `pre`
/// (copy-on-write).
Transition MakeTransition(const Schema& schema, Instance pre, Access access,
                          Response response);

/// Interned-id variant: the response is given as fact ids (the tuple
/// set is decoded from them), so building `post` never re-hashes tuple
/// data. The single owner of the post = pre + response invariant —
/// the tuple-based overload and all search engines delegate here.
Transition MakeTransitionFromIds(const Schema& schema, Instance pre,
                                 Access access,
                                 const std::vector<store::FactId>& response);

/// Options controlling how the (infinite) LTS is enumerated.
struct LtsOptions {
  /// Hidden database: responses are subsets of its matching tuples. The
  /// LTS of §2 allows *any* well-formed response; fixing a hidden
  /// universe is how benchmarks and the CTL semantics bound the branching.
  Instance universe;
  /// Only grounded accesses (binding values drawn from the current
  /// configuration's active domain plus `seed_values`).
  bool grounded = false;
  /// Extra values available for bindings even when grounded (the
  /// "initially known" constants, e.g. "Smith" in Figure 1).
  std::vector<Value> seed_values;
  /// Methods forced to be exact: their response is always the full
  /// matching set of `universe`.
  std::set<AccessMethodId> exact_methods;
  /// When a method is not exact, how many response subsets to enumerate:
  /// always the full matching set and the empty set; additionally all
  /// singletons when true. (Full powerset enumeration is exponential and
  /// never needed by our analyses.)
  bool enumerate_singleton_responses = true;
  /// Cap on the number of successor transitions generated per node.
  size_t max_successors_per_node = 1u << 20;
};

/// Enumerates successor transitions of configuration `current` under the
/// options. Deterministic order (methods, then bindings, then responses).
std::vector<Transition> Successors(const Schema& schema,
                                   const Instance& current,
                                   const LtsOptions& options);

/// Statistics of the tree of paths of Figure 1, per level.
struct LtsLevelStats {
  size_t depth = 0;
  /// Number of distinct configurations first reached at this depth.
  size_t distinct_configurations = 0;
  /// Number of transitions explored from nodes at the previous depth.
  size_t transitions = 0;
  /// Largest configuration (fact count) seen at this depth.
  size_t max_configuration_facts = 0;
  /// True when the `max_nodes` budget cut this level: configurations
  /// first reached here were dropped (and the exploration stopped), so
  /// the recorded tree is a prefix — never silently complete-looking.
  bool truncated = false;
  /// True on the last recorded level when `exec.cancel` fired and cut
  /// the exploration there: every level at or past the cut is missing
  /// or partial, so the recorded tree is a prefix.
  bool cancelled = false;
};

/// Memory footprint of one ExploreBreadthFirst run, reported through
/// the optional out-parameter (kept out of LtsLevelStats: the level
/// statistics are compared across engines/modes by the differential
/// fuzzer, and bytes are a storage property, not a tree property).
struct LtsMemoryStats {
  /// Logical bytes held live by the seen-set at the end of the
  /// exploration (plus the treedb arena under VisitedMode::kCompact).
  /// Deterministic whenever the statistics are.
  size_t visited_bytes = 0;
  /// Interned tree nodes (kCompact only; 0 under kExact).
  size_t treedb_nodes = 0;
};

/// Breadth-first exploration of the LTS up to `max_depth`, deduplicating
/// configurations. Reproduces the shape of Figure 1's tree.
///
/// Runs on the parallel exploration engine when
/// `exec.num_threads > 1` (engine/cancel.h is the single source of
/// worker count and cancellation): whole levels are expanded through
/// the work-stealing deques and reduced deterministically at the
/// barrier, so every statistic (including the budget cut) is
/// byte-identical at any worker count; a cancel token that never
/// fires never changes any statistic. The budget follows the
/// engine's count-then-cut discipline at level granularity: the level
/// that exceeds `max_nodes` is fully expanded and counted, the
/// overflowing configurations are dropped in deterministic content
/// order, the level is flagged `truncated`, and the exploration stops.
/// A fired cancel token stops the exploration at node granularity and
/// flags the last recorded level `cancelled`.
/// `exec.visited_mode` selects the seen-set storage: kExact keeps one
/// Instance handle per distinct configuration; kCompact folds each
/// configuration into a store::TreeDb and keeps a 4-byte ref
/// (successors are delta-extended from the parent's per-relation set
/// refs). The statistics are identical in both modes — ref equality is
/// exact configuration equality. `exec.max_visited_bytes` cuts the
/// exploration at the level barrier (flagged `truncated`), letting a
/// fixed-RAM sweep stop cleanly. `memory`, when non-null, receives the
/// run's footprint.
std::vector<LtsLevelStats> ExploreBreadthFirst(
    const Schema& schema, const Instance& initial, const LtsOptions& options,
    size_t max_depth, size_t max_nodes = 100000,
    const engine::ExecOptions& exec = {}, LtsMemoryStats* memory = nullptr);

}  // namespace schema
}  // namespace accltl

#endif  // ACCLTL_SCHEMA_LTS_H_
