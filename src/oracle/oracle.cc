#include "src/oracle/oracle.h"

#include <algorithm>
#include <functional>

#include "src/logic/formula.h"
#include "src/logic/term.h"

namespace accltl {
namespace oracle {

namespace {

using logic::NodeKind;
using logic::PosFormula;
using logic::PosFormulaPtr;
using logic::PredSpace;
using logic::Term;

/// Plain environment: variable name -> value. No scoping tricks; the
/// evaluator enumerates complete assignments, so lookups never miss
/// for closed sentences.
using Env = std::map<std::string, Value>;

bool ResolveTerm(const Term& t, const Env& env, Value* out) {
  if (t.is_const()) {
    *out = t.value();
    return true;
  }
  auto it = env.find(t.var_name());
  if (it == env.end()) return false;
  *out = it->second;
  return true;
}

const std::set<Tuple>* StepTuples(const NaiveStep& step,
                                  const logic::PredicateRef& pred,
                                  std::set<Tuple>* binding_singleton) {
  switch (pred.space) {
    case PredSpace::kPre: {
      auto it = step.pre.find(pred.id);
      return it == step.pre.end() ? nullptr : &it->second;
    }
    case PredSpace::kPost: {
      auto it = step.post.find(pred.id);
      return it == step.post.end() ? nullptr : &it->second;
    }
    case PredSpace::kBind: {
      if (pred.id != step.method) return nullptr;
      binding_singleton->clear();
      binding_singleton->insert(step.binding);
      return binding_singleton;
    }
    case PredSpace::kPlain:
      // Transition sentences have no kPlain interpretation (§2's M(t)
      // structure), matching logic::TransitionView.
      return nullptr;
  }
  return nullptr;
}

/// Recursive truth evaluation with a complete assignment built up at
/// kExists nodes by brute force over `domain`.
bool EvalRec(const PosFormula* f, const NaiveStep& step,
             const std::vector<Value>& domain, Env* env) {
  switch (f->kind()) {
    case NodeKind::kTrue:
      return true;
    case NodeKind::kFalse:
      return false;
    case NodeKind::kAtom: {
      // 0-ary IsBind proposition (Sch0−Acc, §4.2).
      if (f->pred().space == PredSpace::kBind && f->terms().empty()) {
        return f->pred().id == step.method;
      }
      std::set<Tuple> binding_singleton;
      const std::set<Tuple>* tuples =
          StepTuples(step, f->pred(), &binding_singleton);
      if (tuples == nullptr) return false;
      for (const Tuple& tuple : *tuples) {
        if (tuple.size() != f->terms().size()) continue;
        bool match = true;
        for (size_t i = 0; i < tuple.size(); ++i) {
          Value v;
          if (!ResolveTerm(f->terms()[i], *env, &v) || v != tuple[i]) {
            match = false;
            break;
          }
        }
        if (match) return true;
      }
      return false;
    }
    case NodeKind::kEq:
    case NodeKind::kNeq: {
      Value l, r;
      if (!ResolveTerm(f->lhs(), *env, &l)) return false;
      if (!ResolveTerm(f->rhs(), *env, &r)) return false;
      return f->kind() == NodeKind::kEq ? l == r : l != r;
    }
    case NodeKind::kAnd: {
      for (const PosFormulaPtr& c : f->children()) {
        if (!EvalRec(c.get(), step, domain, env)) return false;
      }
      return true;
    }
    case NodeKind::kOr: {
      for (const PosFormulaPtr& c : f->children()) {
        if (EvalRec(c.get(), step, domain, env)) return true;
      }
      return false;
    }
    case NodeKind::kExists: {
      const std::vector<std::string>& vars = f->bound_vars();
      std::function<bool(size_t)> assign = [&](size_t idx) -> bool {
        if (idx == vars.size()) return EvalRec(f->body().get(), step, domain, env);
        for (const Value& v : domain) {
          (*env)[vars[idx]] = v;
          if (assign(idx + 1)) return true;
        }
        env->erase(vars[idx]);
        return false;
      };
      bool res = assign(0);
      for (const std::string& v : vars) env->erase(v);
      return res;
    }
  }
  return false;
}

void AddDomainValues(const NaiveInstance& inst, std::set<Value>* dom) {
  for (const auto& [rel, tuples] : inst) {
    (void)rel;
    for (const Tuple& t : tuples) dom->insert(t.begin(), t.end());
  }
}

}  // namespace

NaiveInstance ToNaive(const schema::Instance& instance) {
  NaiveInstance out;
  for (schema::RelationId r = 0; r < instance.num_relations(); ++r) {
    std::set<Tuple>& tuples = out[r];
    for (const Tuple& t : instance.tuples(r)) tuples.insert(t);
  }
  return out;
}

bool NaiveEvalSentence(const PosFormulaPtr& sentence, const NaiveStep& step) {
  // Active-domain semantics: quantifiers range over every value of the
  // step's structure plus the sentence's own constants.
  std::set<Value> dom_set;
  AddDomainValues(step.pre, &dom_set);
  AddDomainValues(step.post, &dom_set);
  dom_set.insert(step.binding.begin(), step.binding.end());
  for (const Value& v : sentence->Constants()) dom_set.insert(v);
  std::vector<Value> domain(dom_set.begin(), dom_set.end());
  Env env;
  return EvalRec(sentence.get(), step, domain, &env);
}

bool NaiveEvalFormula(const acc::AccPtr& f,
                      const std::vector<NaiveStep>& trace, size_t position) {
  if (position >= trace.size()) return false;
  switch (f->kind()) {
    case acc::AccKind::kAtom:
      return NaiveEvalSentence(f->sentence(), trace[position]);
    case acc::AccKind::kNot:
      return !NaiveEvalFormula(f->child(), trace, position);
    case acc::AccKind::kAnd: {
      for (const acc::AccPtr& c : f->children()) {
        if (!NaiveEvalFormula(c, trace, position)) return false;
      }
      return true;
    }
    case acc::AccKind::kOr: {
      for (const acc::AccPtr& c : f->children()) {
        if (NaiveEvalFormula(c, trace, position)) return true;
      }
      return false;
    }
    case acc::AccKind::kNext:
      return position + 1 < trace.size() &&
             NaiveEvalFormula(f->child(), trace, position + 1);
    case acc::AccKind::kUntil: {
      // Def. 2.1 over a finite path: ∃ j ≥ i with rhs at j and lhs at
      // every i ≤ k < j.
      for (size_t j = position; j < trace.size(); ++j) {
        if (NaiveEvalFormula(f->rhs(), trace, j)) return true;
        if (!NaiveEvalFormula(f->lhs(), trace, j)) return false;
      }
      return false;
    }
  }
  return false;
}

bool NaiveEvalOnPath(const acc::AccPtr& f, const schema::Schema& schema,
                     const schema::AccessPath& path,
                     const schema::Instance& initial) {
  if (path.empty()) return false;
  std::vector<NaiveStep> trace;
  NaiveInstance current = ToNaive(initial);
  for (const schema::AccessStep& s : path.steps()) {
    NaiveStep step;
    step.method = s.access.method;
    step.binding = s.access.binding;
    step.response = s.response;
    step.pre = current;
    schema::RelationId rel = schema.method(s.access.method).relation;
    for (const Tuple& t : s.response) current[rel].insert(t);
    step.post = current;
    trace.push_back(std::move(step));
  }
  return NaiveEvalFormula(f, trace, 0);
}

const char* OracleAnswerName(OracleAnswer a) {
  switch (a) {
    case OracleAnswer::kSat:
      return "sat";
    case OracleAnswer::kNoWithinBounds:
      return "no-within-bounds";
    case OracleAnswer::kUnknown:
      return "unknown";
  }
  return "?";
}

namespace {

/// The oracle's value universe, split by type so bindings and response
/// tuples respect declared position types.
struct ValuePools {
  std::vector<Value> strings;
  std::vector<Value> ints;
  std::vector<Value> bools;

  const std::vector<Value>& ForType(ValueType t) const {
    switch (t) {
      case ValueType::kString:
        return strings;
      case ValueType::kInt:
        return ints;
      case ValueType::kBool:
        return bools;
    }
    return strings;
  }
};

ValuePools BuildPools(const acc::AccPtr& formula,
                      const OracleOptions& options) {
  std::set<Value> values;
  for (const PosFormulaPtr& s : formula->AtomSentences()) {
    for (const Value& v : s->Constants()) values.insert(v);
  }
  for (const Value& v : options.extra_values) values.insert(v);
  // Fresh values standing in for "any value the outside world could
  // return". The "~" prefix cannot collide with workload-generated
  // names; distinct fresh values let witnesses use up to
  // num_fresh_values unconstrained values per type (the disjoint-block
  // argument for ≠-free formulas never needs more than the formula's
  // variable count).
  for (size_t k = 0; k < options.num_fresh_values; ++k) {
    values.insert(Value::Str("~o" + std::to_string(k)));
    values.insert(Value::Int(static_cast<int64_t>(9000001 + k)));
  }
  values.insert(Value::Bool(false));
  values.insert(Value::Bool(true));
  ValuePools pools;
  for (const Value& v : values) {
    switch (v.type()) {
      case ValueType::kString:
        pools.strings.push_back(v);
        break;
      case ValueType::kInt:
        pools.ints.push_back(v);
        break;
      case ValueType::kBool:
        pools.bools.push_back(v);
        break;
    }
  }
  return pools;
}

/// Enumerates every tuple with `types[i]` drawn from `per_position[i]`.
void EnumerateTuples(const std::vector<std::vector<Value>>& per_position,
                     size_t cap, bool* truncated,
                     std::vector<Tuple>* out) {
  Tuple current(per_position.size());
  std::function<bool(size_t)> rec = [&](size_t idx) -> bool {
    if (out->size() >= cap) {
      *truncated = true;
      return false;
    }
    if (idx == per_position.size()) {
      out->push_back(current);
      return true;
    }
    for (const Value& v : per_position[idx]) {
      current[idx] = v;
      if (!rec(idx + 1)) return false;
    }
    return true;
  };
  rec(0);
}

class PathEnumerator {
 public:
  PathEnumerator(const acc::AccPtr& formula, const schema::Schema& schema,
                 const NaiveInstance& initial, const OracleOptions& options)
      : formula_(formula),
        schema_(schema),
        options_(options),
        pools_(BuildPools(formula, options)) {
    current_ = initial;
  }

  OracleResult Run() {
    Dfs();
    OracleResult r;
    r.paths_explored = paths_;
    r.exhausted_budget = exhausted_;
    if (found_) {
      r.answer = OracleAnswer::kSat;
      r.has_witness = true;
      r.witness = schema::AccessPath(witness_steps_);
    } else if (exhausted_) {
      r.answer = OracleAnswer::kUnknown;
    } else {
      r.answer = OracleAnswer::kNoWithinBounds;
    }
    return r;
  }

 private:
  /// Binding value pool for one input position: the full universe, or
  /// (grounded, §2) only values already revealed in the current
  /// configuration.
  std::vector<Value> BindingPool(ValueType want) const {
    std::vector<Value> out;
    if (options_.grounded) {
      std::set<Value> dom;
      AddDomainValues(current_, &dom);
      for (const Value& v : dom) {
        if (v.type() == want) out.push_back(v);
      }
      return out;
    }
    return pools_.ForType(want);
  }

  void Dfs() {
    if (found_ || exhausted_) return;
    for (schema::AccessMethodId am = 0;
         am < schema_.num_access_methods() && !found_ && !exhausted_; ++am) {
      const schema::AccessMethod& m = schema_.method(am);
      const schema::Relation& rel = schema_.relation(m.relation);

      std::vector<std::vector<Value>> binding_pools(
          static_cast<size_t>(m.num_inputs()));
      bool empty_pool = false;
      for (int i = 0; i < m.num_inputs(); ++i) {
        binding_pools[static_cast<size_t>(i)] =
            BindingPool(rel.position_types[m.input_positions[i]]);
        if (binding_pools[static_cast<size_t>(i)].empty()) empty_pool = true;
      }
      if (empty_pool) continue;
      std::vector<Tuple> bindings;
      bool binding_truncated = false;
      EnumerateTuples(binding_pools, options_.max_response_candidates,
                      &binding_truncated, &bindings);
      if (binding_truncated) exhausted_ = true;

      for (const Tuple& binding : bindings) {
        if (found_ || exhausted_) break;
        // Candidate response tuples: anything well-formed — agreeing
        // with the binding on input positions, free elsewhere.
        std::vector<std::vector<Value>> tuple_pools(
            static_cast<size_t>(rel.arity()));
        for (int p = 0; p < rel.arity(); ++p) {
          tuple_pools[static_cast<size_t>(p)] =
              pools_.ForType(rel.position_types[static_cast<size_t>(p)]);
        }
        for (int i = 0; i < m.num_inputs(); ++i) {
          tuple_pools[static_cast<size_t>(m.input_positions[i])] = {
              binding[static_cast<size_t>(i)]};
        }
        std::vector<Tuple> candidates;
        bool truncated = false;
        EnumerateTuples(tuple_pools, options_.max_response_candidates,
                        &truncated, &candidates);
        if (truncated) exhausted_ = true;
        EnumerateResponses(am, binding, candidates);
      }
    }
  }

  void EnumerateResponses(schema::AccessMethodId am, const Tuple& binding,
                          const std::vector<Tuple>& candidates) {
    // All subsets of the candidates up to max_response_facts, smallest
    // first (the empty response is always a well-formed response). A
    // result-bounded method further caps the subset size at its bound
    // (bound 0: only the empty response is possible).
    std::set<Tuple> response;
    TryStep(am, binding, response);
    size_t limit = options_.max_response_facts;
    const schema::AccessMethod& m = schema_.method(am);
    if (m.bounded()) {
      limit = std::min(limit, static_cast<size_t>(m.result_bound));
    }
    std::function<void(size_t, size_t)> rec = [&](size_t start,
                                                  size_t remaining) {
      if (remaining == 0 || found_ || exhausted_) return;
      for (size_t i = start; i < candidates.size() && !found_ && !exhausted_;
           ++i) {
        response.insert(candidates[i]);
        TryStep(am, binding, response);
        rec(i + 1, remaining - 1);
        response.erase(candidates[i]);
      }
    };
    rec(0, limit);
  }

  void TryStep(schema::AccessMethodId am, const Tuple& binding,
               const std::set<Tuple>& response) {
    if (found_ || exhausted_) return;
    if (options_.require_idempotent) {
      for (const NaiveStep& prev : trace_) {
        if (prev.method == am && prev.binding == binding &&
            prev.response != response) {
          return;
        }
      }
    }
    if (paths_ >= options_.max_nodes) {
      exhausted_ = true;
      return;
    }
    ++paths_;

    NaiveStep step;
    step.method = am;
    step.binding = binding;
    step.response = response;
    step.pre = current_;
    schema::RelationId rel = schema_.method(am).relation;
    NaiveInstance post = current_;
    for (const Tuple& t : response) post[rel].insert(t);
    step.post = post;

    trace_.push_back(step);
    if (NaiveEvalFormula(formula_, trace_, 0)) {
      found_ = true;
      witness_steps_.clear();
      for (const NaiveStep& s : trace_) {
        witness_steps_.push_back(
            schema::AccessStep{schema::Access{s.method, s.binding},
                               s.response});
      }
      trace_.pop_back();
      return;
    }
    if (trace_.size() < options_.max_path_length) {
      NaiveInstance saved = std::move(current_);
      current_ = post;
      Dfs();
      current_ = std::move(saved);
    }
    trace_.pop_back();
  }

  const acc::AccPtr& formula_;
  const schema::Schema& schema_;
  const OracleOptions& options_;
  ValuePools pools_;
  NaiveInstance current_;
  std::vector<NaiveStep> trace_;
  std::vector<schema::AccessStep> witness_steps_;
  size_t paths_ = 0;
  bool found_ = false;
  bool exhausted_ = false;
};

}  // namespace

OracleResult OracleDecide(const acc::AccPtr& formula,
                          const schema::Schema& schema,
                          const OracleOptions& options) {
  return OracleDecide(formula, schema, schema::Instance(schema), options);
}

OracleResult OracleDecide(const acc::AccPtr& formula,
                          const schema::Schema& schema,
                          const schema::Instance& initial,
                          const OracleOptions& options) {
  PathEnumerator e(formula, schema, ToNaive(initial), options);
  return e.Run();
}

namespace {

std::string SerializeNaive(const NaiveInstance& inst) {
  std::string out;
  for (const auto& [rel, tuples] : inst) {
    if (tuples.empty()) continue;
    out += "#" + std::to_string(rel) + ":";
    for (const Tuple& t : tuples) out += TupleToString(t) + ";";
  }
  return out;
}

size_t NaiveTotalFacts(const NaiveInstance& inst) {
  size_t n = 0;
  for (const auto& [rel, tuples] : inst) {
    (void)rel;
    n += tuples.size();
  }
  return n;
}

/// Verbatim copy of lts.cc's AppendBoundedSubsets over plain tuples:
/// the bounded-method response enumeration must stay in lockstep with
/// the engine's for stat-for-stat agreement.
void AppendBoundedSubsets(const std::vector<Tuple>& matching, size_t max_size,
                          bool exact_size, size_t cap,
                          std::vector<std::vector<Tuple>>* responses) {
  if (max_size == 0) return;
  std::vector<Tuple> combo;
  std::function<void(size_t)> rec = [&](size_t start) {
    for (size_t i = start; i < matching.size() && responses->size() < cap;
         ++i) {
      combo.push_back(matching[i]);
      if (!exact_size || combo.size() == max_size) responses->push_back(combo);
      if (combo.size() < max_size) rec(i + 1);
      combo.pop_back();
    }
  };
  rec(0);
}

/// Naive mirror of lts.cc's SuccessorsImpl: same binding pools, the
/// same response policy, the same per-node cap — over plain tuple
/// sets. Returns the post configurations; `*transitions` counts every
/// enumerated transition (including ones leading to seen configs).
std::vector<NaiveInstance> NaiveSuccessors(const schema::Schema& schema,
                                           const NaiveInstance& current,
                                           const NaiveInstance& universe,
                                           const schema::LtsOptions& options,
                                           size_t* transitions) {
  std::vector<NaiveInstance> out;
  // Candidate binding values: the configuration's active domain plus
  // seeds, plus (non-grounded) every universe value.
  std::set<Value> pool_set;
  AddDomainValues(current, &pool_set);
  for (const Value& v : options.seed_values) pool_set.insert(v);
  if (!options.grounded) AddDomainValues(universe, &pool_set);
  std::vector<Value> pool(pool_set.begin(), pool_set.end());

  for (schema::AccessMethodId am = 0; am < schema.num_access_methods();
       ++am) {
    const schema::AccessMethod& m = schema.method(am);
    const schema::Relation& rel = schema.relation(m.relation);
    std::vector<std::vector<Value>> binding_pools(
        static_cast<size_t>(m.num_inputs()));
    bool empty_pool = false;
    for (int i = 0; i < m.num_inputs(); ++i) {
      ValueType want = rel.position_types[m.input_positions[i]];
      for (const Value& v : pool) {
        if (v.type() == want) {
          binding_pools[static_cast<size_t>(i)].push_back(v);
        }
      }
      if (binding_pools[static_cast<size_t>(i)].empty()) empty_pool = true;
    }
    if (empty_pool && m.num_inputs() > 0) continue;
    std::vector<Tuple> bindings;
    bool ignored = false;
    EnumerateTuples(binding_pools, ~size_t{0}, &ignored, &bindings);

    for (const Tuple& binding : bindings) {
      // Matching universe tuples (the hidden database bounds the
      // branching, exactly as LtsOptions documents).
      std::vector<Tuple> matching;
      auto it = universe.find(m.relation);
      if (it != universe.end()) {
        for (const Tuple& t : it->second) {
          bool match = true;
          for (int i = 0; i < m.num_inputs(); ++i) {
            if (t[static_cast<size_t>(m.input_positions[i])] !=
                binding[static_cast<size_t>(i)]) {
              match = false;
              break;
            }
          }
          if (match) matching.push_back(t);
        }
      }
      bool exact = m.exact || options.exact_methods.count(am) > 0;
      std::vector<std::vector<Tuple>> responses;
      if (m.bounded()) {
        // Verbatim mirror of lts.cc's bounded response rule: every
        // <=k-subset (exact: exactly min(k, |matching|)-subsets), in
        // the same lexicographic enumeration order.
        size_t bound = static_cast<size_t>(m.result_bound);
        if (exact) {
          size_t take = std::min(bound, matching.size());
          if (take == 0) {
            responses.push_back({});
          } else {
            AppendBoundedSubsets(matching, take, /*exact_size=*/true,
                                 options.max_successors_per_node, &responses);
          }
        } else {
          responses.push_back({});
          AppendBoundedSubsets(matching, bound, /*exact_size=*/false,
                               options.max_successors_per_node, &responses);
        }
      } else if (exact) {
        responses.push_back(matching);
      } else {
        responses.push_back({});
        if (options.enumerate_singleton_responses) {
          for (const Tuple& t : matching) responses.push_back({t});
          if (matching.size() > 1) responses.push_back(matching);
        } else if (!matching.empty()) {
          responses.push_back(matching);
        }
      }
      for (const std::vector<Tuple>& r : responses) {
        NaiveInstance post = current;
        std::set<Tuple>& target = post[m.relation];
        for (const Tuple& t : r) target.insert(t);
        out.push_back(std::move(post));
        ++*transitions;
        if (out.size() >= options.max_successors_per_node) return out;
      }
    }
  }
  return out;
}

}  // namespace

std::vector<OracleLevelStats> OracleExploreLts(
    const schema::Schema& schema, const schema::Instance& initial,
    const schema::LtsOptions& options, size_t max_depth, size_t max_nodes) {
  std::vector<OracleLevelStats> stats;
  NaiveInstance start = ToNaive(initial);
  {
    OracleLevelStats s;
    s.depth = 0;
    s.distinct_configurations = 1;
    s.max_configuration_facts = NaiveTotalFacts(start);
    stats.push_back(s);
  }
  if (max_depth == 0) return stats;

  NaiveInstance universe = ToNaive(options.universe);
  std::set<std::string> visited;
  visited.insert(SerializeNaive(start));
  size_t seen_count = 1;

  std::vector<NaiveInstance> frontier;
  frontier.push_back(std::move(start));
  for (size_t level = 1; !frontier.empty(); ++level) {
    OracleLevelStats s;
    s.depth = level;
    std::vector<NaiveInstance> children;
    for (const NaiveInstance& node : frontier) {
      std::vector<NaiveInstance> succ =
          NaiveSuccessors(schema, node, universe, options, &s.transitions);
      for (NaiveInstance& child : succ) children.push_back(std::move(child));
    }
    // Count-then-cut, mirroring the engine's level-granular budget: the
    // whole level is expanded and counted; the overflow is dropped and
    // flagged, never silently complete-looking.
    bool stop = false;
    std::vector<NaiveInstance> next;
    for (NaiveInstance& child : children) {
      std::string key = SerializeNaive(child);
      if (!visited.insert(std::move(key)).second) continue;
      ++seen_count;
      if (seen_count > max_nodes) {
        s.truncated = true;
        stop = true;
        break;
      }
      s.max_configuration_facts =
          std::max(s.max_configuration_facts, NaiveTotalFacts(child));
      next.push_back(std::move(child));
    }
    s.distinct_configurations = next.size();
    stats.push_back(s);
    if (stop || level >= max_depth) break;
    frontier = std::move(next);
  }
  return stats;
}

}  // namespace oracle
}  // namespace accltl
