#ifndef ACCLTL_ORACLE_ORACLE_H_
#define ACCLTL_ORACLE_ORACLE_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/accltl/formula.h"
#include "src/common/value.h"
#include "src/schema/access.h"
#include "src/schema/instance.h"
#include "src/schema/lts.h"
#include "src/schema/schema.h"

namespace accltl {
namespace oracle {

/// A deliberately naive, optimization-free executable model of the
/// paper's semantics (§2, Def. 2.1) used as the reference side of
/// differential tests (src/testing/). Everything here trades speed for
/// obviousness, on purpose:
///  - instances are plain std::map<RelationId, std::set<Tuple>> — no
///    interning, no copy-on-write, no configuration hashing;
///  - the LTS is enumerated explicitly with std::set visited sets — no
///    work-stealing engine, no dominance memos, no search plans;
///  - AccLTL formulas are evaluated directly over the transition trace
///    by structural recursion — no automaton compilation, no tableau,
///    no memoization;
///  - FO∃+(≠) sentences are evaluated by brute-force active-domain
///    assignment enumeration — no join reordering, no match indexes.
///
/// The oracle shares nothing with the engines under test except the
/// AST types and the Schema/AccessPath value types, so an agreement
/// between the two sides is evidence, not tautology.

/// A plain, uninterned instance: one sorted tuple set per relation.
using NaiveInstance = std::map<schema::RelationId, std::set<Tuple>>;

/// Converts an interned instance to the plain representation.
NaiveInstance ToNaive(const schema::Instance& instance);

/// One explicit transition of the naive trace: the pre/post tuple sets
/// plus the access that connects them (M(t) of §2).
struct NaiveStep {
  schema::AccessMethodId method = 0;
  Tuple binding;
  std::set<Tuple> response;
  NaiveInstance pre;
  NaiveInstance post;
};

/// Brute-force evaluation of an FO∃+(≠) transition sentence on one
/// naive step: quantified variables range over the step's active
/// domain (pre ∪ post ∪ binding values) plus the sentence's constants.
/// Mirrors logic::EvalSentence over a TransitionView; independent
/// implementation.
bool NaiveEvalSentence(const logic::PosFormulaPtr& sentence,
                       const NaiveStep& step);

/// Def. 2.1's (p, i) ⊨ φ by direct structural recursion over the
/// naive trace (0-based positions; finite-path X and U exactly as
/// acc::EvalOnTransitions defines them). No memo.
bool NaiveEvalFormula(const acc::AccPtr& f,
                      const std::vector<NaiveStep>& trace, size_t position);

/// Independent re-check of an engine witness: materializes the path's
/// naive trace from `initial` and evaluates `f` at position 0 with the
/// naive evaluator. Differential drivers use this to validate kYes
/// answers without trusting logic::EvalSentence.
bool NaiveEvalOnPath(const acc::AccPtr& f, const schema::Schema& schema,
                     const schema::AccessPath& path,
                     const schema::Instance& initial);

/// Bounds of the oracle's explicit path enumeration. All defaults are
/// deliberately tiny: the oracle is for small differential cases, not
/// production queries.
struct OracleOptions {
  /// Maximum access-path length enumerated.
  size_t max_path_length = 2;
  /// Maximum response size per access (the LTS itself allows any
  /// finite response; the oracle enumerates subsets up to this size).
  size_t max_response_facts = 2;
  /// Fresh values invented per type, standing in for "any value": the
  /// value universe is the formula's constants plus this many fresh
  /// strings ("~o0", …) / ints / plus both booleans.
  size_t num_fresh_values = 2;
  /// Extra caller-supplied values added to the universe.
  std::vector<Value> extra_values;
  /// Restrict to grounded paths (§2): binding values must occur in the
  /// initial instance or an earlier response.
  bool grounded = false;
  /// Restrict to idempotent paths (repeat access ⇒ same response).
  bool require_idempotent = false;
  /// Budget on enumerated paths; when hit, the sweep is incomplete and
  /// the verdict degrades to kUnknown instead of kNoWithinBounds.
  size_t max_nodes = 200000;
  /// Cap on candidate response tuples per (method, binding); exceeding
  /// it truncates the enumeration and flags `exhausted_budget`.
  size_t max_response_candidates = 512;
};

enum class OracleAnswer {
  /// A concrete witness path was found (and re-checked by the naive
  /// evaluator). Implies true satisfiability.
  kSat,
  /// The *entire* bounded space (path length, response size, value
  /// universe) was swept without a witness. NOT an unconditional "no":
  /// a witness may exist outside the bounds.
  kNoWithinBounds,
  /// The sweep was cut by a budget before covering the bounded space.
  kUnknown,
};

const char* OracleAnswerName(OracleAnswer a);

struct OracleResult {
  OracleAnswer answer = OracleAnswer::kUnknown;
  bool has_witness = false;
  schema::AccessPath witness;
  /// Paths enumerated (every prefix counts once).
  size_t paths_explored = 0;
  /// True when max_nodes or max_response_candidates truncated the
  /// sweep.
  bool exhausted_budget = false;
};

/// Explicit enumeration of every access path within the bounds from
/// `initial` (default: the empty instance, matching the decision
/// procedures), evaluating the formula on each path with the naive
/// evaluator. Works for ANY AccLTL formula — the oracle does not care
/// about fragments; its bounds are the only restriction.
OracleResult OracleDecide(const acc::AccPtr& formula,
                          const schema::Schema& schema,
                          const OracleOptions& options = {});
OracleResult OracleDecide(const acc::AccPtr& formula,
                          const schema::Schema& schema,
                          const schema::Instance& initial,
                          const OracleOptions& options = {});

/// Per-level statistics of the naive breadth-first LTS enumeration,
/// field-for-field comparable with schema::LtsLevelStats.
struct OracleLevelStats {
  size_t depth = 0;
  size_t distinct_configurations = 0;
  size_t transitions = 0;
  size_t max_configuration_facts = 0;
  bool truncated = false;
};

/// Naive mirror of schema::ExploreBreadthFirst: same successor policy
/// (universe-driven responses, grounded/seed binding pools, exact
/// methods, empty/singleton/full response enumeration, count-then-cut
/// budget at level granularity), but implemented over plain tuple sets
/// with a std::set<std::string> visited set of serialized
/// configurations. Stats must match the engine's exactly, except
/// `max_configuration_facts` on a truncated level (which configurations
/// are dropped at the cut is an ordering artifact both sides document).
std::vector<OracleLevelStats> OracleExploreLts(
    const schema::Schema& schema, const schema::Instance& initial,
    const schema::LtsOptions& options, size_t max_depth,
    size_t max_nodes = 100000);

}  // namespace oracle
}  // namespace accltl

#endif  // ACCLTL_ORACLE_ORACLE_H_
