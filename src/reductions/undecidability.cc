#include "src/reductions/undecidability.h"

#include <string>

namespace accltl {
namespace reductions {

using acc::AccFormula;
using acc::AccPtr;
using acc::CtlFormula;
using acc::CtlPtr;
using logic::PosFormula;
using logic::PosFormulaPtr;
using logic::Term;

namespace {

/// Extends the base schema per the Thm 5.3 sketch: a no-input Fill
/// method per relation, plus ChkFD(R) (arity 2n) and CheckIncDep(R)
/// (arity n) relations with boolean (all-input) access methods.
schema::Schema ExtendSchema(const ImplicationInstance& instance,
                            std::vector<schema::AccessMethodId>* fill_methods,
                            std::vector<schema::RelationId>* chkfd,
                            std::vector<schema::RelationId>* chkid) {
  schema::Schema ext = instance.base;
  for (schema::RelationId r = 0; r < instance.base.num_relations(); ++r) {
    const schema::Relation& rel = instance.base.relation(r);
    fill_methods->push_back(
        ext.AddAccessMethod("Fill" + rel.name, r, {}));
    std::vector<ValueType> doubled = rel.position_types;
    doubled.insert(doubled.end(), rel.position_types.begin(),
                   rel.position_types.end());
    schema::RelationId cf = ext.AddRelation("ChkFD_" + rel.name, doubled);
    std::vector<schema::Position> all2;
    for (int i = 0; i < 2 * rel.arity(); ++i) all2.push_back(i);
    ext.AddAccessMethod("ChkFD_" + rel.name + "_b", cf, all2);
    chkfd->push_back(cf);
    schema::RelationId ci =
        ext.AddRelation("CheckIncDep_" + rel.name, rel.position_types);
    std::vector<schema::Position> all1;
    for (int i = 0; i < rel.arity(); ++i) all1.push_back(i);
    ext.AddAccessMethod("CheckIncDep_" + rel.name + "_b", ci, all1);
    chkid->push_back(ci);
  }
  return ext;
}

/// ∃x̄ȳ ChkFDpost(x̄ȳ) ∧ ⋀_{p∈lhs} x_p = y_p ∧ Rpost(x̄) ∧ Rpost(ȳ).
PosFormulaPtr ChkFdPairWitness(const schema::Schema& ext,
                               schema::RelationId chk,
                               const schema::FunctionalDependency& fd) {
  int n = ext.relation(fd.relation).arity();
  std::vector<Term> xs, ys, xy;
  std::vector<std::string> vars;
  for (int i = 0; i < n; ++i) {
    xs.push_back(Term::Var("cx" + std::to_string(i)));
    vars.push_back("cx" + std::to_string(i));
  }
  for (int i = 0; i < n; ++i) {
    ys.push_back(Term::Var("cy" + std::to_string(i)));
    vars.push_back("cy" + std::to_string(i));
  }
  xy = xs;
  xy.insert(xy.end(), ys.begin(), ys.end());
  std::vector<PosFormulaPtr> conj = {
      PosFormula::MakeAtom(logic::Post(chk), xy),
      PosFormula::MakeAtom(logic::Post(fd.relation), xs),
      PosFormula::MakeAtom(logic::Post(fd.relation), ys)};
  for (schema::Position p : fd.lhs) {
    conj.push_back(PosFormula::Eq(xs[static_cast<size_t>(p)],
                                  ys[static_cast<size_t>(p)]));
  }
  return PosFormula::Exists(std::move(vars), PosFormula::And(std::move(conj)));
}

/// ∃x̄ȳ ChkFDpost(x̄ȳ) ∧ x_rhs = y_rhs (the "agreement confirmed" part).
PosFormulaPtr ChkFdAgreement(const schema::Schema& ext,
                             schema::RelationId chk,
                             const schema::FunctionalDependency& fd) {
  int n = ext.relation(fd.relation).arity();
  std::vector<Term> xy;
  std::vector<std::string> vars;
  for (int i = 0; i < 2 * n; ++i) {
    xy.push_back(Term::Var("ca" + std::to_string(i)));
    vars.push_back("ca" + std::to_string(i));
  }
  std::vector<PosFormulaPtr> conj = {PosFormula::MakeAtom(logic::Post(chk), xy)};
  conj.push_back(PosFormula::Eq(xy[static_cast<size_t>(fd.rhs)],
                                xy[static_cast<size_t>(fd.rhs + n)]));
  return PosFormula::Exists(std::move(vars), PosFormula::And(std::move(conj)));
}

}  // namespace

Result<CtlReduction> BuildCtlReduction(const ImplicationInstance& instance) {
  CtlReduction out;
  std::vector<schema::AccessMethodId> fill_methods;
  std::vector<schema::RelationId> chkfd, chkid;
  out.extended = ExtendSchema(instance, &fill_methods, &chkfd, &chkid);
  const schema::Schema& ext = out.extended;

  // φfd: AX ( pair-tested-in-ChkFD ∧ agrees-on-lhs ⇒ agrees-on-rhs ).
  // Encoded as ¬EX(test ∧ ¬agree) using the one-tuple-per-boolean-access
  // trick of the proof.
  std::vector<CtlPtr> conjuncts;
  for (const schema::FunctionalDependency& fd : instance.fds) {
    schema::RelationId chk = chkfd[static_cast<size_t>(fd.relation)];
    CtlPtr test = CtlFormula::Atom(ChkFdPairWitness(ext, chk, fd));
    CtlPtr agree = CtlFormula::Atom(ChkFdAgreement(ext, chk, fd));
    conjuncts.push_back(CtlFormula::Ax(
        CtlFormula::Or({CtlFormula::Not(test), agree})));
  }
  // φ¬σ: EX(test ∧ ¬agree) for σ.
  {
    schema::RelationId chk = chkfd[static_cast<size_t>(instance.sigma.relation)];
    CtlPtr test =
        CtlFormula::Atom(ChkFdPairWitness(ext, chk, instance.sigma));
    CtlPtr agree =
        CtlFormula::Atom(ChkFdAgreement(ext, chk, instance.sigma));
    conjuncts.push_back(
        CtlFormula::Ex(CtlFormula::And({test, CtlFormula::Not(agree)})));
  }
  // φid: whenever a test access confirms a source tuple, some next
  // access reveals a matching target tuple.
  for (const schema::InclusionDependency& id : instance.ids) {
    schema::RelationId src_chk = chkid[static_cast<size_t>(id.source)];
    schema::RelationId tgt_chk = chkid[static_cast<size_t>(id.target)];
    int n_src = ext.relation(id.source).arity();
    int n_tgt = ext.relation(id.target).arity();
    std::vector<Term> xs, ys;
    std::vector<std::string> xvars, yvars;
    for (int i = 0; i < n_src; ++i) {
      xs.push_back(Term::Var("ix" + std::to_string(i)));
      xvars.push_back("ix" + std::to_string(i));
    }
    for (int i = 0; i < n_tgt; ++i) {
      ys.push_back(Term::Var("iy" + std::to_string(i)));
      yvars.push_back("iy" + std::to_string(i));
    }
    PosFormulaPtr src_test = PosFormula::Exists(
        xvars, PosFormula::And(
                   {PosFormula::MakeAtom(logic::Post(src_chk), xs),
                    PosFormula::MakeAtom(logic::Post(id.source), xs)}));
    std::vector<PosFormulaPtr> match_conj = {
        PosFormula::MakeAtom(logic::Post(src_chk), xs),
        PosFormula::MakeAtom(logic::Post(tgt_chk), ys),
        PosFormula::MakeAtom(logic::Post(id.target), ys)};
    for (size_t k = 0; k < id.source_positions.size(); ++k) {
      match_conj.push_back(PosFormula::Eq(
          xs[static_cast<size_t>(id.source_positions[k])],
          ys[static_cast<size_t>(id.target_positions[k])]));
    }
    std::vector<std::string> all_vars = xvars;
    all_vars.insert(all_vars.end(), yvars.begin(), yvars.end());
    PosFormulaPtr match = PosFormula::Exists(
        all_vars, PosFormula::And(std::move(match_conj)));
    conjuncts.push_back(CtlFormula::Ax(
        CtlFormula::Or({CtlFormula::Not(CtlFormula::Atom(src_test)),
                        CtlFormula::Ex(CtlFormula::Atom(match))})));
  }

  // Wrap in the Fill prefix: EX(Fill_R1 ∧ EX(… ∧ body)).
  CtlPtr body = CtlFormula::And(std::move(conjuncts));
  for (int r = instance.base.num_relations() - 1; r >= 0; --r) {
    PosFormulaPtr used =
        PosFormula::MakeAtom(logic::Bind(fill_methods[static_cast<size_t>(r)]),
                             {});
    body = CtlFormula::Ex(CtlFormula::And({CtlFormula::Atom(used), body}));
  }
  out.formula = body;
  return out;
}

Result<AccReduction> BuildAccLtlReduction(const ImplicationInstance& instance) {
  AccReduction out;
  std::vector<schema::AccessMethodId> fill_methods;
  std::vector<schema::RelationId> chkfd, chkid;
  out.extended = ExtendSchema(instance, &fill_methods, &chkfd, &chkid);
  const schema::Schema& ext = out.extended;

  // Thm 3.1 skeleton: fill every relation, then iterate FD checks via
  // boolean ChkFD accesses; the iteration "accesses them progressively
  // within ChkFD" — a binding must NOT satisfy the already-checked set,
  // which needs negated IsBind context. We encode the characteristic
  // un-positivity: G( IsBind_ChkFD(x̄ȳ) occurring only for *new* pairs )
  // expressed via ¬∃x̄ȳ (IsBind(x̄ȳ) ∧ ChkFD_pre(x̄ȳ)).
  std::vector<AccPtr> conjuncts;
  for (const schema::FunctionalDependency& fd : instance.fds) {
    schema::RelationId chk = chkfd[static_cast<size_t>(fd.relation)];
    // Every checked pair satisfies the FD...
    conjuncts.push_back(AccFormula::Globally(AccFormula::Or(
        {AccFormula::Not(
             AccFormula::Atom(ChkFdPairWitness(ext, chk, fd))),
         AccFormula::Atom(ChkFdAgreement(ext, chk, fd))})));
    // ...and re-checking an already-checked pair is forbidden: the
    // binding-negative constraint that breaks Def. 4.1.
    int n2 = 2 * ext.relation(fd.relation).arity();
    std::vector<Term> xy;
    std::vector<std::string> vars;
    for (int i = 0; i < n2; ++i) {
      xy.push_back(Term::Var("rx" + std::to_string(i)));
      vars.push_back("rx" + std::to_string(i));
    }
    Result<schema::AccessMethodId> bm =
        ext.FindMethod("ChkFD_" + ext.relation(fd.relation).name + "_b");
    if (!bm.ok()) return bm.status();
    PosFormulaPtr recheck = PosFormula::Exists(
        std::move(vars),
        PosFormula::And({PosFormula::MakeAtom(logic::Bind(bm.value()), xy),
                         PosFormula::MakeAtom(logic::Pre(chk), xy)}));
    conjuncts.push_back(AccFormula::Globally(
        AccFormula::Not(AccFormula::Atom(std::move(recheck)))));
  }
  // σ must fail on some checked pair.
  {
    schema::RelationId chk =
        chkfd[static_cast<size_t>(instance.sigma.relation)];
    conjuncts.push_back(AccFormula::Eventually(AccFormula::And(
        {AccFormula::Atom(ChkFdPairWitness(ext, chk, instance.sigma)),
         AccFormula::Not(
             AccFormula::Atom(ChkFdAgreement(ext, chk, instance.sigma)))})));
  }
  out.formula = AccFormula::And(std::move(conjuncts));
  return out;
}

Result<AccReduction> BuildBindingPositiveNeqReduction(
    const ImplicationInstance& instance) {
  AccReduction out;
  std::vector<schema::AccessMethodId> fill_methods;
  std::vector<schema::RelationId> chkfd, chkid;
  out.extended = ExtendSchema(instance, &fill_methods, &chkfd, &chkid);
  const schema::Schema& ext = out.extended;

  // Thm 5.2: FD satisfaction/failure via boolean combinations of CQs
  // with inequality — binding-positive throughout.
  std::vector<AccPtr> conjuncts;
  auto fd_violation = [&](const schema::FunctionalDependency& fd) {
    int n = ext.relation(fd.relation).arity();
    std::vector<Term> xs, ys;
    std::vector<std::string> vars;
    for (int i = 0; i < n; ++i) {
      xs.push_back(Term::Var("vx" + std::to_string(i)));
      vars.push_back("vx" + std::to_string(i));
      ys.push_back(Term::Var("vy" + std::to_string(i)));
      vars.push_back("vy" + std::to_string(i));
    }
    std::vector<PosFormulaPtr> conj = {
        PosFormula::MakeAtom(logic::Post(fd.relation), xs),
        PosFormula::MakeAtom(logic::Post(fd.relation), ys)};
    for (schema::Position p : fd.lhs) {
      conj.push_back(PosFormula::Eq(xs[static_cast<size_t>(p)],
                                    ys[static_cast<size_t>(p)]));
    }
    conj.push_back(PosFormula::Neq(xs[static_cast<size_t>(fd.rhs)],
                                   ys[static_cast<size_t>(fd.rhs)]));
    return PosFormula::Exists(std::move(vars),
                              PosFormula::And(std::move(conj)));
  };
  for (const schema::FunctionalDependency& fd : instance.fds) {
    conjuncts.push_back(AccFormula::Not(
        AccFormula::Eventually(AccFormula::Atom(fd_violation(fd)))));
  }
  conjuncts.push_back(
      AccFormula::Eventually(AccFormula::Atom(fd_violation(instance.sigma))));
  // ID satisfaction via the CheckIncDep iteration (successor-driven in
  // the full proof; here the until-loop over boolean check accesses).
  for (const schema::InclusionDependency& id : instance.ids) {
    int n_src = ext.relation(id.source).arity();
    int n_tgt = ext.relation(id.target).arity();
    std::vector<Term> xs, ys;
    std::vector<std::string> vars;
    for (int i = 0; i < n_src; ++i) {
      xs.push_back(Term::Var("wx" + std::to_string(i)));
      vars.push_back("wx" + std::to_string(i));
    }
    for (int i = 0; i < n_tgt; ++i) {
      ys.push_back(Term::Var("wy" + std::to_string(i)));
      vars.push_back("wy" + std::to_string(i));
    }
    Result<schema::AccessMethodId> bm = ext.FindMethod(
        "CheckIncDep_" + ext.relation(id.source).name + "_b");
    if (!bm.ok()) return bm.status();
    std::vector<PosFormulaPtr> conj = {
        PosFormula::MakeAtom(logic::Bind(bm.value()), xs),
        PosFormula::MakeAtom(logic::Post(id.source), xs),
        PosFormula::MakeAtom(logic::Post(id.target), ys)};
    for (size_t k = 0; k < id.source_positions.size(); ++k) {
      conj.push_back(PosFormula::Eq(
          xs[static_cast<size_t>(id.source_positions[k])],
          ys[static_cast<size_t>(id.target_positions[k])]));
    }
    PosFormulaPtr checked = PosFormula::Exists(
        std::move(vars), PosFormula::And(std::move(conj)));
    conjuncts.push_back(
        AccFormula::Eventually(AccFormula::Atom(std::move(checked))));
  }
  out.formula = AccFormula::And(std::move(conjuncts));
  return out;
}

}  // namespace reductions
}  // namespace accltl
