#include "src/reductions/fd_implication.h"

#include <map>
#include <set>

namespace accltl {
namespace reductions {

bool FdsImply(const std::vector<schema::FunctionalDependency>& fds,
              const schema::FunctionalDependency& sigma) {
  // Attribute-set closure of sigma.lhs under the FDs of the same
  // relation.
  std::set<schema::Position> closure(sigma.lhs.begin(), sigma.lhs.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const schema::FunctionalDependency& fd : fds) {
      if (fd.relation != sigma.relation) continue;
      bool applicable = true;
      for (schema::Position p : fd.lhs) {
        if (closure.count(p) == 0) {
          applicable = false;
          break;
        }
      }
      if (applicable && closure.insert(fd.rhs).second) changed = true;
    }
  }
  return closure.count(sigma.rhs) > 0;
}

Result<bool> ChaseImplies(const schema::Schema& schema,
                          const std::vector<schema::FunctionalDependency>& fds,
                          const std::vector<schema::InclusionDependency>& ids,
                          const schema::FunctionalDependency& sigma,
                          size_t max_steps) {
  // Start from the canonical counterexample to sigma: two tuples of
  // sigma's relation agreeing on sigma.lhs, disagreeing on sigma.rhs,
  // all other positions fresh. Chase with FDs (merge values) and IDs
  // (add tuples with fresh values). Sigma is implied iff the chase
  // equates the two rhs values (or produces a hard FD violation between
  // already-equated constants, which cannot happen with labelled
  // nulls).
  int arity = schema.relation(sigma.relation).arity();
  int next_null = 0;
  auto fresh = [&] { return Value::Int(next_null++); };

  std::map<schema::RelationId, std::vector<Tuple>> tuples;
  Tuple t1, t2;
  std::set<schema::Position> lhs(sigma.lhs.begin(), sigma.lhs.end());
  for (int i = 0; i < arity; ++i) {
    if (lhs.count(i) > 0) {
      Value shared = fresh();
      t1.push_back(shared);
      t2.push_back(shared);
    } else {
      t1.push_back(fresh());
      t2.push_back(fresh());
    }
  }
  Value rhs1 = t1[static_cast<size_t>(sigma.rhs)];
  Value rhs2 = t2[static_cast<size_t>(sigma.rhs)];
  tuples[sigma.relation] = {t1, t2};

  // Note: parameters are by value — the arguments typically alias into
  // the tuples being rewritten, and must not change mid-substitution.
  auto substitute = [&](Value from, Value to) {
    for (auto& [rel, ts] : tuples) {
      for (Tuple& t : ts) {
        for (Value& v : t) {
          if (v == from) v = to;
        }
      }
    }
    if (rhs1 == from) rhs1 = to;
    if (rhs2 == from) rhs2 = to;
  };

  for (size_t step = 0; step < max_steps; ++step) {
    bool changed = false;
    // FD chase: merge rhs values of agreeing tuples.
    for (const schema::FunctionalDependency& fd : fds) {
      auto it = tuples.find(fd.relation);
      if (it == tuples.end()) continue;
      for (size_t i = 0; i < it->second.size() && !changed; ++i) {
        for (size_t j = i + 1; j < it->second.size() && !changed; ++j) {
          const Tuple& a = it->second[i];
          const Tuple& b = it->second[j];
          bool agree = true;
          for (schema::Position p : fd.lhs) {
            if (a[static_cast<size_t>(p)] != b[static_cast<size_t>(p)]) {
              agree = false;
              break;
            }
          }
          if (agree && a[static_cast<size_t>(fd.rhs)] !=
                           b[static_cast<size_t>(fd.rhs)]) {
            substitute(b[static_cast<size_t>(fd.rhs)],
                       a[static_cast<size_t>(fd.rhs)]);
            changed = true;
          }
        }
      }
      if (changed) break;
    }
    if (changed) {
      if (rhs1 == rhs2) return true;
      continue;
    }
    // ID chase: add a witness tuple when missing.
    for (const schema::InclusionDependency& id : ids) {
      auto it = tuples.find(id.source);
      if (it == tuples.end()) continue;
      for (const Tuple& src : it->second) {
        bool found = false;
        for (const Tuple& tgt : tuples[id.target]) {
          bool match = true;
          for (size_t k = 0; k < id.source_positions.size(); ++k) {
            if (tgt[static_cast<size_t>(id.target_positions[k])] !=
                src[static_cast<size_t>(id.source_positions[k])]) {
              match = false;
              break;
            }
          }
          if (match) {
            found = true;
            break;
          }
        }
        if (!found) {
          Tuple fresh_tuple;
          int target_arity = schema.relation(id.target).arity();
          for (int p = 0; p < target_arity; ++p) fresh_tuple.push_back(fresh());
          for (size_t k = 0; k < id.source_positions.size(); ++k) {
            fresh_tuple[static_cast<size_t>(id.target_positions[k])] =
                src[static_cast<size_t>(id.source_positions[k])];
          }
          tuples[id.target].push_back(std::move(fresh_tuple));
          changed = true;
          break;
        }
      }
      if (changed) break;
    }
    if (!changed) return rhs1 == rhs2;  // chase terminated
  }
  return Status::ResourceExhausted("chase did not terminate within budget");
}

}  // namespace reductions
}  // namespace accltl
