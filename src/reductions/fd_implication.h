#ifndef ACCLTL_REDUCTIONS_FD_IMPLICATION_H_
#define ACCLTL_REDUCTIONS_FD_IMPLICATION_H_

#include <vector>

#include "src/common/status.h"
#include "src/schema/dependencies.h"

namespace accltl {
namespace reductions {

/// Armstrong closure: does the set of functional dependencies imply
/// sigma? (Polynomial; the decidable sub-problem used to validate the
/// §3/§5 reductions, whose source problem — FD+ID implication — is
/// undecidable [Chandra–Vardi 1985].)
bool FdsImply(const std::vector<schema::FunctionalDependency>& fds,
              const schema::FunctionalDependency& sigma);

/// FD + inclusion-dependency implication via the chase, with a step
/// budget: kYes/kNo when the chase terminates (e.g. acyclic IDs),
/// kResourceExhausted otherwise. Works on a single-schema instance
/// world where all positions share one domain.
Result<bool> ChaseImplies(const schema::Schema& schema,
                          const std::vector<schema::FunctionalDependency>& fds,
                          const std::vector<schema::InclusionDependency>& ids,
                          const schema::FunctionalDependency& sigma,
                          size_t max_steps = 4096);

}  // namespace reductions
}  // namespace accltl

#endif  // ACCLTL_REDUCTIONS_FD_IMPLICATION_H_
