#ifndef ACCLTL_REDUCTIONS_UNDECIDABILITY_H_
#define ACCLTL_REDUCTIONS_UNDECIDABILITY_H_

#include <vector>

#include "src/accltl/ctl.h"
#include "src/accltl/formula.h"
#include "src/common/status.h"
#include "src/schema/dependencies.h"

namespace accltl {
namespace reductions {

/// An FD+ID implication instance over a base schema (the undecidable
/// source problem [6] of Thms 3.1, 5.2, 5.3).
struct ImplicationInstance {
  schema::Schema base;
  std::vector<schema::FunctionalDependency> fds;
  std::vector<schema::InclusionDependency> ids;
  schema::FunctionalDependency sigma;
};

/// Output of a reduction: the extended schema (check relations, fill
/// methods, successor relations per the §3/§5 proof sketches) plus the
/// constructed formula. The formula is satisfiable iff Γ does NOT imply
/// σ (over the intended encodings).
struct CtlReduction {
  schema::Schema extended;
  acc::CtlPtr formula;
};

/// Thm 5.3: builds ψ(Γ, σ) = EX(FillR1 ∧ EX(… ∧ ⋀φfd ∧ ⋀φid ∧ φ¬σ))
/// over the schema extended with no-input Fill methods and boolean-access
/// ChkFD/CheckIncDep relations. CTLEX(FO∃+0−Acc) satisfiability being
/// undecidable follows from this construction.
Result<CtlReduction> BuildCtlReduction(const ImplicationInstance& instance);

struct AccReduction {
  schema::Schema extended;
  acc::AccPtr formula;
};

/// Thm 3.1's reduction target: an AccLTL(FO∃+Acc) formula (NOT
/// binding-positive — negated IsBind atoms drive the iteration over the
/// successor relation) encoding "Γ holds and σ fails".
Result<AccReduction> BuildAccLtlReduction(const ImplicationInstance& instance);

/// Thm 5.2's reduction target: a *binding-positive* formula with
/// inequalities (the fragment AccLTL+(≠) this proves undecidable).
Result<AccReduction> BuildBindingPositiveNeqReduction(
    const ImplicationInstance& instance);

}  // namespace reductions
}  // namespace accltl

#endif  // ACCLTL_REDUCTIONS_UNDECIDABILITY_H_
