#ifndef ACCLTL_ACCLTL_ABSTRACTION_H_
#define ACCLTL_ACCLTL_ABSTRACTION_H_

#include <vector>

#include "src/accltl/formula.h"
#include "src/ltl/formula.h"

namespace accltl {
namespace acc {

/// Propositional abstraction of an AccLTL formula: the temporal skeleton
/// becomes a propositional LTL formula whose propositions stand for the
/// atomic L-sentences (deduplicated structurally). Both the Lemma 4.5
/// compilation and the Thm 4.12 reduction start here.
struct Abstraction {
  ltl::LtlPtr skeleton;
  /// Proposition id i ↔ atoms[i].
  std::vector<logic::PosFormulaPtr> atoms;
};

/// Builds the abstraction (linear time).
Abstraction Abstract(const AccPtr& f);

}  // namespace acc
}  // namespace accltl

#endif  // ACCLTL_ACCLTL_ABSTRACTION_H_
