#ifndef ACCLTL_ACCLTL_FORMULA_H_
#define ACCLTL_ACCLTL_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "src/logic/formula.h"

namespace accltl {
namespace acc {

/// Temporal constructors of AccLTL (Def. 2.1):
///   ¬φ | φ ∨ φ | φ ∧ φ | X φ | φ U φ
/// Atoms are L-sentences over SchAcc evaluated on transition structures.
enum class AccKind {
  kAtom,
  kNot,
  kAnd,
  kOr,
  kNext,
  kUntil,
};

class AccFormula;
using AccPtr = std::shared_ptr<const AccFormula>;

/// An AccLTL(L) formula: LTL skeleton over first-order sentences.
///
/// Example (Ex. 2.3, long-term relevance):
///   F (¬Q_pre ∧ IsBind_AcM1(b̄) ∧ Q_post)
/// is built as
///   AccFormula::Eventually(AccFormula::And({
///       AccFormula::Not(AccFormula::Atom(q_pre)),
///       AccFormula::Atom(bind_and_qpost)}))
class AccFormula {
 public:
  /// An atomic L-sentence. The sentence must be closed.
  static AccPtr Atom(logic::PosFormulaPtr sentence);
  static AccPtr Not(AccPtr f);
  static AccPtr And(std::vector<AccPtr> children);
  static AccPtr Or(std::vector<AccPtr> children);
  static AccPtr Next(AccPtr f);
  static AccPtr Until(AccPtr lhs, AccPtr rhs);
  /// F φ = TRUE U φ.
  static AccPtr Eventually(AccPtr f);
  /// G φ = ¬F¬φ.
  static AccPtr Globally(AccPtr f);
  /// The trivially true / false formulas (atoms over TRUE / FALSE).
  static AccPtr True();
  static AccPtr False();

  AccKind kind() const { return kind_; }
  const logic::PosFormulaPtr& sentence() const { return sentence_; }
  const AccPtr& child() const { return lhs_; }  // kNot / kNext
  const AccPtr& lhs() const { return lhs_; }
  const AccPtr& rhs() const { return rhs_; }
  const std::vector<AccPtr>& children() const { return children_; }

  /// Number of temporal-skeleton nodes.
  size_t Size() const;

  /// All atomic sentences (deduplicated by pointer order of discovery).
  std::vector<logic::PosFormulaPtr> AtomSentences() const;

  std::string ToString(const schema::Schema& schema) const;

 private:
  AccFormula() = default;
  static std::shared_ptr<AccFormula> NewNode();

  AccKind kind_ = AccKind::kAtom;
  logic::PosFormulaPtr sentence_;
  AccPtr lhs_, rhs_;
  std::vector<AccPtr> children_;
};

}  // namespace acc
}  // namespace accltl

#endif  // ACCLTL_ACCLTL_FORMULA_H_
