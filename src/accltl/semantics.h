#ifndef ACCLTL_ACCLTL_SEMANTICS_H_
#define ACCLTL_ACCLTL_SEMANTICS_H_

#include <vector>

#include "src/accltl/formula.h"
#include "src/schema/access.h"
#include "src/schema/lts.h"

namespace accltl {
namespace acc {

/// Materializes the LTS transitions t1 … tn of an access path starting
/// from `initial` (§2: ti = (Ii, (AcMi, b̄i), Ii+1)).
std::vector<schema::Transition> PathTransitions(
    const schema::Schema& schema, const schema::AccessPath& path,
    const schema::Instance& initial);

/// The relation (p, i) ⊨ φ of Def. 2.1 over an explicit transition
/// sequence; positions are 0-based (paper is 1-based). Dynamic
/// programming over (subformula, position).
bool EvalOnTransitions(const AccPtr& f,
                       const std::vector<schema::Transition>& transitions,
                       size_t position = 0);

/// Convenience: (p, 1) ⊨ φ for an access path from `initial`.
/// An empty path satisfies no formula (paths have at least one access).
bool EvalOnPath(const AccPtr& f, const schema::Schema& schema,
                const schema::AccessPath& path,
                const schema::Instance& initial);

}  // namespace acc
}  // namespace accltl

#endif  // ACCLTL_ACCLTL_SEMANTICS_H_
