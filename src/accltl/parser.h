#ifndef ACCLTL_ACCLTL_PARSER_H_
#define ACCLTL_ACCLTL_PARSER_H_

#include <string>

#include "src/accltl/formula.h"
#include "src/common/status.h"

namespace accltl {
namespace acc {

/// Parses a textual AccLTL formula. Atomic sentences are enclosed in
/// square brackets and parsed with logic::ParseFormula.
///
/// Grammar (precedence low to high: U, OR, AND, prefix ops):
///   acc    := or_ ('U' or_)*                  (right-associative)
///   or_    := and_ ('OR' and_)*
///   and_   := unary ('AND' unary)*
///   unary  := 'NOT' unary | 'X' unary | 'F' unary | 'G' unary
///           | '(' acc ')' | '[' sentence ']'
///
/// Example (the intro's running property):
///   [NOT EXISTS n, p, s, ph . Mobile_pre(n,p,s,ph)]
///     U [EXISTS n, s, p, h . IsBind_AcM1(n) AND Address_pre(s,p,n,h)]
Result<AccPtr> ParseAccFormula(const std::string& text,
                               const schema::Schema& schema);

}  // namespace acc
}  // namespace accltl

#endif  // ACCLTL_ACCLTL_PARSER_H_
