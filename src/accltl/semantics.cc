#include "src/accltl/semantics.h"

#include <map>

#include "src/logic/eval.h"

namespace accltl {
namespace acc {

std::vector<schema::Transition> PathTransitions(
    const schema::Schema& schema, const schema::AccessPath& path,
    const schema::Instance& initial) {
  std::vector<schema::Transition> out;
  out.reserve(path.size());
  schema::Instance current = initial;
  for (const schema::AccessStep& step : path.steps()) {
    schema::Transition t =
        schema::MakeTransition(schema, current, step.access, step.response);
    current = t.post;
    out.push_back(std::move(t));
  }
  return out;
}

namespace {

class PathEvaluator {
 public:
  explicit PathEvaluator(const std::vector<schema::Transition>& transitions)
      : transitions_(transitions) {}

  bool Eval(const AccFormula* f, size_t i) {
    auto key = std::make_pair(f, i);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    bool res = false;
    switch (f->kind()) {
      case AccKind::kAtom: {
        logic::TransitionView view(transitions_[i]);
        res = logic::EvalSentence(f->sentence(), view);
        break;
      }
      case AccKind::kNot:
        res = !Eval(f->child().get(), i);
        break;
      case AccKind::kAnd: {
        res = true;
        for (const AccPtr& c : f->children()) {
          if (!Eval(c.get(), i)) {
            res = false;
            break;
          }
        }
        break;
      }
      case AccKind::kOr: {
        res = false;
        for (const AccPtr& c : f->children()) {
          if (Eval(c.get(), i)) {
            res = true;
            break;
          }
        }
        break;
      }
      case AccKind::kNext:
        res = i + 1 < transitions_.size() && Eval(f->child().get(), i + 1);
        break;
      case AccKind::kUntil: {
        // (p, i) ⊨ φ U ψ iff ∃ j ≥ i: (p, j) ⊨ ψ and ∀ i ≤ k < j:
        // (p, k) ⊨ φ (Def. 2.1, finite path).
        res = false;
        for (size_t j = i; j < transitions_.size(); ++j) {
          if (Eval(f->rhs().get(), j)) {
            res = true;
            break;
          }
          if (!Eval(f->lhs().get(), j)) break;
        }
        break;
      }
    }
    memo_[key] = res;
    return res;
  }

 private:
  const std::vector<schema::Transition>& transitions_;
  std::map<std::pair<const AccFormula*, size_t>, bool> memo_;
};

}  // namespace

bool EvalOnTransitions(const AccPtr& f,
                       const std::vector<schema::Transition>& transitions,
                       size_t position) {
  if (position >= transitions.size()) return false;
  PathEvaluator ev(transitions);
  return ev.Eval(f.get(), position);
}

bool EvalOnPath(const AccPtr& f, const schema::Schema& schema,
                const schema::AccessPath& path,
                const schema::Instance& initial) {
  if (path.empty()) return false;
  std::vector<schema::Transition> transitions =
      PathTransitions(schema, path, initial);
  return EvalOnTransitions(f, transitions, 0);
}

}  // namespace acc
}  // namespace accltl
