#include "src/accltl/formula.h"

#include <cassert>

#include "src/common/strings.h"

namespace accltl {
namespace acc {

std::shared_ptr<AccFormula> AccFormula::NewNode() {
  return std::shared_ptr<AccFormula>(new AccFormula());
}

AccPtr AccFormula::Atom(logic::PosFormulaPtr sentence) {
  assert(sentence->IsSentence() && "AccLTL atoms must be closed sentences");
  auto n = NewNode();
  n->kind_ = AccKind::kAtom;
  n->sentence_ = std::move(sentence);
  return n;
}

AccPtr AccFormula::True() { return Atom(logic::PosFormula::True()); }
AccPtr AccFormula::False() { return Atom(logic::PosFormula::False()); }

AccPtr AccFormula::Not(AccPtr f) {
  if (f->kind_ == AccKind::kNot) return f->lhs_;
  auto n = NewNode();
  n->kind_ = AccKind::kNot;
  n->lhs_ = std::move(f);
  return n;
}

AccPtr AccFormula::And(std::vector<AccPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  std::vector<AccPtr> flat;
  for (AccPtr& c : children) {
    if (c->kind_ == AccKind::kAnd) {
      flat.insert(flat.end(), c->children_.begin(), c->children_.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  auto n = NewNode();
  n->kind_ = AccKind::kAnd;
  n->children_ = std::move(flat);
  return n;
}

AccPtr AccFormula::Or(std::vector<AccPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  std::vector<AccPtr> flat;
  for (AccPtr& c : children) {
    if (c->kind_ == AccKind::kOr) {
      flat.insert(flat.end(), c->children_.begin(), c->children_.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  auto n = NewNode();
  n->kind_ = AccKind::kOr;
  n->children_ = std::move(flat);
  return n;
}

AccPtr AccFormula::Next(AccPtr f) {
  auto n = NewNode();
  n->kind_ = AccKind::kNext;
  n->lhs_ = std::move(f);
  return n;
}

AccPtr AccFormula::Until(AccPtr lhs, AccPtr rhs) {
  auto n = NewNode();
  n->kind_ = AccKind::kUntil;
  n->lhs_ = std::move(lhs);
  n->rhs_ = std::move(rhs);
  return n;
}

AccPtr AccFormula::Eventually(AccPtr f) {
  return Until(True(), std::move(f));
}

AccPtr AccFormula::Globally(AccPtr f) {
  return Not(Eventually(Not(std::move(f))));
}

size_t AccFormula::Size() const {
  switch (kind_) {
    case AccKind::kAtom:
      return 1;
    case AccKind::kNot:
    case AccKind::kNext:
      return 1 + lhs_->Size();
    case AccKind::kUntil:
      return 1 + lhs_->Size() + rhs_->Size();
    case AccKind::kAnd:
    case AccKind::kOr: {
      size_t n = 1;
      for (const AccPtr& c : children_) n += c->Size();
      return n;
    }
  }
  return 1;
}

namespace {

void CollectAtoms(const AccFormula* f,
                  std::vector<logic::PosFormulaPtr>* out) {
  switch (f->kind()) {
    case AccKind::kAtom: {
      for (const logic::PosFormulaPtr& s : *out) {
        if (s.get() == f->sentence().get()) return;
      }
      out->push_back(f->sentence());
      return;
    }
    case AccKind::kNot:
    case AccKind::kNext:
      CollectAtoms(f->child().get(), out);
      return;
    case AccKind::kUntil:
      CollectAtoms(f->lhs().get(), out);
      CollectAtoms(f->rhs().get(), out);
      return;
    case AccKind::kAnd:
    case AccKind::kOr:
      for (const AccPtr& c : f->children()) CollectAtoms(c.get(), out);
      return;
  }
}

}  // namespace

std::vector<logic::PosFormulaPtr> AccFormula::AtomSentences() const {
  std::vector<logic::PosFormulaPtr> out;
  CollectAtoms(this, &out);
  return out;
}

namespace {

/// Unary operands need parentheses around AND/OR children: NOT binds
/// tighter than AND, so "NOT (a) AND (b)" re-parses as "(NOT a) AND b"
/// — a semantically different formula. (Atoms are bracketed, Until
/// self-parenthesizes, and unary chains are unambiguous.) Found by the
/// print∘parse∘print property test; the ambiguity also poisoned the
/// service cache key, which embeds the formula text.
std::string UnaryOperand(const AccFormula* f, const schema::Schema& schema) {
  std::string text = f->ToString(schema);
  if (f->kind() == AccKind::kAnd || f->kind() == AccKind::kOr) {
    return "(" + text + ")";
  }
  return text;
}

}  // namespace

std::string AccFormula::ToString(const schema::Schema& schema) const {
  switch (kind_) {
    case AccKind::kAtom:
      return "[" + sentence_->ToString(schema) + "]";
    case AccKind::kNot:
      return "NOT " + UnaryOperand(lhs_.get(), schema);
    case AccKind::kNext:
      return "X " + UnaryOperand(lhs_.get(), schema);
    case AccKind::kUntil:
      return "(" + lhs_->ToString(schema) + " U " + rhs_->ToString(schema) +
             ")";
    case AccKind::kAnd:
    case AccKind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const AccPtr& c : children_) {
        parts.push_back("(" + c->ToString(schema) + ")");
      }
      return Join(parts, kind_ == AccKind::kAnd ? " AND " : " OR ");
    }
  }
  return "?";
}

}  // namespace acc
}  // namespace accltl
