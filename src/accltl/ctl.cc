#include "src/accltl/ctl.h"

#include <algorithm>
#include <cassert>

#include "src/common/strings.h"
#include "src/logic/eval.h"

namespace accltl {
namespace acc {

std::shared_ptr<CtlFormula> CtlFormula::NewNode() {
  return std::shared_ptr<CtlFormula>(new CtlFormula());
}

CtlPtr CtlFormula::Atom(logic::PosFormulaPtr sentence) {
  assert(sentence->IsSentence());
  auto n = NewNode();
  n->kind_ = CtlKind::kAtom;
  n->sentence_ = std::move(sentence);
  return n;
}

CtlPtr CtlFormula::Not(CtlPtr f) {
  if (f->kind_ == CtlKind::kNot) return f->child_;
  auto n = NewNode();
  n->kind_ = CtlKind::kNot;
  n->child_ = std::move(f);
  return n;
}

CtlPtr CtlFormula::And(std::vector<CtlPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto n = NewNode();
  n->kind_ = CtlKind::kAnd;
  n->children_ = std::move(children);
  return n;
}

CtlPtr CtlFormula::Or(std::vector<CtlPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto n = NewNode();
  n->kind_ = CtlKind::kOr;
  n->children_ = std::move(children);
  return n;
}

CtlPtr CtlFormula::Ex(CtlPtr f) {
  auto n = NewNode();
  n->kind_ = CtlKind::kEx;
  n->child_ = std::move(f);
  return n;
}

CtlPtr CtlFormula::Ax(CtlPtr f) { return Not(Ex(Not(std::move(f)))); }

int CtlFormula::ExDepth() const {
  switch (kind_) {
    case CtlKind::kAtom:
      return 0;
    case CtlKind::kNot:
      return child_->ExDepth();
    case CtlKind::kEx:
      return 1 + child_->ExDepth();
    case CtlKind::kAnd:
    case CtlKind::kOr: {
      int d = 0;
      for (const CtlPtr& c : children_) d = std::max(d, c->ExDepth());
      return d;
    }
  }
  return 0;
}

std::string CtlFormula::ToString(const schema::Schema& schema) const {
  switch (kind_) {
    case CtlKind::kAtom:
      return "[" + sentence_->ToString(schema) + "]";
    case CtlKind::kNot:
      return "NOT " + child_->ToString(schema);
    case CtlKind::kEx:
      return "EX " + child_->ToString(schema);
    case CtlKind::kAnd:
    case CtlKind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const CtlPtr& c : children_) {
        parts.push_back("(" + c->ToString(schema) + ")");
      }
      return Join(parts, kind_ == CtlKind::kAnd ? " AND " : " OR ");
    }
  }
  return "?";
}

bool EvalCtl(const CtlPtr& f, const schema::Schema& schema,
             const schema::Transition& t,
             const schema::LtsOptions& options) {
  switch (f->kind()) {
    case CtlKind::kAtom: {
      logic::TransitionView view(t);
      return logic::EvalSentence(f->sentence(), view);
    }
    case CtlKind::kNot:
      return !EvalCtl(f->child(), schema, t, options);
    case CtlKind::kAnd:
      return std::all_of(f->children().begin(), f->children().end(),
                         [&](const CtlPtr& c) {
                           return EvalCtl(c, schema, t, options);
                         });
    case CtlKind::kOr:
      return std::any_of(f->children().begin(), f->children().end(),
                         [&](const CtlPtr& c) {
                           return EvalCtl(c, schema, t, options);
                         });
    case CtlKind::kEx: {
      std::vector<schema::Transition> succ =
          schema::Successors(schema, t.post, options);
      return std::any_of(succ.begin(), succ.end(),
                         [&](const schema::Transition& next) {
                           return EvalCtl(f->child(), schema, next, options);
                         });
    }
  }
  return false;
}

}  // namespace acc
}  // namespace accltl
