#ifndef ACCLTL_ACCLTL_FRAGMENTS_H_
#define ACCLTL_ACCLTL_FRAGMENTS_H_

#include <string>

#include "src/accltl/formula.h"

namespace accltl {
namespace acc {

/// The specification languages of Table 1 / Figure 2, ordered roughly by
/// expressiveness.
enum class Fragment {
  /// AccLTL(X)(FO∃+0−Acc): X-only skeleton, 0-ary binding predicates.
  /// Satisfiability ΣP2-complete (Thm 4.14); with ≠ likewise (Thm 5.1).
  kZeroAryXOnly,
  /// AccLTL(FO∃+0−Acc): 0-ary binding predicates. PSPACE-complete
  /// (Thm 4.12); with ≠ likewise (Thm 5.1).
  kZeroAry,
  /// AccLTL+: binding-positive AccLTL(FO∃+Acc). Decidable, in 3EXPTIME
  /// (Thm 4.2); undecidable with ≠ (Thm 5.2).
  kBindingPositive,
  /// Full AccLTL(FO∃+Acc): undecidable (Thm 3.1).
  kFull,
};

/// Syntactic facts about a formula, used to pick a decision procedure
/// and to reproduce Table 1's columns.
struct FragmentInfo {
  /// Every atom mentioning IsBind occurs under an even number of
  /// negations (Def. 4.1's binding-positivity, lifted to whole atoms).
  bool binding_positive = true;
  /// No IsBind atom carries terms (the Sch0−Acc vocabulary of §4.2).
  bool zero_ary_bindings = true;
  /// Some atom uses ≠ (§5.1 extensions).
  bool uses_inequality = false;
  /// The temporal skeleton uses only X (no U), §4.2's AccLTL(X).
  bool x_only = true;
  /// Temporal nesting depth of X operators.
  int x_depth = 0;

  /// The smallest fragment of Figure 2 containing the formula.
  Fragment Classify() const;

  /// Is satisfiability of this fragment decidable (Table 1)?
  /// Note kBindingPositive with ≠ is undecidable (Thm 5.2).
  bool Decidable() const;

  /// Table 1's complexity entry for this fragment, e.g.
  /// "PSPACE-complete".
  std::string ComplexityName() const;
};

/// Analyzes the syntactic shape of `f`.
FragmentInfo Analyze(const AccPtr& f);

/// Human-readable fragment name, e.g. "AccLTL+" or
/// "AccLTL(X)(FO∃+0−Acc)".
std::string FragmentName(Fragment fragment, bool uses_inequality);

}  // namespace acc
}  // namespace accltl

#endif  // ACCLTL_ACCLTL_FRAGMENTS_H_
