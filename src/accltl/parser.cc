#include "src/accltl/parser.h"

#include <cctype>
#include <vector>

#include "src/logic/parser.h"

namespace accltl {
namespace acc {

namespace {

enum class TokKind {
  kNot,
  kNext,
  kEventually,
  kGlobally,
  kUntil,
  kAnd,
  kOr,
  kLParen,
  kRParen,
  kSentence,  // [ ... ]
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
};

Status Tokenize(const std::string& text, std::vector<Token>* out) {
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '(') {
      out->push_back({TokKind::kLParen, "("});
      ++i;
      continue;
    }
    if (c == ')') {
      out->push_back({TokKind::kRParen, ")"});
      ++i;
      continue;
    }
    if (c == '[') {
      int depth = 1;
      size_t j = i + 1;
      while (j < text.size() && depth > 0) {
        if (text[j] == '[') ++depth;
        if (text[j] == ']') --depth;
        ++j;
      }
      if (depth != 0) {
        return Status::InvalidArgument("unbalanced '[' in AccLTL formula");
      }
      out->push_back({TokKind::kSentence, text.substr(i + 1, j - i - 2)});
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) != 0)) {
        ++j;
      }
      std::string word = text.substr(i, j - i);
      i = j;
      if (word == "NOT") {
        out->push_back({TokKind::kNot, word});
      } else if (word == "X") {
        out->push_back({TokKind::kNext, word});
      } else if (word == "F") {
        out->push_back({TokKind::kEventually, word});
      } else if (word == "G") {
        out->push_back({TokKind::kGlobally, word});
      } else if (word == "U") {
        out->push_back({TokKind::kUntil, word});
      } else if (word == "AND") {
        out->push_back({TokKind::kAnd, word});
      } else if (word == "OR") {
        out->push_back({TokKind::kOr, word});
      } else {
        return Status::InvalidArgument("unexpected word '" + word +
                                       "' in AccLTL formula (sentences go "
                                       "inside [...])");
      }
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in AccLTL formula");
  }
  out->push_back({TokKind::kEnd, ""});
  return Status::OK();
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const schema::Schema& schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  Result<AccPtr> Parse() {
    Result<AccPtr> f = ParseUntil();
    if (!f.ok()) return f;
    if (Peek().kind != TokKind::kEnd) {
      return Status::InvalidArgument("trailing input in AccLTL formula");
    }
    return f;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool TakeIf(TokKind k) {
    if (Peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<AccPtr> ParseUntil() {
    Result<AccPtr> lhs = ParseOr();
    if (!lhs.ok()) return lhs;
    if (TakeIf(TokKind::kUntil)) {
      Result<AccPtr> rhs = ParseUntil();  // right-associative
      if (!rhs.ok()) return rhs;
      return AccFormula::Until(lhs.value(), rhs.value());
    }
    return lhs;
  }

  Result<AccPtr> ParseOr() {
    Result<AccPtr> first = ParseAnd();
    if (!first.ok()) return first;
    std::vector<AccPtr> parts = {first.value()};
    while (TakeIf(TokKind::kOr)) {
      Result<AccPtr> next = ParseAnd();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    return parts.size() == 1 ? parts[0] : AccFormula::Or(std::move(parts));
  }

  Result<AccPtr> ParseAnd() {
    Result<AccPtr> first = ParseUnary();
    if (!first.ok()) return first;
    std::vector<AccPtr> parts = {first.value()};
    while (TakeIf(TokKind::kAnd)) {
      Result<AccPtr> next = ParseUnary();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    return parts.size() == 1 ? parts[0] : AccFormula::And(std::move(parts));
  }

  Result<AccPtr> ParseUnary() {
    if (TakeIf(TokKind::kNot)) {
      Result<AccPtr> inner = ParseUnary();
      if (!inner.ok()) return inner;
      return AccFormula::Not(inner.value());
    }
    if (TakeIf(TokKind::kNext)) {
      Result<AccPtr> inner = ParseUnary();
      if (!inner.ok()) return inner;
      return AccFormula::Next(inner.value());
    }
    if (TakeIf(TokKind::kEventually)) {
      Result<AccPtr> inner = ParseUnary();
      if (!inner.ok()) return inner;
      return AccFormula::Eventually(inner.value());
    }
    if (TakeIf(TokKind::kGlobally)) {
      Result<AccPtr> inner = ParseUnary();
      if (!inner.ok()) return inner;
      return AccFormula::Globally(inner.value());
    }
    if (TakeIf(TokKind::kLParen)) {
      Result<AccPtr> inner = ParseUntil();
      if (!inner.ok()) return inner;
      if (!TakeIf(TokKind::kRParen)) {
        return Status::InvalidArgument("expected ')' in AccLTL formula");
      }
      return inner;
    }
    if (Peek().kind == TokKind::kSentence) {
      std::string body = Peek().text;
      ++pos_;
      Result<logic::PosFormulaPtr> sentence =
          logic::ParseFormula(body, schema_);
      if (!sentence.ok()) return sentence.status();
      if (!sentence.value()->IsSentence()) {
        return Status::InvalidArgument(
            "AccLTL atom has free variables: [" + body + "]");
      }
      return AccFormula::Atom(sentence.value());
    }
    return Status::InvalidArgument("expected an AccLTL sub-formula");
  }

  std::vector<Token> tokens_;
  const schema::Schema& schema_;
  size_t pos_ = 0;
};

}  // namespace

Result<AccPtr> ParseAccFormula(const std::string& text,
                               const schema::Schema& schema) {
  std::vector<Token> tokens;
  ACCLTL_RETURN_IF_ERROR(Tokenize(text, &tokens));
  Parser parser(std::move(tokens), schema);
  return parser.Parse();
}

}  // namespace acc
}  // namespace accltl
