#include "src/accltl/abstraction.h"

namespace accltl {
namespace acc {

namespace {

int InternAtom(const logic::PosFormulaPtr& s,
               std::vector<logic::PosFormulaPtr>* atoms) {
  for (size_t i = 0; i < atoms->size(); ++i) {
    if (logic::PosFormula::Equal((*atoms)[i], s)) {
      return static_cast<int>(i);
    }
  }
  atoms->push_back(s);
  return static_cast<int>(atoms->size() - 1);
}

ltl::LtlPtr Rec(const AccFormula* f, std::vector<logic::PosFormulaPtr>* atoms) {
  switch (f->kind()) {
    case AccKind::kAtom: {
      if (f->sentence()->kind() == logic::NodeKind::kTrue) {
        return ltl::LtlFormula::True();
      }
      if (f->sentence()->kind() == logic::NodeKind::kFalse) {
        return ltl::LtlFormula::False();
      }
      return ltl::LtlFormula::Prop(InternAtom(f->sentence(), atoms));
    }
    case AccKind::kNot:
      return ltl::LtlFormula::Not(Rec(f->child().get(), atoms));
    case AccKind::kNext:
      return ltl::LtlFormula::Next(Rec(f->child().get(), atoms));
    case AccKind::kUntil:
      return ltl::LtlFormula::Until(Rec(f->lhs().get(), atoms),
                                    Rec(f->rhs().get(), atoms));
    case AccKind::kAnd:
    case AccKind::kOr: {
      std::vector<ltl::LtlPtr> kids;
      kids.reserve(f->children().size());
      for (const AccPtr& c : f->children()) {
        kids.push_back(Rec(c.get(), atoms));
      }
      return f->kind() == AccKind::kAnd
                 ? ltl::LtlFormula::And(std::move(kids))
                 : ltl::LtlFormula::Or(std::move(kids));
    }
  }
  return ltl::LtlFormula::True();
}

}  // namespace

Abstraction Abstract(const AccPtr& f) {
  Abstraction out;
  out.skeleton = Rec(f.get(), &out.atoms);
  return out;
}

}  // namespace acc
}  // namespace accltl
