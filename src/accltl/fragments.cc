#include "src/accltl/fragments.h"

#include <algorithm>

namespace accltl {
namespace acc {

namespace {

void Walk(const AccFormula* f, bool under_negation, FragmentInfo* info,
          int depth) {
  info->x_depth = std::max(info->x_depth, depth);
  switch (f->kind()) {
    case AccKind::kAtom: {
      const logic::PosFormulaPtr& s = f->sentence();
      if (s->UsesInequality()) info->uses_inequality = true;
      if (s->UsesNAryBind()) info->zero_ary_bindings = false;
      if (s->UsesBind() && under_negation) info->binding_positive = false;
      return;
    }
    case AccKind::kNot:
      Walk(f->child().get(), !under_negation, info, depth);
      return;
    case AccKind::kNext:
      Walk(f->child().get(), under_negation, info, depth + 1);
      return;
    case AccKind::kUntil:
      info->x_only = false;
      // Both operands of U occur positively.
      Walk(f->lhs().get(), under_negation, info, depth);
      Walk(f->rhs().get(), under_negation, info, depth);
      return;
    case AccKind::kAnd:
    case AccKind::kOr:
      for (const AccPtr& c : f->children()) {
        Walk(c.get(), under_negation, info, depth);
      }
      return;
  }
}

}  // namespace

FragmentInfo Analyze(const AccPtr& f) {
  FragmentInfo info;
  Walk(f.get(), /*under_negation=*/false, &info, 0);
  return info;
}

Fragment FragmentInfo::Classify() const {
  if (zero_ary_bindings) {
    return x_only ? Fragment::kZeroAryXOnly : Fragment::kZeroAry;
  }
  if (binding_positive) return Fragment::kBindingPositive;
  return Fragment::kFull;
}

bool FragmentInfo::Decidable() const {
  switch (Classify()) {
    case Fragment::kZeroAryXOnly:
    case Fragment::kZeroAry:
      return true;  // with or without ≠ (Thms 4.12, 4.14, 5.1)
    case Fragment::kBindingPositive:
      return !uses_inequality;  // Thm 4.2 vs Thm 5.2
    case Fragment::kFull:
      return false;  // Thm 3.1
  }
  return false;
}

std::string FragmentInfo::ComplexityName() const {
  switch (Classify()) {
    case Fragment::kZeroAryXOnly:
      return "SigmaP2-complete";
    case Fragment::kZeroAry:
      return "PSPACE-complete";
    case Fragment::kBindingPositive:
      return uses_inequality ? "undecidable" : "in 3EXPTIME";
    case Fragment::kFull:
      return "undecidable";
  }
  return "?";
}

std::string FragmentName(Fragment fragment, bool uses_inequality) {
  switch (fragment) {
    case Fragment::kZeroAryXOnly:
      return uses_inequality ? "AccLTL(X)(FO^E+,neq_0-Acc)"
                             : "AccLTL(X)(FO^E+_0-Acc)";
    case Fragment::kZeroAry:
      return uses_inequality ? "AccLTL(FO^E+,neq_0-Acc)"
                             : "AccLTL(FO^E+_0-Acc)";
    case Fragment::kBindingPositive:
      return uses_inequality ? "AccLTL+(neq)" : "AccLTL+";
    case Fragment::kFull:
      return uses_inequality ? "AccLTL(FO^E+,neq_Acc)" : "AccLTL(FO^E+_Acc)";
  }
  return "?";
}

}  // namespace acc
}  // namespace accltl
