#ifndef ACCLTL_ACCLTL_CTL_H_
#define ACCLTL_ACCLTL_CTL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/logic/formula.h"
#include "src/schema/lts.h"

namespace accltl {
namespace acc {

/// CTLEX(L) (§5.2): boolean combinations of L-sentences closed under the
/// one-step existential modality EX. Satisfiability is undecidable even
/// for L = FO∃+0−Acc (Thm 5.3); this library evaluates CTLEX formulas
/// over concrete (bounded) LTSs and offers bounded satisfiability search
/// in analysis/.
enum class CtlKind {
  kAtom,
  kNot,
  kAnd,
  kOr,
  kEx,
};

class CtlFormula;
using CtlPtr = std::shared_ptr<const CtlFormula>;

class CtlFormula {
 public:
  static CtlPtr Atom(logic::PosFormulaPtr sentence);
  static CtlPtr Not(CtlPtr f);
  static CtlPtr And(std::vector<CtlPtr> children);
  static CtlPtr Or(std::vector<CtlPtr> children);
  static CtlPtr Ex(CtlPtr f);
  /// Derived box modality AX φ = ¬EX¬φ (§5.2).
  static CtlPtr Ax(CtlPtr f);

  CtlKind kind() const { return kind_; }
  const logic::PosFormulaPtr& sentence() const { return sentence_; }
  const CtlPtr& child() const { return child_; }
  const std::vector<CtlPtr>& children() const { return children_; }

  /// Maximum nesting depth of EX (how far the evaluator must look).
  int ExDepth() const;

  std::string ToString(const schema::Schema& schema) const;

 private:
  CtlFormula() = default;
  static std::shared_ptr<CtlFormula> NewNode();

  CtlKind kind_ = CtlKind::kAtom;
  logic::PosFormulaPtr sentence_;
  CtlPtr child_;
  std::vector<CtlPtr> children_;
};

/// (S, t) ⊨ φ where S is the LTS induced by `schema` and `options`
/// (the options fix the hidden universe and thereby bound branching).
bool EvalCtl(const CtlPtr& f, const schema::Schema& schema,
             const schema::Transition& t,
             const schema::LtsOptions& options);

}  // namespace acc
}  // namespace accltl

#endif  // ACCLTL_ACCLTL_CTL_H_
