#ifndef ACCLTL_LTL_SAT_H_
#define ACCLTL_LTL_SAT_H_

#include <cstddef>

#include "src/ltl/formula.h"

namespace accltl {
namespace ltl {

/// Result of a finite-word satisfiability check.
struct SatResult {
  bool satisfiable = false;
  /// A satisfying word (positions -> true propositions) when satisfiable.
  Word witness;
  /// Tableau states explored (for the complexity benchmarks).
  size_t states_explored = 0;
  /// True when the `max_states` cap was hit before an answer; the
  /// `satisfiable` field is then meaningless.
  bool resource_exhausted = false;
};

/// Satisfiability of propositional LTL over finite non-empty words, via
/// an on-the-fly tableau: states are sets of subformulas of the NNF
/// input, transitions are tableau expansions, acceptance is an
/// expansion with no strong-next obligation. PSPACE in theory (Thm 4.12
/// uses this as the target of its reduction), worst-case exponential
/// explicit search here, with witness extraction.
SatResult CheckSatFinite(const LtlPtr& f, size_t max_states = 1u << 22);

}  // namespace ltl
}  // namespace accltl

#endif  // ACCLTL_LTL_SAT_H_
