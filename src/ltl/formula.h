#ifndef ACCLTL_LTL_FORMULA_H_
#define ACCLTL_LTL_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace accltl {
namespace ltl {

/// Node kinds of propositional LTL. The library interprets LTL over
/// *finite* words (the paper's access paths are finite; see Thm 4.12's
/// "satisfiability of a LTL formula over finite words").
///
/// kNext is the strong next (false at the last position); kWeakNext is
/// its dual (true at the last position). kUntil/kRelease are the usual
/// duals; G/F are derived.
enum class LtlKind {
  kTrue,
  kFalse,
  kProp,
  kNot,
  kAnd,
  kOr,
  kNext,      // X φ, strong
  kWeakNext,  // N φ, weak
  kUntil,     // φ U ψ
  kRelease,   // φ R ψ
};

class LtlFormula;
using LtlPtr = std::shared_ptr<const LtlFormula>;

/// Immutable propositional LTL formulas; propositions are dense ints.
class LtlFormula {
 public:
  static LtlPtr True();
  static LtlPtr False();
  static LtlPtr Prop(int id);
  static LtlPtr Not(LtlPtr f);
  static LtlPtr And(std::vector<LtlPtr> children);
  static LtlPtr Or(std::vector<LtlPtr> children);
  static LtlPtr Next(LtlPtr f);
  static LtlPtr WeakNext(LtlPtr f);
  static LtlPtr Until(LtlPtr lhs, LtlPtr rhs);
  static LtlPtr Release(LtlPtr lhs, LtlPtr rhs);
  /// F φ = TRUE U φ.
  static LtlPtr Eventually(LtlPtr f);
  /// G φ = FALSE R φ.
  static LtlPtr Globally(LtlPtr f);

  LtlKind kind() const { return kind_; }
  int prop() const { return prop_; }
  const LtlPtr& child() const { return lhs_; }        // kNot/kNext/kWeakNext
  const LtlPtr& lhs() const { return lhs_; }          // kUntil/kRelease
  const LtlPtr& rhs() const { return rhs_; }          // kUntil/kRelease
  const std::vector<LtlPtr>& children() const { return children_; }

  /// Negation normal form: negation only on propositions.
  static LtlPtr Nnf(const LtlPtr& f);

  /// True iff only X/WeakNext temporal operators occur (the LTLX
  /// fragment of §4.2).
  bool IsXOnly() const;

  /// Nesting depth of X/N operators; an X-only formula is insensitive
  /// to word positions beyond this depth.
  int XDepth() const;

  /// All proposition ids used.
  std::set<int> Props() const;

  /// Number of AST nodes.
  size_t Size() const;

  std::string ToString() const;

 private:
  LtlFormula() = default;
  static std::shared_ptr<LtlFormula> NewNode();

  LtlKind kind_ = LtlKind::kTrue;
  int prop_ = 0;
  LtlPtr lhs_, rhs_;
  std::vector<LtlPtr> children_;
};

/// A finite word: at each position, the set of true propositions.
using Word = std::vector<std::set<int>>;

/// Model checking: does `w` (evaluated at position `pos`) satisfy `f`?
/// Dynamic programming, O(|w| · |subformulas|).
bool EvalOnWord(const LtlPtr& f, const Word& w, size_t pos = 0);

}  // namespace ltl
}  // namespace accltl

#endif  // ACCLTL_LTL_FORMULA_H_
