#include "src/ltl/formula.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "src/common/strings.h"

namespace accltl {
namespace ltl {

std::shared_ptr<LtlFormula> LtlFormula::NewNode() {
  return std::shared_ptr<LtlFormula>(new LtlFormula());
}

LtlPtr LtlFormula::True() {
  static const LtlPtr kTrue = [] {
    auto n = NewNode();
    n->kind_ = LtlKind::kTrue;
    return n;
  }();
  return kTrue;
}

LtlPtr LtlFormula::False() {
  static const LtlPtr kFalse = [] {
    auto n = NewNode();
    n->kind_ = LtlKind::kFalse;
    return n;
  }();
  return kFalse;
}

LtlPtr LtlFormula::Prop(int id) {
  auto n = NewNode();
  n->kind_ = LtlKind::kProp;
  n->prop_ = id;
  return n;
}

LtlPtr LtlFormula::Not(LtlPtr f) {
  if (f->kind_ == LtlKind::kTrue) return False();
  if (f->kind_ == LtlKind::kFalse) return True();
  if (f->kind_ == LtlKind::kNot) return f->lhs_;
  auto n = NewNode();
  n->kind_ = LtlKind::kNot;
  n->lhs_ = std::move(f);
  return n;
}

LtlPtr LtlFormula::And(std::vector<LtlPtr> children) {
  std::vector<LtlPtr> flat;
  for (LtlPtr& c : children) {
    if (c->kind_ == LtlKind::kFalse) return False();
    if (c->kind_ == LtlKind::kTrue) continue;
    if (c->kind_ == LtlKind::kAnd) {
      flat.insert(flat.end(), c->children_.begin(), c->children_.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  auto n = NewNode();
  n->kind_ = LtlKind::kAnd;
  n->children_ = std::move(flat);
  return n;
}

LtlPtr LtlFormula::Or(std::vector<LtlPtr> children) {
  std::vector<LtlPtr> flat;
  for (LtlPtr& c : children) {
    if (c->kind_ == LtlKind::kTrue) return True();
    if (c->kind_ == LtlKind::kFalse) continue;
    if (c->kind_ == LtlKind::kOr) {
      flat.insert(flat.end(), c->children_.begin(), c->children_.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return False();
  if (flat.size() == 1) return flat[0];
  auto n = NewNode();
  n->kind_ = LtlKind::kOr;
  n->children_ = std::move(flat);
  return n;
}

LtlPtr LtlFormula::Next(LtlPtr f) {
  auto n = NewNode();
  n->kind_ = LtlKind::kNext;
  n->lhs_ = std::move(f);
  return n;
}

LtlPtr LtlFormula::WeakNext(LtlPtr f) {
  auto n = NewNode();
  n->kind_ = LtlKind::kWeakNext;
  n->lhs_ = std::move(f);
  return n;
}

LtlPtr LtlFormula::Until(LtlPtr lhs, LtlPtr rhs) {
  auto n = NewNode();
  n->kind_ = LtlKind::kUntil;
  n->lhs_ = std::move(lhs);
  n->rhs_ = std::move(rhs);
  return n;
}

LtlPtr LtlFormula::Release(LtlPtr lhs, LtlPtr rhs) {
  auto n = NewNode();
  n->kind_ = LtlKind::kRelease;
  n->lhs_ = std::move(lhs);
  n->rhs_ = std::move(rhs);
  return n;
}

LtlPtr LtlFormula::Eventually(LtlPtr f) { return Until(True(), std::move(f)); }

LtlPtr LtlFormula::Globally(LtlPtr f) { return Release(False(), std::move(f)); }

namespace {

LtlPtr NnfImpl(const LtlPtr& f, bool negate) {
  switch (f->kind()) {
    case LtlKind::kTrue:
      return negate ? LtlFormula::False() : LtlFormula::True();
    case LtlKind::kFalse:
      return negate ? LtlFormula::True() : LtlFormula::False();
    case LtlKind::kProp:
      return negate ? LtlFormula::Not(LtlFormula::Prop(f->prop()))
                    : LtlFormula::Prop(f->prop());
    case LtlKind::kNot:
      return NnfImpl(f->child(), !negate);
    case LtlKind::kAnd:
    case LtlKind::kOr: {
      std::vector<LtlPtr> kids;
      kids.reserve(f->children().size());
      for (const LtlPtr& c : f->children()) {
        kids.push_back(NnfImpl(c, negate));
      }
      bool is_and = (f->kind() == LtlKind::kAnd) != negate;
      return is_and ? LtlFormula::And(std::move(kids))
                    : LtlFormula::Or(std::move(kids));
    }
    case LtlKind::kNext:
      // ¬X φ = N ¬φ on finite words.
      return negate ? LtlFormula::WeakNext(NnfImpl(f->child(), true))
                    : LtlFormula::Next(NnfImpl(f->child(), false));
    case LtlKind::kWeakNext:
      return negate ? LtlFormula::Next(NnfImpl(f->child(), true))
                    : LtlFormula::WeakNext(NnfImpl(f->child(), false));
    case LtlKind::kUntil:
      return negate ? LtlFormula::Release(NnfImpl(f->lhs(), true),
                                          NnfImpl(f->rhs(), true))
                    : LtlFormula::Until(NnfImpl(f->lhs(), false),
                                        NnfImpl(f->rhs(), false));
    case LtlKind::kRelease:
      return negate ? LtlFormula::Until(NnfImpl(f->lhs(), true),
                                        NnfImpl(f->rhs(), true))
                    : LtlFormula::Release(NnfImpl(f->lhs(), false),
                                          NnfImpl(f->rhs(), false));
  }
  return LtlFormula::True();
}

}  // namespace

LtlPtr LtlFormula::Nnf(const LtlPtr& f) { return NnfImpl(f, false); }

bool LtlFormula::IsXOnly() const {
  switch (kind_) {
    case LtlKind::kUntil:
    case LtlKind::kRelease:
      return false;
    case LtlKind::kNot:
    case LtlKind::kNext:
    case LtlKind::kWeakNext:
      return lhs_->IsXOnly();
    case LtlKind::kAnd:
    case LtlKind::kOr:
      return std::all_of(children_.begin(), children_.end(),
                         [](const LtlPtr& c) { return c->IsXOnly(); });
    default:
      return true;
  }
}

int LtlFormula::XDepth() const {
  switch (kind_) {
    case LtlKind::kNot:
      return lhs_->XDepth();
    case LtlKind::kNext:
    case LtlKind::kWeakNext:
      return 1 + lhs_->XDepth();
    case LtlKind::kUntil:
    case LtlKind::kRelease:
      return 1 + std::max(lhs_->XDepth(), rhs_->XDepth());
    case LtlKind::kAnd:
    case LtlKind::kOr: {
      int d = 0;
      for (const LtlPtr& c : children_) d = std::max(d, c->XDepth());
      return d;
    }
    default:
      return 0;
  }
}

std::set<int> LtlFormula::Props() const {
  std::set<int> out;
  switch (kind_) {
    case LtlKind::kProp:
      out.insert(prop_);
      break;
    case LtlKind::kNot:
    case LtlKind::kNext:
    case LtlKind::kWeakNext: {
      out = lhs_->Props();
      break;
    }
    case LtlKind::kUntil:
    case LtlKind::kRelease: {
      out = lhs_->Props();
      std::set<int> r = rhs_->Props();
      out.insert(r.begin(), r.end());
      break;
    }
    case LtlKind::kAnd:
    case LtlKind::kOr:
      for (const LtlPtr& c : children_) {
        std::set<int> sub = c->Props();
        out.insert(sub.begin(), sub.end());
      }
      break;
    default:
      break;
  }
  return out;
}

size_t LtlFormula::Size() const {
  switch (kind_) {
    case LtlKind::kNot:
    case LtlKind::kNext:
    case LtlKind::kWeakNext:
      return 1 + lhs_->Size();
    case LtlKind::kUntil:
    case LtlKind::kRelease:
      return 1 + lhs_->Size() + rhs_->Size();
    case LtlKind::kAnd:
    case LtlKind::kOr: {
      size_t n = 1;
      for (const LtlPtr& c : children_) n += c->Size();
      return n;
    }
    default:
      return 1;
  }
}

std::string LtlFormula::ToString() const {
  switch (kind_) {
    case LtlKind::kTrue:
      return "true";
    case LtlKind::kFalse:
      return "false";
    case LtlKind::kProp:
      return "p" + std::to_string(prop_);
    case LtlKind::kNot:
      return "!(" + lhs_->ToString() + ")";
    case LtlKind::kAnd:
    case LtlKind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const LtlPtr& c : children_) {
        parts.push_back("(" + c->ToString() + ")");
      }
      return Join(parts, kind_ == LtlKind::kAnd ? " & " : " | ");
    }
    case LtlKind::kNext:
      return "X(" + lhs_->ToString() + ")";
    case LtlKind::kWeakNext:
      return "N(" + lhs_->ToString() + ")";
    case LtlKind::kUntil:
      return "(" + lhs_->ToString() + ") U (" + rhs_->ToString() + ")";
    case LtlKind::kRelease:
      return "(" + lhs_->ToString() + ") R (" + rhs_->ToString() + ")";
  }
  return "?";
}

namespace {

bool EvalRec(const LtlFormula* f, const Word& w, size_t pos,
             std::map<std::pair<const LtlFormula*, size_t>, bool>* memo) {
  auto key = std::make_pair(f, pos);
  auto it = memo->find(key);
  if (it != memo->end()) return it->second;
  bool res = false;
  switch (f->kind()) {
    case LtlKind::kTrue:
      res = true;
      break;
    case LtlKind::kFalse:
      res = false;
      break;
    case LtlKind::kProp:
      res = pos < w.size() && w[pos].count(f->prop()) > 0;
      break;
    case LtlKind::kNot:
      res = !EvalRec(f->child().get(), w, pos, memo);
      break;
    case LtlKind::kAnd:
      res = std::all_of(f->children().begin(), f->children().end(),
                        [&](const LtlPtr& c) {
                          return EvalRec(c.get(), w, pos, memo);
                        });
      break;
    case LtlKind::kOr:
      res = std::any_of(f->children().begin(), f->children().end(),
                        [&](const LtlPtr& c) {
                          return EvalRec(c.get(), w, pos, memo);
                        });
      break;
    case LtlKind::kNext:
      res = pos + 1 < w.size() && EvalRec(f->child().get(), w, pos + 1, memo);
      break;
    case LtlKind::kWeakNext:
      res = pos + 1 >= w.size() || EvalRec(f->child().get(), w, pos + 1, memo);
      break;
    case LtlKind::kUntil: {
      res = false;
      for (size_t j = pos; j < w.size(); ++j) {
        if (EvalRec(f->rhs().get(), w, j, memo)) {
          res = true;
          break;
        }
        if (!EvalRec(f->lhs().get(), w, j, memo)) break;
      }
      break;
    }
    case LtlKind::kRelease: {
      // φ R ψ on finite words: ψ holds up to and including the first
      // position where φ holds; if φ never holds, ψ holds everywhere.
      res = true;
      for (size_t j = pos; j < w.size(); ++j) {
        if (!EvalRec(f->rhs().get(), w, j, memo)) {
          res = false;
          break;
        }
        if (EvalRec(f->lhs().get(), w, j, memo)) break;
      }
      break;
    }
  }
  (*memo)[key] = res;
  return res;
}

}  // namespace

bool EvalOnWord(const LtlPtr& f, const Word& w, size_t pos) {
  assert(pos <= w.size());
  std::map<std::pair<const LtlFormula*, size_t>, bool> memo;
  return EvalRec(f.get(), w, pos, &memo);
}

}  // namespace ltl
}  // namespace accltl
