#ifndef ACCLTL_LTL_TABLEAU_H_
#define ACCLTL_LTL_TABLEAU_H_

#include <set>
#include <vector>

#include "src/common/status.h"
#include "src/ltl/formula.h"

namespace accltl {
namespace ltl {

/// One edge of the tableau automaton: reading a letter that makes
/// `pos_lits` true and `neg_lits` false moves `from` to `to`; when
/// `may_end` the word may stop after this letter (no strong
/// obligations remain).
struct TableauEdge {
  int from = 0;
  std::set<int> pos_lits;
  std::set<int> neg_lits;
  int to = 0;
  bool may_end = false;
};

/// The finite-word tableau automaton of an LTL formula: an NFA whose
/// states are obligation sets (sets of NNF subformulas). A finite word
/// is accepted iff some run consumes it and its last edge has
/// `may_end`. This is the standard construction behind Thm 4.12's
/// PSPACE procedure and the Lemma 4.5 compilation.
struct TableauAutomaton {
  int initial = 0;
  int num_states = 0;
  std::vector<TableauEdge> edges;
};

/// Builds the full reachable tableau automaton (worst-case exponential
/// in |f|; capped at `max_states`).
Result<TableauAutomaton> BuildTableau(const LtlPtr& f, size_t max_states);

}  // namespace ltl
}  // namespace accltl

#endif  // ACCLTL_LTL_TABLEAU_H_
