#include "src/ltl/sat.h"

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/ltl/tableau.h"

namespace accltl {
namespace ltl {

namespace {

/// One tableau branch at a position: consistent literals plus the
/// obligations shifted to the next position.
struct Branch {
  std::set<int> pos_lits;
  std::set<int> neg_lits;
  /// Obligations under strong X: the word must continue.
  std::set<const LtlFormula*> next_strong;
  /// Obligations under weak N: honored only if the word continues.
  std::set<const LtlFormula*> next_weak;
};

/// Keeps LtlPtr owners alive while we work with raw pointers.
class Tableau {
 public:
  explicit Tableau(LtlPtr root) : root_(LtlFormula::Nnf(root)) {}

  const LtlPtr& root() const { return root_; }

  /// Expands a set of NNF formulas into all consistent branches.
  std::vector<Branch> Expand(const std::set<const LtlFormula*>& state) {
    std::vector<Branch> out;
    std::vector<const LtlFormula*> pending(state.begin(), state.end());
    Branch current;
    Rec(&pending, 0, &current, &out);
    return out;
  }

 private:
  void Rec(std::vector<const LtlFormula*>* pending, size_t idx,
           Branch* current, std::vector<Branch>* out) {
    if (idx == pending->size()) {
      out->push_back(*current);
      return;
    }
    const LtlFormula* f = (*pending)[idx];
    switch (f->kind()) {
      case LtlKind::kTrue:
        Rec(pending, idx + 1, current, out);
        return;
      case LtlKind::kFalse:
        return;  // inconsistent branch
      case LtlKind::kProp: {
        if (current->neg_lits.count(f->prop())) return;
        bool added = current->pos_lits.insert(f->prop()).second;
        Rec(pending, idx + 1, current, out);
        if (added) current->pos_lits.erase(f->prop());
        return;
      }
      case LtlKind::kNot: {
        // NNF: child is a proposition.
        int p = f->child()->prop();
        if (current->pos_lits.count(p)) return;
        bool added = current->neg_lits.insert(p).second;
        Rec(pending, idx + 1, current, out);
        if (added) current->neg_lits.erase(p);
        return;
      }
      case LtlKind::kAnd: {
        size_t old_size = pending->size();
        for (const LtlPtr& c : f->children()) pending->push_back(c.get());
        Rec(pending, idx + 1, current, out);
        pending->resize(old_size);
        return;
      }
      case LtlKind::kOr: {
        for (const LtlPtr& c : f->children()) {
          size_t old_size = pending->size();
          pending->push_back(c.get());
          Rec(pending, idx + 1, current, out);
          pending->resize(old_size);
        }
        return;
      }
      case LtlKind::kNext: {
        bool added = current->next_strong.insert(f->child().get()).second;
        Rec(pending, idx + 1, current, out);
        if (added) current->next_strong.erase(f->child().get());
        return;
      }
      case LtlKind::kWeakNext: {
        bool added = current->next_weak.insert(f->child().get()).second;
        Rec(pending, idx + 1, current, out);
        if (added) current->next_weak.erase(f->child().get());
        return;
      }
      case LtlKind::kUntil: {
        // φ U ψ ≡ ψ ∨ (φ ∧ X(φ U ψ))
        {
          size_t old_size = pending->size();
          pending->push_back(f->rhs().get());
          Rec(pending, idx + 1, current, out);
          pending->resize(old_size);
        }
        {
          size_t old_size = pending->size();
          pending->push_back(f->lhs().get());
          bool added = current->next_strong.insert(f).second;
          Rec(pending, idx + 1, current, out);
          if (added) current->next_strong.erase(f);
          pending->resize(old_size);
        }
        return;
      }
      case LtlKind::kRelease: {
        // φ R ψ ≡ ψ ∧ (φ ∨ N(φ R ψ))
        {
          size_t old_size = pending->size();
          pending->push_back(f->rhs().get());
          pending->push_back(f->lhs().get());
          Rec(pending, idx + 1, current, out);
          pending->resize(old_size);
        }
        {
          size_t old_size = pending->size();
          pending->push_back(f->rhs().get());
          bool added = current->next_weak.insert(f).second;
          Rec(pending, idx + 1, current, out);
          if (added) current->next_weak.erase(f);
          pending->resize(old_size);
        }
        return;
      }
    }
  }

  LtlPtr root_;
};

}  // namespace

Result<TableauAutomaton> BuildTableau(const LtlPtr& f, size_t max_states) {
  Tableau tableau(f);
  using State = std::set<const LtlFormula*>;
  TableauAutomaton out;
  std::map<State, int> state_ids;
  std::vector<State> worklist;

  auto intern = [&](const State& s) -> int {
    auto it = state_ids.find(s);
    if (it != state_ids.end()) return it->second;
    int id = static_cast<int>(state_ids.size());
    state_ids.emplace(s, id);
    worklist.push_back(s);
    return id;
  };

  State initial = {tableau.root().get()};
  out.initial = intern(initial);
  for (size_t next = 0; next < worklist.size(); ++next) {
    if (state_ids.size() > max_states) {
      return Status::ResourceExhausted("tableau exceeded max_states");
    }
    State state = worklist[next];
    int id = state_ids[state];
    for (const Branch& b : tableau.Expand(state)) {
      TableauEdge e;
      e.from = id;
      e.pos_lits = b.pos_lits;
      e.neg_lits = b.neg_lits;
      e.may_end = b.next_strong.empty();
      State succ = b.next_strong;
      succ.insert(b.next_weak.begin(), b.next_weak.end());
      e.to = intern(succ);
      out.edges.push_back(std::move(e));
    }
  }
  out.num_states = static_cast<int>(state_ids.size());
  return out;
}

SatResult CheckSatFinite(const LtlPtr& f, size_t max_states) {
  SatResult result;
  Tableau tableau(f);

  // Phase 1: forward-explore the reachable obligation-set graph.
  using State = std::set<const LtlFormula*>;
  struct Edge {
    std::set<int> pos_lits;
    int successor = -1;  // -1: the word may end on this branch
  };
  std::map<State, int> state_ids;
  std::vector<std::vector<Edge>> edges;
  std::vector<State> worklist;

  auto intern = [&](const State& s) -> int {
    auto it = state_ids.find(s);
    if (it != state_ids.end()) return it->second;
    int id = static_cast<int>(edges.size());
    state_ids.emplace(s, id);
    edges.emplace_back();
    worklist.push_back(s);
    return id;
  };

  State initial = {tableau.root().get()};
  intern(initial);
  for (size_t next = 0; next < worklist.size(); ++next) {
    if (state_ids.size() > max_states) {
      result.resource_exhausted = true;
      break;
    }
    State state = worklist[next];
    int id = state_ids[state];
    ++result.states_explored;
    for (const Branch& b : tableau.Expand(state)) {
      Edge e;
      e.pos_lits = b.pos_lits;
      if (b.next_strong.empty()) {
        e.successor = -1;  // can end here
      } else {
        State succ = b.next_strong;
        succ.insert(b.next_weak.begin(), b.next_weak.end());
        e.successor = intern(succ);
      }
      edges[static_cast<size_t>(id)].push_back(std::move(e));
    }
  }

  // Phase 2: backward fixpoint — distance (in steps) from each state to
  // a branch where the word may end. Works on the explored subgraph, so
  // a positive answer is sound even when exploration was truncated.
  constexpr int kInf = 1 << 30;
  std::vector<int> dist(edges.size(), kInf);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < edges.size(); ++i) {
      int best = dist[i];
      for (const Edge& e : edges[i]) {
        int candidate =
            e.successor < 0
                ? 0
                : (dist[static_cast<size_t>(e.successor)] == kInf
                       ? kInf
                       : dist[static_cast<size_t>(e.successor)] + 1);
        if (candidate < best) best = candidate;
      }
      if (best < dist[i]) {
        dist[i] = best;
        changed = true;
      }
    }
  }

  int init_id = state_ids[initial];
  result.satisfiable = dist[static_cast<size_t>(init_id)] != kInf;
  if (!result.satisfiable) {
    // A truncated graph cannot prove unsatisfiability.
    if (result.resource_exhausted) result.satisfiable = false;
  } else {
    result.resource_exhausted = false;
    // Phase 3: extract a shortest witness by walking distance downhill.
    int cur = init_id;
    while (true) {
      const std::vector<Edge>& out = edges[static_cast<size_t>(cur)];
      const Edge* chosen = nullptr;
      int want = dist[static_cast<size_t>(cur)];
      for (const Edge& e : out) {
        if (want == 0 && e.successor < 0) {
          chosen = &e;
          break;
        }
        if (e.successor >= 0 &&
            dist[static_cast<size_t>(e.successor)] == want - 1) {
          chosen = &e;
          break;
        }
      }
      result.witness.push_back(chosen->pos_lits);
      if (chosen->successor < 0) break;
      cur = chosen->successor;
    }
  }
  return result;
}

}  // namespace ltl
}  // namespace accltl
