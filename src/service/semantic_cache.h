#ifndef ACCLTL_SERVICE_SEMANTIC_CACHE_H_
#define ACCLTL_SERVICE_SEMANTIC_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/accltl/formula.h"
#include "src/schema/schema.h"
#include "src/service/answer_pipeline.h"
#include "src/service/canonical.h"

namespace accltl {
namespace service {

/// The containment-based semantic cache: the middle tier of the answer
/// pipeline. It stores *donors* — engine-resolved, transferable
/// responses together with the prepared state needed to reason about
/// them — indexed by the SemanticKey fingerprint (schema signature +
/// query shape), so candidate lookup is one hash probe whatever the
/// cache holds.
///
/// Verdict-transfer rules, from cheapest to most general (anything
/// uncertain falls through to the engine tier):
///
///  1. `renamed`  — the donor's and the query's canonical texts
///     (name-canonicalized schema, formula, options) are byte-equal:
///     the two requests differ only in relation/method *names*, which
///     every engine ignores (predicates are referenced by id). The
///     donor's full response transfers byte-for-byte.
///  2. `equivalent` — every atom sentence pair (donor vs. query, at
///     structurally parallel skeleton positions) is equivalent up to a
///     bijective variable renaming (logic::SentenceEquivalentUpToRenaming,
///     the renaming-witness form). Satisfiable verdicts transfer with
///     the donor's witness, re-validated against the query before
///     release; unsatisfiable verdicts transfer only between
///     zero-routed queries (the complete engine, same bounds).
///  3. `containment` — directional: the donor formula implies the
///     query formula pointwise over the shared temporal skeleton
///     (positive-polarity atoms checked with logic::SentenceContained
///     donor ⊆ query, negative-polarity reversed), so a donor kYes
///     transfers (with the witness re-validated); or the query implies
///     the donor, so a zero-routed donor kNo transfers to a
///     zero-routed query (no witness within the shared length bound).
///
/// Never transferred: kUnknown answers, budget-exhausted, cancelled or
/// deadline-cut responses (donors are admitted through
/// TransferableResponse, and an unknown answer carries no information
/// to transfer). Candidacy always requires byte-equal canonical option
/// and schema texts — execution context (threads, deadlines,
/// visited-set mode) is not part of the key because it never changes
/// answers.
class SemanticCache {
 public:
  /// A cached donor. Owns deep copies (schema included) so it never
  /// dangles when the PreparedQuery that produced it dies.
  struct Donor {
    SemanticKey key;
    /// The donor's syntactic cache key, for dedup and provenance.
    std::string syntactic_key;
    std::shared_ptr<const schema::Schema> schema;
    acc::AccPtr formula;
    bool zero_routed = false;
    CheckResponse response;
  };

  /// One-lock snapshot of the cache's counters (mirrors
  /// LruCache::Stats; the obs `service.semantic.*` instruments are
  /// incremented at the same call sites).
  struct Stats {
    size_t entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
  };

  /// Capacity in donor entries; 0 disables the cache (lookups miss,
  /// admissions drop), mirroring LruCache.
  explicit SemanticCache(size_t capacity);

  SemanticCache(const SemanticCache&) = delete;
  SemanticCache& operator=(const SemanticCache&) = delete;

  /// Registers an engine-resolved, transferable response as a donor.
  /// The caller guarantees TransferableResponse(response); responses
  /// already present (same syntactic key) are dropped — engine answers
  /// are deterministic, so first-in wins.
  void Admit(const PreparedQuery& query, const CheckResponse& response);

  /// The underlying insertion, exposed for the index micro-bench
  /// (bench_service populates synthetic donors without a service).
  void AdmitDonor(Donor donor);

  /// Attempts a verdict transfer for `query`. On success fills `*out`
  /// (source = kSemanticCache, provenance names the rule) and returns
  /// true; on a miss or any uncertainty returns false and the request
  /// falls through.
  bool Lookup(const PreparedQuery& query, CheckResponse* out);

  /// The index probe, exposed for the sub-microsecond micro-bench:
  /// donors sharing `fingerprint`, oldest first.
  std::vector<std::shared_ptr<const Donor>> Candidates(
      uint64_t fingerprint) const;

  Stats stats() const;

 private:
  void EvictOldestLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  /// Insertion order (oldest front) for FIFO eviction: donors are
  /// immutable facts about the engines, so recency carries no signal
  /// worth the bookkeeping of a full LRU here.
  std::list<std::shared_ptr<const Donor>> order_;
  std::unordered_map<uint64_t, std::vector<std::shared_ptr<const Donor>>>
      index_;
  std::unordered_set<std::string> keys_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t inserts_ = 0;
  uint64_t evictions_ = 0;
};

/// The pipeline tier wrapping a SemanticCache. Resolve = Lookup;
/// Admit registers engine-resolved transferable responses as donors
/// (semantic- and syntactic-tier responses are never re-admitted:
/// their statistics already describe some donor's execution).
class SemanticCacheResolver : public AnswerResolver {
 public:
  explicit SemanticCacheResolver(SemanticCache* cache) : cache_(cache) {}

  const char* name() const override { return "semantic-cache"; }
  bool Resolve(const PreparedQuery& query, const ResolveContext& ctx,
               CheckResponse* out) override;
  void Admit(const PreparedQuery& query, const ResolveContext& ctx,
             const CheckResponse& response) override;

 private:
  SemanticCache* cache_;
};

}  // namespace service
}  // namespace accltl

#endif  // ACCLTL_SERVICE_SEMANTIC_CACHE_H_
