#ifndef ACCLTL_SERVICE_CANONICAL_H_
#define ACCLTL_SERVICE_CANONICAL_H_

#include <cstdint>
#include <string>

#include "src/accltl/formula.h"
#include "src/analysis/decide.h"
#include "src/schema/schema.h"

namespace accltl {
namespace service {

/// Semantic options fixed at Prepare time. Everything here is part of
/// the cache key (it changes answers); execution context (worker
/// count, deadlines) deliberately is not — it never changes answers.
struct PrepareOptions {
  /// Restrict to grounded access paths.
  bool grounded = false;
  /// Run the Lemma 4.9/4.10 Datalog pipeline to certify emptiness when
  /// the bounded search finds no witness (AccLTL+ only).
  bool use_datalog_pipeline = false;
  /// Shrink returned witnesses to 1-minimal paths.
  bool shrink_witness = false;
  analysis::ZeroSolverOptions zero;
  automata::WitnessSearchOptions bounded;
  automata::DecomposeOptions decompose;
};

/// Renders every semantic knob as "name=value;" in a pinned field
/// order. Every knob that can change an answer must appear here (a
/// missed knob would alias two requests with different answers onto
/// one cache line); tests/canonical_key_test.cc pins the exact order
/// so the syntactic and semantic cache tiers can never drift apart.
std::string CanonicalOptionsKey(const PrepareOptions& options);

/// The canonical identity of a prepared request, assembled in one
/// place and shared by both cache tiers. Two requests with equal keys
/// answer every submission identically — the basis of the syntactic
/// result cache.
struct CanonicalRequestKey {
  /// schema::SerializeSchema of the prepared (copied) schema.
  std::string schema_text;
  /// The formula rendered against that schema.
  std::string formula_text;
  /// CanonicalOptionsKey of the Prepare-time options.
  std::string options_text;

  /// The flat LRU key: schema_text + '\n' + formula_text + '\n' +
  /// options_text. Newlines cannot occur inside the components
  /// (serialized schemas are newline-terminated per declaration but
  /// the join is unambiguous because field order is fixed).
  std::string Joined() const;
};

CanonicalRequestKey MakeCanonicalRequestKey(const schema::Schema& schema,
                                            const acc::AccPtr& formula,
                                            const PrepareOptions& options);

/// Rebuilds `schema` with positional names ("R0", "R1", … for
/// relations; "M0", "M1", … for methods) while keeping every id,
/// arity, position type, input-position set and exact/idempotent
/// promise unchanged. Two schemas that differ only in relation/method
/// names canonicalize to equal serializations; every formula AST
/// (which refers to predicates by id) remains valid against the
/// canonicalized schema.
schema::Schema CanonicalizeSchemaNames(const schema::Schema& schema);

/// Shape identity of a request for the semantic tier's candidate
/// index. The texts are rendered against the name-canonicalized
/// schema, so two requests that differ only by relation/method names
/// have byte-equal schema_text (and, when the ASTs match, byte-equal
/// formula_text). The fingerprint hashes the schema signature plus the
/// query shape — temporal skeleton and the sorted multiset of
/// (space, id, arity) atom predicates — so variable-renamed,
/// join-permuted and variable-identified variants of one query land in
/// the same index bucket while unrelated queries almost never do.
/// Equal fingerprints are a candidate filter, not an identity:
/// the transfer rules re-check the full texts.
struct SemanticKey {
  std::string schema_text;
  std::string formula_text;
  std::string options_text;
  uint64_t fingerprint = 0;
};

SemanticKey MakeSemanticKey(const schema::Schema& schema,
                            const acc::AccPtr& formula,
                            const PrepareOptions& options);

}  // namespace service
}  // namespace accltl

#endif  // ACCLTL_SERVICE_CANONICAL_H_
