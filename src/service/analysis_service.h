#ifndef ACCLTL_SERVICE_ANALYSIS_SERVICE_H_
#define ACCLTL_SERVICE_ANALYSIS_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/decide.h"
#include "src/common/status.h"
#include "src/engine/cancel.h"
#include "src/engine/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/schema/schema.h"
#include "src/service/answer_pipeline.h"
#include "src/service/canonical.h"
#include "src/service/result_cache.h"
#include "src/service/semantic_cache.h"
#include "src/session/session_manager.h"

namespace accltl {
namespace service {

/// Point-in-time view of the process-wide observability registry
/// (src/obs): service telemetry — request latency, dispatcher queue
/// wait, cache hit/miss/eviction counters, the deadline-overshoot
/// histogram — alongside the engine/solver instruments, renderable via
/// MetricsSnapshot::ToText() and ::ToPrometheus(). The registry is
/// global (instruments are process-wide, like the engine pool), so
/// this is a free function, not a service method.
obs::MetricsSnapshot MetricsSnapshot();

/// Session-level knobs of one AnalysisService instance.
struct ServiceOptions {
  /// Default search workers per request (engine::Explorer); a request
  /// may override with CheckRequest::num_threads. Results are
  /// deterministic in this count (the engines' schedule-independence
  /// guarantee), which is why it is not part of the cache key; the one
  /// case the guarantee scopes out — a binding max_nodes budget — is
  /// excluded from the cache instead (exhausted responses are never
  /// inserted).
  size_t num_threads = 1;
  /// Threads draining the async Submit queue. Each dispatched request
  /// runs its search through the shared engine pool; dispatchers
  /// pipeline request setup/teardown, the pool serializes the actual
  /// parallel regions.
  size_t num_dispatchers = 1;
  /// Result-cache capacity in entries (0 disables caching entirely).
  size_t cache_capacity = 256;
  /// Semantic (containment-based) cache capacity in donor entries.
  /// 0 — the default — disables the semantic tier entirely: the
  /// pipeline is then syntactic cache → engine, byte-identical to the
  /// pre-tiered behavior.
  size_t semantic_cache_capacity = 0;
  /// Streaming-session table bounds (DESIGN.md §10).
  session::SessionManagerOptions session;
};

/// One streamed access/response step against an open session.
struct StepRequest {
  schema::Access access;
  schema::Response response;
  /// Per-step deadline; 0 means none. A fired deadline leaves the
  /// session untouched (the step may be retried) — see
  /// session::StepResult::deadline_exceeded.
  std::chrono::milliseconds deadline{0};
};

/// A prepared query: parsed AST, Figure 2 fragment classification,
/// zero-ary plan (pool + tableau) or compiled Lemma 4.5 A-automaton,
/// and an owned copy of the schema — computed once by
/// AnalysisService::Prepare, immutable thereafter, shared freely
/// across threads and submissions. Holding the compiled automaton
/// alive also pins the emptiness engine's cached search plan (keyed by
/// guard identity), so repeated submissions skip UCQ normalization and
/// pool freezing too.
class PreparedQuery {
 public:
  const schema::Schema& schema() const { return *schema_; }
  const acc::AccPtr& formula() const { return prepared_.formula; }
  acc::Fragment fragment() const { return prepared_.fragment; }
  bool uses_inequality() const { return prepared_.uses_inequality; }
  const PrepareOptions& options() const { return options_; }
  /// Canonical identity: serialized schema + formula text + semantic
  /// options. Two PreparedQuery instances with equal keys answer every
  /// request identically (the basis of the syntactic result cache).
  const std::string& cache_key() const { return cache_key_; }
  /// The structured form of cache_key() (same bytes, split fields).
  const CanonicalRequestKey& canonical_key() const { return canonical_key_; }
  /// The semantic-tier identity: name-canonicalized texts plus the
  /// shape fingerprint that indexes the containment cache.
  const SemanticKey& semantic_key() const { return semantic_key_; }
  /// True when this query routes to the zero-ary solver — the complete
  /// engine, whose kNo answers may transfer semantically (the other
  /// engines' kNo is bound- or certification-scoped).
  bool zero_routed() const { return prepared_.zero_plan != nullptr; }

 private:
  friend class AnalysisService;
  PreparedQuery() = default;
  /// unique_ptr, not a member: PreparedFormula's compiled automaton
  /// and the engine's plan cache key the schema by address, so the
  /// schema must never move once prepared against.
  std::unique_ptr<const schema::Schema> schema_;
  analysis::PreparedFormula prepared_;
  PrepareOptions options_;
  analysis::DecideOptions decide_options_;  // options_, rebased
  CanonicalRequestKey canonical_key_;
  SemanticKey semantic_key_;
  std::string cache_key_;
};

/// Future-like handle to an async submission. Copyable (shared state);
/// all methods are safe from any thread.
class PendingResult {
 public:
  PendingResult();
  ~PendingResult();
  PendingResult(const PendingResult&);
  PendingResult& operator=(const PendingResult&);
  PendingResult(PendingResult&&) noexcept;
  PendingResult& operator=(PendingResult&&) noexcept;

  bool valid() const;
  bool ready() const;
  /// Blocks until the response is available.
  const CheckResponse& Get() const;
  /// Waits up to `timeout`; true when the response became available.
  bool WaitFor(std::chrono::milliseconds timeout) const;
  /// Fires the request's cancel token: a queued request resolves to
  /// kCancelled without searching, an in-flight one aborts at its next
  /// node expansion. Idempotent; racing a natural completion is
  /// harmless (the completed response wins).
  void Cancel() const;

 private:
  friend class AnalysisService;
  struct State;
  explicit PendingResult(std::shared_ptr<State> state);
  std::shared_ptr<State> state_;
};

/// Future-like handle to an async streamed step (SubmitStep).
/// Copyable (shared state); all methods are safe from any thread.
class PendingStep {
 public:
  PendingStep();
  ~PendingStep();
  PendingStep(const PendingStep&);
  PendingStep& operator=(const PendingStep&);
  PendingStep(PendingStep&&) noexcept;
  PendingStep& operator=(PendingStep&&) noexcept;

  bool valid() const;
  bool ready() const;
  /// Blocks until the step result is available.
  const session::StepResult& Get() const;
  /// Waits up to `timeout`; true when the result became available.
  bool WaitFor(std::chrono::milliseconds timeout) const;
  /// Fires the step's cancel token: a queued step resolves without
  /// touching the session, an in-flight one aborts before committing
  /// (the session is untouched either way; the step may be retried).
  void Cancel() const;

 private:
  friend class AnalysisService;
  struct State;
  explicit PendingStep(std::shared_ptr<State> state);
  std::shared_ptr<State> state_;
};

/// The long-lived facade over the analysis engines: owns the prepared
/// state, the result cache and the async submission queue, and drives
/// every search through the shared engine::ThreadPool. One service
/// instance serves any number of schemas and formulas; Prepare once,
/// Submit/Check many.
class AnalysisService {
 public:
  explicit AnalysisService(ServiceOptions options = {});
  /// Fires every outstanding request's cancel token — queued
  /// submissions resolve to kCancelled without searching, in-flight
  /// ones abort at their next node expansion — then joins the
  /// dispatchers. Every PendingResult ever returned resolves.
  ~AnalysisService();

  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  /// Builds the shared, immutable prepared state: schema copy, parsed
  /// AST (for the text overload), fragment classification, zero-ary
  /// plan or compiled automaton. Fails on parse errors and hard setup
  /// errors; fragment-routing misses surface per-request instead.
  Result<std::shared_ptr<const PreparedQuery>> Prepare(
      const schema::Schema& schema, const acc::AccPtr& formula,
      const PrepareOptions& options = {});
  Result<std::shared_ptr<const PreparedQuery>> Prepare(
      const schema::Schema& schema, const std::string& formula_text,
      const PrepareOptions& options = {});

  /// Synchronous check on the calling thread (still deadline-capable
  /// through `request.deadline`).
  CheckResponse Check(const PreparedQuery& prepared,
                      const CheckRequest& request = {});

  /// Batched async submission: enqueues the request for the dispatcher
  /// threads and returns immediately. Submissions against one
  /// PreparedQuery share all its compiled state; identical requests
  /// are served from the result cache when enabled.
  PendingResult Submit(std::shared_ptr<const PreparedQuery> prepared,
                       CheckRequest request = {});

  /// --- Streaming sessions (DESIGN.md §10) ---------------------------------
  /// Opens a monitored session over the prepared query: the client then
  /// streams access/response steps and receives an incremental
  /// four-valued verdict per step, never re-running a full search. The
  /// session pins `prepared` (schema, formula, compiled automaton) for
  /// its lifetime; the backend follows the prepared query's Figure-2
  /// classification (session::MonitoredSession::PickBackend).
  /// `initial` is the session's I0; the overload without it starts from
  /// the empty instance.
  Result<session::SessionId> OpenSession(
      std::shared_ptr<const PreparedQuery> prepared,
      schema::Instance initial);
  Result<session::SessionId> OpenSession(
      std::shared_ptr<const PreparedQuery> prepared);

  /// Synchronous step on the calling thread (deadline-capable through
  /// `request.deadline`). Lookup failures (unknown/expired session) are
  /// flattened into StepResult::status, so callers branch on one field.
  session::StepResult StepSession(session::SessionId id,
                                  const StepRequest& request);

  /// Async step via the dispatcher queue. Steps of one session are
  /// serialized by the session's own lock, but *ordering* across
  /// concurrently queued steps follows dispatcher scheduling: a client
  /// that needs a deterministic verdict sequence (they all do) waits on
  /// each PendingStep before submitting the next — then the sequence is
  /// identical at any dispatcher count.
  PendingStep SubmitStep(session::SessionId id, StepRequest request);

  /// Closes the session, returning its final state.
  Result<session::SessionInfo> CloseSession(session::SessionId id);

  /// Current session state without consuming a step.
  Result<session::SessionInfo> DescribeSession(session::SessionId id) const;

  /// Sweeps idle-expired sessions now; returns how many were expired.
  size_t ExpireIdleSessions();

  size_t live_sessions() const;

  /// The engine pool every search of this service runs on.
  engine::ThreadPool& pool() const { return engine::ThreadPool::Global(); }

  const ServiceOptions& options() const { return options_; }
  size_t cache_entries() const { return cache_.size(); }
  uint64_t cache_hits() const { return cache_.hits(); }
  uint64_t cache_misses() const { return cache_.misses(); }
  uint64_t cache_evictions() const { return cache_.evictions(); }
  /// Coherent one-lock snapshot of the syntactic cache counters.
  LruCache<CheckResponse>::Stats cache_stats() const {
    return cache_.stats();
  }
  /// Semantic-tier counters (all zero when the tier is disabled).
  SemanticCache::Stats semantic_stats() const {
    return semantic_cache_ ? semantic_cache_->stats()
                           : SemanticCache::Stats{};
  }
  /// The request path, exposed read-only: tier 0 is consulted first.
  const AnswerPipeline& pipeline() const { return pipeline_; }

 private:
  friend class EngineResolver;
  /// One queued submission — either a full check (state) or a session
  /// step (step_state); exactly one is non-null. States are created
  /// complete inside Submit/SubmitStep (type-erased deleters), so
  /// holding them through the forward-declared State types is fine.
  struct Job {
    std::shared_ptr<const PreparedQuery> prepared;
    CheckRequest request;
    std::shared_ptr<PendingResult::State> state;
    /// Session-step jobs.
    session::SessionId session_id = 0;
    StepRequest step;
    std::shared_ptr<PendingStep::State> step_state;
    /// Submit time, for the dispatcher queue-wait histogram.
    std::chrono::steady_clock::time_point enqueued;
  };

  void DispatcherLoop();
  /// Cancel token of whichever state a job carries.
  static engine::CancelToken* JobToken(const Job& job);
  /// Arms the deadline, runs the step through the session table and
  /// flattens lookup errors into StepResult::status.
  session::StepResult ExecuteStep(session::SessionId id,
                                  const StepRequest& request,
                                  engine::CancelToken* token);
  /// Stamps metrics/verdict around one pipeline walk.
  CheckResponse Execute(const PreparedQuery& prepared,
                        const CheckRequest& request,
                        engine::CancelToken* token);
  /// The terminal tier's body: a full engine search (zero-ary solver,
  /// bounded witness search, or Datalog certification, per routing).
  CheckResponse RunEngine(const PreparedQuery& prepared,
                          const CheckRequest& request,
                          engine::CancelToken* token);

  ServiceOptions options_;
  LruCache<CheckResponse> cache_;
  /// Null when ServiceOptions::semantic_cache_capacity == 0.
  std::unique_ptr<SemanticCache> semantic_cache_;
  /// Tier order: syntactic cache → semantic cache (optional) → engine.
  /// Owns its resolvers; built once in the constructor, immutable
  /// thereafter (safe to walk from all dispatchers).
  AnswerPipeline pipeline_;

  /// Streaming-session table; lives above the queue members so the
  /// destructor's dispatcher join (which may be mid-step) happens
  /// while the table is still alive.
  session::SessionManager sessions_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  /// Tokens (with a keep-alive on their owning state) of requests a
  /// dispatcher has popped but not yet fulfilled, so shutdown can fire
  /// them too (a destructor that only cancelled the queue would block
  /// on a running unbounded sweep).
  struct InFlight {
    std::shared_ptr<void> keep;
    engine::CancelToken* token;
  };
  std::vector<InFlight> in_flight_;
  bool stopping_ = false;
  std::vector<std::thread> dispatchers_;
};

}  // namespace service
}  // namespace accltl

#endif  // ACCLTL_SERVICE_ANALYSIS_SERVICE_H_
