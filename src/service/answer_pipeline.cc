#include "src/service/answer_pipeline.h"

#include <utility>

namespace accltl {
namespace service {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kCompleted:
      return "completed";
    case Verdict::kDeadlineExceeded:
      return "deadline-exceeded";
    case Verdict::kCancelled:
      return "cancelled";
  }
  return "?";
}

const char* AnswerSourceName(AnswerSource s) {
  switch (s) {
    case AnswerSource::kEngine:
      return "engine";
    case AnswerSource::kSyntacticCache:
      return "syntactic-cache";
    case AnswerSource::kSemanticCache:
      return "semantic-cache";
  }
  return "?";
}

bool TransferableResponse(const CheckResponse& response) {
  return response.status.ok() && response.verdict == Verdict::kCompleted &&
         !response.decision.exhausted_budget && !response.decision.cancelled;
}

void AnswerResolver::Admit(const PreparedQuery& query,
                           const ResolveContext& ctx,
                           const CheckResponse& response) {
  (void)query;
  (void)ctx;
  (void)response;
}

void AnswerPipeline::AddTier(std::unique_ptr<AnswerResolver> tier) {
  tiers_.push_back(std::move(tier));
}

CheckResponse AnswerPipeline::Answer(const PreparedQuery& query,
                                     const ResolveContext& ctx) {
  CheckResponse resp;
  for (size_t i = 0; i < tiers_.size(); ++i) {
    if (!tiers_[i]->Resolve(query, ctx, &resp)) continue;
    // Populate the tiers the request fell through, cheapest last so
    // the syntactic tier sees exactly what the resolving tier
    // answered.
    for (size_t j = 0; j < i; ++j) tiers_[j]->Admit(query, ctx, resp);
    return resp;
  }
  resp.status = Status::Internal(
      "answer pipeline: no tier resolved the request (the engine tier "
      "must always resolve)");
  return resp;
}

}  // namespace service
}  // namespace accltl
