#include "src/service/semantic_cache.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/accltl/semantics.h"
#include "src/logic/containment.h"
#include "src/obs/metrics.h"
#include "src/schema/instance.h"
#include "src/service/analysis_service.h"

namespace accltl {
namespace service {

namespace {

/// Semantic-tier instruments (write-only; DESIGN.md §8/§9). The
/// candidate histogram and probe clock record only under
/// obs::MetricsEnabled(), preserving the no-perturbation contract.
struct SemanticMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* inserts;
  obs::Counter* evictions;
  obs::Counter* transfer_renamed;
  obs::Counter* transfer_equivalent;
  obs::Counter* transfer_containment;
  obs::Counter* rejected_unsound;
  obs::Gauge* entries;
  obs::Histogram* candidates;
  obs::Histogram* lookup_us;
  static const SemanticMetrics& Get() {
    obs::Registry& r = obs::Registry::Get();
    static const SemanticMetrics m{
        r.counter("service.semantic.hits"),
        r.counter("service.semantic.misses"),
        r.counter("service.semantic.inserts"),
        r.counter("service.semantic.evictions"),
        r.counter("service.semantic.transfer.renamed"),
        r.counter("service.semantic.transfer.equivalent"),
        r.counter("service.semantic.transfer.containment"),
        r.counter("service.semantic.rejected_unsound"),
        r.gauge("service.semantic.entries"),
        r.histogram("service.semantic.candidates"),
        r.histogram("service.semantic.lookup_us"),
    };
    return m;
  }
};

/// Tractability caps for the per-lookup containment reasoning: the
/// semantic tier must stay cheap relative to a search, so anything
/// larger falls through to the engine instead of grinding the exact
/// (exponential) checkers.
constexpr size_t kMaxAtomPairs = 16;
constexpr size_t kMaxDisjuncts = 64;
constexpr size_t kMaxVarsNeqFree = 12;
constexpr size_t kMaxVarsWithNeq = 6;

/// One structurally parallel pair of atom sentences plus the polarity
/// of their shared skeleton position (¬ flips it; ∧, ∨, X and both
/// operands of U are monotone).
struct AtomPair {
  logic::PosFormulaPtr donor;
  logic::PosFormulaPtr query;
  bool positive;
};

/// Walks both skeletons in lockstep; false when the shapes differ
/// (different operator kinds or child counts), in which case no
/// pointwise transfer argument applies.
bool CollectAtomPairs(const acc::AccPtr& d, const acc::AccPtr& q,
                      bool positive, std::vector<AtomPair>* out) {
  if (d->kind() != q->kind()) return false;
  switch (d->kind()) {
    case acc::AccKind::kAtom:
      out->push_back(AtomPair{d->sentence(), q->sentence(), positive});
      return true;
    case acc::AccKind::kNot:
      return CollectAtomPairs(d->child(), q->child(), !positive, out);
    case acc::AccKind::kNext:
      return CollectAtomPairs(d->child(), q->child(), positive, out);
    case acc::AccKind::kUntil:
      return CollectAtomPairs(d->lhs(), q->lhs(), positive, out) &&
             CollectAtomPairs(d->rhs(), q->rhs(), positive, out);
    case acc::AccKind::kAnd:
    case acc::AccKind::kOr: {
      if (d->children().size() != q->children().size()) return false;
      for (size_t i = 0; i < d->children().size(); ++i) {
        if (!CollectAtomPairs(d->children()[i], q->children()[i], positive,
                              out)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

size_t CountBoundVars(const logic::PosFormulaPtr& f) {
  switch (f->kind()) {
    case logic::NodeKind::kExists: {
      return f->bound_vars().size() + CountBoundVars(f->body());
    }
    case logic::NodeKind::kAnd:
    case logic::NodeKind::kOr: {
      size_t n = 0;
      for (const logic::PosFormulaPtr& c : f->children()) {
        n += CountBoundVars(c);
      }
      return n;
    }
    default:
      return 0;
  }
}

/// Is the exact containment check affordable for this pair? Klug's
/// identification enumeration (triggered by ≠) is exponential in the
/// left-hand variables, the ≠-free homomorphism test merely
/// exponential in the worst case — different caps.
bool ContainmentTractable(const logic::PosFormulaPtr& lhs,
                          const logic::PosFormulaPtr& rhs) {
  size_t cap = (lhs->UsesInequality() || rhs->UsesInequality())
                   ? kMaxVarsWithNeq
                   : kMaxVarsNeqFree;
  return CountBoundVars(lhs) <= cap && CountBoundVars(rhs) <= cap;
}

/// lhs ⊆ rhs established? Any error or cap overflow counts as "not
/// established" — the tier falls through rather than guessing.
bool ContainedSurely(const logic::PosFormulaPtr& lhs,
                     const logic::PosFormulaPtr& rhs,
                     const schema::Schema& schema) {
  if (logic::PosFormula::Equal(lhs, rhs)) return true;
  if (!ContainmentTractable(lhs, rhs)) return false;
  Result<bool> c = logic::SentenceContained(lhs, rhs, schema, kMaxDisjuncts);
  return c.ok() && c.value();
}

/// Does the donor's witness path genuinely satisfy the query's
/// formula? The final soundness gate on every kYes transfer: even
/// when the containment argument is airtight this re-validation runs,
/// so an implementation bug above degrades to a cache miss, never to
/// a wrong answer.
bool WitnessTransfers(const SemanticCache::Donor& d, const PreparedQuery& q) {
  const analysis::Decision& dd = d.response.decision;
  if (!dd.has_witness) return false;
  if (!dd.witness.Validate(q.schema()).ok()) return false;
  return acc::EvalOnPath(q.formula(), q.schema(), dd.witness,
                         schema::Instance(q.schema()));
}

/// The transferred response: the donor's verdict and execution
/// statistics (nodes, visited bytes — they describe the donor's
/// search) with the query's own fragment classification.
CheckResponse BuildTransfer(const SemanticCache::Donor& d,
                            const PreparedQuery& q) {
  CheckResponse resp = d.response;
  resp.decision.fragment = q.fragment();
  resp.decision.uses_inequality = q.uses_inequality();
  resp.cache_hit = false;
  return resp;
}

}  // namespace

SemanticCache::SemanticCache(size_t capacity) : capacity_(capacity) {}

void SemanticCache::Admit(const PreparedQuery& query,
                          const CheckResponse& response) {
  Donor donor;
  donor.key = query.semantic_key();
  donor.syntactic_key = query.cache_key();
  donor.schema = std::make_shared<const schema::Schema>(query.schema());
  donor.formula = query.formula();
  donor.zero_routed = query.zero_routed();
  donor.response = response;
  donor.response.cache_hit = false;
  donor.response.source = AnswerSource::kEngine;
  donor.response.provenance = "engine";
  AdmitDonor(std::move(donor));
}

void SemanticCache::AdmitDonor(Donor d) {
  if (capacity_ == 0) return;
  auto donor = std::make_shared<Donor>(std::move(d));
  const SemanticMetrics& metrics = SemanticMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  if (!keys_.insert(donor->syntactic_key).second) return;
  index_[donor->key.fingerprint].push_back(donor);
  order_.push_back(std::move(donor));
  ++inserts_;
  metrics.inserts->Inc();
  metrics.entries->Add(1);
  if (order_.size() > capacity_) EvictOldestLocked();
}

void SemanticCache::EvictOldestLocked() {
  std::shared_ptr<const Donor> victim = order_.front();
  order_.pop_front();
  keys_.erase(victim->syntactic_key);
  auto it = index_.find(victim->key.fingerprint);
  if (it != index_.end()) {
    auto& bucket = it->second;
    bucket.erase(std::find(bucket.begin(), bucket.end(), victim));
    if (bucket.empty()) index_.erase(it);
  }
  ++evictions_;
  const SemanticMetrics& metrics = SemanticMetrics::Get();
  metrics.evictions->Inc();
  metrics.entries->Add(-1);
}

std::vector<std::shared_ptr<const SemanticCache::Donor>>
SemanticCache::Candidates(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(fingerprint);
  if (it == index_.end()) return {};
  return it->second;
}

bool SemanticCache::Lookup(const PreparedQuery& query, CheckResponse* out) {
  const SemanticMetrics& metrics = SemanticMetrics::Get();
  const SemanticKey& qk = query.semantic_key();
  auto served = [&](const char* rule, obs::Counter* rule_counter) {
    out->source = AnswerSource::kSemanticCache;
    out->provenance = std::string("semantic-cache rule=") + rule;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++hits_;
    }
    metrics.hits->Inc();
    rule_counter->Inc();
  };

  std::vector<std::shared_ptr<const Donor>> candidates;
  if (obs::MetricsEnabled()) {
    auto t0 = std::chrono::steady_clock::now();
    candidates = Candidates(qk.fingerprint);
    metrics.lookup_us->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    metrics.candidates->Record(candidates.size());
  } else {
    candidates = Candidates(qk.fingerprint);
  }

  for (const std::shared_ptr<const Donor>& donor : candidates) {
    // Fingerprints filter; texts decide. Options and schema signature
    // must match byte-for-byte before any transfer rule applies.
    if (donor->key.options_text != qk.options_text) continue;
    if (donor->key.schema_text != qk.schema_text) continue;

    const analysis::Answer answer = donor->response.decision.satisfiable;

    // Rule 1: byte-equal canonical formula text — the requests differ
    // only in relation/method names, invisible to the engines.
    if (donor->key.formula_text == qk.formula_text) {
      *out = donor->response;
      out->cache_hit = false;
      served("renamed", metrics.transfer_renamed);
      return true;
    }

    if (answer == analysis::Answer::kUnknown) continue;

    std::vector<AtomPair> pairs;
    if (!CollectAtomPairs(donor->formula, query.formula(), true, &pairs)) {
      continue;
    }
    if (pairs.size() > kMaxAtomPairs) continue;
    const schema::Schema& schema = query.schema();

    // Rule 2: every parallel atom pair equivalent up to a bijective
    // variable renaming.
    bool equivalent = true;
    for (const AtomPair& p : pairs) {
      if (logic::PosFormula::Equal(p.donor, p.query)) continue;
      Result<bool> eq = logic::SentenceEquivalentUpToRenaming(
          p.donor, p.query, schema, nullptr, kMaxDisjuncts);
      if (!eq.ok() || !eq.value()) {
        equivalent = false;
        break;
      }
    }
    if (equivalent) {
      if (answer == analysis::Answer::kYes) {
        if (!WitnessTransfers(*donor, query)) {
          metrics.rejected_unsound->Inc();
          continue;
        }
      } else if (!(donor->zero_routed && query.zero_routed())) {
        // kNo is relative to the search bounds; only the complete
        // zero-ary engine under byte-equal options makes it portable.
        continue;
      }
      *out = BuildTransfer(*donor, query);
      served("equivalent", metrics.transfer_equivalent);
      return true;
    }

    // Rule 3: directional containment over the shared skeleton.
    if (answer == analysis::Answer::kYes) {
      // Donor ⇒ query pointwise: donor's witness path satisfies the
      // query too.
      bool implies = true;
      for (const AtomPair& p : pairs) {
        implies = p.positive ? ContainedSurely(p.donor, p.query, schema)
                             : ContainedSurely(p.query, p.donor, schema);
        if (!implies) break;
      }
      if (!implies) continue;
      if (!WitnessTransfers(*donor, query)) {
        metrics.rejected_unsound->Inc();
        continue;
      }
      *out = BuildTransfer(*donor, query);
      served("containment", metrics.transfer_containment);
      return true;
    }
    // answer == kNo: query ⇒ donor pointwise, so any query witness
    // would witness the donor; the donor's exhaustive bounded search
    // found none. Sound only between zero-routed queries (complete
    // within the shared, byte-equal bounds).
    if (!(donor->zero_routed && query.zero_routed())) continue;
    bool implies = true;
    for (const AtomPair& p : pairs) {
      implies = p.positive ? ContainedSurely(p.query, p.donor, schema)
                           : ContainedSurely(p.donor, p.query, schema);
      if (!implies) break;
    }
    if (!implies) continue;
    *out = BuildTransfer(*donor, query);
    served("containment", metrics.transfer_containment);
    return true;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
  }
  metrics.misses->Inc();
  return false;
}

SemanticCache::Stats SemanticCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.entries = order_.size();
  s.hits = hits_;
  s.misses = misses_;
  s.inserts = inserts_;
  s.evictions = evictions_;
  return s;
}

bool SemanticCacheResolver::Resolve(const PreparedQuery& query,
                                    const ResolveContext& ctx,
                                    CheckResponse* out) {
  if (ctx.request == nullptr || !ctx.request->use_cache) return false;
  return cache_->Lookup(query, out);
}

void SemanticCacheResolver::Admit(const PreparedQuery& query,
                                  const ResolveContext& ctx,
                                  const CheckResponse& response) {
  if (ctx.request == nullptr || !ctx.request->use_cache) return;
  // Only engine-resolved answers become donors: a transferred or
  // replayed response's statistics already describe some donor's
  // execution, and re-admitting it would only duplicate entries.
  if (response.source != AnswerSource::kEngine) return;
  if (!TransferableResponse(response)) return;
  cache_->Admit(query, response);
}

}  // namespace service
}  // namespace accltl
