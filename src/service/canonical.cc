#include "src/service/canonical.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/logic/predicate.h"
#include "src/schema/text_format.h"

namespace accltl {
namespace service {

namespace {

/// Appends one options field to the canonical key. Field order is
/// fixed; every semantic knob must appear here.
void KeyField(std::string* key, const char* name, uint64_t value) {
  key->append(name);
  key->push_back('=');
  key->append(std::to_string(value));
  key->push_back(';');
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t* h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashString(uint64_t* h, const std::string& s) {
  HashBytes(h, s.data(), s.size());
  HashBytes(h, "\x1f", 1);
}

/// Appends the temporal skeleton of `f` — operators only, atom
/// contents elided — and collects each atom's predicate profile into
/// `preds`. The skeleton string distinguishes operator kinds and
/// child counts, so only structurally parallel formulas share it.
void WalkSkeleton(const acc::AccPtr& f, const schema::Schema& schema,
                  std::string* skeleton,
                  std::vector<std::tuple<int, int, int>>* preds) {
  switch (f->kind()) {
    case acc::AccKind::kAtom: {
      skeleton->push_back('a');
      for (const logic::PredicateRef& p : f->sentence()->Predicates()) {
        preds->emplace_back(static_cast<int>(p.space), p.id,
                            logic::PredicateArity(p, schema));
      }
      return;
    }
    case acc::AccKind::kNot:
      skeleton->push_back('!');
      WalkSkeleton(f->child(), schema, skeleton, preds);
      return;
    case acc::AccKind::kNext:
      skeleton->push_back('X');
      WalkSkeleton(f->child(), schema, skeleton, preds);
      return;
    case acc::AccKind::kUntil:
      skeleton->append("U(");
      WalkSkeleton(f->lhs(), schema, skeleton, preds);
      skeleton->push_back(',');
      WalkSkeleton(f->rhs(), schema, skeleton, preds);
      skeleton->push_back(')');
      return;
    case acc::AccKind::kAnd:
    case acc::AccKind::kOr:
      skeleton->push_back(f->kind() == acc::AccKind::kAnd ? '&' : '|');
      skeleton->push_back('(');
      for (const acc::AccPtr& c : f->children()) {
        WalkSkeleton(c, schema, skeleton, preds);
        skeleton->push_back(',');
      }
      skeleton->push_back(')');
      return;
  }
}

}  // namespace

std::string CanonicalOptionsKey(const PrepareOptions& o) {
  std::string key;
  KeyField(&key, "grounded", o.grounded ? 1 : 0);
  KeyField(&key, "datalog", o.use_datalog_pipeline ? 1 : 0);
  KeyField(&key, "shrink", o.shrink_witness ? 1 : 0);
  KeyField(&key, "z.grounded", o.zero.grounded ? 1 : 0);
  KeyField(&key, "z.idem", o.zero.require_idempotent ? 1 : 0);
  KeyField(&key, "z.max_nodes", o.zero.max_nodes);
  KeyField(&key, "z.max_facts", o.zero.max_facts_per_step);
  KeyField(&key, "z.max_len", o.zero.max_path_length);
  KeyField(&key, "z.max_subsets", o.zero.max_subsets_per_access);
  KeyField(&key, "b.max_len", o.bounded.max_path_length);
  KeyField(&key, "b.grounded", o.bounded.grounded ? 1 : 0);
  KeyField(&key, "b.idem", o.bounded.require_idempotent ? 1 : 0);
  KeyField(&key, "b.exact", o.bounded.require_exact ? 1 : 0);
  KeyField(&key, "b.max_nodes", o.bounded.max_nodes);
  KeyField(&key, "b.max_real", o.bounded.max_realizations_per_step);
  KeyField(&key, "b.dedup", o.bounded.use_visited_dedup ? 1 : 0);
  KeyField(&key, "d.max_variants", o.decompose.max_variants);
  KeyField(&key, "d.max_phi", o.decompose.max_phi);
  KeyField(&key, "d.max_stages", o.decompose.max_stages);
  return key;
}

std::string CanonicalRequestKey::Joined() const {
  std::string key = schema_text;
  key.push_back('\n');
  key += formula_text;
  key.push_back('\n');
  key += options_text;
  return key;
}

CanonicalRequestKey MakeCanonicalRequestKey(const schema::Schema& schema,
                                            const acc::AccPtr& formula,
                                            const PrepareOptions& options) {
  CanonicalRequestKey key;
  key.schema_text = schema::SerializeSchema(schema);
  key.formula_text = formula->ToString(schema);
  key.options_text = CanonicalOptionsKey(options);
  return key;
}

schema::Schema CanonicalizeSchemaNames(const schema::Schema& schema) {
  schema::Schema canonical;
  for (int r = 0; r < schema.num_relations(); ++r) {
    canonical.AddRelation("R" + std::to_string(r),
                          schema.relation(r).position_types);
  }
  for (int m = 0; m < schema.num_access_methods(); ++m) {
    const schema::AccessMethod& method = schema.method(m);
    canonical.AddAccessMethod("M" + std::to_string(m), method.relation,
                              method.input_positions, method.exact,
                              method.idempotent, method.result_bound);
  }
  return canonical;
}

SemanticKey MakeSemanticKey(const schema::Schema& schema,
                            const acc::AccPtr& formula,
                            const PrepareOptions& options) {
  SemanticKey key;
  schema::Schema canonical = CanonicalizeSchemaNames(schema);
  key.schema_text = schema::SerializeSchema(canonical);
  key.formula_text = formula->ToString(canonical);
  key.options_text = CanonicalOptionsKey(options);

  std::string skeleton;
  std::vector<std::tuple<int, int, int>> preds;
  WalkSkeleton(formula, canonical, &skeleton, &preds);
  // Sorted multiset: variable renamings, join permutations and
  // variable identifications leave it unchanged, so such variants
  // fingerprint identically.
  std::sort(preds.begin(), preds.end());

  uint64_t h = kFnvOffset;
  HashString(&h, key.schema_text);
  HashString(&h, key.options_text);
  HashString(&h, skeleton);
  for (const auto& [space, id, arity] : preds) {
    HashBytes(&h, &space, sizeof(space));
    HashBytes(&h, &id, sizeof(id));
    HashBytes(&h, &arity, sizeof(arity));
  }
  key.fingerprint = h;
  return key;
}

}  // namespace service
}  // namespace accltl
