#include "src/service/analysis_service.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/accltl/parser.h"
#include "src/obs/trace.h"

namespace accltl {
namespace service {

namespace {

/// Service-layer instruments (write-only; DESIGN.md §8). Latency and
/// queue-wait clocks reuse timestamps the service already takes for
/// CheckResponse::elapsed, so metrics-off skips no code path but the
/// relaxed increments themselves.
struct ServiceMetrics {
  obs::Counter* requests;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* cache_evictions;
  obs::Counter* deadline_exceeded;
  obs::Counter* cancelled;
  obs::Counter* errors;
  obs::Gauge* queue_depth;
  obs::Histogram* latency_us;
  obs::Histogram* queue_wait_us;
  obs::Histogram* deadline_overshoot_us;
  static const ServiceMetrics& Get() {
    obs::Registry& r = obs::Registry::Get();
    static const ServiceMetrics m{
        r.counter("service.requests"),
        r.counter("service.cache.hits"),
        r.counter("service.cache.misses"),
        r.counter("service.cache.evictions"),
        r.counter("service.deadline_exceeded"),
        r.counter("service.cancelled"),
        r.counter("service.errors"),
        r.gauge("service.queue_depth"),
        r.histogram("service.latency_us"),
        r.histogram("service.queue_wait_us"),
        r.histogram("service.deadline_overshoot_us"),
    };
    return m;
  }
};

}  // namespace

obs::MetricsSnapshot MetricsSnapshot() {
  return obs::Registry::Get().Snapshot();
}

// --- PendingResult ----------------------------------------------------------

struct PendingResult::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  CheckResponse response;
  /// The request's cooperative stop: owned here so Cancel works on a
  /// queued request (before any engine sees the token) and the token
  /// outlives the search that polls it.
  engine::CancelToken token;

  void Fulfill(CheckResponse resp) {
    {
      std::lock_guard<std::mutex> lock(mu);
      response = std::move(resp);
      done = true;
    }
    cv.notify_all();
  }
};

PendingResult::PendingResult() = default;
PendingResult::~PendingResult() = default;
PendingResult::PendingResult(const PendingResult&) = default;
PendingResult& PendingResult::operator=(const PendingResult&) = default;
PendingResult::PendingResult(PendingResult&&) noexcept = default;
PendingResult& PendingResult::operator=(PendingResult&&) noexcept = default;
PendingResult::PendingResult(std::shared_ptr<State> state)
    : state_(std::move(state)) {}

bool PendingResult::valid() const { return state_ != nullptr; }

bool PendingResult::ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

const CheckResponse& PendingResult::Get() const {
  if (state_ == nullptr) {
    // A default-constructed (invalid) handle has nothing to wait on;
    // answer with a latched error instead of dereferencing null.
    static const CheckResponse* kInvalid = [] {
      auto* resp = new CheckResponse();
      resp->status = Status::Internal("Get() on an invalid PendingResult");
      return resp;
    }();
    return *kInvalid;
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->response;
}

bool PendingResult::WaitFor(std::chrono::milliseconds timeout) const {
  if (state_ == nullptr) return false;
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(lock, timeout,
                             [this] { return state_->done; });
}

void PendingResult::Cancel() const {
  if (state_ != nullptr) state_->token.Cancel();
}

// --- PendingStep ------------------------------------------------------------

struct PendingStep::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  session::StepResult result;
  /// The step's cooperative stop: owned here so Cancel works on a
  /// queued step and the token outlives the monitor advance polling it.
  engine::CancelToken token;

  void Fulfill(session::StepResult r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(r);
      done = true;
    }
    cv.notify_all();
  }
};

PendingStep::PendingStep() = default;
PendingStep::~PendingStep() = default;
PendingStep::PendingStep(const PendingStep&) = default;
PendingStep& PendingStep::operator=(const PendingStep&) = default;
PendingStep::PendingStep(PendingStep&&) noexcept = default;
PendingStep& PendingStep::operator=(PendingStep&&) noexcept = default;
PendingStep::PendingStep(std::shared_ptr<State> state)
    : state_(std::move(state)) {}

bool PendingStep::valid() const { return state_ != nullptr; }

bool PendingStep::ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

const session::StepResult& PendingStep::Get() const {
  if (state_ == nullptr) {
    static const session::StepResult* kInvalid = [] {
      auto* r = new session::StepResult();
      r->status = Status::Internal("Get() on an invalid PendingStep");
      return r;
    }();
    return *kInvalid;
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->result;
}

bool PendingStep::WaitFor(std::chrono::milliseconds timeout) const {
  if (state_ == nullptr) return false;
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(lock, timeout, [this] { return state_->done; });
}

void PendingStep::Cancel() const {
  if (state_ != nullptr) state_->token.Cancel();
}

// --- AnalysisService --------------------------------------------------------

namespace {

analysis::DecideOptions ToDecideOptions(const PrepareOptions& o) {
  analysis::DecideOptions d;
  d.grounded = o.grounded;
  d.use_datalog_pipeline = o.use_datalog_pipeline;
  d.shrink_witness = o.shrink_witness;
  d.zero = o.zero;
  d.bounded = o.bounded;
  d.decompose = o.decompose;
  return d;
}

/// Tier 0: byte-identical replay from the LRU result cache. Serves
/// only exact canonical-key matches; admits every transferable
/// response resolved below it — including semantic transfers, so a
/// repeat of a semantically served request becomes a plain replay.
class SyntacticCacheResolver : public AnswerResolver {
 public:
  explicit SyntacticCacheResolver(LruCache<CheckResponse>* cache)
      : cache_(cache) {}

  const char* name() const override { return "syntactic-cache"; }

  bool Resolve(const PreparedQuery& query, const ResolveContext& ctx,
               CheckResponse* out) override {
    if (!ctx.request->use_cache) return false;
    const ServiceMetrics& metrics = ServiceMetrics::Get();
    if (cache_->Lookup(query.cache_key(), out)) {
      out->cache_hit = true;
      out->source = AnswerSource::kSyntacticCache;
      out->provenance = "syntactic-cache";
      metrics.cache_hits->Inc();
      return true;
    }
    metrics.cache_misses->Inc();
    return false;
  }

  void Admit(const PreparedQuery& query, const ResolveContext& ctx,
             const CheckResponse& response) override {
    // Only completed, budget-clean responses are cacheable: a
    // deadline/cancel cut is a property of one request's execution, and
    // a budget-exhausted answer is the one case the engines'
    // determinism guarantee scopes out (a binding max_nodes is spent on
    // different node orders per traversal discipline, so another worker
    // count might legitimately answer differently).
    if (!ctx.request->use_cache || !TransferableResponse(response)) return;
    CheckResponse cached = response;
    cached.cache_hit = false;
    size_t evicted = cache_->Insert(query.cache_key(), std::move(cached));
    if (evicted > 0) ServiceMetrics::Get().cache_evictions->Inc(evicted);
  }

 private:
  LruCache<CheckResponse>* cache_;
};

}  // namespace

/// The terminal tier: a full engine search. At namespace scope (not
/// anonymous) so the friend declaration in AnalysisService matches;
/// the body defers to AnalysisService::RunEngine, which reaches the
/// prepared state through the existing PreparedQuery friendship.
class EngineResolver : public AnswerResolver {
 public:
  explicit EngineResolver(AnalysisService* service) : service_(service) {}

  const char* name() const override { return "engine"; }

  bool Resolve(const PreparedQuery& query, const ResolveContext& ctx,
               CheckResponse* out) override {
    *out = service_->RunEngine(query, *ctx.request, ctx.token);
    return true;
  }

 private:
  AnalysisService* service_;
};

AnalysisService::AnalysisService(ServiceOptions options)
    : options_(options),
      cache_(options.cache_capacity),
      sessions_(options.session) {
  if (options_.semantic_cache_capacity > 0) {
    semantic_cache_ =
        std::make_unique<SemanticCache>(options_.semantic_cache_capacity);
  }
  pipeline_.AddTier(std::make_unique<SyntacticCacheResolver>(&cache_));
  if (semantic_cache_ != nullptr) {
    pipeline_.AddTier(
        std::make_unique<SemanticCacheResolver>(semantic_cache_.get()));
  }
  pipeline_.AddTier(std::make_unique<EngineResolver>(this));
  size_t dispatchers = std::max<size_t>(1, options_.num_dispatchers);
  dispatchers_.reserve(dispatchers);
  for (size_t i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
}

AnalysisService::~AnalysisService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
    // Queued requests resolve promptly as kCancelled without
    // searching; in-flight ones abort at their next node expansion and
    // resolve as kCancelled too — the join below is bounded by one
    // cancellation latency, not by the remaining search time.
    for (Job& job : queue_) JobToken(job)->Cancel();
    for (const InFlight& inf : in_flight_) inf.token->Cancel();
  }
  queue_cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
}

Result<std::shared_ptr<const PreparedQuery>> AnalysisService::Prepare(
    const schema::Schema& schema, const acc::AccPtr& formula,
    const PrepareOptions& options) {
  obs::Span span("prepare");
  std::shared_ptr<PreparedQuery> prepared(new PreparedQuery());
  // Copy first, then prepare against the copy: the compiled automaton
  // and the engine's plan cache reference the schema by address, which
  // must stay stable for the PreparedQuery's lifetime.
  prepared->schema_ = std::make_unique<const schema::Schema>(schema);
  Result<analysis::PreparedFormula> pf =
      analysis::PrepareSatisfiability(formula, *prepared->schema_);
  if (!pf.ok()) return pf.status();
  prepared->prepared_ = std::move(pf.value());
  prepared->options_ = options;
  prepared->decide_options_ = ToDecideOptions(options);
  prepared->canonical_key_ =
      MakeCanonicalRequestKey(*prepared->schema_, formula, options);
  prepared->cache_key_ = prepared->canonical_key_.Joined();
  prepared->semantic_key_ =
      MakeSemanticKey(*prepared->schema_, formula, options);
  return std::shared_ptr<const PreparedQuery>(std::move(prepared));
}

Result<std::shared_ptr<const PreparedQuery>> AnalysisService::Prepare(
    const schema::Schema& schema, const std::string& formula_text,
    const PrepareOptions& options) {
  Result<acc::AccPtr> formula = acc::ParseAccFormula(formula_text, schema);
  if (!formula.ok()) return formula.status();
  return Prepare(schema, formula.value(), options);
}

CheckResponse AnalysisService::Check(const PreparedQuery& prepared,
                                     const CheckRequest& request) {
  engine::CancelToken token;
  return Execute(prepared, request, &token);
}

PendingResult AnalysisService::Submit(
    std::shared_ptr<const PreparedQuery> prepared, CheckRequest request) {
  auto state = std::make_shared<PendingResult::State>();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      // Post-shutdown submissions resolve immediately as cancelled
      // rather than hanging a Get() forever.
      state->token.Cancel();
      CheckResponse resp;
      resp.verdict = Verdict::kCancelled;
      state->Fulfill(std::move(resp));
      return PendingResult(state);
    }
    Job job;
    job.prepared = std::move(prepared);
    job.request = request;
    job.state = state;
    job.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(job));
    ServiceMetrics::Get().queue_depth->Add(1);
  }
  queue_cv_.notify_one();
  return PendingResult(std::move(state));
}

engine::CancelToken* AnalysisService::JobToken(const Job& job) {
  return job.step_state != nullptr ? &job.step_state->token
                                   : &job.state->token;
}

void AnalysisService::DispatcherLoop() {
  obs::SetThreadLane("dispatcher");
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      metrics.queue_depth->Add(-1);
      in_flight_.push_back(InFlight{
          job.step_state != nullptr
              ? std::static_pointer_cast<void>(job.step_state)
              : std::static_pointer_cast<void>(job.state),
          JobToken(job)});
    }
    if (obs::MetricsEnabled()) {
      metrics.queue_wait_us->Record(static_cast<uint64_t>(
          std::max<int64_t>(
              0, std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - job.enqueued)
                     .count())));
    }
    if (job.step_state != nullptr) {
      if (job.step_state->token.fired()) {
        // Cancelled while queued: the session is untouched; report its
        // current (still-correct) verdict alongside the cancel.
        session::StepResult r;
        r.status = Status::ResourceExhausted("step cancelled");
        r.deadline_exceeded = true;
        Result<session::SessionInfo> info =
            sessions_.Describe(job.session_id);
        if (info.ok()) {
          r.verdict = info.value().verdict;
          r.is_final = monitor::IsFinal(r.verdict);
          r.currently_holds = info.value().currently_holds;
          r.steps = info.value().steps;
        }
        job.step_state->Fulfill(std::move(r));
      } else {
        job.step_state->Fulfill(ExecuteStep(job.session_id, job.step,
                                            &job.step_state->token));
      }
    } else if (job.state->token.fired()) {
      // Cancelled while queued: answer without searching.
      CheckResponse resp;
      resp.verdict = Verdict::kCancelled;
      job.state->Fulfill(std::move(resp));
    } else {
      job.state->Fulfill(
          Execute(*job.prepared, job.request, &job.state->token));
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      engine::CancelToken* token = JobToken(job);
      for (size_t i = 0; i < in_flight_.size(); ++i) {
        if (in_flight_[i].token == token) {
          in_flight_[i] = in_flight_.back();
          in_flight_.pop_back();
          break;
        }
      }
    }
  }
}

CheckResponse AnalysisService::Execute(const PreparedQuery& prepared,
                                       const CheckRequest& request,
                                       engine::CancelToken* token) {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  obs::Span request_span("request");
  auto start = std::chrono::steady_clock::now();
  auto stamp = [&](CheckResponse* resp) {
    resp->elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    // Telemetry derived from timestamps the response carries anyway;
    // all increments are relaxed write-only atomics.
    metrics.requests->Inc();
    metrics.latency_us->Record(static_cast<uint64_t>(resp->elapsed.count()));
    if (!resp->status.ok()) metrics.errors->Inc();
    switch (resp->verdict) {
      case Verdict::kDeadlineExceeded:
        metrics.deadline_exceeded->Inc();
        metrics.deadline_overshoot_us->Record(static_cast<uint64_t>(
            std::max<int64_t>(0, resp->elapsed.count() -
                                     std::chrono::duration_cast<
                                         std::chrono::microseconds>(
                                         request.deadline)
                                         .count())));
        break;
      case Verdict::kCancelled:
        metrics.cancelled->Inc();
        break;
      case Verdict::kCompleted:
        break;
    }
  };

  ResolveContext ctx;
  ctx.request = &request;
  ctx.token = token;
  CheckResponse resp = pipeline_.Answer(prepared, ctx);
  stamp(&resp);
  return resp;
}

CheckResponse AnalysisService::RunEngine(const PreparedQuery& prepared,
                                         const CheckRequest& request,
                                         engine::CancelToken* token) {
  CheckResponse resp;
  resp.source = AnswerSource::kEngine;
  resp.provenance = "engine";

  if (request.deadline.count() > 0 && token != nullptr) {
    token->ArmDeadlineAfter(request.deadline);
  }

  analysis::DecideOptions opts = prepared.decide_options_;
  opts.exec.num_threads =
      request.num_threads > 0 ? request.num_threads : options_.num_threads;
  opts.exec.cancel = token;
  opts.exec.visited_mode = request.visited_mode;
  opts.exec.max_visited_bytes = request.max_visited_bytes;

  Result<analysis::Decision> d =
      analysis::DecidePrepared(prepared.prepared_, prepared.schema(), opts);
  if (!d.ok()) {
    resp.status = d.status();
    return resp;
  }
  resp.decision = d.value();
  if (resp.decision.cancelled && token != nullptr) {
    resp.verdict = token->cause() == engine::CancelToken::Cause::kDeadline
                       ? Verdict::kDeadlineExceeded
                       : Verdict::kCancelled;
  }
  return resp;
}

// --- Streaming sessions -----------------------------------------------------

Result<session::SessionId> AnalysisService::OpenSession(
    std::shared_ptr<const PreparedQuery> prepared, schema::Instance initial) {
  if (prepared == nullptr) {
    return Status::InvalidArgument("OpenSession on a null prepared query");
  }
  const PreparedQuery& q = *prepared;
  // The owner handle pins the prepared query — and with it the schema
  // the monitor references by address — for the session's lifetime.
  return sessions_.Open(q.prepared_, q.schema(), std::move(initial),
                        std::shared_ptr<const void>(std::move(prepared)));
}

Result<session::SessionId> AnalysisService::OpenSession(
    std::shared_ptr<const PreparedQuery> prepared) {
  if (prepared == nullptr) {
    return Status::InvalidArgument("OpenSession on a null prepared query");
  }
  schema::Instance initial(prepared->schema());
  return OpenSession(std::move(prepared), std::move(initial));
}

session::StepResult AnalysisService::ExecuteStep(
    session::SessionId id, const StepRequest& request,
    engine::CancelToken* token) {
  if (request.deadline.count() > 0 && token != nullptr) {
    token->ArmDeadlineAfter(request.deadline);
  }
  Result<session::StepResult> r =
      sessions_.Step(id, request.access, request.response, token);
  if (!r.ok()) {
    session::StepResult out;
    out.status = r.status();
    return out;
  }
  return r.value();
}

session::StepResult AnalysisService::StepSession(session::SessionId id,
                                                 const StepRequest& request) {
  engine::CancelToken token;
  return ExecuteStep(id, request, &token);
}

PendingStep AnalysisService::SubmitStep(session::SessionId id,
                                        StepRequest request) {
  auto state = std::make_shared<PendingStep::State>();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      // Post-shutdown steps resolve immediately rather than hanging a
      // Get() forever; the session was untouched.
      state->token.Cancel();
      session::StepResult r;
      r.status = Status::ResourceExhausted("service shutting down");
      r.deadline_exceeded = true;
      state->Fulfill(std::move(r));
      return PendingStep(state);
    }
    Job job;
    job.session_id = id;
    job.step = std::move(request);
    job.step_state = state;
    job.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(job));
    ServiceMetrics::Get().queue_depth->Add(1);
  }
  queue_cv_.notify_one();
  return PendingStep(std::move(state));
}

Result<session::SessionInfo> AnalysisService::CloseSession(
    session::SessionId id) {
  return sessions_.Close(id);
}

Result<session::SessionInfo> AnalysisService::DescribeSession(
    session::SessionId id) const {
  return sessions_.Describe(id);
}

size_t AnalysisService::ExpireIdleSessions() { return sessions_.ExpireIdle(); }

size_t AnalysisService::live_sessions() const {
  return sessions_.live_sessions();
}

}  // namespace service
}  // namespace accltl
