#include "src/service/analysis_service.h"

#include <algorithm>
#include <utility>

#include "src/accltl/parser.h"
#include "src/schema/text_format.h"

namespace accltl {
namespace service {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kCompleted:
      return "completed";
    case Verdict::kDeadlineExceeded:
      return "deadline-exceeded";
    case Verdict::kCancelled:
      return "cancelled";
  }
  return "?";
}

// --- PendingResult ----------------------------------------------------------

struct PendingResult::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  CheckResponse response;
  /// The request's cooperative stop: owned here so Cancel works on a
  /// queued request (before any engine sees the token) and the token
  /// outlives the search that polls it.
  engine::CancelToken token;

  void Fulfill(CheckResponse resp) {
    {
      std::lock_guard<std::mutex> lock(mu);
      response = std::move(resp);
      done = true;
    }
    cv.notify_all();
  }
};

PendingResult::PendingResult() = default;
PendingResult::~PendingResult() = default;
PendingResult::PendingResult(const PendingResult&) = default;
PendingResult& PendingResult::operator=(const PendingResult&) = default;
PendingResult::PendingResult(PendingResult&&) noexcept = default;
PendingResult& PendingResult::operator=(PendingResult&&) noexcept = default;
PendingResult::PendingResult(std::shared_ptr<State> state)
    : state_(std::move(state)) {}

bool PendingResult::valid() const { return state_ != nullptr; }

bool PendingResult::ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

const CheckResponse& PendingResult::Get() const {
  if (state_ == nullptr) {
    // A default-constructed (invalid) handle has nothing to wait on;
    // answer with a latched error instead of dereferencing null.
    static const CheckResponse* kInvalid = [] {
      auto* resp = new CheckResponse();
      resp->status = Status::Internal("Get() on an invalid PendingResult");
      return resp;
    }();
    return *kInvalid;
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->response;
}

bool PendingResult::WaitFor(std::chrono::milliseconds timeout) const {
  if (state_ == nullptr) return false;
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(lock, timeout,
                             [this] { return state_->done; });
}

void PendingResult::Cancel() const {
  if (state_ != nullptr) state_->token.Cancel();
}

// --- AnalysisService --------------------------------------------------------

namespace {

/// Appends one options field to the canonical key. Field order is
/// fixed; every semantic knob must appear here (a missed knob would
/// alias two requests with different answers onto one cache line).
void KeyField(std::string* key, const char* name, uint64_t value) {
  key->append(name);
  key->push_back('=');
  key->append(std::to_string(value));
  key->push_back(';');
}

std::string CanonicalOptionsKey(const PrepareOptions& o) {
  std::string key;
  KeyField(&key, "grounded", o.grounded ? 1 : 0);
  KeyField(&key, "datalog", o.use_datalog_pipeline ? 1 : 0);
  KeyField(&key, "shrink", o.shrink_witness ? 1 : 0);
  KeyField(&key, "z.grounded", o.zero.grounded ? 1 : 0);
  KeyField(&key, "z.idem", o.zero.require_idempotent ? 1 : 0);
  KeyField(&key, "z.max_nodes", o.zero.max_nodes);
  KeyField(&key, "z.max_facts", o.zero.max_facts_per_step);
  KeyField(&key, "z.max_len", o.zero.max_path_length);
  KeyField(&key, "z.max_subsets", o.zero.max_subsets_per_access);
  KeyField(&key, "b.max_len", o.bounded.max_path_length);
  KeyField(&key, "b.grounded", o.bounded.grounded ? 1 : 0);
  KeyField(&key, "b.idem", o.bounded.require_idempotent ? 1 : 0);
  KeyField(&key, "b.exact", o.bounded.require_exact ? 1 : 0);
  KeyField(&key, "b.max_nodes", o.bounded.max_nodes);
  KeyField(&key, "b.max_real", o.bounded.max_realizations_per_step);
  KeyField(&key, "b.dedup", o.bounded.use_visited_dedup ? 1 : 0);
  KeyField(&key, "d.max_variants", o.decompose.max_variants);
  KeyField(&key, "d.max_phi", o.decompose.max_phi);
  KeyField(&key, "d.max_stages", o.decompose.max_stages);
  return key;
}

analysis::DecideOptions ToDecideOptions(const PrepareOptions& o) {
  analysis::DecideOptions d;
  d.grounded = o.grounded;
  d.use_datalog_pipeline = o.use_datalog_pipeline;
  d.shrink_witness = o.shrink_witness;
  d.zero = o.zero;
  d.bounded = o.bounded;
  d.decompose = o.decompose;
  return d;
}

}  // namespace

AnalysisService::AnalysisService(ServiceOptions options)
    : options_(options), cache_(options.cache_capacity) {
  size_t dispatchers = std::max<size_t>(1, options_.num_dispatchers);
  dispatchers_.reserve(dispatchers);
  for (size_t i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
}

AnalysisService::~AnalysisService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
    // Queued requests resolve promptly as kCancelled without
    // searching; in-flight ones abort at their next node expansion and
    // resolve as kCancelled too — the join below is bounded by one
    // cancellation latency, not by the remaining search time.
    for (Job& job : queue_) job.state->token.Cancel();
    for (const auto& state : in_flight_) state->token.Cancel();
  }
  queue_cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
}

Result<std::shared_ptr<const PreparedQuery>> AnalysisService::Prepare(
    const schema::Schema& schema, const acc::AccPtr& formula,
    const PrepareOptions& options) {
  std::shared_ptr<PreparedQuery> prepared(new PreparedQuery());
  // Copy first, then prepare against the copy: the compiled automaton
  // and the engine's plan cache reference the schema by address, which
  // must stay stable for the PreparedQuery's lifetime.
  prepared->schema_ = std::make_unique<const schema::Schema>(schema);
  Result<analysis::PreparedFormula> pf =
      analysis::PrepareSatisfiability(formula, *prepared->schema_);
  if (!pf.ok()) return pf.status();
  prepared->prepared_ = std::move(pf.value());
  prepared->options_ = options;
  prepared->decide_options_ = ToDecideOptions(options);
  prepared->cache_key_ = schema::SerializeSchema(*prepared->schema_);
  prepared->cache_key_.push_back('\n');
  prepared->cache_key_ += formula->ToString(*prepared->schema_);
  prepared->cache_key_.push_back('\n');
  prepared->cache_key_ += CanonicalOptionsKey(options);
  return std::shared_ptr<const PreparedQuery>(std::move(prepared));
}

Result<std::shared_ptr<const PreparedQuery>> AnalysisService::Prepare(
    const schema::Schema& schema, const std::string& formula_text,
    const PrepareOptions& options) {
  Result<acc::AccPtr> formula = acc::ParseAccFormula(formula_text, schema);
  if (!formula.ok()) return formula.status();
  return Prepare(schema, formula.value(), options);
}

CheckResponse AnalysisService::Check(const PreparedQuery& prepared,
                                     const CheckRequest& request) {
  engine::CancelToken token;
  return Execute(prepared, request, &token);
}

PendingResult AnalysisService::Submit(
    std::shared_ptr<const PreparedQuery> prepared, CheckRequest request) {
  auto state = std::make_shared<PendingResult::State>();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      // Post-shutdown submissions resolve immediately as cancelled
      // rather than hanging a Get() forever.
      state->token.Cancel();
      CheckResponse resp;
      resp.verdict = Verdict::kCancelled;
      state->Fulfill(std::move(resp));
      return PendingResult(state);
    }
    queue_.push_back(Job{std::move(prepared), request, state});
  }
  queue_cv_.notify_one();
  return PendingResult(std::move(state));
}

void AnalysisService::DispatcherLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      in_flight_.push_back(job.state);
    }
    if (job.state->token.fired()) {
      // Cancelled while queued: answer without searching.
      CheckResponse resp;
      resp.verdict = Verdict::kCancelled;
      job.state->Fulfill(std::move(resp));
    } else {
      job.state->Fulfill(
          Execute(*job.prepared, job.request, &job.state->token));
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      for (size_t i = 0; i < in_flight_.size(); ++i) {
        if (in_flight_[i] == job.state) {
          in_flight_[i] = in_flight_.back();
          in_flight_.pop_back();
          break;
        }
      }
    }
  }
}

CheckResponse AnalysisService::Execute(const PreparedQuery& prepared,
                                       const CheckRequest& request,
                                       engine::CancelToken* token) {
  auto start = std::chrono::steady_clock::now();
  auto stamp = [&start](CheckResponse* resp) {
    resp->elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
  };

  CheckResponse resp;
  if (request.use_cache && cache_.Lookup(prepared.cache_key(), &resp)) {
    resp.cache_hit = true;
    stamp(&resp);
    return resp;
  }

  if (request.deadline.count() > 0 && token != nullptr) {
    token->ArmDeadlineAfter(request.deadline);
  }

  analysis::DecideOptions opts = prepared.decide_options_;
  opts.exec.num_threads =
      request.num_threads > 0 ? request.num_threads : options_.num_threads;
  opts.exec.cancel = token;
  opts.exec.visited_mode = request.visited_mode;
  opts.exec.max_visited_bytes = request.max_visited_bytes;

  Result<analysis::Decision> d =
      analysis::DecidePrepared(prepared.prepared_, prepared.schema(), opts);
  if (!d.ok()) {
    resp.status = d.status();
    stamp(&resp);
    return resp;
  }
  resp.decision = d.value();
  if (resp.decision.cancelled && token != nullptr) {
    resp.verdict = token->cause() == engine::CancelToken::Cause::kDeadline
                       ? Verdict::kDeadlineExceeded
                       : Verdict::kCancelled;
  }
  stamp(&resp);
  // Only completed, budget-clean responses are cacheable: a
  // deadline/cancel cut is a property of this request's execution, and
  // a budget-exhausted answer is the one case the engines' determinism
  // guarantee scopes out (a binding max_nodes is spent on different
  // node orders per traversal discipline, so another worker count
  // might legitimately answer differently).
  if (request.use_cache && resp.verdict == Verdict::kCompleted &&
      !resp.decision.exhausted_budget) {
    CheckResponse cached = resp;
    cached.cache_hit = false;
    cache_.Insert(prepared.cache_key(), std::move(cached));
  }
  return resp;
}

}  // namespace service
}  // namespace accltl
