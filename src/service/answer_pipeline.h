#ifndef ACCLTL_SERVICE_ANSWER_PIPELINE_H_
#define ACCLTL_SERVICE_ANSWER_PIPELINE_H_

#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/decide.h"
#include "src/common/status.h"
#include "src/engine/cancel.h"

namespace accltl {
namespace service {

class PreparedQuery;

/// Why a submission finished.
enum class Verdict {
  /// The engines ran to their natural end (including budget cuts —
  /// those are reported through Decision::exhausted_budget).
  kCompleted,
  /// The request's deadline fired mid-search. The Decision is kUnknown
  /// unless a sound witness was already in hand — never a wrong
  /// definitive answer.
  kDeadlineExceeded,
  /// PendingResult::Cancel (or service shutdown) stopped the request.
  kCancelled,
};

const char* VerdictName(Verdict v);

/// Which tier of the answer pipeline produced a response's verdict.
enum class AnswerSource {
  /// A full engine search ran for this request.
  kEngine = 0,
  /// Byte-identical replay from the syntactic result cache.
  kSyntacticCache,
  /// Verdict transferred from a semantically related cached entry
  /// (renaming / equivalence / containment; see semantic_cache.h).
  kSemanticCache,
};

const char* AnswerSourceName(AnswerSource s);

/// Per-submission knobs. Semantic options live in the PreparedQuery;
/// a request only chooses execution context.
struct CheckRequest {
  /// Wall-clock budget; <= 0 means none. Enforced cooperatively at
  /// node-expansion granularity by the three search engines. The two
  /// non-search stages — the Datalog certification pipeline and
  /// witness shrinking — are not cancellable: the token is polled at
  /// their boundaries (a fired token skips the pipeline), but once
  /// started they run to completion, so with
  /// `use_datalog_pipeline`/`shrink_witness` a response can outlast
  /// the deadline by one pipeline run.
  std::chrono::milliseconds deadline{0};
  /// Serve/populate the service's caches (both tiers) for this
  /// request.
  bool use_cache = true;
  /// Search workers; 0 uses ServiceOptions::num_threads. Never part of
  /// the cache key: results are deterministic in the worker count.
  size_t num_threads = 0;
  /// Visited-set storage for this request's searches (exact records
  /// vs. tree-compressed indices, engine/cancel.h). Never part of the
  /// cache key: the mode changes no verdict, witness, or node count —
  /// only memory footprint. A cache hit's Decision memory statistics
  /// therefore describe the execution that populated the cache, which
  /// may have used the other mode.
  engine::VisitedMode visited_mode = engine::VisitedMode::kExact;
  /// Byte budget over the visited set (0 = unlimited; see
  /// ExecOptions::max_visited_bytes). A binding budget reports
  /// exhausted_budget, and such responses are never cached — the same
  /// exclusion as a binding max_nodes.
  size_t max_visited_bytes = 0;
};

struct CheckResponse {
  /// Non-OK when the underlying decision procedure failed (unsupported
  /// fragment setup errors etc.); `decision` is then default-initialized.
  Status status;
  analysis::Decision decision;
  Verdict verdict = Verdict::kCompleted;
  /// True when this response was served from the syntactic result
  /// cache (the decision is byte-identical to the response cached at
  /// insert). Equivalent to source == kSyntacticCache; kept for
  /// callers of the pre-pipeline API.
  bool cache_hit = false;
  /// Which tier answered. Semantic-tier responses carry the donor
  /// execution's Decision statistics (nodes, visited bytes), not a
  /// fresh search's.
  AnswerSource source = AnswerSource::kEngine;
  /// Human-readable provenance of the verdict: "engine",
  /// "syntactic-cache", or "semantic-cache rule=<renamed|equivalent|
  /// containment>".
  std::string provenance;
  /// Wall-clock from submission pickup to completion (cache hits
  /// report their lookup time).
  std::chrono::microseconds elapsed{0};
};

/// True when a response is safe to replay for an identical request and
/// safe to use as a semantic-transfer donor: completed (not
/// deadline-cut, not cancelled) and budget-clean. A budget-exhausted
/// answer is the one case the engines' determinism guarantee scopes
/// out, and a deadline/cancel cut is a property of one execution —
/// neither is ever cached or transferred.
bool TransferableResponse(const CheckResponse& response);

/// What a resolver gets to see besides the query: the request's
/// execution knobs and its cooperative cancel token.
struct ResolveContext {
  const CheckRequest* request = nullptr;
  engine::CancelToken* token = nullptr;
};

/// One tier of the answer pipeline. Tiers are consulted cheapest
/// first; a tier either resolves the request (fills `*out`, returns
/// true) or falls through. After a lower tier resolves, every tier
/// above it is offered the response via Admit so caches populate on
/// the way back up.
class AnswerResolver {
 public:
  virtual ~AnswerResolver() = default;
  /// Stable tier name for provenance and diagnostics.
  virtual const char* name() const = 0;
  /// Attempts to answer. Must fill `*out` completely when returning
  /// true; must leave caches consistent when returning false.
  virtual bool Resolve(const PreparedQuery& query, const ResolveContext& ctx,
                       CheckResponse* out) = 0;
  /// Offers a response resolved by a lower tier (cache population).
  /// Default: ignore.
  virtual void Admit(const PreparedQuery& query, const ResolveContext& ctx,
                     const CheckResponse& response);
};

/// The staged request path: an ordered chain of resolvers (syntactic
/// cache → semantic containment cache → full engine search). The last
/// tier must always resolve; Answer returns an internal-error response
/// if none does (a wiring bug, not a runtime condition).
class AnswerPipeline {
 public:
  void AddTier(std::unique_ptr<AnswerResolver> tier);
  size_t num_tiers() const { return tiers_.size(); }
  const AnswerResolver& tier(size_t i) const { return *tiers_[i]; }

  CheckResponse Answer(const PreparedQuery& query, const ResolveContext& ctx);

 private:
  std::vector<std::unique_ptr<AnswerResolver>> tiers_;
};

}  // namespace service
}  // namespace accltl

#endif  // ACCLTL_SERVICE_ANSWER_PIPELINE_H_
