#ifndef ACCLTL_SERVICE_RESULT_CACHE_H_
#define ACCLTL_SERVICE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace accltl {
namespace service {

/// Bounded, thread-safe LRU map from canonical request keys to cached
/// values. Strict LRU: a hit refreshes the entry; an insert past
/// capacity evicts the least-recently-used entry. Keys are full
/// canonical strings (schema text + formula text + options), not
/// hashes — a cache hit is an exact match, never a collision.
///
/// Capacity 0 disables the cache (lookups miss, inserts drop), so
/// callers need no separate "cache on?" branching.
template <typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Copies the cached value into `*out` and refreshes its recency.
  bool Lookup(const std::string& key, Value* out) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    *out = it->second->second;
    return true;
  }

  /// Returns the number of entries evicted by this insert (0 or 1), so
  /// callers can account evictions without re-reading the counter (a
  /// read-back would race concurrent inserters).
  size_t Insert(const std::string& key, Value value) {
    if (capacity_ == 0) return 0;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->second = std::move(value);
      return 0;
    }
    lru_.emplace_front(key, std::move(value));
    index_.emplace(key, lru_.begin());
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
      return 1;
    }
    return 0;
  }

  /// One-lock snapshot of all counters. The individual accessors below
  /// each take the lock separately, so a sequence of them can observe
  /// different points in time under concurrent traffic (e.g. hits+misses
  /// drifting past the request count); anything reporting several
  /// counters together — MetricsSnapshot, CLI summaries — must read
  /// this instead.
  struct Stats {
    size_t size = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return Stats{lru_.size(), hits_, misses_, evictions_};
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }

  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

 private:
  mutable std::mutex mu_;
  /// Front = most recently used.
  std::list<std::pair<std::string, Value>> lru_;
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, Value>>::
                         iterator>
      index_;
  size_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace service
}  // namespace accltl

#endif  // ACCLTL_SERVICE_RESULT_CACHE_H_
