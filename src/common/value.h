#ifndef ACCLTL_COMMON_VALUE_H_
#define ACCLTL_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

namespace accltl {

/// Data types supported at relation positions (§2: "Let Types be some
/// fixed set of datatypes, including at least the integers and
/// booleans"). We additionally support strings, which the paper's
/// running example (names, streets, postcodes) uses throughout.
enum class ValueType {
  kInt = 0,
  kBool = 1,
  kString = 2,
};

/// Returns a human-readable name ("int", "bool", "string").
const char* ValueTypeName(ValueType t);

/// A single data value: a tagged union of int64 / bool / string with
/// total ordering and hashing, suitable for use in tuples, bindings and
/// homomorphism tables.
///
/// Values are small and cheap to copy for ints/bools; string payloads
/// use std::string (the library's workloads are logic-bound, not
/// scan-bound, so interning is not worth the API friction).
class Value {
 public:
  /// Default-constructs the integer 0.
  Value() : rep_(int64_t{0}) {}

  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Str(std::string v) { return Value(Rep(std::move(v))); }

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }

  bool is_int() const { return type() == ValueType::kInt; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_string() const { return type() == ValueType::kString; }

  /// Requires is_int().
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  /// Requires is_bool().
  bool AsBool() const { return std::get<bool>(rep_); }
  /// Requires is_string().
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Renders the value for diagnostics, e.g. `42`, `true`, `"Jones"`.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }
  /// Total order: by type tag first, then payload. Used to keep
  /// instances in deterministic (sorted) order.
  friend bool operator<(const Value& a, const Value& b) {
    return a.rep_ < b.rep_;
  }

  size_t Hash() const;

 private:
  using Rep = std::variant<int64_t, bool, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

/// A tuple of values (one per relation position, "unnamed perspective").
using Tuple = std::vector<Value>;

/// Renders e.g. `("Jones", 42)`.
std::string TupleToString(const Tuple& t);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

struct TupleHash {
  size_t operator()(const Tuple& t) const;
};

/// Combines a hash into a seed (boost::hash_combine recipe).
inline void HashCombine(size_t* seed, size_t h) {
  *seed ^= h + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

}  // namespace accltl

#endif  // ACCLTL_COMMON_VALUE_H_
