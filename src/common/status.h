#ifndef ACCLTL_COMMON_STATUS_H_
#define ACCLTL_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace accltl {

/// Error codes used across the library. Follows the RocksDB/Arrow idiom:
/// library entry points that can fail return a Status (or Result<T>),
/// never throw.
enum class StatusCode {
  kOk = 0,
  /// Input violates a documented precondition (bad arity, unknown
  /// relation, free variable in a sentence, ...).
  kInvalidArgument,
  /// A lookup failed (unknown relation / access-method / predicate name).
  kNotFound,
  /// A resource bound was exhausted (path length, instance size,
  /// tableau states); the answer is "unknown", not "no".
  kResourceExhausted,
  /// The requested operation is outside the decidable fragment the
  /// callee implements (e.g. full AccLTL(FO∃+Acc) satisfiability).
  kUnsupported,
  /// Internal invariant violation; indicates a library bug.
  kInternal,
};

/// Lightweight status object: code + human-readable message.
///
/// Example:
///   Status s = schema.AddRelation(...);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: arity mismatch for R".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status.
///
/// Example:
///   Result<Schema> r = Schema::Parse(text);
///   if (!r.ok()) return r.status();
///   const Schema& s = r.value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression, RocksDB style.
#define ACCLTL_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::accltl::Status _accltl_status = (expr);       \
    if (!_accltl_status.ok()) return _accltl_status; \
  } while (0)

}  // namespace accltl

#endif  // ACCLTL_COMMON_STATUS_H_
