#include "src/common/value.h"

namespace accltl {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt:
      return "int";
    case ValueType::kBool:
      return "bool";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kString:
      return "\"" + AsString() + "\"";
  }
  return "?";
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(rep_.index());
  switch (type()) {
    case ValueType::kInt:
      HashCombine(&seed, std::hash<int64_t>()(AsInt()));
      break;
    case ValueType::kBool:
      HashCombine(&seed, std::hash<bool>()(AsBool()));
      break;
    case ValueType::kString:
      HashCombine(&seed, std::hash<std::string>()(AsString()));
      break;
  }
  return seed;
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

size_t TupleHash::operator()(const Tuple& t) const {
  size_t seed = t.size();
  for (const Value& v : t) HashCombine(&seed, v.Hash());
  return seed;
}

}  // namespace accltl
