#ifndef ACCLTL_COMMON_STRINGS_H_
#define ACCLTL_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace accltl {

/// Joins `parts` with `sep`, e.g. Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace accltl

#endif  // ACCLTL_COMMON_STRINGS_H_
