#ifndef ACCLTL_COMMON_RNG_H_
#define ACCLTL_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace accltl {

/// Deterministic pseudo-random generator (SplitMix64) used by workload
/// generators and property tests, so every test/bench run is exactly
/// reproducible across platforms (std::mt19937 distributions are not
/// guaranteed identical across standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Uniform(den) < num; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace accltl

#endif  // ACCLTL_COMMON_RNG_H_
