#ifndef ACCLTL_COMMON_RNG_H_
#define ACCLTL_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace accltl {

/// Deterministic pseudo-random generator (SplitMix64) used by workload
/// generators and property tests, so every test/bench run is exactly
/// reproducible across platforms (std::mt19937 distributions are not
/// guaranteed identical across standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ULL) {}

  /// Deterministic per-worker stream for parallel benchmarks and
  /// property tests: worker `w` of a run seeded with `seed` always
  /// gets the same sequence, whatever the thread schedule, and
  /// distinct workers get decorrelated streams (the worker id is
  /// finalized through the generator's own mixer, not just added, so
  /// neighbouring workers do not produce shifted copies).
  static Rng ForWorker(uint64_t seed, size_t worker_id) {
    Rng mixer(seed ^ (0xa076'1d64'78bd'642fULL *
                      (static_cast<uint64_t>(worker_id) + 1)));
    return Rng(seed ^ mixer.Next());
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Uniform(den) < num; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace accltl

#endif  // ACCLTL_COMMON_RNG_H_
