#ifndef ACCLTL_SESSION_MONITORED_SESSION_H_
#define ACCLTL_SESSION_MONITORED_SESSION_H_

#include <cstddef>
#include <optional>

#include "src/analysis/decide.h"
#include "src/common/status.h"
#include "src/engine/cancel.h"
#include "src/monitor/automaton_monitor.h"
#include "src/monitor/progression.h"
#include "src/schema/access.h"
#include "src/schema/instance.h"
#include "src/schema/schema.h"

namespace accltl {
namespace session {

/// Monitor backend driving one streaming session, picked from the
/// prepared query's Figure-2 classification: formulas the analysis
/// compiled to a Lemma 4.5 A-automaton stream through the NFA state
/// set (AutomatonMonitor); everything else streams through formula
/// progression (ProgressionMonitor), which works on any AccLTL
/// formula.
enum class Backend {
  kProgression,
  kAutomaton,
};

const char* BackendName(Backend b);

/// Outcome of one streamed access/response step. `status` non-OK means
/// the step was NOT consumed — the monitor is exactly as it was, and
/// the verdict fields describe the *unchanged* prefix, so a reported
/// verdict is never wrong (the PR-4 "unfired token changes nothing"
/// contract, extended to fired tokens: they change nothing either).
struct StepResult {
  Status status;
  /// The per-step deadline/cancel token fired before the step
  /// committed. The step may be retried (e.g. with a longer deadline).
  bool deadline_exceeded = false;
  /// RV-LTL verdict for the consumed prefix.
  monitor::Verdict verdict = monitor::Verdict::kCurrentlyFalse;
  /// monitor::IsFinal(verdict): the verdict is irrevocable — no
  /// extension of the stream can change it.
  bool is_final = false;
  /// The consumed prefix satisfies the query if the stream ends here.
  bool currently_holds = false;
  /// Steps consumed so far (unchanged when status is non-OK).
  size_t steps = 0;
};

/// One client's streaming view of a prepared query: consumes
/// access/response steps and maintains an incremental four-valued
/// verdict, never re-running a full search. Each step advances the
/// monitor's configuration on the COW instance store — cost follows
/// the step's delta (response tuples, guard matches, residual
/// rewrites), not the length of the consumed prefix.
///
/// Not internally synchronized: a session is one client's stream, so
/// callers (SessionManager) serialize steps per session.
class MonitoredSession {
 public:
  /// Picks the backend for `prepared` (see Backend).
  static Backend PickBackend(const analysis::PreparedFormula& prepared);

  /// `prepared` and `schema` must outlive the session (the service
  /// layer pins both through the owning PreparedQuery); `initial` is
  /// the session's I0.
  MonitoredSession(const analysis::PreparedFormula& prepared,
                   const schema::Schema& schema, schema::Instance initial);

  /// Consumes one step. Validates the access and response against the
  /// schema (arity, position types, response tuples agreeing with the
  /// binding on input positions) before touching the monitor;
  /// `cancel`, when non-null, bounds the step (see StepResult).
  StepResult Step(const schema::Access& access,
                  const schema::Response& response,
                  const engine::CancelToken* cancel = nullptr);

  Backend backend() const { return backend_; }
  monitor::Verdict verdict() const;
  bool CurrentlyHolds() const;
  size_t num_steps() const;
  const schema::Instance& configuration() const;

  /// Fills the verdict fields of a StepResult from the current state.
  void DescribeVerdict(StepResult* out) const;

 private:
  const schema::Schema& schema_;
  Backend backend_;
  /// Exactly one engaged, per backend_.
  std::optional<monitor::ProgressionMonitor> progression_;
  std::optional<monitor::AutomatonMonitor> automaton_;
};

}  // namespace session
}  // namespace accltl

#endif  // ACCLTL_SESSION_MONITORED_SESSION_H_
