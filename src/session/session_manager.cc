#include "src/session/session_manager.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"

namespace accltl {
namespace session {

namespace {

/// Streaming-session instruments (write-only; DESIGN.md §8/§10).
struct SessionMetrics {
  obs::Counter* opened;
  obs::Counter* closed;
  obs::Counter* expired;
  obs::Counter* rejected;
  obs::Counter* steps;
  obs::Counter* step_errors;
  obs::Counter* step_deadline_exceeded;
  obs::Counter* finalized;
  obs::Gauge* live;
  obs::Histogram* step_latency_us;
  static const SessionMetrics& Get() {
    obs::Registry& r = obs::Registry::Get();
    static const SessionMetrics m{
        r.counter("session.opened"),
        r.counter("session.closed"),
        r.counter("session.expired"),
        r.counter("session.rejected"),
        r.counter("session.steps"),
        r.counter("session.step_errors"),
        r.counter("session.step_deadline_exceeded"),
        r.counter("session.finalized"),
        r.gauge("session.live"),
        r.histogram("session.step_latency_us"),
    };
    return m;
  }
};

}  // namespace

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(options) {}

size_t SessionManager::SweepLocked(
    std::chrono::steady_clock::time_point now) {
  size_t swept = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    if (Expired(*it->second, now)) {
      it = table_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  if (swept > 0) {
    const SessionMetrics& metrics = SessionMetrics::Get();
    metrics.expired->Inc(swept);
    metrics.live->Add(-static_cast<int64_t>(swept));
  }
  return swept;
}

Result<SessionId> SessionManager::Open(
    const analysis::PreparedFormula& prepared, const schema::Schema& schema,
    schema::Instance initial, std::shared_ptr<const void> owner) {
  auto entry = std::make_shared<Entry>(prepared, schema, std::move(initial),
                                       std::move(owner));
  const SessionMetrics& metrics = SessionMetrics::Get();
  SessionId id;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    if (table_.size() >= options_.max_sessions) {
      SweepLocked(std::chrono::steady_clock::now());
    }
    if (table_.size() >= options_.max_sessions) {
      metrics.rejected->Inc();
      return Status::ResourceExhausted("session table full");
    }
    id = next_id_++;
    table_.emplace(id, std::move(entry));
  }
  metrics.opened->Inc();
  metrics.live->Add(1);
  return id;
}

Result<StepResult> SessionManager::Step(SessionId id,
                                        const schema::Access& access,
                                        const schema::Response& response,
                                        const engine::CancelToken* cancel) {
  const SessionMetrics& metrics = SessionMetrics::Get();
  auto now = std::chrono::steady_clock::now();
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    auto it = table_.find(id);
    if (it == table_.end()) {
      return Status::NotFound("unknown session id");
    }
    if (Expired(*it->second, now)) {
      table_.erase(it);
      metrics.expired->Inc();
      metrics.live->Add(-1);
      return Status::NotFound("session idle-expired");
    }
    entry = it->second;
  }
  std::lock_guard<std::mutex> step_lock(entry->mu);
  StepResult result = entry->session.Step(access, response, cancel);
  entry->last_used.store(std::chrono::steady_clock::now(),
                         std::memory_order_relaxed);
  if (result.status.ok()) {
    metrics.steps->Inc();
    if (result.is_final && !entry->finalized_counted) {
      entry->finalized_counted = true;
      metrics.finalized->Inc();
    }
  } else if (result.deadline_exceeded) {
    metrics.step_deadline_exceeded->Inc();
  } else {
    metrics.step_errors->Inc();
  }
  if (obs::MetricsEnabled()) {
    metrics.step_latency_us->Record(static_cast<uint64_t>(
        std::max<int64_t>(
            0, std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - now)
                   .count())));
  }
  return result;
}

SessionInfo SessionManager::Describe(SessionId id, const Entry& entry) {
  SessionInfo info;
  info.id = id;
  info.backend = entry.session.backend();
  info.verdict = entry.session.verdict();
  info.currently_holds = entry.session.CurrentlyHolds();
  info.steps = entry.session.num_steps();
  return info;
}

Result<SessionInfo> SessionManager::Close(SessionId id) {
  const SessionMetrics& metrics = SessionMetrics::Get();
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    auto it = table_.find(id);
    if (it == table_.end()) {
      return Status::NotFound("unknown session id");
    }
    entry = std::move(it->second);
    table_.erase(it);
  }
  metrics.closed->Inc();
  metrics.live->Add(-1);
  std::lock_guard<std::mutex> step_lock(entry->mu);
  return Describe(id, *entry);
}

Result<SessionInfo> SessionManager::Describe(SessionId id) const {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    auto it = table_.find(id);
    if (it == table_.end()) {
      return Status::NotFound("unknown session id");
    }
    entry = it->second;
  }
  std::lock_guard<std::mutex> step_lock(entry->mu);
  return Describe(id, *entry);
}

size_t SessionManager::live_sessions() const {
  std::lock_guard<std::mutex> lock(table_mu_);
  return table_.size();
}

size_t SessionManager::ExpireIdle() {
  std::lock_guard<std::mutex> lock(table_mu_);
  return SweepLocked(std::chrono::steady_clock::now());
}

}  // namespace session
}  // namespace accltl
