#include "src/session/monitored_session.h"

#include <utility>

namespace accltl {
namespace session {

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kProgression:
      return "progression";
    case Backend::kAutomaton:
      return "automaton";
  }
  return "unknown";
}

Backend MonitoredSession::PickBackend(
    const analysis::PreparedFormula& prepared) {
  return prepared.automaton != nullptr ? Backend::kAutomaton
                                       : Backend::kProgression;
}

MonitoredSession::MonitoredSession(const analysis::PreparedFormula& prepared,
                                   const schema::Schema& schema,
                                   schema::Instance initial)
    : schema_(schema), backend_(PickBackend(prepared)) {
  if (backend_ == Backend::kAutomaton) {
    automaton_.emplace(*prepared.automaton, schema, std::move(initial));
  } else {
    progression_.emplace(prepared.formula, schema, std::move(initial));
  }
}

StepResult MonitoredSession::Step(const schema::Access& access,
                                  const schema::Response& response,
                                  const engine::CancelToken* cancel) {
  StepResult result;
  // Structural validation before the monitor sees anything: a rejected
  // step consumes nothing.
  if (access.method < 0 ||
      access.method >=
          static_cast<schema::AccessMethodId>(schema_.num_access_methods())) {
    result.status = Status::InvalidArgument("unknown access method id");
    DescribeVerdict(&result);
    return result;
  }
  {
    schema::AccessPath one;
    one.Append(schema::AccessStep{access, response});
    Status valid = one.Validate(schema_);
    if (!valid.ok()) {
      result.status = valid;
      DescribeVerdict(&result);
      return result;
    }
  }
  bool committed =
      backend_ == Backend::kAutomaton
          ? automaton_->TryStep(access, response, cancel)
          : progression_->TryStep(access, response, cancel);
  if (!committed) {
    result.deadline_exceeded = true;
    result.status =
        cancel != nullptr &&
                cancel->cause() == engine::CancelToken::Cause::kDeadline
            ? Status::ResourceExhausted("per-step deadline exceeded")
            : Status::ResourceExhausted("step cancelled");
  }
  DescribeVerdict(&result);
  return result;
}

monitor::Verdict MonitoredSession::verdict() const {
  return backend_ == Backend::kAutomaton ? automaton_->verdict()
                                         : progression_->verdict();
}

bool MonitoredSession::CurrentlyHolds() const {
  return backend_ == Backend::kAutomaton ? automaton_->CurrentlyAccepted()
                                         : progression_->CurrentlyHolds();
}

size_t MonitoredSession::num_steps() const {
  return backend_ == Backend::kAutomaton ? automaton_->num_steps()
                                         : progression_->num_steps();
}

const schema::Instance& MonitoredSession::configuration() const {
  return backend_ == Backend::kAutomaton ? automaton_->configuration()
                                         : progression_->configuration();
}

void MonitoredSession::DescribeVerdict(StepResult* out) const {
  out->verdict = verdict();
  out->is_final = monitor::IsFinal(out->verdict);
  out->currently_holds = CurrentlyHolds();
  out->steps = num_steps();
}

}  // namespace session
}  // namespace accltl
