#ifndef ACCLTL_SESSION_SESSION_MANAGER_H_
#define ACCLTL_SESSION_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/common/status.h"
#include "src/engine/cancel.h"
#include "src/session/monitored_session.h"

namespace accltl {
namespace session {

using SessionId = uint64_t;

struct SessionManagerOptions {
  /// Hard bound on live sessions. Open past the bound first sweeps
  /// idle-expired sessions; if the table is still full it answers
  /// kResourceExhausted (load shedding, not queueing).
  size_t max_sessions = 1024;
  /// A session untouched for this long is expired: swept by Open when
  /// the table is full, and rejected lazily by the next Step/Close
  /// that touches it. Zero disables idle expiry.
  std::chrono::milliseconds idle_timeout = std::chrono::minutes(10);
};

/// Point-in-time description of one session (returned by Close and
/// Describe).
struct SessionInfo {
  SessionId id = 0;
  Backend backend = Backend::kProgression;
  monitor::Verdict verdict = monitor::Verdict::kCurrentlyFalse;
  bool currently_holds = false;
  size_t steps = 0;
};

/// Bounded table of live MonitoredSessions: open → step* → close (or
/// idle-expire). Thread-safe; steps on distinct sessions run
/// concurrently (per-entry mutexes), steps on one session serialize.
/// Each entry pins an opaque owner handle (the service layer's
/// PreparedQuery) so the prepared formula, compiled automaton and
/// schema outlive the session.
class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {});

  /// Opens a session over `prepared`/`schema` starting from `initial`.
  /// Both references must stay valid while `owner` is alive.
  Result<SessionId> Open(const analysis::PreparedFormula& prepared,
                         const schema::Schema& schema,
                         schema::Instance initial,
                         std::shared_ptr<const void> owner);

  /// Streams one step into the session. kNotFound for unknown, closed
  /// or idle-expired ids; otherwise the session's StepResult (whose
  /// own `status` reports per-step validation/deadline outcomes).
  Result<StepResult> Step(SessionId id, const schema::Access& access,
                          const schema::Response& response,
                          const engine::CancelToken* cancel = nullptr);

  /// Closes the session, returning its final state.
  Result<SessionInfo> Close(SessionId id);

  /// The session's current state without consuming a step.
  Result<SessionInfo> Describe(SessionId id) const;

  /// Sweeps idle-expired sessions now; returns how many were expired.
  size_t ExpireIdle();

  size_t live_sessions() const;
  const SessionManagerOptions& options() const { return options_; }

 private:
  struct Entry {
    /// Serializes steps on this session; taken after (never inside)
    /// table_mu_.
    std::mutex mu;
    MonitoredSession session;
    std::shared_ptr<const void> owner;
    /// Atomic: written under the entry mutex (Step), read under
    /// table_mu_ only (expiry checks) — the two lock domains overlap
    /// nowhere, so the timestamp itself carries the synchronization.
    std::atomic<std::chrono::steady_clock::time_point> last_used;
    /// The session.finalized counter fires once per session.
    bool finalized_counted = false;

    Entry(const analysis::PreparedFormula& prepared,
          const schema::Schema& schema, schema::Instance initial,
          std::shared_ptr<const void> own)
        : session(prepared, schema, std::move(initial)),
          owner(std::move(own)),
          last_used(std::chrono::steady_clock::now()) {}
  };

  bool Expired(const Entry& entry,
               std::chrono::steady_clock::time_point now) const {
    return options_.idle_timeout.count() > 0 &&
           now - entry.last_used.load(std::memory_order_relaxed) >=
               options_.idle_timeout;
  }
  /// Removes expired entries under table_mu_; returns the count.
  size_t SweepLocked(std::chrono::steady_clock::time_point now);
  static SessionInfo Describe(SessionId id, const Entry& entry);

  SessionManagerOptions options_;
  mutable std::mutex table_mu_;
  std::unordered_map<SessionId, std::shared_ptr<Entry>> table_;
  SessionId next_id_ = 1;
};

}  // namespace session
}  // namespace accltl

#endif  // ACCLTL_SESSION_SESSION_MANAGER_H_
