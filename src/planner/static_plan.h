#ifndef ACCLTL_PLANNER_STATIC_PLAN_H_
#define ACCLTL_PLANNER_STATIC_PLAN_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/logic/cq.h"
#include "src/schema/access.h"
#include "src/schema/instance.h"
#include "src/schema/schema.h"

namespace accltl {
namespace planner {

/// One step of an executable plan: answer atom `atom_index` of the CQ
/// through access method `method`, whose input positions are covered by
/// constants of the atom or by variables bound in earlier steps.
struct PlannedStep {
  size_t atom_index = 0;
  schema::AccessMethodId method = 0;

  std::string ToString(const logic::Cq& q, const schema::Schema& s) const;
};

/// A left-deep executable ordering of the atoms of a conjunctive query
/// under the schema's binding patterns ([20], [18]: a query is
/// *answerable by exact accesses alone* iff such an ordering exists).
struct ExecutablePlan {
  std::vector<PlannedStep> steps;

  std::string ToString(const logic::Cq& q, const schema::Schema& s) const;
};

/// Finds an executable ordering of the CQ's atoms, if any (§1: the
/// query Address(X,Y,"Jones",Z) has none under AcM1/AcM2).
///
/// An atom is executable once every input position of some method on
/// its relation is covered by a constant of the atom or by a variable
/// occurring in an earlier atom. Search is DFS over atom orderings with
/// memoization on the set of placed atoms; kNotFound when no ordering
/// exists, kInvalidArgument for non-plain atoms or > 64 atoms.
Result<ExecutablePlan> PlanConjunctiveQuery(const logic::Cq& q,
                                            const schema::Schema& schema);

struct PlanExecutionStats {
  /// Distinct accesses performed.
  size_t accesses = 0;
  /// Total tuples returned across accesses.
  size_t tuples_fetched = 0;
  /// Intermediate binding environments materialized (join width).
  size_t max_envs = 0;
};

/// Executes the plan against a hidden `universe` with *exact* accesses
/// (§2), nested-loop style: each step expands every current variable
/// binding through one access. Returns the head projections (for a
/// boolean query: a set containing the empty tuple iff the query
/// holds); they coincide with Q(universe) because the plan is
/// executable and the accesses are exact.
///
/// `trace`, when non-null, receives the access path performed — the
/// path is grounded in the plan's constants (every binding value is a
/// constant of Q or was returned by an earlier access).
Result<std::set<Tuple>> ExecutePlan(const ExecutablePlan& plan,
                                    const logic::Cq& q,
                                    const schema::Schema& schema,
                                    const schema::Instance& universe,
                                    PlanExecutionStats* stats = nullptr,
                                    schema::AccessPath* trace = nullptr);

}  // namespace planner
}  // namespace accltl

#endif  // ACCLTL_PLANNER_STATIC_PLAN_H_
