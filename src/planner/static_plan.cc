#include "src/planner/static_plan.h"

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "src/common/strings.h"
#include "src/logic/eval.h"

namespace accltl {
namespace planner {

using logic::Term;

std::string PlannedStep::ToString(const logic::Cq& q,
                                  const schema::Schema& s) const {
  const logic::CqAtom& a = q.atoms[atom_index];
  std::vector<std::string> ts;
  ts.reserve(a.terms.size());
  for (const Term& t : a.terms) ts.push_back(t.ToString());
  return s.method(method).name + " -> " + logic::PredicateName(a.pred, s) +
         "(" + Join(ts, ",") + ")";
}

std::string ExecutablePlan::ToString(const logic::Cq& q,
                                     const schema::Schema& s) const {
  std::vector<std::string> lines;
  lines.reserve(steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    lines.push_back(std::to_string(i + 1) + ". " + steps[i].ToString(q, s));
  }
  return Join(lines, "\n");
}

namespace {

/// Variables of atom i, as indices into a dense variable table.
struct AtomInfo {
  std::vector<int> vars;  // ids of variables occurring in the atom
  schema::RelationId relation = 0;
};

/// Is `method` executable for `atom` given the bound-variable set?
/// Every input position must carry a constant or a bound variable.
bool MethodExecutable(const schema::AccessMethod& method,
                      const logic::CqAtom& atom,
                      const std::map<std::string, int>& var_ids,
                      const std::vector<bool>& bound) {
  for (schema::Position p : method.input_positions) {
    const Term& t = atom.terms[static_cast<size_t>(p)];
    if (t.is_const()) continue;
    int id = var_ids.at(t.var_name());
    if (!bound[static_cast<size_t>(id)]) return false;
  }
  return true;
}

}  // namespace

Result<ExecutablePlan> PlanConjunctiveQuery(const logic::Cq& q,
                                            const schema::Schema& schema) {
  if (q.atoms.size() > 64) {
    return Status::InvalidArgument("plan search supports at most 64 atoms");
  }
  for (const logic::CqAtom& a : q.atoms) {
    if (a.pred.space != logic::PredSpace::kPlain) {
      return Status::InvalidArgument(
          "plans are over the plain schema vocabulary");
    }
  }

  // Dense variable ids.
  std::map<std::string, int> var_ids;
  std::vector<AtomInfo> infos(q.atoms.size());
  for (size_t i = 0; i < q.atoms.size(); ++i) {
    infos[i].relation = q.atoms[i].pred.id;
    for (const Term& t : q.atoms[i].terms) {
      if (!t.is_var()) continue;
      auto [it, inserted] =
          var_ids.emplace(t.var_name(), static_cast<int>(var_ids.size()));
      infos[i].vars.push_back(it->second);
    }
  }

  ExecutablePlan plan;
  std::vector<bool> bound(var_ids.size(), false);
  std::set<uint64_t> failed;  // masks proven un-completable

  // DFS over orderings; the bound set is a function of the mask, so
  // memoizing failed masks makes the search O(2^atoms) worst case.
  std::function<bool(uint64_t)> complete = [&](uint64_t mask) -> bool {
    if (mask == (q.atoms.size() == 64
                     ? ~uint64_t{0}
                     : (uint64_t{1} << q.atoms.size()) - 1)) {
      return true;
    }
    if (failed.count(mask) > 0) return false;
    for (size_t i = 0; i < q.atoms.size(); ++i) {
      if (mask & (uint64_t{1} << i)) continue;
      for (schema::AccessMethodId m : schema.methods_on(infos[i].relation)) {
        if (!MethodExecutable(schema.method(m), q.atoms[i], var_ids, bound)) {
          continue;
        }
        plan.steps.push_back(PlannedStep{i, m});
        std::vector<int> newly;
        for (int v : infos[i].vars) {
          if (!bound[static_cast<size_t>(v)]) {
            bound[static_cast<size_t>(v)] = true;
            newly.push_back(v);
          }
        }
        if (complete(mask | (uint64_t{1} << i))) return true;
        for (int v : newly) bound[static_cast<size_t>(v)] = false;
        plan.steps.pop_back();
        break;  // other methods bind the same variables; the memo on
                // the mask covers alternative method choices below
      }
    }
    failed.insert(mask);
    return false;
  };

  // NOTE: the `break` above is safe for *feasibility* only when every
  // method choice binds the same variable set (true: variables come
  // from the atom, not the method). Different methods can still differ
  // in which one is executable, so we must try each method until one
  // is executable — the break fires only after a recursive failure,
  // where any other executable method would fail identically (same
  // mask, same bound set).
  if (complete(0)) return plan;
  return Status::NotFound("no executable ordering under binding patterns");
}

Result<std::set<Tuple>> ExecutePlan(const ExecutablePlan& plan,
                                    const logic::Cq& q,
                                    const schema::Schema& schema,
                                    const schema::Instance& universe,
                                    PlanExecutionStats* stats,
                                    schema::AccessPath* trace) {
  if (plan.steps.size() != q.atoms.size()) {
    return Status::InvalidArgument("plan does not cover all atoms");
  }
  PlanExecutionStats local;
  std::set<schema::Access> performed;  // dedupe repeated accesses

  std::vector<logic::Env> envs = {logic::Env{}};
  for (const PlannedStep& step : plan.steps) {
    const logic::CqAtom& atom = q.atoms[step.atom_index];
    const schema::AccessMethod& method = schema.method(step.method);
    std::vector<logic::Env> next;
    for (const logic::Env& env : envs) {
      // Build the binding for the method's input positions.
      Tuple binding;
      binding.reserve(method.input_positions.size());
      bool ok = true;
      for (schema::Position p : method.input_positions) {
        const Term& t = atom.terms[static_cast<size_t>(p)];
        if (t.is_const()) {
          binding.push_back(t.value());
        } else {
          auto it = env.find(t.var_name());
          if (it == env.end()) {
            ok = false;  // plan was not executable after all
            break;
          }
          binding.push_back(it->second);
        }
      }
      if (!ok) {
        return Status::Internal("unbound input position during execution");
      }
      // Exact access against the hidden universe.
      std::vector<Tuple> response = universe.Matching(
          atom.pred.id, method.input_positions, binding);
      schema::Access access{step.method, binding};
      if (performed.insert(access).second) {
        ++local.accesses;
        local.tuples_fetched += response.size();
        if (trace != nullptr) {
          schema::AccessStep ts;
          ts.access = access;
          ts.response = schema::Response(response.begin(), response.end());
          trace->Append(std::move(ts));
        }
      }
      // Unify each returned tuple with the atom.
      for (const Tuple& tuple : response) {
        logic::Env extended = env;
        bool match = true;
        for (size_t i = 0; i < tuple.size(); ++i) {
          const Term& t = atom.terms[i];
          if (t.is_const()) {
            if (t.value() != tuple[i]) {
              match = false;
              break;
            }
            continue;
          }
          auto [it, inserted] = extended.emplace(t.var_name(), tuple[i]);
          if (!inserted && it->second != tuple[i]) {
            match = false;
            break;
          }
        }
        if (match) next.push_back(std::move(extended));
      }
    }
    envs = std::move(next);
    local.max_envs = std::max(local.max_envs, envs.size());
    if (envs.empty()) break;
  }

  // Residual side conditions (≠, head equalities/constants).
  std::set<Tuple> answers;
  for (const logic::Env& env : envs) {
    bool ok = true;
    for (const auto& [l, r] : q.neqs) {
      Value lv = l.is_const() ? l.value() : env.at(l.var_name());
      Value rv = r.is_const() ? r.value() : env.at(r.var_name());
      if (lv == rv) {
        ok = false;
        break;
      }
    }
    for (const auto& [a, b] : q.head_eqs) {
      if (ok && env.at(a) != env.at(b)) ok = false;
    }
    for (const auto& [v, c] : q.head_consts) {
      if (ok && env.at(v) != c) ok = false;
    }
    if (!ok) continue;
    Tuple row;
    row.reserve(q.head.size());
    for (const std::string& h : q.head) row.push_back(env.at(h));
    answers.insert(std::move(row));
  }
  if (stats != nullptr) *stats = local;
  return answers;
}

}  // namespace planner
}  // namespace accltl
