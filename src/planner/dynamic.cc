#include "src/planner/dynamic.h"

#include <algorithm>
#include <functional>
#include <map>

#include "src/logic/eval.h"
#include "src/logic/structure.h"

namespace accltl {
namespace planner {

namespace {

/// Where a known value came from. Seeded values (query constants,
/// seed_values, initial-instance values) are never pruned by
/// provenance: the analyses cannot bound what they might match.
struct Origin {
  bool seeded = false;
  /// (relation, position) pairs the value was revealed at.
  std::set<std::pair<schema::RelationId, schema::Position>> positions;
};

using OriginMap = std::map<Value, Origin>;

void AddSeed(OriginMap* origins, const Value& v) { (*origins)[v].seeded = true; }

void AddRevealed(OriginMap* origins, const Value& v, schema::RelationId r,
                 schema::Position p) {
  (*origins)[v].positions.emplace(r, p);
}

/// Is (r1,p1) ⊥ (r2,p2) declared (in either order)?
bool DeclaredDisjoint(
    const std::vector<schema::DisjointnessConstraint>& constraints,
    schema::RelationId r1, schema::Position p1, schema::RelationId r2,
    schema::Position p2) {
  for (const schema::DisjointnessConstraint& c : constraints) {
    if (c.r == r1 && c.r_position == p1 && c.s == r2 && c.s_position == p2) {
      return true;
    }
    if (c.r == r2 && c.r_position == p2 && c.s == r1 && c.s_position == p1) {
      return true;
    }
  }
  return false;
}

/// §1 provenance rule: the access is useless when some binding value's
/// every known provenance is disjoint from the input position it would
/// be entered into — it must return ∅ on any instance satisfying the
/// constraints.
bool PrunedByProvenance(
    const schema::Schema& schema, const schema::AccessMethod& method,
    schema::RelationId target_relation, const Tuple& binding,
    const OriginMap& origins,
    const std::vector<schema::DisjointnessConstraint>& constraints) {
  if (constraints.empty()) return false;
  for (size_t k = 0; k < binding.size(); ++k) {
    schema::Position p = method.input_positions[k];
    auto it = origins.find(binding[k]);
    if (it == origins.end()) continue;  // unknown origin: keep
    const Origin& o = it->second;
    if (o.seeded || o.positions.empty()) continue;
    bool all_disjoint = true;
    for (const auto& [r, rp] : o.positions) {
      if (!DeclaredDisjoint(constraints, r, rp, target_relation, p)) {
        all_disjoint = false;
        break;
      }
    }
    if (all_disjoint) return true;
  }
  (void)schema;
  return false;
}

/// Enumerates the cartesian product of per-position candidate values,
/// calling `fn` for each binding until `fn` asks to stop or `cap`
/// bindings were emitted.
void ForEachBinding(const std::vector<std::vector<Value>>& candidates,
                    size_t cap, const std::function<void(const Tuple&)>& fn) {
  Tuple binding(candidates.size());
  size_t emitted = 0;
  std::function<void(size_t)> rec = [&](size_t i) {
    if (emitted >= cap) return;
    if (i == candidates.size()) {
      ++emitted;
      fn(binding);
      return;
    }
    for (const Value& v : candidates[i]) {
      binding[i] = v;
      rec(i + 1);
      if (emitted >= cap) return;
    }
  };
  rec(0);
}

}  // namespace

std::set<schema::RelationId> RelevantRelations(const logic::Cq& q,
                                               const schema::Schema& schema) {
  std::set<schema::RelationId> relevant;
  for (const logic::CqAtom& a : q.atoms) {
    if (a.pred.space == logic::PredSpace::kPlain) relevant.insert(a.pred.id);
  }
  // Backward closure: R joins when some position type of R matches an
  // input-position type of a method on an already-relevant relation
  // (R's values could then be entered into that method).
  bool changed = true;
  while (changed) {
    changed = false;
    // Types consumable by methods on relevant relations.
    std::set<ValueType> consumable;
    for (schema::RelationId s : relevant) {
      for (schema::AccessMethodId m : schema.methods_on(s)) {
        for (schema::Position p : schema.method(m).input_positions) {
          consumable.insert(schema.relation(s).position_types[
              static_cast<size_t>(p)]);
        }
      }
    }
    for (schema::RelationId r = 0; r < schema.num_relations(); ++r) {
      if (relevant.count(r) > 0) continue;
      for (ValueType t : schema.relation(r).position_types) {
        if (consumable.count(t) > 0) {
          relevant.insert(r);
          changed = true;
          break;
        }
      }
    }
  }
  return relevant;
}

Result<DynamicResult> AnswerWithDynamicAccesses(
    const logic::Cq& q, const schema::Schema& schema,
    const schema::Instance& universe, const schema::Instance& initial,
    const DynamicOptions& options) {
  for (const logic::CqAtom& a : q.atoms) {
    if (a.pred.space != logic::PredSpace::kPlain) {
      return Status::InvalidArgument(
          "dynamic execution answers plain-vocabulary queries");
    }
  }

  DynamicResult result;
  result.configuration = initial;

  OriginMap origins;
  for (const Value& v : options.seed_values) AddSeed(&origins, v);
  for (const Value& v : q.Constants()) AddSeed(&origins, v);
  for (const Value& v : initial.ActiveDomain()) AddSeed(&origins, v);

  std::set<schema::RelationId> relevant;
  if (options.prune_by_reachability) relevant = RelevantRelations(q, schema);

  std::set<schema::Access> performed;
  bool out_of_budget = false;

  for (size_t round = 0; round < options.max_rounds; ++round) {
    ++result.stats.rounds;
    bool changed = false;

    // Snapshot the typed candidate pools: values discovered during the
    // round are used from the next round on (deterministic order).
    std::map<ValueType, std::vector<Value>> pool;
    for (const auto& [v, origin] : origins) pool[v.type()].push_back(v);

    for (schema::AccessMethodId m = 0; m < schema.num_access_methods(); ++m) {
      const schema::AccessMethod& method = schema.method(m);
      if (options.prune_by_reachability &&
          relevant.count(method.relation) == 0) {
        // Whole method pruned; count one pruned candidate so ablations
        // see the effect even when the binding space is empty.
        ++result.stats.accesses_pruned;
        continue;
      }
      std::vector<std::vector<Value>> candidates;
      candidates.reserve(method.input_positions.size());
      bool feasible = true;
      for (schema::Position p : method.input_positions) {
        ValueType t = schema.relation(method.relation)
                          .position_types[static_cast<size_t>(p)];
        auto it = pool.find(t);
        if (it == pool.end()) {
          feasible = false;
          break;
        }
        candidates.push_back(it->second);
      }
      if (!feasible) continue;

      ForEachBinding(
          candidates, options.max_bindings_per_method,
          [&](const Tuple& binding) {
            if (out_of_budget) return;
            schema::Access access{m, binding};
            if (performed.count(access) > 0) return;
            if (options.prune_by_provenance &&
                PrunedByProvenance(schema, method, method.relation, binding,
                                   origins, options.disjointness)) {
              ++result.stats.accesses_pruned;
              return;
            }
            if (result.stats.accesses_made >= options.max_accesses) {
              out_of_budget = true;
              return;
            }
            const store::Store& store = store::Store::Get();
            std::vector<store::FactId> matching = universe.MatchingIds(
                method.relation, method.input_positions, binding);
            schema::Response response;
            for (store::FactId f : matching) response.insert(store.tuple(f));
            performed.insert(access);
            ++result.stats.accesses_made;
            schema::AccessStep step;
            step.access = access;
            step.response = response;
            result.trace.Append(std::move(step));
            for (store::FactId f : matching) {
              const Tuple& t = store.tuple(f);
              if (result.configuration.AddFactId(method.relation, f)) {
                changed = true;
              }
              for (size_t i = 0; i < t.size(); ++i) {
                if (origins.find(t[i]) == origins.end()) changed = true;
                AddRevealed(&origins, t[i], method.relation,
                            static_cast<schema::Position>(i));
              }
            }
          });
      if (out_of_budget) break;
    }

    if (!changed || out_of_budget) {
      result.stats.reached_fixpoint = !changed;
      break;
    }
  }

  logic::InstanceView view(result.configuration);
  result.answers =
      logic::EnumerateAnswers(q.ToFormula(), q.head, view);
  // ≠ and head side conditions are part of ToFormula and handled by the
  // evaluator; nothing further to filter here.
  return result;
}

}  // namespace planner
}  // namespace accltl
