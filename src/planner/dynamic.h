#ifndef ACCLTL_PLANNER_DYNAMIC_H_
#define ACCLTL_PLANNER_DYNAMIC_H_

#include <set>
#include <vector>

#include "src/common/status.h"
#include "src/logic/cq.h"
#include "src/schema/access.h"
#include "src/schema/dependencies.h"
#include "src/schema/instance.h"
#include "src/schema/schema.h"

namespace accltl {
namespace planner {

/// Options for the dynamic (grounded, fixpoint) executor.
struct DynamicOptions {
  /// Initially-known constants usable as binding values in addition to
  /// the query's constants (e.g. "Smith" in Figure 1).
  std::vector<Value> seed_values;

  /// Disjointness constraints *known to hold on the hidden instance*.
  /// With `prune_by_provenance` they justify skipping accesses (§1:
  /// "we should not bother to make accesses to the Mobile# table using
  /// street names acquired earlier").
  std::vector<schema::DisjointnessConstraint> disjointness;

  /// §1 optimization: skip an access when the provenance of some
  /// binding value is disjoint (under `disjointness`) from the input
  /// position it would be entered into. Sound: such an access always
  /// returns the empty set on any instance satisfying the constraints.
  bool prune_by_provenance = true;

  /// [3]-style optimization: additionally skip accesses whose relation
  /// cannot reach the query's relations in the value-flow graph
  /// (outputs of R feed inputs of methods on S). Sound: pruned accesses
  /// can never contribute a value that influences the answers.
  bool prune_by_reachability = true;

  /// Fixpoint bounds.
  size_t max_rounds = 64;
  size_t max_accesses = 100000;
  /// Cap on candidate bindings enumerated per method per round.
  size_t max_bindings_per_method = 100000;
};

struct DynamicStats {
  size_t accesses_made = 0;
  /// Candidate accesses skipped by the pruning rules.
  size_t accesses_pruned = 0;
  size_t rounds = 0;
  /// True when a full round added no new facts and no new values (the
  /// Datalog fixpoint of [15] was reached).
  bool reached_fixpoint = false;
};

struct DynamicResult {
  /// Everything revealed: Conf(trace, initial).
  schema::Instance configuration;
  /// Q evaluated on the final configuration — the *maximal answers*
  /// obtainable with grounded accesses ([15], §1).
  std::set<Tuple> answers;
  DynamicStats stats;
  /// The grounded access path performed.
  schema::AccessPath trace;
};

/// Answers `q` over the hidden `universe` by iterating grounded exact
/// accesses to a fixpoint — the brute-force Datalog strategy of §1 —
/// with the optional §1/[3] pruning optimizations. With all pruning
/// disabled this computes exactly the accessible part
/// (analysis::AccessiblePart) restricted to values reachable from
/// `initial`, the query constants and `seed_values`.
///
/// The hidden instance is assumed to satisfy `options.disjointness`
/// (callers typically validate with DisjointnessConstraint::SatisfiedBy;
/// pruning soundness depends on it).
Result<DynamicResult> AnswerWithDynamicAccesses(
    const logic::Cq& q, const schema::Schema& schema,
    const schema::Instance& universe, const schema::Instance& initial,
    const DynamicOptions& options = {});

/// The value-flow relevance set used by `prune_by_reachability`: the
/// relations whose revealed values could (transitively, through typed
/// method inputs) influence accesses to the query's relations, plus the
/// query relations themselves. Exposed for tests and the ablation bench.
std::set<schema::RelationId> RelevantRelations(const logic::Cq& q,
                                               const schema::Schema& schema);

}  // namespace planner
}  // namespace accltl

#endif  // ACCLTL_PLANNER_DYNAMIC_H_
