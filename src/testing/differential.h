#ifndef ACCLTL_TESTING_DIFFERENTIAL_H_
#define ACCLTL_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/accltl/formula.h"
#include "src/common/status.h"
#include "src/schema/instance.h"
#include "src/schema/schema.h"

namespace accltl {
namespace testing {

/// Differential fuzzing of the optimized engines against the naive
/// oracle (src/oracle/) and against each other, plus metamorphic
/// properties (renaming invariance, thread-count invariance,
/// prepared ≡ one-shot, budget monotonicity). One *engine pair* names
/// one agreement check:
///
///   oracle-zero      OracleDecide vs the zero-ary solver (ungrounded,
///                    ≠-free: the solver is complete, so a definitive
///                    "no" against an oracle witness is a bug — and so
///                    is the reverse).
///   oracle-automata  OracleDecide vs compile + bounded witness search
///                    (+ Datalog certification when the search sweeps
///                    clean): engine witnesses must satisfy the naive
///                    evaluator; a Datalog "empty" against an oracle
///                    witness is a bug.
///   zero-automata    The two complete-ish engines against each other
///                    on formulas both accept (binding-positive 0-ary).
///   service          AnalysisService (prepared, async, cached, 1/2/8
///                    threads) vs one-shot DecideSatisfiability:
///                    byte-identical decisions.
///   compact          VisitedMode::kCompact (tree-compressed visited
///                    storage, 1/2/8 threads) vs kExact: byte-identical
///                    verdicts, witnesses and node counts, plus
///                    worker-count-invariant compact memory statistics.
///   rename           Relation/method renaming and injective constant
///                    renaming never change the verdict.
///   budget           A search that finishes under a small node budget
///                    returns exactly the big-budget result; a small-
///                    budget witness implies the big-budget verdict.
///   lts              OracleExploreLts vs schema::ExploreBreadthFirst
///                    (1 and 2 workers): identical level statistics,
///                    plus universe value-renaming invariance.
///   semantic         The tiered service's containment-based cache vs a
///                    fresh full search: a donor request seeds the
///                    cache, then a schema-renamed twin MUST transfer
///                    byte-identically, and variable-renamed /
///                    variable-identified variants that hit the cache
///                    must match the fresh verdict (with sound
///                    witnesses) — any transfer rule applied in an
///                    unsound direction diverges here.
///   bounded          Result-bounded schemas (methods with `bound k`,
///                    k ∈ {1,2,3}): the routed engine's decision is
///                    byte-identical at 1/2/8 workers, engine
///                    witnesses respect every bound (AccessPath::
///                    Validate) and satisfy the naive evaluators, a
///                    definitive engine "no" against an oracle witness
///                    is a bug, and enlarging every bound by one never
///                    flips satisfiable → unsatisfiable (monotonicity
///                    in k — the metamorphic property bounded
///                    non-exact responses guarantee by construction).
///   session          The streaming-session surface vs the naive
///                    per-prefix oracle: a progression-backed session
///                    must agree with NaiveEvalOnPath after every
///                    prefix of a random access stream, irrevocable
///                    verdicts never flip, an A-automaton kViolated
///                    pins the progression reference currently-false
///                    thereafter, and the full interaction's verdict
///                    sequence is byte-identical at 1/2/8 dispatcher
///                    threads.
///
/// Every engine kYes is additionally validated with BOTH evaluators
/// (logic::EvalSentence via acc::EvalOnPath, and the oracle's naive
/// evaluator) regardless of pair — a wrong witness never survives.

/// One generated (or replayed) differential case. Everything needed to
/// re-run the check deterministically; serializable to the repro text
/// format below.
struct FuzzCase {
  std::string pair;
  uint64_t seed = 0;
  /// Restrict engines to grounded paths (decide pairs) / grounded
  /// bindings (lts pair).
  bool grounded = false;
  /// lts pair: LtsOptions::enumerate_singleton_responses.
  bool singletons = true;
  /// lts pair: exploration depth.
  size_t depth = 2;
  schema::Schema schema;
  /// Null for the lts pair.
  acc::AccPtr formula;
  /// Hidden universe; only the lts pair uses it.
  schema::Instance universe;
};

struct DiffOutcome {
  /// True when the pair agreed (or the case was skipped).
  bool ok = true;
  /// True when no claim could be checked (oracle budget exhausted,
  /// fragment filter, engine budget edge).
  bool skipped = false;
  /// Human-readable divergence report when !ok.
  std::string diagnosis;
};

/// All engine-pair names, in the order `RunFuzz` runs them.
const std::vector<std::string>& EnginePairs();

/// Deterministically generates the case for (pair, seed). Rotates
/// through schema/formula/instance families, including the three the
/// base generator never produced: high-arity mixed input/output
/// methods, guarded Until nests, and disconnected active domains.
Result<FuzzCase> GenerateCase(const std::string& pair, uint64_t seed);

/// Runs the agreement check for one case.
DiffOutcome RunCase(const FuzzCase& c);

/// Greedy shrinking: repeatedly tries formula simplifications
/// (subtree hoisting, conjunct/disjunct dropping, atom → TRUE/FALSE,
/// temporal-depth reduction), dropping unreferenced relations/methods
/// (with id remapping), and dropping universe facts — keeping any
/// candidate on which the check still FAILS. Returns the smallest
/// failing case found within `max_attempts` re-runs.
FuzzCase ShrinkCase(const FuzzCase& c, size_t max_attempts = 400);

/// Serializes a case (plus the diagnosis as a comment) to the repro
/// text format:
///
///   # accltl differential fuzz repro
///   pair: oracle-zero
///   seed: 17
///   grounded: false
///   singletons: true
///   depth: 2
///   --- schema ---
///   relation R0(p0: string)
///   access M0_0 on R0(p0)
///   --- formula ---
///   F [EXISTS z0 . R0_post(z0)]
///   --- instance ---
///   R0("d1")
///
/// The schema/instance sections use schema::text_format; the formula
/// section uses the AccLTL parser syntax. Sections may be omitted when
/// empty. ParseRepro inverts FormatRepro exactly (the round-trip is
/// property-tested), so a shrunk repro checked into tests/corpus/
/// replays the original check bit-for-bit.
std::string FormatRepro(const FuzzCase& c, const std::string& diagnosis);
Result<FuzzCase> ParseRepro(const std::string& text);

struct FuzzOptions {
  uint64_t seed_start = 1;
  size_t num_seeds = 50;
  /// Empty = every pair of EnginePairs().
  std::vector<std::string> pairs;
  bool shrink = false;
  /// Directory for repro files of failing cases ("" = don't write).
  std::string out_dir;
};

struct FuzzSummary {
  size_t cases = 0;
  size_t failures = 0;
  size_t skipped = 0;
  std::vector<std::string> repro_paths;
};

/// Drives seeds × pairs, reporting each failing seed/pair/diagnosis
/// (and the repro path, when `out_dir` is set) to `err` as it is
/// found. The CLI's `fuzz` subcommand and the nightly job are thin
/// wrappers over this.
FuzzSummary RunFuzz(const FuzzOptions& options, std::FILE* err);

}  // namespace testing
}  // namespace accltl

#endif  // ACCLTL_TESTING_DIFFERENTIAL_H_
